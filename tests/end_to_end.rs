//! Cross-crate end-to-end tests: the full CSD story on the full stack.

use csd_repro::attack::{
    aes_attack, rsa_attack, victim_core, AesAttackConfig, Defense, RsaAttackConfig,
};
use csd_repro::core::{CsdConfig, VpuPolicy};
use csd_repro::crypto::{AesKeySize, AesVictim, BlowfishVictim, CipherDir, RsaVictim, Victim};
use csd_repro::pipeline::{Core, CoreConfig, SimMode, StepOutcome};
use csd_repro::power::EnergyModel;
use csd_repro::workloads::Workload;

const KEY128: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// Stealth mode must never change what the victim computes — only what the
/// attacker observes.
#[test]
fn stealth_preserves_victim_outputs_for_every_victim() {
    let victims: Vec<Box<dyn Victim>> = vec![
        Box::new(AesVictim::new(
            AesKeySize::K128,
            CipherDir::Encrypt,
            &KEY128,
        )),
        Box::new(AesVictim::new(
            AesKeySize::K128,
            CipherDir::Decrypt,
            &KEY128,
        )),
        Box::new(BlowfishVictim::new(CipherDir::Encrypt, b"E2E-KEY")),
        Box::new(RsaVictim::new(0xDEAD_BEEF, 65_521)),
    ];
    for v in &victims {
        let mut plain = victim_core(v.as_ref(), SimMode::Functional, Defense::None);
        let mut defended = victim_core(v.as_ref(), SimMode::Functional, Defense::stealth_default());
        for seed in 0..3u8 {
            let input: Vec<u8> = (0..v.input_len() as u8)
                .map(|i| i.wrapping_mul(31) ^ seed)
                .collect();
            let a = v.run_once(&mut plain, &input);
            let b = v.run_once(&mut defended, &input);
            assert_eq!(a, b, "{}: stealth changed the output", v.name());
            assert_eq!(a, v.reference(&input), "{}: wrong output", v.name());
        }
        assert!(
            defended.stats().decoy_uops > 0,
            "{}: stealth never fired",
            v.name()
        );
    }
}

/// Functional and cycle engines share one decode path: identical
/// architectural results and µop streams on a full AES run.
#[test]
fn engines_agree_on_a_full_cipher() {
    let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &KEY128);
    let mut func = victim_core(&v, SimMode::Functional, Defense::stealth_default());
    let mut cyc = victim_core(&v, SimMode::Cycle, Defense::stealth_default());
    let pt: Vec<u8> = (0..16).collect();
    assert_eq!(v.run_once(&mut func, &pt), v.run_once(&mut cyc, &pt));
    assert_eq!(func.stats().insts, cyc.stats().insts);
    // Decoy volume is watchdog-clock-dependent (the two engines measure
    // time differently), but the *architectural* µop stream is identical.
    assert_eq!(
        func.stats().uops - func.stats().decoy_uops,
        cyc.stats().uops - cyc.stats().decoy_uops
    );
    assert!(func.stats().decoy_uops > 0 && cyc.stats().decoy_uops > 0);
}

/// The headline security result: attacks succeed undefended, stealth
/// defeats them (paper Figure 7).
#[test]
fn the_full_security_story() {
    let aes = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &KEY128);
    let undefended = aes_attack(
        &aes,
        &AesAttackConfig {
            trials_per_candidate: 48,
            ..AesAttackConfig::default()
        },
    );
    assert!(undefended.bits_recovered() >= 48, "attack works undefended");

    let defended = aes_attack(
        &aes,
        &AesAttackConfig {
            trials_per_candidate: 16,
            defense: Defense::stealth_default(),
            ..AesAttackConfig::default()
        },
    );
    assert!(defended.defeated(), "stealth defeats the AES attack");

    let rsa = RsaVictim::new(0xB7E1_5163_0000_F36D, 1_000_003);
    let out = rsa_attack(&rsa, &RsaAttackConfig::default());
    assert!(out.correct_bits() >= 60, "RSA attack works undefended");
}

/// The headline energy result: CSD devectorization beats conventional
/// gating on a scalar-leaning workload, with identical results.
#[test]
fn the_full_energy_story() {
    let w = Workload::by_name("omnetpp").expect("suite benchmark");
    let model = EnergyModel::default();
    let mut energies = Vec::new();
    let mut gprs = Vec::new();
    for policy in [
        VpuPolicy::AlwaysOn,
        VpuPolicy::Conventional {
            idle_gate_cycles: 400,
        },
        VpuPolicy::default(),
    ] {
        let cfg = CsdConfig {
            vpu_policy: policy,
            ..CsdConfig::default()
        };
        let mut core = Core::new(
            CoreConfig::default(),
            cfg,
            w.program().clone(),
            SimMode::Cycle,
        );
        w.install(&mut core);
        assert_eq!(core.run(100_000_000), StepOutcome::Halted);
        energies.push(model.breakdown(&core.activity()).total_pj());
        gprs.push(core.state.gprs);
    }
    assert_eq!(gprs[0], gprs[1]);
    assert_eq!(gprs[0], gprs[2]);
    assert!(
        energies[2] < energies[1],
        "CSD beats conventional: {energies:?}"
    );
    assert!(
        energies[1] < energies[0],
        "conventional beats always-on: {energies:?}"
    );
}

/// Re-running a victim with a different key through the same program must
/// change the ciphertext (sanity against accidentally baked-in state).
#[test]
fn keys_matter() {
    let v1 = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &KEY128);
    let mut other = KEY128;
    other[0] ^= 0xFF;
    let v2 = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &other);
    let mut c1 = victim_core(&v1, SimMode::Functional, Defense::None);
    let mut c2 = victim_core(&v2, SimMode::Functional, Defense::None);
    let pt = [7u8; 16];
    assert_ne!(v1.run_once(&mut c1, &pt), v2.run_once(&mut c2, &pt));
}
