//! Property-based tests over the core data structures and invariants.

use csd_repro::core::{CsdConfig, CsdEngine, msr};
use csd_repro::isa::{
    AddrRange, AluOp, Assembler, Cc, Gpr, Inst, MemRef, Placed, RegImm, Scale, VecOp, Width,
    Xmm, MAX_INST_LEN,
};
use csd_repro::pipeline::{valu, Core, CoreConfig, SimMode, StepOutcome};
use csd_repro::uops::{fuse_slots, fused_len_of, translate};
use proptest::prelude::*;

/// Re-exported helper (fusion::fused_len) under a stable name for tests.
fn fused_len(uops: &[csd_repro::uops::Uop]) -> usize {
    fused_len_of(uops)
}

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0usize..16).prop_map(Gpr::from_index)
}

fn arb_xmm() -> impl Strategy<Value = Xmm> {
    (0u8..16).prop_map(Xmm::new)
}

fn arb_mem() -> impl Strategy<Value = MemRef> {
    (arb_gpr(), proptest::option::of(arb_gpr()), -512i64..512).prop_map(|(b, i, d)| MemRef {
        base: Some(b),
        index: i.map(|r| (r, Scale::S4)),
        disp: d,
    })
}

fn arb_vecop() -> impl Strategy<Value = VecOp> {
    prop_oneof![
        Just(VecOp::PAddB),
        Just(VecOp::PAddW),
        Just(VecOp::PAddD),
        Just(VecOp::PAddQ),
        Just(VecOp::PSubB),
        Just(VecOp::PSubD),
        Just(VecOp::PAnd),
        Just(VecOp::POr),
        Just(VecOp::PXor),
        Just(VecOp::PMullW),
        Just(VecOp::PMullD),
        Just(VecOp::AddPs),
        Just(VecOp::SubPs),
        Just(VecOp::MulPs),
        Just(VecOp::AddPd),
        Just(VecOp::MulPd),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (1u32..15).prop_map(|len| Inst::Nop { len }),
        (arb_gpr(), arb_gpr()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (arb_gpr(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_gpr(), arb_mem()).prop_map(|(dst, mem)| Inst::Load { dst, mem, width: Width::B8 }),
        (arb_gpr(), arb_mem()).prop_map(|(src, mem)| Inst::Store { mem, src, width: Width::B8 }),
        (arb_gpr(), arb_gpr()).prop_map(|(dst, src)| Inst::Alu {
            op: AluOp::Xor,
            dst,
            src: RegImm::Reg(src)
        }),
        (arb_gpr(), arb_mem()).prop_map(|(dst, mem)| Inst::AluLoad {
            op: AluOp::Add,
            dst,
            mem,
            width: Width::B4
        }),
        (arb_mem(), -100i64..100).prop_map(|(mem, i)| Inst::AluStore {
            op: AluOp::Or,
            mem,
            src: RegImm::Imm(i),
            width: Width::B8
        }),
        arb_gpr().prop_map(|src| Inst::Div { src }),
        (arb_vecop(), arb_xmm(), arb_xmm()).prop_map(|(op, dst, src)| Inst::VAlu {
            op,
            dst,
            src
        }),
        Just(Inst::Ret),
        (0u64..1 << 30).prop_map(|t| Inst::Call { target: t }),
        arb_gpr().prop_map(|src| Inst::Push { src }),
        arb_gpr().prop_map(|dst| Inst::Pop { dst }),
    ]
}

proptest! {
    /// Every instruction encodes within x86's 1..=15 byte bounds.
    #[test]
    fn encoding_lengths_in_bounds(inst in arb_inst()) {
        prop_assert!((1..=MAX_INST_LEN).contains(&inst.len()));
    }

    /// Every native translation yields at least one µop, all structurally
    /// valid, none decoys.
    #[test]
    fn translations_are_valid(inst in arb_inst(), pc in 0u64..1 << 30) {
        let t = translate(&inst, pc);
        prop_assert!(!t.uops.is_empty());
        for u in &t.uops {
            prop_assert!(u.validate().is_ok(), "{u}: invalid");
            prop_assert!(!u.is_decoy());
        }
    }

    /// Fusion never grows a flow and never shrinks it below half.
    #[test]
    fn fusion_bounds(inst in arb_inst()) {
        let t = translate(&inst, 0);
        let fused = fused_len(&t.uops);
        prop_assert!(fused <= t.uops.len());
        prop_assert!(fused * 2 >= t.uops.len());
        prop_assert_eq!(fused, fuse_slots(&t.uops).len());
    }

    /// Condition codes and their inversions partition flag space.
    #[test]
    fn cc_inversion(bits in 0u8..16) {
        let (zf, sf, cf, of) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
        for cc in Cc::ALL {
            prop_assert_ne!(cc.eval(zf, sf, cf, of), cc.invert().eval(zf, sf, cf, of));
        }
    }

    /// Stealth decoy µops never name an architectural destination and
    /// never store, for arbitrary decoy ranges.
    #[test]
    fn decoys_never_touch_architectural_state(
        start in (0u64..1 << 20).prop_map(|x| x << 6),
        blocks in 1u64..32,
    ) {
        let mut engine = CsdEngine::new(CsdConfig::default());
        engine.write_msr(msr::MSR_DATA_RANGE_BASE, start);
        engine.write_msr(msr::MSR_DATA_RANGE_BASE + 1, start + blocks * 64);
        engine.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);
        let p = Placed {
            addr: 0x1000,
            inst: Inst::Load { dst: Gpr::Rax, mem: MemRef::base(Gpr::Rbx), width: Width::B8 },
        };
        let out = engine.decode(&p, true);
        let decoys: Vec<_> = out.translation.uops.iter().filter(|u| u.is_decoy()).collect();
        prop_assert_eq!(decoys.len() as u64, 1 + 3 * blocks);
        for u in decoys {
            prop_assert!(u.validate().is_ok());
            if let Some(d) = u.dst {
                prop_assert!(!d.is_architectural());
            }
            prop_assert!(!u.kind.is_store());
        }
    }

    /// Devectorized vector arithmetic is bit-exact with the VPU for
    /// arbitrary packed operands: run the same program under AlwaysOn and
    /// an immediately-gating CSD policy and compare results.
    #[test]
    fn devectorization_is_semantics_preserving(
        op in arb_vecop(),
        a_lo in any::<u64>(), a_hi in any::<u64>(),
        b_lo in any::<u64>(), b_hi in any::<u64>(),
    ) {
        let build = || {
            let mut asm = Assembler::new(0x1000);
            asm.mov_ri(Gpr::Rbx, 0x8000);
            asm.vload(Xmm::new(0), MemRef::base(Gpr::Rbx));
            asm.vload(Xmm::new(1), MemRef::base(Gpr::Rbx).with_disp(16));
            for _ in 0..260 {
                asm.alu_ri(AluOp::Add, Gpr::Rax, 1); // force gating
            }
            asm.valu(op, Xmm::new(0), Xmm::new(1));
            asm.vstore(MemRef::base(Gpr::Rbx).with_disp(32), Xmm::new(0));
            asm.halt();
            asm.finish().unwrap()
        };
        let run = |policy| {
            let cfg = CsdConfig { vpu_policy: policy, ..CsdConfig::default() };
            let mut core =
                Core::new(CoreConfig::default(), cfg, build(), SimMode::Functional);
            core.mem.write_u128(0x8000, (a_lo, a_hi));
            core.mem.write_u128(0x8010, (b_lo, b_hi));
            prop_assert_eq!(core.run(10_000), StepOutcome::Halted);
            Ok(core.mem.read_u128(0x8020))
        };
        let on = run(csd_repro::core::VpuPolicy::AlwaysOn)?;
        let devec = run(csd_repro::core::VpuPolicy::default())?;
        prop_assert_eq!(on, devec, "{}: scalarized result differs", op);
        // And both match the reference packed semantics.
        prop_assert_eq!(on, valu(op, (a_lo, a_hi), (b_lo, b_hi)));
    }

    /// Address ranges: block iteration covers exactly the touched lines.
    #[test]
    fn range_blocks_cover(start in 0u64..1 << 20, len in 1u64..4096) {
        let r = AddrRange::with_len(start, len);
        let blocks: Vec<u64> = r.blocks(64).collect();
        prop_assert!(!blocks.is_empty());
        for b in &blocks {
            prop_assert_eq!(b % 64, 0);
        }
        prop_assert!(blocks[0] <= start && start < blocks[0] + 64);
        let last = blocks[blocks.len() - 1];
        prop_assert!(last < r.end && r.end <= last + 64);
    }

    /// Assembled programs are contiguous with resolvable fetches.
    #[test]
    fn programs_are_contiguous(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let mut a = Assembler::new(0x4000);
        for i in &insts {
            a.emit(*i);
        }
        let p = a.finish().unwrap();
        let mut expect = 0x4000;
        for placed in &p {
            prop_assert_eq!(placed.addr, expect);
            prop_assert!(p.fetch(placed.addr).is_some());
            expect = placed.next_addr();
        }
        prop_assert_eq!(p.end_addr(), expect);
    }
}
