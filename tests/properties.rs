//! Property-based tests over the core data structures and invariants,
//! driven by the workspace's deterministic PRNG (`csd-telemetry`): each
//! property runs against dozens of seeded random cases, and a failing
//! case's number identifies its seed.

use csd_repro::core::{msr, CsdConfig, CsdEngine};
use csd_repro::isa::{
    AddrRange, AluOp, Assembler, Cc, Gpr, Inst, MemRef, Placed, RegImm, Scale, VecOp, Width, Xmm,
    MAX_INST_LEN,
};
use csd_repro::pipeline::{valu, Core, CoreConfig, SimMode, StepOutcome};
use csd_repro::telemetry::SplitMix64;
use csd_repro::uops::{fuse_slots, fused_len_of, translate};

const CASES: u64 = 64;

/// Re-exported helper (fusion::fused_len) under a stable name for tests.
fn fused_len(uops: &[csd_repro::uops::Uop]) -> usize {
    fused_len_of(uops)
}

fn arb_gpr(rng: &mut SplitMix64) -> Gpr {
    Gpr::from_index(rng.range_usize(0, 16))
}

fn arb_xmm(rng: &mut SplitMix64) -> Xmm {
    Xmm::new(rng.next_u8() % 16)
}

fn arb_mem(rng: &mut SplitMix64) -> MemRef {
    MemRef {
        base: Some(arb_gpr(rng)),
        index: if rng.next_bool() {
            Some((arb_gpr(rng), Scale::S4))
        } else {
            None
        },
        disp: rng.range_i64(-512, 512),
    }
}

const VEC_OPS: [VecOp; 16] = [
    VecOp::PAddB,
    VecOp::PAddW,
    VecOp::PAddD,
    VecOp::PAddQ,
    VecOp::PSubB,
    VecOp::PSubD,
    VecOp::PAnd,
    VecOp::POr,
    VecOp::PXor,
    VecOp::PMullW,
    VecOp::PMullD,
    VecOp::AddPs,
    VecOp::SubPs,
    VecOp::MulPs,
    VecOp::AddPd,
    VecOp::MulPd,
];

fn arb_vecop(rng: &mut SplitMix64) -> VecOp {
    VEC_OPS[rng.range_usize(0, VEC_OPS.len())]
}

fn arb_inst(rng: &mut SplitMix64) -> Inst {
    match rng.range_u64(0, 14) {
        0 => Inst::Nop {
            len: rng.range_u64(1, 15) as u32,
        },
        1 => Inst::MovRR {
            dst: arb_gpr(rng),
            src: arb_gpr(rng),
        },
        2 => Inst::MovRI {
            dst: arb_gpr(rng),
            imm: rng.next_u64() as i64,
        },
        3 => Inst::Load {
            dst: arb_gpr(rng),
            mem: arb_mem(rng),
            width: Width::B8,
        },
        4 => Inst::Store {
            mem: arb_mem(rng),
            src: arb_gpr(rng),
            width: Width::B8,
        },
        5 => Inst::Alu {
            op: AluOp::Xor,
            dst: arb_gpr(rng),
            src: RegImm::Reg(arb_gpr(rng)),
        },
        6 => Inst::AluLoad {
            op: AluOp::Add,
            dst: arb_gpr(rng),
            mem: arb_mem(rng),
            width: Width::B4,
        },
        7 => Inst::AluStore {
            op: AluOp::Or,
            mem: arb_mem(rng),
            src: RegImm::Imm(rng.range_i64(-100, 100)),
            width: Width::B8,
        },
        8 => Inst::Div { src: arb_gpr(rng) },
        9 => Inst::VAlu {
            op: arb_vecop(rng),
            dst: arb_xmm(rng),
            src: arb_xmm(rng),
        },
        10 => Inst::Ret,
        11 => Inst::Call {
            target: rng.range_u64(0, 1 << 30),
        },
        12 => Inst::Push { src: arb_gpr(rng) },
        _ => Inst::Pop { dst: arb_gpr(rng) },
    }
}

/// Every instruction encodes within x86's 1..=15 byte bounds.
#[test]
fn encoding_lengths_in_bounds() {
    for case in 0..CASES * 4 {
        let mut rng = SplitMix64::new(0xE9C0 + case);
        let inst = arb_inst(&mut rng);
        assert!(
            (1..=MAX_INST_LEN).contains(&inst.len()),
            "case {case}: {inst:?}"
        );
    }
}

/// Every native translation yields at least one µop, all structurally
/// valid, none decoys.
#[test]
fn translations_are_valid() {
    for case in 0..CASES * 4 {
        let mut rng = SplitMix64::new(0x7A45 + case);
        let inst = arb_inst(&mut rng);
        let pc = rng.range_u64(0, 1 << 30);
        let t = translate(&inst, pc);
        assert!(!t.uops.is_empty(), "case {case}");
        for u in &t.uops {
            assert!(u.validate().is_ok(), "case {case}: {u}: invalid");
            assert!(!u.is_decoy(), "case {case}: {u}: unexpected decoy");
        }
    }
}

/// Fusion never grows a flow and never shrinks it below half.
#[test]
fn fusion_bounds() {
    for case in 0..CASES * 4 {
        let mut rng = SplitMix64::new(0xF45E + case);
        let inst = arb_inst(&mut rng);
        let t = translate(&inst, 0);
        let fused = fused_len(&t.uops);
        assert!(fused <= t.uops.len(), "case {case}");
        assert!(fused * 2 >= t.uops.len(), "case {case}");
        assert_eq!(fused, fuse_slots(&t.uops).len(), "case {case}");
    }
}

/// Condition codes and their inversions partition flag space.
#[test]
fn cc_inversion() {
    for bits in 0u8..16 {
        let (zf, sf, cf, of) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
        for cc in Cc::ALL {
            assert_ne!(
                cc.eval(zf, sf, cf, of),
                cc.invert().eval(zf, sf, cf, of),
                "{cc:?}/{bits}"
            );
        }
    }
}

/// Stealth decoy µops never name an architectural destination and never
/// store, for arbitrary decoy ranges.
#[test]
fn decoys_never_touch_architectural_state() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xDEC0 + case);
        let start = rng.range_u64(0, 1 << 20) << 6;
        let blocks = rng.range_u64(1, 32);
        let mut engine = CsdEngine::new(CsdConfig::default());
        engine.write_msr(msr::MSR_DATA_RANGE_BASE, start);
        engine.write_msr(msr::MSR_DATA_RANGE_BASE + 1, start + blocks * 64);
        engine.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);
        let p = Placed {
            addr: 0x1000,
            inst: Inst::Load {
                dst: Gpr::Rax,
                mem: MemRef::base(Gpr::Rbx),
                width: Width::B8,
            },
        };
        let out = engine.decode(&p, true);
        let decoys: Vec<_> = out
            .translation
            .uops
            .iter()
            .filter(|u| u.is_decoy())
            .collect();
        assert_eq!(decoys.len() as u64, 1 + 3 * blocks, "case {case}");
        for u in decoys {
            assert!(u.validate().is_ok(), "case {case}");
            if let Some(d) = u.dst {
                assert!(!d.is_architectural(), "case {case}");
            }
            assert!(!u.kind.is_store(), "case {case}");
        }
    }
}

/// Devectorized vector arithmetic is bit-exact with the VPU for
/// arbitrary packed operands: run the same program under AlwaysOn and an
/// immediately-gating CSD policy and compare results.
#[test]
fn devectorization_is_semantics_preserving() {
    for case in 0..24 {
        let mut rng = SplitMix64::new(0xDE4C + case);
        let op = arb_vecop(&mut rng);
        let a = (rng.next_u64(), rng.next_u64());
        let b = (rng.next_u64(), rng.next_u64());
        let build = || {
            let mut asm = Assembler::new(0x1000);
            asm.mov_ri(Gpr::Rbx, 0x8000);
            asm.vload(Xmm::new(0), MemRef::base(Gpr::Rbx));
            asm.vload(Xmm::new(1), MemRef::base(Gpr::Rbx).with_disp(16));
            for _ in 0..260 {
                asm.alu_ri(AluOp::Add, Gpr::Rax, 1); // force gating
            }
            asm.valu(op, Xmm::new(0), Xmm::new(1));
            asm.vstore(MemRef::base(Gpr::Rbx).with_disp(32), Xmm::new(0));
            asm.halt();
            asm.finish().unwrap()
        };
        let run = |policy| {
            let cfg = CsdConfig {
                vpu_policy: policy,
                ..CsdConfig::default()
            };
            let mut core = Core::new(CoreConfig::default(), cfg, build(), SimMode::Functional);
            core.mem.write_u128(0x8000, a);
            core.mem.write_u128(0x8010, b);
            assert_eq!(core.run(10_000), StepOutcome::Halted, "case {case}");
            core.mem.read_u128(0x8020)
        };
        let on = run(csd_repro::core::VpuPolicy::AlwaysOn);
        let devec = run(csd_repro::core::VpuPolicy::default());
        assert_eq!(on, devec, "case {case}: {op}: scalarized result differs");
        // And both match the reference packed semantics.
        assert_eq!(on, valu(op, a, b), "case {case}: {op}");
    }
}

/// Address ranges: block iteration covers exactly the touched lines.
#[test]
fn range_blocks_cover() {
    for case in 0..CASES * 4 {
        let mut rng = SplitMix64::new(0x4A6E + case);
        let start = rng.range_u64(0, 1 << 20);
        let len = rng.range_u64(1, 4096);
        let r = AddrRange::with_len(start, len);
        let blocks: Vec<u64> = r.blocks(64).collect();
        assert!(!blocks.is_empty(), "case {case}");
        for b in &blocks {
            assert_eq!(b % 64, 0, "case {case}");
        }
        assert!(blocks[0] <= start && start < blocks[0] + 64, "case {case}");
        let last = blocks[blocks.len() - 1];
        assert!(last < r.end && r.end <= last + 64, "case {case}");
    }
}

/// Assembled programs are contiguous with resolvable fetches.
#[test]
fn programs_are_contiguous() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC047 + case);
        let n = rng.range_usize(1, 40);
        let mut a = Assembler::new(0x4000);
        for _ in 0..n {
            a.emit(arb_inst(&mut rng));
        }
        let p = a.finish().unwrap();
        let mut expect = 0x4000;
        for placed in &p {
            assert_eq!(placed.addr, expect, "case {case}");
            assert!(p.fetch(placed.addr).is_some(), "case {case}");
            expect = placed.next_addr();
        }
        assert_eq!(p.end_addr(), expect, "case {case}");
    }
}

/// Decode-class accounting is conserved: every retired instruction was
/// delivered by exactly one of the µop cache, the legacy decoders, or
/// the MS-ROM, so `uop_cache_insts + legacy_insts + msrom_insts ==
/// insts` after any straight-line program.
#[test]
fn decode_classes_partition_insts() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xDCDC + case);
        let n = rng.range_usize(1, 120);
        let mut asm = Assembler::new(0x1000);
        // Point every base register at mapped scratch memory so random
        // loads and stores resolve.
        for r in 0..16 {
            asm.mov_ri(Gpr::from_index(r), 0x8000 + 64 * r as i64);
        }
        for _ in 0..n {
            let inst = match rng.range_u64(0, 7) {
                0 => Inst::Nop {
                    len: rng.range_u64(1, 15) as u32,
                },
                1 => Inst::MovRI {
                    dst: arb_gpr(&mut rng),
                    imm: rng.range_i64(1, 1 << 20),
                },
                2 => Inst::Alu {
                    op: AluOp::Add,
                    dst: arb_gpr(&mut rng),
                    src: RegImm::Imm(rng.range_i64(0, 64)),
                },
                3 => Inst::Load {
                    dst: arb_gpr(&mut rng),
                    mem: MemRef::base(Gpr::Rbx).with_disp(rng.range_i64(0, 256)),
                    width: Width::B8,
                },
                4 => Inst::Store {
                    mem: MemRef::base(Gpr::Rcx).with_disp(rng.range_i64(0, 256)),
                    src: arb_gpr(&mut rng),
                    width: Width::B8,
                },
                5 => Inst::Div {
                    src: arb_gpr(&mut rng),
                }, // exercises the MS-ROM
                _ => Inst::VAlu {
                    op: arb_vecop(&mut rng),
                    dst: arb_xmm(&mut rng),
                    src: arb_xmm(&mut rng),
                },
            };
            asm.emit(inst);
        }
        asm.halt();
        let program = asm.finish().unwrap();
        for (cfg, mode) in [
            (CoreConfig::opt(), SimMode::Cycle),
            (CoreConfig::no_opt(), SimMode::Cycle),
            (CoreConfig::default(), SimMode::Functional),
        ] {
            let mut core = Core::new(cfg, CsdConfig::default(), program.clone(), mode);
            assert_eq!(core.run(1_000_000), StepOutcome::Halted, "case {case}");
            let s = core.stats();
            assert_eq!(
                s.uop_cache_insts + s.legacy_insts + s.msrom_insts,
                s.insts,
                "case {case} ({mode:?}): decode classes must partition instructions"
            );
            assert!(s.decoy_uops <= s.uops, "case {case}: decoys exceed µops");
        }
    }
}
