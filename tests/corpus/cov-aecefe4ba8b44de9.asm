# hand-written: devec flag-clobber regression (cmp / devectorized paddd / jcc)
    mov rsp, 0x208000
    mov r15, 0x100000
    mov rax, 0x1
    mov rcx, 0x2
    mov rdx, 0x3
    mov rbx, 0x4
    mov rsi, 0x5
    mov rdi, 0x6
    cmp rax, 0x1
    paddd xmm0, xmm1
    je L0
    mov r8, 0x1111
    mov r9, 0x2222
L0:
    hlt
