# fuzz seed 0xcafebabe round 9 candidate 4: +1 bins
    mov rsp, 0x208000
    mov r15, 0x100000
    mov rdx, 0xfb450ebff71c5998
    mov rbx, 0xa701aabe5961aacb
    mov rbp, 0xaaf6c3ec055a6bf9
    mov rsi, 0xc87a2bc063414fcd
    mov rdi, 0xccbfc2010fdc134f
    movdqa xmm0, [r15 + 0x70]
    paddd xmm0, xmm1
    je L7
L7:
