# fuzz seed 0xcafebabe round 5 candidate 4: +4 bins
    mov rsp, 0x208000
    mov r15, 0x100000
    add rsi, word [r15 + 0x6e]
    wrmsr 0x100, r12
    sub rbp, dword [r15 + 0x60]
    call L9
    imul rcx, 0x9ad8
    and rbp, 0xff
    paddb xmm2, [r15 + rbp*8 + 0x60]
L23:
    jne L23
    hlt
L9:
    movdqa [r15 + rsi*1 + 0xa0], xmm6
    ret
