#!/usr/bin/env bash
# CI chaos smoke test for the csd-serve fault-tolerance layer:
#   1. boot a fault-armed daemon (CSD_FAULT_SEED) with a short
#      connection deadline,
#   2. drive a seeded chaos schedule with loadgen --chaos — panicking
#      jobs, lock-poisoning panics, worker stalls, slowloris clients,
#      aborted half-written requests, malformed frames, saturation
#      bursts,
#   3. the daemon must absorb all of it: every interaction ends in a
#      well-formed response or clean close, /healthz and /metrics still
#      answer, and the panic counters account for the injected faults,
#   4. a warm session fork must still be byte-identical after the abuse,
#   5. graceful shutdown must drain and exit 0.
set -euo pipefail

PORT="${CSD_CHAOS_PORT:-8337}"
ADDR="127.0.0.1:${PORT}"
SEED="${CSD_CHAOS_SEED:-20180607}"
BIN=target/release

cleanup() {
    # Belt and braces: if the graceful path failed, don't leak the daemon.
    if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

echo "== boot fault-armed csd-serve on ${ADDR} (seed ${SEED})"
CSD_FAULT_SEED="$SEED" "$BIN/csd-serve" \
    --addr "$ADDR" --workers 2 --queue-cap 4 --conn-deadline-ms 500 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if "$BIN/loadgen" --addr "$ADDR" --ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$BIN/loadgen" --addr "$ADDR" --ping

echo "== chaos: seeded fault schedule (every fault absorbed or the run fails)"
"$BIN/loadgen" --addr "$ADDR" --chaos --requests 60 --seed "$SEED" --slow-ms 1500

echo "== warm session forks still byte-identical after the abuse"
"$BIN/loadgen" --addr "$ADDR" --verify-warm

echo "== graceful shutdown drains and exits 0"
"$BIN/loadgen" --addr "$ADDR" --shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "chaos smoke: OK"
