#!/usr/bin/env bash
# Crash-injection smoke for durable runs (the write-ahead run journal):
#   1. a clean journaled suite run must equal the committed golden bytes,
#   2. seeded kill points (CSD_CRASH_AT=n aborts the process mid-append,
#      leaving a torn frame) — crash → resume loops must converge and the
#      final artifact must be byte-identical to an uninterrupted run,
#   3. an arbitrary byte-level truncation of a finished journal must
#      resume cleanly (torn-tail recovery),
#   4. the same journal must be interchangeable between `suite` and
#      `cluster` (crash under one runner, finish under the other),
#   5. cluster crash loops at 1 in-process worker and at 3 external
#      daemons — the coordinator dies, the daemons survive, and resumes
#      keep reusing them.
set -euo pipefail

BIN=target/release
GOLDEN=crates/bench/tests/golden/quick_suite.json
PORT_BASE="${CSD_CRASH_PORT_BASE:-8361}"
RUNS=/tmp/csd-crash-runs
LOG=/tmp/csd-crash-smoke.log
rm -rf "$RUNS"
mkdir -p "$RUNS"
: >"$LOG"

cleanup() {
    for pid in "${P1:-}" "${P2:-}" "${P3:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

# crash_loop N CMD... — run CMD with CSD_CRASH_AT=N until it exits 0.
# Every non-final iteration aborts mid-append; the journal named inside
# CMD (--resume) carries the progress across crashes. A loop that does
# not converge within the cap is a durability bug (e.g. zero progress
# per iteration), not bad luck: every iteration must bank at least one
# task.
crash_loop() {
    local n=$1
    shift
    local tries=0
    while true; do
        tries=$((tries + 1))
        if [[ $tries -gt 80 ]]; then
            echo "crash smoke: kill point $n did not converge after 80 crashes" >&2
            tail -20 "$LOG" >&2
            exit 1
        fi
        if CSD_CRASH_AT=$n "$@" >>"$LOG" 2>&1; then
            break
        fi
    done
    echo "   kill point $n: converged after $tries run(s)"
}

echo "== clean journaled run must equal the golden bytes"
"$BIN/suite" --quick --journal --journal-dir "$RUNS" --out /tmp/crash-clean.json >>"$LOG" 2>&1
cmp /tmp/crash-clean.json "$GOLDEN"

echo "== suite crash->resume loops at several kill points"
# Tight kill point on a filtered subgrid: ~1 task survives per run.
"$BIN/suite" --quick --filter attack/ --out /tmp/crash-filter-clean.json >>"$LOG" 2>&1
crash_loop 2 "$BIN/suite" --quick --filter attack/ --resume crash-f2 \
    --journal-dir "$RUNS" --out /tmp/crash-f2.json
cmp /tmp/crash-f2.json /tmp/crash-filter-clean.json
# Full grid against the committed golden bytes.
for n in 7 19; do
    crash_loop "$n" "$BIN/suite" --quick --resume "crash-s$n" \
        --journal-dir "$RUNS" --out "/tmp/crash-s$n.json"
    cmp "/tmp/crash-s$n.json" "$GOLDEN"
done

echo "== arbitrary truncation of a finished journal resumes cleanly"
truncate -s -13 "$RUNS/crash-s7.journal"
"$BIN/suite" --quick --resume crash-s7 --journal-dir "$RUNS" \
    --out /tmp/crash-trunc.json >>"$LOG" 2>&1
cmp /tmp/crash-trunc.json "$GOLDEN"

echo "== crash under suite, finish under cluster (shared journal format)"
CSD_CRASH_AT=9 "$BIN/suite" --quick --resume crash-x --journal-dir "$RUNS" \
    --out /tmp/crash-x.json >>"$LOG" 2>&1 || true
"$BIN/cluster" --workers 2 --quick --resume crash-x --journal-dir "$RUNS" \
    --out /tmp/crash-x.json >>"$LOG" 2>&1
cmp /tmp/crash-x.json "$GOLDEN"

echo "== cluster crash->resume loop, 1 in-process worker"
crash_loop 7 "$BIN/cluster" --workers 1 --quick --resume crash-c1 \
    --journal-dir "$RUNS" --out /tmp/crash-c1.json
cmp /tmp/crash-c1.json "$GOLDEN"

echo "== boot 3 external csd-serve daemons"
A1="127.0.0.1:${PORT_BASE}"
A2="127.0.0.1:$((PORT_BASE + 1))"
A3="127.0.0.1:$((PORT_BASE + 2))"
"$BIN/csd-serve" --addr "$A1" --workers 1 --queue-cap 64 &
P1=$!
"$BIN/csd-serve" --addr "$A2" --workers 1 --queue-cap 64 &
P2=$!
"$BIN/csd-serve" --addr "$A3" --workers 1 --queue-cap 64 &
P3=$!
for addr in "$A1" "$A2" "$A3"; do
    for _ in $(seq 1 100); do
        if "$BIN/loadgen" --addr "$addr" --ping >/dev/null 2>&1; then
            break
        fi
        sleep 0.1
    done
    "$BIN/loadgen" --addr "$addr" --ping >/dev/null
done

echo "== cluster crash->resume loop, 3 external workers (daemons survive)"
crash_loop 11 "$BIN/cluster" --addrs "$A1,$A2,$A3" --quick --resume crash-c3 \
    --journal-dir "$RUNS" --out /tmp/crash-c3.json
cmp /tmp/crash-c3.json "$GOLDEN"
for addr in "$A1" "$A2" "$A3"; do
    "$BIN/loadgen" --addr "$addr" --ping >/dev/null
done

echo "== daemons drain gracefully and exit 0"
"$BIN/loadgen" --addr "$A1" --shutdown >/dev/null
"$BIN/loadgen" --addr "$A2" --shutdown >/dev/null
"$BIN/loadgen" --addr "$A3" --shutdown >/dev/null
wait "$P1"
P1=""
wait "$P2"
P2=""
wait "$P3"
P3=""

echo "crash smoke: OK"
