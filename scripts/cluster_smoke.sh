#!/usr/bin/env bash
# CI smoke test for the csd-cluster coordinator:
#   1. distributed quick suite over 1, 2, and 3 spawned local daemons —
#      every merged artifact must be byte-identical (cmp) to the
#      committed single-node golden report,
#   2. a hedging-enabled run must stay byte-identical (first result
#      wins, losers discarded),
#   3. kill -9 one of three external csd-serve daemons mid-run — the
#      coordinator must reassign its work and still emit golden bytes,
#   4. the surviving daemons must drain gracefully and exit 0.
set -euo pipefail

BIN=target/release
GOLDEN=crates/bench/tests/golden/quick_suite.json
PORT_BASE="${CSD_CLUSTER_PORT_BASE:-8341}"

cleanup() {
    for pid in "${P1:-}" "${P2:-}" "${P3:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

echo "== distributed quick suite at 1/2/3 workers must equal the golden bytes"
for n in 1 2 3; do
    "$BIN/cluster" --workers "$n" --quick \
        --out "/tmp/cluster-w${n}.json" --telemetry-out "/tmp/cluster-w${n}-telem.json"
    cmp "/tmp/cluster-w${n}.json" "$GOLDEN"
done

echo "== hedged run (20ms straggler threshold) must stay byte-identical"
"$BIN/cluster" --workers 3 --quick --hedge-ms 20 --out /tmp/cluster-hedge.json
cmp /tmp/cluster-hedge.json "$GOLDEN"

echo "== boot 3 external csd-serve daemons"
A1="127.0.0.1:${PORT_BASE}"
A2="127.0.0.1:$((PORT_BASE + 1))"
A3="127.0.0.1:$((PORT_BASE + 2))"
"$BIN/csd-serve" --addr "$A1" --workers 1 --queue-cap 64 &
P1=$!
"$BIN/csd-serve" --addr "$A2" --workers 1 --queue-cap 64 &
P2=$!
"$BIN/csd-serve" --addr "$A3" --workers 1 --queue-cap 64 &
P3=$!
for addr in "$A1" "$A2" "$A3"; do
    for _ in $(seq 1 100); do
        if "$BIN/loadgen" --addr "$addr" --ping >/dev/null 2>&1; then
            break
        fi
        sleep 0.1
    done
    "$BIN/loadgen" --addr "$addr" --ping >/dev/null
done

echo "== kill -9 one daemon mid-run; artifact must still equal golden bytes"
"$BIN/cluster" --addrs "$A1,$A2,$A3" --quick \
    --attempts 2 --task-timeout-ms 60000 \
    --out /tmp/cluster-kill.json --telemetry-out /tmp/cluster-kill-telem.json &
CLUSTER_PID=$!
sleep 0.05
kill -9 "$P1"
wait "$P1" 2>/dev/null || true
P1=""
wait "$CLUSTER_PID"
cmp /tmp/cluster-kill.json "$GOLDEN"
grep -q '"workers_dead": 1' /tmp/cluster-kill-telem.json || {
    echo "cluster smoke: expected exactly one dead worker in telemetry" >&2
    exit 1
}

echo "== surviving daemons drain gracefully and exit 0"
"$BIN/loadgen" --addr "$A2" --shutdown
"$BIN/loadgen" --addr "$A3" --shutdown
wait "$P2"
P2=""
wait "$P3"
P3=""

echo "cluster smoke: OK"
