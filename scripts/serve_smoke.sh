#!/usr/bin/env bash
# CI smoke test for the csd-serve daemon:
#   1. boot a 4-worker server on an ephemeral-ish port,
#   2. drive >= 200 requests over 8 connections with loadgen (zero errors),
#   3. verify a warm session fork is byte-identical to a cold run,
#   4. byte-compare a served task document against `suite --filter`,
#   5. graceful shutdown must drain and exit 0.
set -euo pipefail

PORT="${CSD_SERVE_PORT:-8321}"
ADDR="127.0.0.1:${PORT}"
SEED=51
BIN=target/release

cleanup() {
    # Belt and braces: if the graceful path failed, don't leak the daemon.
    if [[ -n "${SERVER_PID:-}" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

echo "== boot csd-serve on ${ADDR}"
"$BIN/csd-serve" --addr "$ADDR" --workers 4 --queue-cap 64 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if "$BIN/loadgen" --addr "$ADDR" --ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$BIN/loadgen" --addr "$ADDR" --ping

echo "== loadgen: 200 requests over 8 connections (zero errors required)"
"$BIN/loadgen" --addr "$ADDR" --connections 8 --requests 200 --mix warm=8,cold=1,task=1

echo "== verify warm fork bytes == cold run bytes"
"$BIN/loadgen" --addr "$ADDR" --verify-warm

echo "== served task document must match suite --filter byte-for-byte"
"$BIN/loadgen" --addr "$ADDR" --one table1 --profile quick --seed "$SEED" --out /tmp/served-table1.json
"$BIN/suite" --quick --seed "$SEED" --filter table1 --out /tmp/cli-table1.json
cmp /tmp/served-table1.json /tmp/cli-table1.json

echo "== graceful shutdown drains and exits 0"
"$BIN/loadgen" --addr "$ADDR" --shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "serve smoke: OK"
