#!/usr/bin/env bash
# CI smoke for the coverage-guided fuzzer (csd-cover).
#
# Runs the same bounded campaign twice from a scratch copy of the
# committed corpus — once at --jobs 1, once at --jobs 2 — and requires:
#
#   * zero new divergences (exit 1 from the fuzzer fails the job);
#   * coverage at least the committed baseline
#     (tests/corpus/coverage-baseline.json; exit 3 on regression);
#   * byte-identical summaries, coverage maps, and corpus directories
#     across the two runs (the determinism contract).
#
# The committed corpus itself is never written to: each run mutates its
# own scratch copy.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=3405691582
ITERS=128
BASELINE=tests/corpus/coverage-baseline.json
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cargo build --release -p csd-difftest --bin fuzz

for jobs in 1 2; do
  mkdir -p "$WORK/corpus-$jobs"
  cp tests/corpus/* "$WORK/corpus-$jobs/"
  target/release/fuzz \
    --seed "$SEED" --iters "$ITERS" --jobs "$jobs" \
    --corpus "$WORK/corpus-$jobs" \
    --out "$WORK/summary-$jobs.json" \
    --coverage-out "$WORK/coverage-$jobs.json" \
    --baseline "$BASELINE"
done

cmp "$WORK/summary-1.json" "$WORK/summary-2.json"
cmp "$WORK/coverage-1.json" "$WORK/coverage-2.json"
diff -r "$WORK/corpus-1" "$WORK/corpus-2"

echo "fuzz smoke OK: deterministic across --jobs, coverage >= baseline, no divergences"
