//! Umbrella crate for the CSD reproduction workspace.
//!
//! Re-exports the public APIs of every member crate so examples and
//! integration tests can `use csd_repro::...` uniformly.
//!
//! ```
//! use csd_repro::isa::Gpr;
//! assert_eq!(Gpr::Rax.index(), 0);
//! ```

pub use csd as core;
pub use csd_attack as attack;
pub use csd_cache as cache;
pub use csd_crypto as crypto;
pub use csd_dift as dift;
pub use csd_exp as exp;
pub use csd_pipeline as pipeline;
pub use csd_power as power;
pub use csd_telemetry as telemetry;
pub use csd_uops as uops;
pub use csd_workloads as workloads;
pub use mx86_isa as isa;
