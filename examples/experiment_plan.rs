//! One warm-up, many measured legs: the `csd-exp` experiment layer in
//! miniature. Builds a typed spec mixing a base leg, a stealth watchdog
//! sweep, and a devectorization-policy leg, runs it through the plan
//! executor (warm once → snapshot → fork every leg), and prints per-leg
//! metrics plus the exact JSON document `csd-serve` would return for
//! the same spec posted to `POST /v1/experiments`.
//!
//! ```sh
//! cargo run --release --example experiment_plan
//! ```

use csd_repro::exp::{run_plan, ExperimentSpec, Leg, LegMode, NoCache};
use csd_repro::telemetry::ToJson;

fn main() {
    let spec = ExperimentSpec {
        victim: "aes-enc".to_string(),
        pipeline: "opt".to_string(),
        seed: 0xC5D,
        blocks: 4,
        cold: false,
        legs: vec![
            Leg::new(LegMode::Base),
            Leg::new(LegMode::Stealth { watchdog: 1000 }),
            Leg::new(LegMode::Stealth { watchdog: 4000 }),
            Leg::new(LegMode::Devec {
                policy: "csd-devec".to_string(),
            }),
        ],
    };
    println!("spec (what you would POST to /v1/experiments):");
    println!("{}\n", spec.to_json().pretty());

    // Legs are independent after the shared fork, so let two run at once.
    let result = run_plan(&spec, &NoCache, 2).expect("static spec resolves");

    let base_cycles = result.legs[0].metrics.cycles as f64;
    println!(
        "{:<18} {:>10} {:>9} {:>8} {:>9}",
        "leg", "cycles", "uops", "decoys", "slowdown"
    );
    for leg in &result.legs {
        let label = match &leg.mode {
            LegMode::Base => "base".to_string(),
            LegMode::Stealth { watchdog } => format!("stealth wd={watchdog}"),
            LegMode::Devec { policy } => format!("devec {policy}"),
        };
        let m = leg.metrics;
        println!(
            "{:<18} {:>10} {:>9} {:>8} {:>8.3}x",
            label,
            m.cycles,
            m.uops,
            m.decoy_uops,
            m.cycles as f64 / base_cycles
        );
    }
    println!("\nall four legs forked one warmed checkpoint: the base leg");
    println!("is untouched by its siblings' stealth windows and VPU policy.");
}
