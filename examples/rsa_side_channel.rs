//! The paper's Figure 7b in miniature: FLUSH+RELOAD on the `multiply`
//! routine of square-and-multiply RSA reads the private exponent out of
//! the instruction cache — until stealth-mode translation is enabled.
//!
//! ```sh
//! cargo run --release --example rsa_side_channel
//! ```

use csd_repro::attack::{rsa_attack, AttackMethod, Defense, RsaAttackConfig};
use csd_repro::crypto::RsaVictim;

fn bits_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() {
    let secret_exponent = 0xB7E1_5163_0000_F36D_u64;
    let victim = RsaVictim::new(secret_exponent, 1_000_003);
    println!("victim: square-and-multiply modexp, 64-bit private exponent\n");

    // Undefended: one traced exponentiation leaks the exponent.
    let out = rsa_attack(&victim, &RsaAttackConfig::default());
    println!("== undefended (FLUSH+RELOAD on the multiply line) ==");
    println!("true exponent:      {}", bits_string(&out.truth));
    println!("recovered exponent: {}", bits_string(&out.recovered));
    println!("correct bits: {}/64\n", out.correct_bits());

    // Defended: the watchdog re-arms stealth below the probe cadence, so
    // every interval ends in a perceived instruction-cache hit.
    let interval = out.ts + out.tm / 2;
    let cfg = RsaAttackConfig {
        method: AttackMethod::FlushReload,
        probe_interval: Some(interval),
        defense: Defense::Stealth {
            watchdog_period: interval / 2,
        },
    };
    let defended = rsa_attack(&victim, &cfg);
    let touched = defended
        .trace
        .samples
        .iter()
        .filter(|s| s.multiply_touched)
        .count();
    println!("== with CSD stealth mode ==");
    println!(
        "probe intervals ending in a perceived hit: {touched}/{}",
        defended.trace.samples.len()
    );
    println!("recovered exponent: {}", bits_string(&defended.recovered));
    println!(
        "correct bits: {}/64 (≈ chance — the trace carries no signal)",
        defended.correct_bits()
    );
}
