//! Telemetry: attach event sinks to a running core, then dump the full
//! nested counter report as JSON.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use csd_repro::core::{msr, CsdConfig};
use csd_repro::isa::{AddrRange, AluOp, Assembler, Cc, Gpr, MemRef, Scale, Width};
use csd_repro::pipeline::{Core, CoreConfig, SimMode, StepOutcome};
use csd_repro::telemetry::{DecodeEvent, EventSink, RetireEvent, StealthWindowEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters the sink writes and `main` reads back.
#[derive(Default)]
struct Counts {
    decodes: AtomicU64,
    decoy_uops: AtomicU64,
    retires: AtomicU64,
    stealth_windows: AtomicU64,
}

struct Tracer(Arc<Counts>);

impl EventSink for Tracer {
    fn on_decode(&mut self, e: &DecodeEvent) {
        self.0.decodes.fetch_add(1, Ordering::Relaxed);
        self.0
            .decoy_uops
            .fetch_add(u64::from(e.decoy_uops), Ordering::Relaxed);
    }

    fn on_retire(&mut self, _e: &RetireEvent) {
        self.0.retires.fetch_add(1, Ordering::Relaxed);
    }

    fn on_stealth_window(&mut self, _e: &StealthWindowEvent) {
        self.0.stealth_windows.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The quickstart's secret-dependent table-lookup loop.
    let mut a = Assembler::new(0x1000);
    let top = a.fresh_label();
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.load(Gpr::Rdi, MemRef::abs(0x7000));
    a.mov_ri(Gpr::Rcx, 100);
    a.mov_ri(Gpr::Rax, 0);
    a.bind(top)?;
    a.mov_rr(Gpr::Rdx, Gpr::Rcx);
    a.alu_rr(AluOp::Add, Gpr::Rdx, Gpr::Rdi);
    a.alu_ri(AluOp::And, Gpr::Rdx, 15);
    a.alu_load(
        AluOp::Add,
        Gpr::Rax,
        MemRef::base_index(Gpr::Rbx, Gpr::Rdx, Scale::S8),
        Width::B8,
    );
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, top);
    a.halt();
    let program = a.finish()?;

    let cfg = CoreConfig {
        dift_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(cfg, CsdConfig::default(), program, SimMode::Cycle);
    core.mem.write_le(0x7000, 8, 5);
    for i in 0..16u64 {
        core.mem.write_le(0x8000 + 8 * i, 8, i * i);
    }
    core.dift_mut().taint_memory(AddrRange::new(0x7000, 0x7008));

    // Attach sinks *before* running: retire events come from the core,
    // decode/gate/stealth events from the CSD engine.
    let counts = Arc::new(Counts::default());
    core.set_event_sink(Box::new(Tracer(Arc::clone(&counts))));
    core.engine_mut()
        .set_event_sink(Box::new(Tracer(Arc::clone(&counts))));

    // Enable stealth mode so decoy events fire too.
    let e = core.engine_mut();
    e.write_msr(msr::MSR_DATA_RANGE_BASE, 0x8000);
    e.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x8080);
    e.write_msr(msr::MSR_WATCHDOG_PERIOD, 1000);
    e.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);

    assert_eq!(core.run(10_000), StepOutcome::Halted);

    println!(
        "events observed: {} decodes, {} retires, {} stealth windows, {} decoy uops\n",
        counts.decodes.load(Ordering::Relaxed),
        counts.retires.load(Ordering::Relaxed),
        counts.stealth_windows.load(Ordering::Relaxed),
        counts.decoy_uops.load(Ordering::Relaxed),
    );
    println!(
        "full telemetry report:\n{}",
        core.telemetry_report().pretty()
    );
    Ok(())
}
