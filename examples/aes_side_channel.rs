//! The paper's Figure 7a in miniature: a PRIME+PROBE first-round attack
//! on T-table AES recovers 4 bits of every key byte — until stealth-mode
//! translation is switched on.
//!
//! ```sh
//! cargo run --release --example aes_side_channel
//! ```

use csd_repro::attack::{aes_attack, AesAttackConfig, AttackMethod, Defense};
use csd_repro::crypto::{AesKeySize, AesVictim, CipherDir};

fn main() {
    let key: Vec<u8> = vec![
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let victim = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);
    println!("victim: OpenSSL-style T-table AES-128, secret key installed\n");

    for (label, defense) in [
        ("attacking the undefended victim", Defense::None),
        (
            "attacking with CSD stealth mode enabled",
            Defense::stealth_default(),
        ),
    ] {
        println!("== {label} ==");
        let cfg = AesAttackConfig {
            method: AttackMethod::PrimeProbe,
            trials_per_candidate: 64,
            defense,
            ..AesAttackConfig::default()
        };
        let out = aes_attack(&victim, &cfg);
        print!("recovered high nibbles: ");
        for r in &out.recovered {
            match r {
                Some(n) => print!("{n:x} "),
                None => print!("? "),
            }
        }
        println!(
            "\ntrue high nibbles:      {}",
            out.truth
                .iter()
                .map(|n| format!("{n:x} "))
                .collect::<String>()
        );
        println!(
            "=> {} of 128 key bits leaked after {} encryptions\n",
            out.bits_recovered(),
            out.encryptions
        );
    }
}
