//! Case study II in miniature: selective devectorization lets the VPU
//! stay power-gated through phases of intermittent vector activity,
//! saving energy with almost no performance loss.
//!
//! ```sh
//! cargo run --release --example devectorize
//! ```

use csd_repro::core::{CsdConfig, VpuPolicy};
use csd_repro::pipeline::{Core, CoreConfig, SimMode, StepOutcome};
use csd_repro::power::{EnergyModel, Unit};
use csd_repro::workloads::Workload;

fn main() {
    let workload = Workload::by_name("gamess").expect("suite benchmark");
    println!(
        "workload: synthetic '{}' (moderate, bursty vector activity)\n",
        workload.name()
    );

    let model = EnergyModel::default();
    for (label, policy) in [
        ("always-on            ", VpuPolicy::AlwaysOn),
        (
            "conventional gating  ",
            VpuPolicy::Conventional {
                idle_gate_cycles: 400,
            },
        ),
        ("csd devectorization  ", VpuPolicy::default()),
    ] {
        let csd_cfg = CsdConfig {
            vpu_policy: policy,
            ..CsdConfig::default()
        };
        let mut core = Core::new(
            CoreConfig::default(),
            csd_cfg,
            workload.program().clone(),
            SimMode::Cycle,
        );
        workload.install(&mut core);
        assert_eq!(core.run(100_000_000), StepOutcome::Halted);

        let act = core.activity();
        let energy = model.breakdown(&act);
        let gate = core.engine().gate().stats();
        println!(
            "{label}: cycles={:>7}  energy={:>7.2} uJ  vpu-leak={:>6.2} uJ  gated={:>5.1}%  \
             wake-stalls={:>4}  devectorized={}",
            core.stats().cycles,
            energy.total_pj() / 1e6,
            energy.leakage(Unit::Vpu) / 1e6,
            100.0 * gate.gated_fraction(),
            gate.wake_stall_cycles,
            gate.vec_powering_on + gate.vec_gated,
        );
    }
    println!("\nCSD keeps the unit gated longer than conventional gating, never stalls");
    println!("for a wake, and pays only the µop expansion of the scalarized flows.");
}
