//! Quickstart: assemble a small mx86 program, run it on the cycle-level
//! core, and watch context-sensitive decoding transform it on the fly.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use csd_repro::core::{msr, CsdConfig};
use csd_repro::isa::{AddrRange, AluOp, Assembler, Cc, Gpr, MemRef, Scale, Width};
use csd_repro::pipeline::{Core, CoreConfig, SimMode, StepOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny secret-dependent table-lookup loop: sums
    // table[(i + secret) & 15] over 100 iterations — the same shape as a
    // cipher's key-dependent S-box lookup.
    let mut a = Assembler::new(0x1000);
    let top = a.fresh_label();
    a.mov_ri(Gpr::Rbx, 0x8000); // table base
    a.load(Gpr::Rdi, MemRef::abs(0x7000)); // the secret (tainted)
    a.mov_ri(Gpr::Rcx, 100); // trip count
    a.mov_ri(Gpr::Rax, 0); // accumulator
    a.bind(top)?;
    a.mov_rr(Gpr::Rdx, Gpr::Rcx);
    a.alu_rr(AluOp::Add, Gpr::Rdx, Gpr::Rdi);
    a.alu_ri(AluOp::And, Gpr::Rdx, 15);
    a.alu_load(
        AluOp::Add,
        Gpr::Rax,
        MemRef::base_index(Gpr::Rbx, Gpr::Rdx, Scale::S8),
        Width::B8,
    );
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, top);
    a.halt();
    let program = a.finish()?;

    println!("program ({} instructions):", program.len());
    for placed in program.iter().take(6) {
        println!("  {:#06x}: {}", placed.addr, placed.inst);
    }
    println!("  ...\n");

    // Run natively on the cycle-accurate core.
    let cfg = CoreConfig {
        dift_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(
        cfg.clone(),
        CsdConfig::default(),
        program.clone(),
        SimMode::Cycle,
    );
    core.mem.write_le(0x7000, 8, 5); // the secret
    for i in 0..16u64 {
        core.mem.write_le(0x8000 + 8 * i, 8, i * i);
    }
    assert_eq!(core.run(10_000), StepOutcome::Halted);
    println!(
        "native run:  sum={}  cycles={}  uops={}  IPC={:.2}  uop$ hit rate={:.0}%",
        core.state.gpr(Gpr::Rax),
        core.stats().cycles,
        core.stats().uops,
        core.stats().ipc(),
        100.0 * core.uop_cache_stats().hit_rate().unwrap_or(0.0),
    );

    // Same program, but now the table is marked sensitive: mark it tainted,
    // program the decoy range registers, and enable stealth mode. The
    // decoder now sweeps every table line at each (watchdog-gated) tainted
    // lookup — the attacker-visible access pattern is fully obfuscated,
    // and the architectural result is bit-identical.
    let mut secure = Core::new(cfg, CsdConfig::default(), program, SimMode::Cycle);
    secure.mem.write_le(0x7000, 8, 5); // the secret
    for i in 0..16u64 {
        secure.mem.write_le(0x8000 + 8 * i, 8, i * i);
    }
    secure
        .dift_mut()
        .taint_memory(AddrRange::new(0x7000, 0x7008));
    let e = secure.engine_mut();
    e.write_msr(msr::MSR_DATA_RANGE_BASE, 0x8000);
    e.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x8080);
    e.write_msr(msr::MSR_WATCHDOG_PERIOD, 1000);
    e.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);

    assert_eq!(secure.run(10_000), StepOutcome::Halted);
    println!(
        "stealth run: sum={}  cycles={}  uops={} ({} decoys)  sweeps={}",
        secure.state.gpr(Gpr::Rax),
        secure.stats().cycles,
        secure.stats().uops,
        secure.stats().decoy_uops,
        secure.engine().stealth().stats().sweeps,
    );
    println!("\nsame architectural result, obfuscated microarchitectural footprint.");
    Ok(())
}
