//! The auto-translated microcode-update path (paper §III-C): privileged
//! software pushes a custom translation *written in native instructions*
//! into the microcode engine, here installing a decoder-level
//! "performance counter" that augments `nop` in a custom context.
//!
//! ```sh
//! cargo run --release --example custom_mcu
//! ```

use csd_repro::core::{
    ContextId, CsdConfig, CsdEngine, MicrocodeUpdate, OpcodeClass, PrivilegeLevel,
};
use csd_repro::isa::{Gpr, Inst, Placed};

fn main() {
    let mut engine = CsdEngine::new(CsdConfig::default());

    // The update body is plain native code; the decoder auto-translates it
    // into µops and installs the optimized flow into the patch table.
    let body = vec![
        Inst::Nop { len: 1 },
        Inst::Nop { len: 1 },
        Inst::Nop { len: 1 },
    ];
    let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, body);

    // User mode is rejected; the kernel path verifies header integrity.
    assert!(engine
        .apply_microcode_update(&mcu, PrivilegeLevel::User)
        .is_err());
    engine
        .apply_microcode_update(&mcu, PrivilegeLevel::Kernel)
        .expect("verified update installs");
    println!(
        "microcode update verified and installed ({} patch)",
        engine.patches().len()
    );

    // Tampering is caught by the checksum.
    let mut tampered = mcu.clone();
    tampered.body.push(Inst::MovRI {
        dst: Gpr::Rax,
        imm: 0xbad,
    });
    println!(
        "tampered update rejected: {}",
        engine
            .apply_microcode_update(&tampered, PrivilegeLevel::Kernel)
            .unwrap_err()
    );

    // Decode a nop in the native context, then switch the custom context
    // on: the translation changes instantly, with no pipeline change.
    let nop = Placed {
        addr: 0x1000,
        inst: Inst::Nop { len: 1 },
    };
    let native = engine.decode(&nop, false);
    engine.set_custom_mode(Some(0));
    let custom = engine.decode(&nop, false);
    println!(
        "nop translation: native context -> {} µop(s); custom context -> {} µop(s) [{}]",
        native.translation.uops.len(),
        custom.translation.uops.len(),
        custom.context,
    );
}
