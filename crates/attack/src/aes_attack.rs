//! First-round chosen-plaintext attack on T-table AES (paper Figure 7a).
//!
//! For key byte position `p`, the first AES round loads
//! `T_{p mod 4}[ pt[p] ^ key[p] ]`, i.e. the *cache line* index is
//! `(pt[p] ^ key[p]) >> 4` (16 four-byte entries per 64-byte line). The
//! attacker monitors one line `L` of that table and, for each candidate
//! high nibble `g`, encrypts with `pt[p] = ((g ^ L) << 4) | rand` while
//! randomizing every other byte. If `g` equals the key's high nibble, the
//! monitored line is touched on **every** encryption (100% rate); other
//! candidates only touch it by chance through the remaining ~39 lookups
//! of that table. One candidate per position at 100% ⇒ 4 key bits per
//! byte ⇒ 64 of the 128 key bits.
//!
//! With stealth-mode translation enabled, decoy micro-ops sweep every
//! T-table line on each (watchdog-gated) tainted access, so all 16
//! candidates sit at 100% and the attack recovers nothing.

use crate::harness::{victim_core, Defense};
use crate::probe::{AttackMethod, FlushReload, PrimeProbe, ProbeKind};
use csd_crypto::{AesVictim, Victim};
use csd_pipeline::SimMode;
use csd_telemetry::SplitMix64;

/// Attack parameters.
#[derive(Debug, Clone, Copy)]
pub struct AesAttackConfig {
    /// Technique (FLUSH+RELOAD needs shared tables; PRIME+PROBE does not).
    pub method: AttackMethod,
    /// Encryptions per candidate nibble (the paper's 64 000-attempt run is
    /// 16 positions × 16 candidates × 250).
    pub trials_per_candidate: usize,
    /// Which line of each table to monitor (chosen to avoid L1 sets the
    /// victim's key/plaintext buffers map to).
    pub monitored_line: usize,
    /// RNG seed for the random plaintext bytes.
    pub seed: u64,
    /// Defense deployed on the victim.
    pub defense: Defense,
}

impl Default for AesAttackConfig {
    fn default() -> AesAttackConfig {
        AesAttackConfig {
            method: AttackMethod::PrimeProbe,
            trials_per_candidate: 128,
            monitored_line: 4,
            seed: 0xC5D_5EED,
            defense: Defense::None,
        }
    }
}

/// The attack's result.
#[derive(Debug, Clone)]
pub struct AesAttackOutcome {
    /// Per key-byte position, per candidate nibble: fraction of trials in
    /// which the monitored line was touched (the Figure 7a curves).
    pub touch_rates: Vec<[f64; 16]>,
    /// Recovered high nibble per position (`None` when no unique
    /// perfect-rate candidate exists — the obfuscated case).
    pub recovered: Vec<Option<u8>>,
    /// Ground-truth high nibbles.
    pub truth: Vec<u8>,
    /// Total encryptions performed.
    pub encryptions: u64,
}

impl AesAttackOutcome {
    /// Number of positions whose nibble was recovered correctly.
    pub fn correct_positions(&self) -> usize {
        self.recovered
            .iter()
            .zip(&self.truth)
            .filter(|(r, t)| **r == Some(**t))
            .count()
    }

    /// Key bits extracted (4 per correctly recovered position).
    pub fn bits_recovered(&self) -> usize {
        4 * self.correct_positions()
    }

    /// Whether the attack was fully defeated (nothing recovered).
    pub fn defeated(&self) -> bool {
        self.recovered.iter().all(Option::is_none)
    }
}

/// Runs the first-round attack against every key byte of `victim`.
///
/// # Panics
///
/// Panics if the victim faults (victim programs are known-terminating).
pub fn aes_attack(victim: &AesVictim, cfg: &AesAttackConfig) -> AesAttackOutcome {
    let mut core = victim_core(victim, SimMode::Functional, cfg.defense);
    let mut rng = SplitMix64::new(cfg.seed);
    let line = cfg.monitored_line;
    let mut encryptions = 0u64;

    // Ground truth: the first four round-key words are the key itself.
    let truth: Vec<u8> = victim.aes().enc_keys[..4]
        .iter()
        .flat_map(|w| w.to_be_bytes())
        .map(|b| b >> 4)
        .collect();

    let mut touch_rates = Vec::with_capacity(16);
    let mut recovered = Vec::with_capacity(16);

    for p in 0..16usize {
        let table = p % 4;
        let target = victim.table_line(table, line);
        let mut rates = [0f64; 16];
        for g in 0..16u8 {
            let mut touched = 0usize;
            for _ in 0..cfg.trials_per_candidate {
                let mut pt = [0u8; 16];
                rng.fill_bytes(&mut pt[..]);
                pt[p] = ((g ^ line as u8) << 4) | (rng.next_u8() & 0x0f);

                match cfg.method {
                    AttackMethod::FlushReload => {
                        let fr = FlushReload::new(target, ProbeKind::Data, core.hierarchy());
                        fr.reset(core.hierarchy_mut());
                        victim.run_once(&mut core, &pt);
                        if fr.probe(core.hierarchy_mut()).victim_touched {
                            touched += 1;
                        }
                    }
                    AttackMethod::PrimeProbe => {
                        let pp = PrimeProbe::new(target, ProbeKind::Data, core.hierarchy());
                        pp.reset(core.hierarchy_mut());
                        victim.run_once(&mut core, &pt);
                        if pp.probe(core.hierarchy_mut()).victim_touched {
                            touched += 1;
                        }
                    }
                }
                encryptions += 1;
            }
            rates[g as usize] = touched as f64 / cfg.trials_per_candidate as f64;
        }
        touch_rates.push(rates);

        // Recover: the unique candidate with a perfect touch rate.
        let perfect: Vec<u8> = (0..16u8).filter(|&g| rates[g as usize] >= 1.0).collect();
        recovered.push(if perfect.len() == 1 {
            Some(perfect[0])
        } else {
            None
        });
    }

    AesAttackOutcome {
        touch_rates,
        recovered,
        truth,
        encryptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_crypto::{AesKeySize, CipherDir};

    fn test_victim() -> AesVictim {
        let key: Vec<u8> = vec![
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key)
    }

    #[test]
    fn prime_probe_recovers_key_nibbles_without_defense() {
        let v = test_victim();
        let cfg = AesAttackConfig {
            trials_per_candidate: 80,
            ..AesAttackConfig::default()
        };
        let out = aes_attack(&v, &cfg);
        assert!(
            out.correct_positions() >= 14,
            "P+P should recover nearly all positions, got {}/16",
            out.correct_positions()
        );
        assert!(out.bits_recovered() >= 56);
    }

    #[test]
    fn flush_reload_recovers_key_nibbles_without_defense() {
        let v = test_victim();
        let cfg = AesAttackConfig {
            method: AttackMethod::FlushReload,
            trials_per_candidate: 80,
            ..AesAttackConfig::default()
        };
        let out = aes_attack(&v, &cfg);
        assert!(
            out.correct_positions() >= 14,
            "F+R should recover nearly all positions, got {}/16",
            out.correct_positions()
        );
    }

    #[test]
    fn stealth_mode_defeats_both_attacks() {
        let v = test_victim();
        for method in [AttackMethod::PrimeProbe, AttackMethod::FlushReload] {
            let cfg = AesAttackConfig {
                method,
                trials_per_candidate: 16,
                defense: Defense::stealth_default(),
                ..AesAttackConfig::default()
            };
            let out = aes_attack(&v, &cfg);
            assert!(out.defeated(), "{method:?}: stealth must defeat the attack");
            // Every candidate shows a perfect touch rate: total obfuscation.
            for rates in &out.touch_rates {
                for (g, &r) in rates.iter().enumerate() {
                    assert!(
                        r >= 1.0,
                        "candidate {g} rate {r} — decoys must touch every line"
                    );
                }
            }
        }
    }
}
