//! Attacker probing primitives.

use csd_cache::{AccessKind, Hierarchy};

/// Which cache path the probe exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Data loads (L1D channel — AES T-tables).
    Data,
    /// Instruction fetches (L1I channel — RSA `multiply`).
    Inst,
}

impl ProbeKind {
    fn access_kind(self) -> AccessKind {
        match self {
            ProbeKind::Data => AccessKind::DataRead,
            ProbeKind::Inst => AccessKind::InstFetch,
        }
    }
}

/// The attack technique in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackMethod {
    /// FLUSH+RELOAD: requires shared memory (`clflush` + timed reload).
    FlushReload,
    /// PRIME+PROBE: fills the victim line's cache set with attacker lines
    /// and times their re-access.
    PrimeProbe,
}

/// Result of probing one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Measured latency in cycles.
    pub latency: u64,
    /// Whether the probe indicates the *victim touched* the monitored
    /// line since the last reset (reload hit for F+R, eviction for P+P).
    pub victim_touched: bool,
}

/// FLUSH+RELOAD agent for one shared line.
///
/// `reset` flushes the line from the entire hierarchy; `probe` reloads it
/// with a timed access. A fast reload means the victim brought the line
/// back (it lives in shared memory — a shared library or deduplicated
/// page).
#[derive(Debug, Clone)]
pub struct FlushReload {
    target: u64,
    kind: ProbeKind,
    hit_threshold: u64,
}

impl FlushReload {
    /// An agent watching the line containing `target`.
    pub fn new(target: u64, kind: ProbeKind, hier: &Hierarchy) -> FlushReload {
        // Served from any cache level = hit; memory = miss.
        let cfg = hier.config();
        let hit_threshold =
            cfg.l1i.latency + cfg.l2.latency + cfg.llc.latency + cfg.memory_latency / 2;
        FlushReload {
            target,
            kind,
            hit_threshold,
        }
    }

    /// The monitored line address.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Flushes the monitored line (the attack's FLUSH phase).
    pub fn reset(&self, hier: &mut Hierarchy) {
        hier.flush(self.target);
    }

    /// Timed reload (the RELOAD phase). Leaves the line cached; call
    /// [`FlushReload::reset`] to re-arm.
    pub fn probe(&self, hier: &mut Hierarchy) -> ProbeOutcome {
        let r = hier.access(self.target, self.kind.access_kind());
        ProbeOutcome {
            latency: r.latency,
            victim_touched: r.latency <= self.hit_threshold,
        }
    }
}

/// PRIME+PROBE agent for one L1 cache set.
///
/// The attacker owns `ways` lines that map to the same L1 set as the
/// victim line; PRIME fills the set with them, PROBE re-accesses and
/// counts evictions.
#[derive(Debug, Clone)]
pub struct PrimeProbe {
    lines: Vec<u64>,
    kind: ProbeKind,
    l1_hit_latency: u64,
}

impl PrimeProbe {
    /// Attacker address region (disjoint from victim code/data).
    const ATTACKER_BASE: u64 = 0x4000_0000;

    /// An agent priming the L1 set of `victim_line`.
    pub fn new(victim_line: u64, kind: ProbeKind, hier: &Hierarchy) -> PrimeProbe {
        let l1 = match kind {
            ProbeKind::Data => hier.l1d(),
            ProbeKind::Inst => hier.l1i(),
        };
        let cfg = *l1.config();
        let sets = cfg.sets() as u64;
        let set = (victim_line / cfg.line_bytes as u64) % sets;
        let stride = sets * cfg.line_bytes as u64;
        let lines = (0..cfg.ways as u64)
            .map(|w| Self::ATTACKER_BASE + set * cfg.line_bytes as u64 + w * stride)
            .collect();
        PrimeProbe {
            lines,
            kind,
            l1_hit_latency: cfg.latency,
        }
    }

    /// The attacker's eviction-set lines.
    pub fn lines(&self) -> &[u64] {
        &self.lines
    }

    /// PRIME: fills the monitored set with attacker lines.
    pub fn reset(&self, hier: &mut Hierarchy) {
        // Two passes so LRU state is fully owned by the attacker.
        for _ in 0..2 {
            for &l in &self.lines {
                hier.access(l, self.kind.access_kind());
            }
        }
    }

    /// PROBE: re-accesses the eviction set; any L1 miss means the victim
    /// displaced an attacker line (it touched the set).
    pub fn probe(&self, hier: &mut Hierarchy) -> ProbeOutcome {
        let mut latency = 0;
        let mut evictions = 0;
        for &l in &self.lines {
            let r = hier.access(l, self.kind.access_kind());
            latency += r.latency;
            if r.latency > self.l1_hit_latency {
                evictions += 1;
            }
        }
        ProbeOutcome {
            latency,
            victim_touched: evictions > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_cache::HierarchyConfig;

    #[test]
    fn flush_reload_detects_victim_access() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let fr = FlushReload::new(0x2_0100, ProbeKind::Data, &h);
        fr.reset(&mut h);
        assert!(!fr.probe(&mut h).victim_touched, "untouched line misses");
        fr.reset(&mut h);
        h.access(0x2_0100, AccessKind::DataRead); // victim touch
        assert!(fr.probe(&mut h).victim_touched);
    }

    #[test]
    fn flush_reload_icache_channel() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let fr = FlushReload::new(0x1040, ProbeKind::Inst, &h);
        fr.reset(&mut h);
        h.access(0x1050, AccessKind::InstFetch); // victim fetch, same line
        assert!(fr.probe(&mut h).victim_touched);
    }

    #[test]
    fn prime_probe_detects_set_contention() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let pp = PrimeProbe::new(0x2_0100, ProbeKind::Data, &h);
        pp.reset(&mut h);
        assert!(!pp.probe(&mut h).victim_touched, "no victim access yet");
        pp.reset(&mut h);
        h.access(0x2_0100, AccessKind::DataRead); // victim evicts one way
        assert!(pp.probe(&mut h).victim_touched);
    }

    #[test]
    fn prime_probe_eviction_set_shares_the_target_set() {
        let h = Hierarchy::new(HierarchyConfig::default());
        let pp = PrimeProbe::new(0x2_0100, ProbeKind::Data, &h);
        assert_eq!(pp.lines().len(), 8);
        let set_of = |a: u64| (a >> 6) & 63;
        for &l in pp.lines() {
            assert_eq!(set_of(l), set_of(0x2_0100));
        }
    }

    #[test]
    fn prime_probe_ignores_other_sets() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let pp = PrimeProbe::new(0x2_0100, ProbeKind::Data, &h);
        pp.reset(&mut h);
        h.access(0x2_0140, AccessKind::DataRead); // next set over
        assert!(!pp.probe(&mut h).victim_touched);
    }
}
