//! FLUSH+RELOAD / PRIME+PROBE trace attack on square-and-multiply RSA
//! (paper Figure 7b).
//!
//! The attacker samples the `multiply` routine's first I-cache line at a
//! fixed probe interval while the victim performs one modular
//! exponentiation. Every probe where the line was (re)fetched marks a
//! `multiply` invocation — i.e. a 1-bit of the private exponent. The
//! attacker calibrates the per-iteration costs offline on its *own* copy
//! of the code (as real F+R attacks do), then decodes the timestamp
//! sequence into exponent bits: the gap between consecutive multiply
//! invocations, divided by the square-iteration cost, counts the 0-bits
//! in between.
//!
//! Stealth-mode translation defeats the attack by periodically fetching
//! the monitored line via decoy micro-ops, making every probe interval
//! end in a perceived hit.

use crate::harness::{victim_core, Defense};
use crate::probe::{AttackMethod, FlushReload, PrimeProbe, ProbeKind};
use csd_crypto::{RsaVictim, Victim};
use csd_pipeline::{Core, SimMode, StepOutcome};

/// One probe-interval observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSample {
    /// Victim cycle count at the probe.
    pub cycle: u64,
    /// Probe latency (the y-axis of the paper's Figure 7b).
    pub latency: u64,
    /// Whether the monitored `multiply` line was touched this interval.
    pub multiply_touched: bool,
}

/// The full probe trace for one exponentiation.
#[derive(Debug, Clone, Default)]
pub struct RsaTrace {
    /// Samples in probe order.
    pub samples: Vec<TraceSample>,
    /// Cycle count when the victim started.
    pub start_cycle: u64,
    /// Cycle count when the victim halted.
    pub end_cycle: u64,
}

impl RsaTrace {
    /// Timestamps of distinct multiply invocations (touch runs merged
    /// when closer than `merge_gap` cycles).
    pub fn multiply_events(&self, merge_gap: u64) -> Vec<u64> {
        let mut events = Vec::new();
        let mut last: Option<u64> = None;
        for s in self.samples.iter().filter(|s| s.multiply_touched) {
            match last {
                Some(t) if s.cycle.saturating_sub(t) < merge_gap => {}
                _ => events.push(s.cycle),
            }
            last = Some(s.cycle);
        }
        events
    }
}

/// Attack parameters.
#[derive(Debug, Clone, Copy)]
pub struct RsaAttackConfig {
    /// Technique.
    pub method: AttackMethod,
    /// Probe interval in victim cycles (`None`: a third of the calibrated
    /// square-iteration cost).
    pub probe_interval: Option<u64>,
    /// Defense deployed on the victim.
    pub defense: Defense,
}

impl Default for RsaAttackConfig {
    fn default() -> RsaAttackConfig {
        RsaAttackConfig {
            method: AttackMethod::FlushReload,
            probe_interval: None,
            defense: Defense::None,
        }
    }
}

/// The attack's result.
#[derive(Debug, Clone)]
pub struct RsaAttackOutcome {
    /// The probe trace (Figure 7b's series).
    pub trace: RsaTrace,
    /// Recovered exponent bits, MSB first (64 entries).
    pub recovered: Vec<bool>,
    /// Ground-truth bits, MSB first.
    pub truth: Vec<bool>,
    /// Calibrated square-iteration cycles.
    pub ts: u64,
    /// Calibrated extra cycles for a multiply iteration.
    pub tm: u64,
}

impl RsaAttackOutcome {
    /// Number of correctly recovered bits (of 64).
    pub fn correct_bits(&self) -> usize {
        self.recovered
            .iter()
            .zip(&self.truth)
            .filter(|(a, b)| a == b)
            .count()
    }

    /// Whether the full exponent was recovered.
    pub fn full_recovery(&self) -> bool {
        self.correct_bits() == 64
    }
}

/// Calibrates per-iteration costs on the attacker's own copy of the code:
/// an all-zero exponent isolates `square`, an all-ones exponent adds one
/// `multiply` per bit. Returns `(ts, tm)`.
pub fn calibrate(modulus: u64) -> (u64, u64) {
    let run_cycles = |exp: u64| -> u64 {
        let v = RsaVictim::new(exp, modulus);
        let mut core = victim_core(&v, SimMode::Functional, Defense::None);
        let start = core.cycles();
        v.run_once(&mut core, &2u64.to_le_bytes());
        core.cycles() - start
    };
    let zeros = run_cycles(0);
    let ones = run_cycles(u64::MAX);
    let ts = zeros / 64;
    let tm = (ones.saturating_sub(zeros)) / 64;
    (ts, tm.max(1))
}

/// Runs the trace attack against one exponentiation of `victim`.
pub fn rsa_attack(victim: &RsaVictim, cfg: &RsaAttackConfig) -> RsaAttackOutcome {
    let (ts, tm) = calibrate(1_000_003);
    let interval = cfg.probe_interval.unwrap_or((ts / 3).max(8));

    let mut core = victim_core(victim, SimMode::Functional, cfg.defense);
    let target = victim.multiply_range().start;
    let trace = match cfg.method {
        AttackMethod::FlushReload => {
            let fr = FlushReload::new(target, ProbeKind::Inst, core.hierarchy());
            run_trace(
                victim,
                &mut core,
                interval,
                |h| fr.reset(h),
                |h| fr.probe(h),
            )
        }
        AttackMethod::PrimeProbe => {
            let pp = PrimeProbe::new(target, ProbeKind::Inst, core.hierarchy());
            run_trace(
                victim,
                &mut core,
                interval,
                |h| pp.reset(h),
                |h| pp.probe(h),
            )
        }
    };

    let recovered = decode_bits(&trace, ts, tm);
    let truth: Vec<bool> = (0..64)
        .rev()
        .map(|b| (victim.exponent() >> b) & 1 == 1)
        .collect();
    RsaAttackOutcome {
        trace,
        recovered,
        truth,
        ts,
        tm,
    }
}

fn run_trace(
    victim: &RsaVictim,
    core: &mut Core,
    interval: u64,
    reset: impl Fn(&mut csd_cache::Hierarchy),
    probe: impl Fn(&mut csd_cache::Hierarchy) -> crate::probe::ProbeOutcome,
) -> RsaTrace {
    victim.prepare(core, &2u64.to_le_bytes());
    reset(core.hierarchy_mut());
    let start_cycle = core.cycles();
    let mut samples = Vec::new();
    loop {
        let out = core.run_cycles(interval);
        let p = probe(core.hierarchy_mut());
        samples.push(TraceSample {
            cycle: core.cycles(),
            latency: p.latency,
            multiply_touched: p.victim_touched,
        });
        reset(core.hierarchy_mut());
        match out {
            StepOutcome::Running => {}
            StepOutcome::Halted => break,
            StepOutcome::Fault(pc) => panic!("victim faulted at {pc:#x}"),
        }
    }
    RsaTrace {
        samples,
        start_cycle,
        end_cycle: core.cycles(),
    }
}

/// Decodes multiply-invocation timestamps into exponent bits.
fn decode_bits(trace: &RsaTrace, ts: u64, tm: u64) -> Vec<bool> {
    let iter1 = ts + tm; // cycles of a 1-bit iteration
    let events = trace.multiply_events(iter1 / 2);
    let mut bits = Vec::with_capacity(64);
    let round_div = |num: u64, den: u64| -> u64 { (num + den / 2) / den };

    if events.is_empty() {
        return vec![false; 64];
    }
    // Leading zeros before the first multiply.
    let lead = events[0]
        .saturating_sub(trace.start_cycle)
        .saturating_sub(iter1);
    bits.extend(std::iter::repeat_n(false, round_div(lead, ts) as usize));
    bits.push(true);
    for w in events.windows(2) {
        let gap = w[1] - w[0];
        let zeros = round_div(gap.saturating_sub(iter1), ts);
        bits.extend(std::iter::repeat_n(false, zeros as usize));
        bits.push(true);
    }
    // Trailing zeros after the last multiply.
    let tail = trace
        .end_cycle
        .saturating_sub(*events.last().expect("non-empty"));
    bits.extend(std::iter::repeat_n(
        false,
        round_div(tail.saturating_sub(ts / 2), ts) as usize,
    ));
    bits.resize(64, false);
    bits.truncate(64);
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXP: u64 = 0xB7E1_5163_0000_F36D; // mixed runs of 0s and 1s
    const MODULUS: u64 = 1_000_003;

    #[test]
    fn flush_reload_recovers_the_exponent() {
        let v = RsaVictim::new(EXP, MODULUS);
        let out = rsa_attack(&v, &RsaAttackConfig::default());
        assert!(
            out.correct_bits() >= 60,
            "F+R should recover nearly all bits, got {}/64 (ts={}, tm={})",
            out.correct_bits(),
            out.ts,
            out.tm
        );
    }

    #[test]
    fn prime_probe_recovers_the_exponent() {
        let v = RsaVictim::new(EXP, MODULUS);
        let cfg = RsaAttackConfig {
            method: AttackMethod::PrimeProbe,
            ..Default::default()
        };
        let out = rsa_attack(&v, &cfg);
        assert!(
            out.correct_bits() >= 60,
            "P+P should recover nearly all bits, got {}/64",
            out.correct_bits()
        );
    }

    #[test]
    fn stealth_mode_obfuscates_the_trace() {
        let v = RsaVictim::new(EXP, MODULUS);
        // Watchdog below the probe interval, per the paper's guidance that
        // the period be "smaller than the attacker's best possible probe
        // interval". Decoy sweeps fire at the tainted exponent-bit branch
        // of every iteration, so a probe cadence of one iteration sees a
        // perceived hit at the end of every interval.
        let (ts, tm) = calibrate(MODULUS);
        let interval = ts + tm / 2;
        for method in [AttackMethod::FlushReload, AttackMethod::PrimeProbe] {
            let cfg = RsaAttackConfig {
                method,
                probe_interval: Some(interval),
                defense: Defense::Stealth {
                    watchdog_period: interval / 2,
                },
            };
            let out = rsa_attack(&v, &cfg);
            let touched = out
                .trace
                .samples
                .iter()
                .filter(|s| s.multiply_touched)
                .count();
            let rate = touched as f64 / out.trace.samples.len() as f64;
            assert!(
                rate > 0.9,
                "{method:?}: decoys must make nearly every probe interval 'touched', got {rate}"
            );
            assert!(
                out.correct_bits() < 48,
                "{method:?}: recovery must collapse toward chance, got {}/64",
                out.correct_bits()
            );
        }
    }

    #[test]
    fn all_zero_exponent_produces_an_empty_event_stream() {
        let v = RsaVictim::new(0, MODULUS);
        let out = rsa_attack(&v, &RsaAttackConfig::default());
        assert!(out.trace.multiply_events(100).is_empty());
        assert_eq!(out.correct_bits(), 64, "all-zeros is trivially recovered");
    }

    #[test]
    fn calibration_is_sane() {
        let (ts, tm) = calibrate(MODULUS);
        assert!(ts > 20, "square+reduce is a long flow: {ts}");
        assert!(tm > 20, "multiply+reduce is a long flow: {tm}");
    }
}
