//! # csd-attack — cache side-channel attack framework
//!
//! Models the paper's attacker (§IV-A, §VI-B): a co-located spy that can
//! "effortlessly probe, flush, or evict a co-located victim's cache
//! line(s)" and "make precise timing measurements", but has no access to
//! cache *contents*. Attacker and victim share the machine's cache
//! hierarchy; the attacker's probes interleave with victim execution at a
//! chosen cadence.
//!
//! Provided:
//!
//! - [`FlushReload`] / [`PrimeProbe`] — the two probing primitives, for
//!   both the data-cache and instruction-cache channels;
//! - [`aes_attack`] — the first-round chosen-plaintext attack on T-table
//!   AES (paper Figure 7a): for each key byte, 16 candidate plaintexts are
//!   tried and only the one matching the key's high nibble touches the
//!   monitored line on *every* encryption, revealing 4 bits per byte
//!   (64 of 128 bits);
//! - [`rsa_attack`] — the FLUSH+RELOAD (and PRIME+PROBE) trace attack on
//!   square-and-multiply RSA (paper Figure 7b): multiply-line activity
//!   timestamps are decoded into private-exponent bits;
//! - [`victim_core`] — harness glue that builds a DIFT-enabled core around
//!   a victim, optionally with stealth mode configured (decoy ranges +
//!   watchdog, as the paper's defense deployment would).
//!
//! Because the security results depend on cache state rather than cycle
//! timing, attacks drive the fast functional engine (see `DESIGN.md`).

#![warn(missing_docs)]

mod aes_attack;
mod harness;
mod probe;
mod rsa_attack;

pub use aes_attack::{aes_attack, AesAttackConfig, AesAttackOutcome};
pub use harness::{victim_core, Defense};
pub use probe::{AttackMethod, FlushReload, PrimeProbe, ProbeKind, ProbeOutcome};
pub use rsa_attack::{
    calibrate, rsa_attack, RsaAttackConfig, RsaAttackOutcome, RsaTrace, TraceSample,
};
