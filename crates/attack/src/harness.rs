//! Victim/core construction glue shared by the attacks and benchmarks.

use csd::CsdConfig;
use csd_crypto::{enable_stealth_for, Victim};
use csd_pipeline::{Core, CoreConfig, SimMode};

/// Whether and how the CSD defense is deployed on the victim's core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// No defense: plain decode.
    None,
    /// Stealth-mode translation with the given watchdog period (cycles),
    /// triggered by DIFT, decoy ranges covering the victim's sensitive
    /// data/instruction ranges.
    Stealth {
        /// Watchdog re-arm period in cycles.
        watchdog_period: u64,
    },
}

impl Defense {
    /// The paper's default deployment (1000-cycle watchdog).
    pub fn stealth_default() -> Defense {
        Defense::Stealth {
            watchdog_period: 1000,
        }
    }
}

/// Builds a core around `victim` in the given simulation mode, installs
/// its data and taint, and (optionally) configures the stealth defense.
pub fn victim_core(victim: &dyn Victim, mode: SimMode, defense: Defense) -> Core {
    let cfg = CoreConfig {
        dift_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(cfg, CsdConfig::default(), victim.program().clone(), mode);
    victim.install(&mut core);
    if let Defense::Stealth { watchdog_period } = defense {
        enable_stealth_for(victim, &mut core, watchdog_period);
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_crypto::{AesKeySize, AesVictim, CipherDir};

    #[test]
    fn stealth_core_injects_decoys_while_plain_core_does_not() {
        let key: Vec<u8> = (0..16).collect();
        let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);

        let mut plain = victim_core(&v, SimMode::Functional, Defense::None);
        v.run_once(&mut plain, &[0u8; 16]);
        assert_eq!(plain.stats().decoy_uops, 0);

        let mut defended = victim_core(&v, SimMode::Functional, Defense::stealth_default());
        v.run_once(&mut defended, &[0u8; 16]);
        assert!(defended.stats().decoy_uops > 0, "stealth must fire on AES");
    }
}
