//! The plan executor: warm once, snapshot, fork every leg.
//!
//! [`run_plan`] is the single implementation of the paper's
//! warm-fork-measure pattern. The victim warms up with stealth off, the
//! complete machine is snapshotted (or fetched from a
//! [`CheckpointProvider`]), and every [`Leg`] forks a fresh core from
//! the shared checkpoint — restoring the snapshot, applying the leg's
//! decode-context change, and measuring. Forks are byte-identical to
//! cold runs because a snapshot captures the complete modeled machine,
//! so warm results never depend on cache state; independent legs may run
//! on a scoped thread pool without changing a single output byte.

use crate::measure::{
    measure_blocks, pipelines, policy_by_name, security_core, security_victims, warm_up, SecMetrics,
};
use crate::spec::{ExperimentSpec, Leg, LegMode};
use csd_crypto::{enable_stealth_for, Victim};
use csd_pipeline::{Core, CoreConfig, CoreSnapshot};
use csd_telemetry::{Json, SplitMix64, ToJson};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything the warmed state of a session depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Victim benchmark name, e.g. `aes-enc`.
    pub victim: String,
    /// Pipeline configuration name (`opt` / `noopt`).
    pub pipeline: String,
    /// Input-stream seed.
    pub seed: u64,
}

/// A warmed session: the checkpoint plus the RNG positioned just past
/// warm-up. Cloning is cheap (`Arc` + `Copy`), which is what lets many
/// concurrent legs fork the same checkpoint.
#[derive(Clone)]
pub struct Warmed {
    /// Snapshot of the complete modeled machine after warm-up.
    pub snapshot: Arc<CoreSnapshot>,
    /// Input RNG positioned at the start of the measured region.
    pub rng: SplitMix64,
}

/// Where the plan executor parks and fetches warmed checkpoints. The
/// serving daemon plugs its LRU session cache in here; batch consumers
/// that re-warm every time use [`NoCache`].
pub trait CheckpointProvider: Sync {
    /// Fetches a previously warmed session, if one is parked.
    fn lookup(&self, key: &SessionKey) -> Option<Warmed>;
    /// Parks a freshly warmed session for future plans.
    fn store(&self, key: SessionKey, warmed: Warmed);
}

/// A provider that never caches: every plan warms from scratch.
pub struct NoCache;

impl CheckpointProvider for NoCache {
    fn lookup(&self, _key: &SessionKey) -> Option<Warmed> {
        None
    }
    fn store(&self, _key: SessionKey, _warmed: Warmed) {}
}

/// A plan-execution failure (unknown name, victim gone mid-run). These
/// are errors, not panics — a stale spec must cost one failed request,
/// never a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpError(pub String);

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for ExpError {}

/// One measured leg's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LegResult {
    /// The decode-context change this leg applied.
    pub mode: LegMode,
    /// Measured operations (after per-leg override resolution).
    pub blocks: usize,
    /// Steady-state metrics over the measured region.
    pub metrics: SecMetrics,
}

impl ToJson for LegResult {
    fn to_json(&self) -> Json {
        let mut members: Vec<(&str, Json)> = vec![("mode", Json::from(self.mode.tag()))];
        match &self.mode {
            LegMode::Base => {}
            LegMode::Stealth { watchdog } => members.push(("watchdog", Json::from(*watchdog))),
            LegMode::Devec { policy } => members.push(("policy", Json::from(policy.as_str()))),
        }
        members.push(("blocks", Json::from(self.blocks as u64)));
        members.push(("metrics", self.metrics.to_json()));
        Json::obj(members)
    }
}

/// A whole plan's outcome: the spec's identity fields plus one
/// [`LegResult`] per leg, in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Victim benchmark name.
    pub victim: String,
    /// Pipeline configuration name.
    pub pipeline: String,
    /// Input-stream seed.
    pub seed: u64,
    /// Whether the warm state came from the checkpoint provider.
    /// Deliberately *not* part of [`ExperimentResult::to_json`]: warm
    /// and cold documents must stay byte-identical (the daemon reports
    /// warmness out-of-band, in a response header).
    pub warm: bool,
    /// Per-leg outcomes, in spec order.
    pub legs: Vec<LegResult>,
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        let legs: Vec<Json> = self.legs.iter().map(LegResult::to_json).collect();
        Json::obj([
            ("victim", Json::from(self.victim.as_str())),
            ("pipeline", Json::from(self.pipeline.as_str())),
            ("seed", Json::from(self.seed)),
            ("legs", Json::Arr(legs)),
        ])
    }
}

/// Applies a leg's decode-context change to a forked core. Exported so
/// the streaming path (which measures exactly one leg with an event sink
/// attached) arms the identical configuration the plan executor does.
pub fn apply_leg_mode(
    mode: &LegMode,
    victim: &dyn Victim,
    core: &mut Core,
) -> Result<(), ExpError> {
    match mode {
        LegMode::Base => {}
        LegMode::Stealth { watchdog } => enable_stealth_for(victim, core, *watchdog),
        LegMode::Devec { policy } => {
            let p = policy_by_name(policy)
                .ok_or_else(|| ExpError(format!("policy {policy:?} vanished")))?;
            core.engine_mut().set_vpu_policy(p);
        }
    }
    Ok(())
}

/// Runs a plan, resolving the spec's pipeline name to its configuration.
///
/// # Errors
///
/// Fails when a name in the spec doesn't resolve (victim, pipeline,
/// policy) — validated specs only hit this if the grid changed under
/// them.
pub fn run_plan(
    spec: &ExperimentSpec,
    provider: &dyn CheckpointProvider,
    jobs: usize,
) -> Result<ExperimentResult, ExpError> {
    let (_, mk) = *pipelines()
        .iter()
        .find(|(n, _)| *n == spec.pipeline)
        .ok_or_else(|| ExpError(format!("pipeline {:?} vanished", spec.pipeline)))?;
    run_plan_with(spec, mk(), provider, jobs)
}

/// [`run_plan`] with an explicit core configuration, for consumers that
/// sweep configurations outside the named `opt`/`noopt` grid (ablations,
/// the memo-transparency test). The spec's `pipeline` field still keys
/// the checkpoint provider, so callers must not reuse a cached name for
/// a different configuration.
///
/// # Errors
///
/// Fails when the spec's victim or a leg's policy doesn't resolve.
pub fn run_plan_with(
    spec: &ExperimentSpec,
    core_cfg: CoreConfig,
    provider: &dyn CheckpointProvider,
    jobs: usize,
) -> Result<ExperimentResult, ExpError> {
    let victim_index = security_victims()
        .iter()
        .position(|v| v.name() == spec.victim)
        .ok_or_else(|| ExpError(format!("victim {:?} vanished", spec.victim)))?;

    // Warm phase: fork a parked session when the provider has one (and
    // the spec doesn't force cold), else warm from scratch. A cold run
    // still parks its session — skipping the *lookup* is what `cold`
    // means, not skipping the store.
    let key = spec.key();
    let (warmed, warm) = match (!spec.cold).then(|| provider.lookup(&key)).flatten() {
        Some(w) => (w, true),
        None => {
            let victims = security_victims();
            let victim = victims[victim_index].as_ref();
            let mut core = security_core(victim, core_cfg.clone());
            let mut rng = SplitMix64::new(spec.seed);
            let mut input = vec![0u8; victim.input_len()];
            warm_up(&mut core, victim, &mut rng, &mut input);
            let w = Warmed {
                snapshot: Arc::new(core.snapshot()),
                rng,
            };
            provider.store(key, w.clone());
            (w, false)
        }
    };

    let run_leg = |leg: &Leg| -> Result<LegResult, ExpError> {
        // Victims are not Sync; construct one per fork. The fresh core
        // is fully overwritten by the restore, so every leg measures
        // from the identical machine state.
        let victims = security_victims();
        let victim = victims[victim_index].as_ref();
        let mut core = security_core(victim, core_cfg.clone());
        core.restore(&warmed.snapshot);
        core.mark_plan_leg();
        let mut rng = warmed.rng;
        let mut input = vec![0u8; victim.input_len()];
        apply_leg_mode(&leg.mode, victim, &mut core)?;
        let blocks = leg.blocks.unwrap_or(spec.blocks);
        let metrics = measure_blocks(&mut core, victim, &mut rng, &mut input, blocks);
        Ok(LegResult {
            mode: leg.mode.clone(),
            blocks,
            metrics,
        })
    };

    let workers = jobs.max(1).min(spec.legs.len());
    let legs: Vec<LegResult> = if workers <= 1 {
        spec.legs
            .iter()
            .map(run_leg)
            .collect::<Result<Vec<_>, _>>()?
    } else {
        // Scoped pool over an index counter: results land in slots by
        // leg index, so the output is deterministic at any job count.
        let slots: Mutex<Vec<Option<Result<LegResult, ExpError>>>> =
            Mutex::new(vec![None; spec.legs.len()]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(leg) = spec.legs.get(i) else { break };
                    let out = run_leg(leg);
                    if let Ok(mut slots) = slots.lock() {
                        slots[i] = Some(out);
                    }
                });
            }
        });
        slots
            .into_inner()
            .map_err(|_| ExpError("a plan worker panicked".to_string()))?
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| Err(ExpError("a plan leg was dropped".to_string()))))
            .collect::<Result<Vec<_>, _>>()?
    };

    Ok(ExperimentResult {
        victim: spec.victim.clone(),
        pipeline: spec.pipeline.clone(),
        seed: spec.seed,
        warm,
        legs,
    })
}
