//! Typed, JSON-round-trippable experiment descriptions.
//!
//! An [`ExperimentSpec`] names everything the warm state depends on
//! (victim, pipeline, input-stream seed) plus a list of [`Leg`]s that
//! differ only in decode context — stealth on/off, watchdog period,
//! VPU policy — and fork from one shared checkpoint when the plan
//! executor runs them. The JSON grammar is the wire format of
//! `POST /v1/experiments` and the `loadgen --spec` flag, and round-trips
//! exactly: `ExperimentSpec::from_json(&spec.to_json()) == spec`.

use crate::measure::{pipelines, policy_by_name, victim_names, DEFAULT_WATCHDOG};
use crate::plan::SessionKey;
use csd_telemetry::{Json, ToJson};

/// What one measured leg does to the decode context before measuring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegMode {
    /// Measure with the warmed configuration untouched.
    Base,
    /// Arm stealth mode for the victim's sensitive ranges.
    Stealth {
        /// Stealth watchdog period in cycles.
        watchdog: u64,
    },
    /// Replace the VPU gating policy for the measured region.
    Devec {
        /// Policy name from [`crate::policies`].
        policy: String,
    },
}

impl LegMode {
    /// The stable mode tag used in the JSON grammar.
    pub fn tag(&self) -> &'static str {
        match self {
            LegMode::Base => "base",
            LegMode::Stealth { .. } => "stealth",
            LegMode::Devec { .. } => "devec",
        }
    }
}

/// One measured leg of an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leg {
    /// Decode-context change applied at fork time.
    pub mode: LegMode,
    /// Measured operations, overriding the spec-level default.
    pub blocks: Option<usize>,
}

impl Leg {
    /// A leg with no per-leg overrides.
    pub fn new(mode: LegMode) -> Leg {
        Leg { mode, blocks: None }
    }

    /// Parses one leg from its JSON grammar (the objects inside an
    /// experiment's `"legs"` array). Public so other consumers of the leg
    /// grammar — the difftest corpus records its mode matrix as typed leg
    /// documents — share one parser with the experiment spec.
    ///
    /// # Errors
    ///
    /// Reports the first grammar violation (missing/unknown mode tag,
    /// non-integer watchdog or blocks, devec leg without a policy name).
    pub fn from_json(j: &Json) -> Result<Leg, String> {
        let mode = match j.get("mode").and_then(Json::as_str) {
            Some("base") => LegMode::Base,
            Some("stealth") => LegMode::Stealth {
                watchdog: match j.get("watchdog") {
                    None => DEFAULT_WATCHDOG,
                    Some(v) => v
                        .as_u64()
                        .ok_or("leg.watchdog must be a non-negative integer")?,
                },
            },
            Some("devec") => LegMode::Devec {
                policy: j
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or("devec leg requires a policy name")?
                    .to_string(),
            },
            Some(other) => return Err(format!("unknown leg mode {other:?} (base/stealth/devec)")),
            None => return Err("leg.mode must be a string".to_string()),
        };
        let blocks = match j.get("blocks") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("leg.blocks must be a non-negative integer")? as usize,
            ),
        };
        Ok(Leg { mode, blocks })
    }
}

impl ToJson for Leg {
    fn to_json(&self) -> Json {
        let mut members: Vec<(&str, Json)> = vec![("mode", Json::from(self.mode.tag()))];
        match &self.mode {
            LegMode::Base => {}
            LegMode::Stealth { watchdog } => members.push(("watchdog", Json::from(*watchdog))),
            LegMode::Devec { policy } => members.push(("policy", Json::from(policy.as_str()))),
        }
        if let Some(b) = self.blocks {
            members.push(("blocks", Json::from(b as u64)));
        }
        Json::obj(members)
    }
}

/// A complete experiment description: the warm state (victim, pipeline,
/// seed), defaults for the measured region, and the legs to fork.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSpec {
    /// Victim benchmark name.
    pub victim: String,
    /// Pipeline configuration name (`opt` / `noopt`).
    pub pipeline: String,
    /// Input-stream seed.
    pub seed: u64,
    /// Default measured operations per leg.
    pub blocks: usize,
    /// Skip checkpoint-provider lookup (always re-warm).
    pub cold: bool,
    /// The measured legs, in result order.
    pub legs: Vec<Leg>,
}

impl ExperimentSpec {
    /// A one-leg spec.
    pub fn single(victim: &str, pipeline: &str, seed: u64, blocks: usize, mode: LegMode) -> Self {
        ExperimentSpec {
            victim: victim.to_string(),
            pipeline: pipeline.to_string(),
            seed,
            blocks,
            cold: false,
            legs: vec![Leg::new(mode)],
        }
    }

    /// The Figure 8/9/10 shape: a base leg plus a stealth leg, forked
    /// from one warmed checkpoint.
    pub fn pair(victim: &str, pipeline: &str, seed: u64, blocks: usize, watchdog: u64) -> Self {
        ExperimentSpec {
            victim: victim.to_string(),
            pipeline: pipeline.to_string(),
            seed,
            blocks,
            cold: false,
            legs: vec![
                Leg::new(LegMode::Base),
                Leg::new(LegMode::Stealth { watchdog }),
            ],
        }
    }

    /// The Figure 11 shape: a base leg plus one stealth leg per watchdog
    /// period, all forked from one warmed checkpoint.
    pub fn watchdog_sweep(
        victim: &str,
        pipeline: &str,
        seed: u64,
        blocks: usize,
        periods: &[u64],
    ) -> Self {
        let mut legs = vec![Leg::new(LegMode::Base)];
        legs.extend(
            periods
                .iter()
                .map(|&watchdog| Leg::new(LegMode::Stealth { watchdog })),
        );
        ExperimentSpec {
            victim: victim.to_string(),
            pipeline: pipeline.to_string(),
            seed,
            blocks,
            cold: false,
            legs,
        }
    }

    /// The session this experiment warms or forks.
    pub fn key(&self) -> SessionKey {
        SessionKey {
            victim: self.victim.clone(),
            pipeline: self.pipeline.clone(),
            seed: self.seed,
        }
    }

    /// Parses a spec from its JSON grammar. Two shapes are accepted: the
    /// typed shape with a `"legs"` array (what [`ExperimentSpec::to_json`]
    /// emits), and the legacy flat shape (`stealth`/`watchdog` booleans on
    /// the object itself) describing a single leg. Victim, pipeline, and
    /// policy names are validated here so admission rejects bad requests
    /// before they reach a worker.
    pub fn from_json(j: &Json) -> Result<ExperimentSpec, String> {
        let str_field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("experiment.{k} must be a string"))
        };
        let u64_field = |j: &Json, k: &str, default: u64| -> Result<u64, String> {
            match j.get(k) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("experiment.{k} must be a non-negative integer")),
            }
        };
        let bool_field = |k: &str, default: bool| -> Result<bool, String> {
            match j.get(k) {
                None => Ok(default),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("experiment.{k} must be a boolean")),
            }
        };

        let legs = match j.get("legs") {
            Some(Json::Arr(items)) => {
                let mut legs = Vec::with_capacity(items.len());
                for item in items {
                    legs.push(Leg::from_json(item)?);
                }
                legs
            }
            Some(_) => return Err("experiment.legs must be an array".to_string()),
            None => {
                // Legacy flat shape: one leg described by stealth/watchdog
                // keys on the spec object itself.
                let mode = if bool_field("stealth", false)? {
                    LegMode::Stealth {
                        watchdog: u64_field(j, "watchdog", DEFAULT_WATCHDOG)?,
                    }
                } else {
                    LegMode::Base
                };
                vec![Leg::new(mode)]
            }
        };

        let spec = ExperimentSpec {
            victim: str_field("victim")?,
            pipeline: match j.get("pipeline") {
                None => "opt".to_string(),
                Some(_) => str_field("pipeline")?,
            },
            seed: u64_field(j, "seed", 0)?,
            blocks: u64_field(j, "blocks", 4)? as usize,
            cold: bool_field("cold", false)?,
            legs,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every name and bound the executor depends on.
    pub fn validate(&self) -> Result<(), String> {
        let blocks_ok = |b: usize| (1..=10_000).contains(&b);
        if !blocks_ok(self.blocks) {
            return Err("experiment.blocks must be in 1..=10000".to_string());
        }
        if self.legs.is_empty() {
            return Err("experiment.legs must not be empty".to_string());
        }
        for leg in &self.legs {
            if let Some(b) = leg.blocks {
                if !blocks_ok(b) {
                    return Err("leg.blocks must be in 1..=10000".to_string());
                }
            }
            if let LegMode::Devec { policy } = &leg.mode {
                if policy_by_name(policy).is_none() {
                    return Err(format!(
                        "unknown policy {policy:?} (always-on / conventional / csd-devec)"
                    ));
                }
            }
        }
        if !victim_names().contains(&self.victim) {
            return Err(format!(
                "unknown victim {:?} (try GET /v1/tasks)",
                self.victim
            ));
        }
        if !pipelines().iter().any(|(n, _)| *n == self.pipeline) {
            return Err(format!(
                "unknown pipeline {:?} (opt / noopt)",
                self.pipeline
            ));
        }
        Ok(())
    }
}

impl ToJson for ExperimentSpec {
    fn to_json(&self) -> Json {
        let legs: Vec<Json> = self.legs.iter().map(Leg::to_json).collect();
        Json::obj([
            ("victim", Json::from(self.victim.as_str())),
            ("pipeline", Json::from(self.pipeline.as_str())),
            ("seed", Json::from(self.seed)),
            ("blocks", Json::from(self.blocks as u64)),
            ("cold", Json::Bool(self.cold)),
            ("legs", Json::Arr(legs)),
        ])
    }
}
