//! # csd-exp — typed experiment specs and the plan executor
//!
//! The paper's evaluation is one idea applied many ways: warm a victim
//! once, then fork many measured legs that differ only in decode
//! context (stealth on/off, watchdog period, VPU policy). This crate
//! owns that idea end to end:
//!
//! - [`ExperimentSpec`] — a typed, JSON-round-trippable description of
//!   an experiment: victim, pipeline, seed, and a list of [`Leg`]s;
//! - [`run_plan`] — the single warm-fork-measure implementation. It
//!   warms once (or fetches a parked checkpoint from a
//!   [`CheckpointProvider`]), snapshots, and forks every leg from the
//!   shared checkpoint, optionally on a scoped thread pool;
//! - [`LegResult`] / [`ExperimentResult`] — typed outcomes with one
//!   `ToJson` schema shared by the suite, the serving daemon, and the
//!   examples.
//!
//! The measurement vocabulary (victims, pipeline configurations, VPU
//! policies, the warmed-core recipe) lives in [`measure`] and is
//! re-exported at the crate root; `csd-bench` re-exports it in turn so
//! figure binaries keep their historical imports.
//!
//! ```
//! use csd_exp::{run_plan, ExperimentSpec, NoCache};
//!
//! let spec = ExperimentSpec::pair("aes-enc", "opt", 7, 1, 1000);
//! let result = run_plan(&spec, &NoCache, 1).unwrap();
//! assert_eq!(result.legs.len(), 2);
//! let (base, stealth) = (&result.legs[0], &result.legs[1]);
//! assert!(stealth.metrics.cycles > base.metrics.cycles);
//! ```

#![warn(missing_docs)]

pub mod measure;
pub mod plan;
pub mod spec;

pub use measure::{
    measure_blocks, pipelines, policies, policy_by_name, security_core, security_victims,
    victim_names, warm_up, Pipeline, SecMetrics, CONVENTIONAL_IDLE_GATE, DEFAULT_WATCHDOG,
    WARMUP_OPS,
};
pub use plan::{
    apply_leg_mode, run_plan, run_plan_with, CheckpointProvider, ExpError, ExperimentResult,
    LegResult, NoCache, SessionKey, Warmed,
};
pub use spec::{ExperimentSpec, Leg, LegMode};
