//! The shared measurement vocabulary of every security experiment:
//! victims, pipeline configurations, VPU policies, the warmed core
//! recipe, and the steady-state metric deltas. Moved here from
//! `csd-bench` so the plan executor, the suite, and the serving layer
//! all build *identical* cores and measure *identical* quantities.

use csd::{CsdConfig, DevecThresholds, VpuPolicy};
use csd_crypto::{AesKeySize, AesVictim, BlowfishVictim, CipherDir, RsaVictim, Victim};
use csd_pipeline::{Core, CoreConfig, SimMode};
use csd_telemetry::{Json, SplitMix64, ToJson};

/// The paper's default watchdog period (cycles).
pub const DEFAULT_WATCHDOG: u64 = 1000;

/// Idle threshold for the conventional power-gating baseline (cycles the
/// VPU must sit idle before it is gated).
pub const CONVENTIONAL_IDLE_GATE: u64 = 400;

/// Operations [`warm_up`] simulates before the measured region.
pub const WARMUP_OPS: usize = 12;

/// The eight security datapoints: {AES, RSA, Blowfish, Rijndael} ×
/// {encrypt, decrypt} (paper §VI-A).
pub fn security_victims() -> Vec<Box<dyn Victim>> {
    let aes_key: Vec<u8> = (0..16).map(|i| i * 11 + 3).collect();
    let rij_key: Vec<u8> = (0..32).map(|i| i * 7 + 5).collect();
    vec![
        Box::new(AesVictim::new(
            AesKeySize::K128,
            CipherDir::Encrypt,
            &aes_key,
        )),
        Box::new(AesVictim::new(
            AesKeySize::K128,
            CipherDir::Decrypt,
            &aes_key,
        )),
        Box::new(RsaVictim::named("rsa-enc", 65_537, 1_000_003)),
        Box::new(RsaVictim::named(
            "rsa-dec",
            0xC3A5_55AA_0F0F_1234,
            1_000_003,
        )),
        Box::new(BlowfishVictim::new(CipherDir::Encrypt, b"BF-SECRET-KEY")),
        Box::new(BlowfishVictim::new(CipherDir::Decrypt, b"BF-SECRET-KEY")),
        Box::new(AesVictim::new(
            AesKeySize::K256,
            CipherDir::Encrypt,
            &rij_key,
        )),
        Box::new(AesVictim::new(
            AesKeySize::K256,
            CipherDir::Decrypt,
            &rij_key,
        )),
    ]
}

/// Names of the eight security victims, in grid order.
pub fn victim_names() -> Vec<String> {
    security_victims().iter().map(|v| v.name()).collect()
}

/// A named pipeline-configuration constructor.
pub type Pipeline = (&'static str, fn() -> CoreConfig);

/// The two pipeline configurations of the security figures.
pub fn pipelines() -> [Pipeline; 2] {
    [("opt", CoreConfig::opt), ("noopt", CoreConfig::no_opt)]
}

/// The three VPU policies of the paper's comparison.
pub fn policies() -> [(&'static str, VpuPolicy); 3] {
    [
        ("always-on", VpuPolicy::AlwaysOn),
        (
            "conventional",
            VpuPolicy::Conventional {
                idle_gate_cycles: CONVENTIONAL_IDLE_GATE,
            },
        ),
        ("csd-devec", VpuPolicy::CsdDevec(DevecThresholds::default())),
    ]
}

/// Looks up one of [`policies`] by its stable name.
pub fn policy_by_name(name: &str) -> Option<VpuPolicy> {
    policies().iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
}

/// Metrics from one security-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecMetrics {
    /// Cycles over the measured region.
    pub cycles: u64,
    /// Retired macro-ops.
    pub insts: u64,
    /// Retired µops.
    pub uops: u64,
    /// Decoy µops among them.
    pub decoy_uops: u64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// µop-cache hit rate over the measured region.
    pub uop_cache_hit_rate: f64,
}

impl ToJson for SecMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("insts", Json::from(self.insts)),
            ("uops", Json::from(self.uops)),
            ("decoy_uops", Json::from(self.decoy_uops)),
            ("l1d_mpki", Json::from(self.l1d_mpki)),
            ("uop_cache_hit_rate", Json::from(self.uop_cache_hit_rate)),
        ])
    }
}

/// Builds the cycle-accurate, DIFT-enabled core every security experiment
/// runs on, with `victim` installed. Public so every consumer (plan
/// executor, difftest, serving layer) constructs an identical machine.
pub fn security_core(victim: &dyn Victim, core_cfg: CoreConfig) -> Core {
    let cfg = CoreConfig {
        dift_enabled: true,
        ..core_cfg
    };
    let mut core = Core::new(
        cfg,
        CsdConfig::default(),
        victim.program().clone(),
        SimMode::Cycle,
    );
    victim.install(&mut core);
    core
}

/// Warm-up ([`WARMUP_OPS`] operations) long enough for the sparse table
/// touches of the baseline to fully populate the caches — otherwise
/// decoy prefetching makes stealth look *faster* (the paper's
/// "prefetching effect", which should only mute, not invert, the cost).
pub fn warm_up(core: &mut Core, victim: &dyn Victim, rng: &mut SplitMix64, input: &mut [u8]) {
    for _ in 0..WARMUP_OPS {
        rng.fill_bytes(input);
        victim.run_once(core, input);
    }
}

/// Runs `blocks` operations and returns the metric deltas over them.
pub fn measure_blocks(
    core: &mut Core,
    victim: &dyn Victim,
    rng: &mut SplitMix64,
    input: &mut [u8],
    blocks: usize,
) -> SecMetrics {
    let s0 = *core.stats();
    let h0 = core.hierarchy().stats();
    let u0 = *core.uop_cache_stats();
    for _ in 0..blocks {
        rng.fill_bytes(input);
        victim.run_once(core, input);
    }
    let s1 = *core.stats();
    let h1 = core.hierarchy().stats();
    let u1 = *core.uop_cache_stats();

    let insts = s1.insts - s0.insts;
    let l1d = h1.l1d.delta(&h0.l1d);
    let lookups = u1.lookups - u0.lookups;
    let hits = u1.hits - u0.hits;
    SecMetrics {
        cycles: s1.cycles - s0.cycles,
        insts,
        uops: s1.uops - s0.uops,
        decoy_uops: s1.decoy_uops - s0.decoy_uops,
        l1d_mpki: l1d.mpki(insts),
        uop_cache_hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_suite_has_eight_datapoints() {
        let names = victim_names();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"aes-enc".to_string()));
        assert!(names.contains(&"rsa-dec".to_string()));
        assert!(names.contains(&"rijndael-dec".to_string()));
        assert!(names.contains(&"blowfish-enc".to_string()));
    }

    #[test]
    fn policy_lookup_covers_the_comparison() {
        for (name, policy) in policies() {
            assert_eq!(policy_by_name(name), Some(policy));
        }
        assert_eq!(policy_by_name("warp-drive"), None);
    }
}
