//! Scratch (review-only): does arming stealth before warm-up (old
//! `run_security` semantics) differ from arming it at fork time (new
//! plan semantics)?

use csd_crypto::enable_stealth_for;
use csd_exp::{
    measure_blocks, run_plan_with, security_core, security_victims, warm_up, ExperimentSpec,
    LegMode, NoCache, DEFAULT_WATCHDOG,
};
use csd_pipeline::CoreConfig;
use csd_telemetry::SplitMix64;

#[test]
fn stealth_before_vs_after_warmup() {
    let blocks = 2usize;
    let seed = 0xBEEFu64 ^ blocks as u64;
    let victims = security_victims();
    let v = victims[0].as_ref();

    // Old run_security semantics: stealth armed BEFORE warm-up.
    let mut core = security_core(v, CoreConfig::opt());
    enable_stealth_for(v, &mut core, DEFAULT_WATCHDOG);
    let mut rng = SplitMix64::new(seed);
    let mut input = vec![0u8; v.input_len()];
    warm_up(&mut core, v, &mut rng, &mut input);
    let old = measure_blocks(&mut core, v, &mut rng, &mut input, blocks);

    // New plan semantics: warm with stealth off, fork, arm, measure.
    let spec = ExperimentSpec::single(
        "aes-enc",
        "opt",
        seed,
        blocks,
        LegMode::Stealth {
            watchdog: DEFAULT_WATCHDOG,
        },
    );
    let new = run_plan_with(&spec, CoreConfig::opt(), &NoCache, 1)
        .unwrap()
        .legs[0]
        .metrics;

    eprintln!("old (armed pre-warmup): {old:?}");
    eprintln!("new (armed at fork):    {new:?}");
    assert_eq!(old, new, "semantics differ");
}
