//! Property test: the spec JSON grammar round-trips exactly, and the
//! parser rejects every name the executor could not resolve.
//!
//! Seeded randomness only — a failure reproduces from the printed case
//! index.

use csd_exp::{victim_names, ExperimentSpec, Leg, LegMode, DEFAULT_WATCHDOG};
use csd_telemetry::{Json, SplitMix64, ToJson};

/// Draws a random but always-valid spec: every field and leg shape the
/// grammar can express, over the real victim/pipeline/policy grids.
fn random_spec(rng: &mut SplitMix64) -> ExperimentSpec {
    let victims = victim_names();
    let pipelines = ["opt", "noopt"];
    let policies = ["always-on", "conventional", "csd-devec"];
    let n_legs = rng.range_u64(1, 5) as usize;
    let legs = (0..n_legs)
        .map(|_| {
            let mode = match rng.range_u64(0, 2) {
                0 => LegMode::Base,
                1 => LegMode::Stealth {
                    watchdog: rng.range_u64(1, 100_000),
                },
                _ => LegMode::Devec {
                    policy: policies[rng.range_u64(0, 2) as usize].to_string(),
                },
            };
            Leg {
                mode,
                blocks: (rng.range_u64(0, 1) == 1).then(|| rng.range_u64(1, 10_000) as usize),
            }
        })
        .collect();
    ExperimentSpec {
        victim: victims[rng.range_u64(0, victims.len() as u64 - 1) as usize].to_string(),
        pipeline: pipelines[rng.range_u64(0, 1) as usize].to_string(),
        seed: rng.next_u64(),
        blocks: rng.range_u64(1, 10_000) as usize,
        cold: rng.range_u64(0, 1) == 1,
        legs,
    }
}

#[test]
fn spec_json_round_trips_over_random_specs() {
    let mut rng = SplitMix64::new(0x5EED_5EED);
    for case in 0..500 {
        let spec = random_spec(&mut rng);
        let doc = spec.to_json();
        // Through the renderer too, not just the tree: the wire carries
        // text, so the text must round-trip as well.
        let reparsed = Json::parse(&doc.pretty()).unwrap_or_else(|e| {
            panic!("case {case}: rendered spec does not re-parse: {e}\n{spec:?}")
        });
        let back = ExperimentSpec::from_json(&reparsed)
            .unwrap_or_else(|e| panic!("case {case}: round-trip rejected: {e}\n{spec:?}"));
        assert_eq!(back, spec, "case {case}: round-trip changed the spec");
        assert_eq!(
            back.to_json().pretty(),
            doc.pretty(),
            "case {case}: re-serialization is not a fixpoint"
        );
    }
}

#[test]
fn legacy_flat_shape_still_parses() {
    let flat = Json::parse(
        "{\"victim\": \"aes-enc\", \"stealth\": true, \"watchdog\": 2000, \
         \"blocks\": 2, \"seed\": 7}",
    )
    .unwrap();
    let spec = ExperimentSpec::from_json(&flat).expect("legacy shape parses");
    assert_eq!(spec.pipeline, "opt", "pipeline defaults to opt");
    assert_eq!(
        spec.legs,
        vec![Leg::new(LegMode::Stealth { watchdog: 2000 })]
    );

    let base = Json::parse("{\"victim\": \"aes-enc\"}").unwrap();
    let spec = ExperimentSpec::from_json(&base).expect("minimal shape parses");
    assert_eq!(spec.legs, vec![Leg::new(LegMode::Base)]);
    assert_eq!(spec.blocks, 4, "blocks defaults to 4");
    assert!(!spec.cold);

    let implicit = Json::parse("{\"victim\": \"rsa-enc\", \"stealth\": true}").unwrap();
    let spec = ExperimentSpec::from_json(&implicit).expect("stealth without watchdog parses");
    assert_eq!(
        spec.legs,
        vec![Leg::new(LegMode::Stealth {
            watchdog: DEFAULT_WATCHDOG
        })]
    );
}

#[test]
fn parser_rejects_what_the_executor_cannot_run() {
    let cases = [
        ("{\"victim\": \"no-such-victim\"}", "victim"),
        (
            "{\"victim\": \"aes-enc\", \"pipeline\": \"turbo\"}",
            "pipeline",
        ),
        ("{\"victim\": \"aes-enc\", \"blocks\": 0}", "blocks"),
        ("{\"victim\": \"aes-enc\", \"blocks\": 99999}", "blocks"),
        ("{\"victim\": \"aes-enc\", \"legs\": []}", "legs"),
        (
            "{\"victim\": \"aes-enc\", \"legs\": [{\"mode\": \"warp\"}]}",
            "mode",
        ),
        (
            "{\"victim\": \"aes-enc\", \"legs\": [{\"mode\": \"devec\"}]}",
            "policy",
        ),
        (
            "{\"victim\": \"aes-enc\", \"legs\": [{\"mode\": \"devec\", \"policy\": \"off\"}]}",
            "policy",
        ),
        (
            "{\"victim\": \"aes-enc\", \"legs\": [{\"mode\": \"base\", \"blocks\": 0}]}",
            "blocks",
        ),
        ("{\"seed\": 1}", "victim"),
    ];
    for (body, needle) in cases {
        let doc = Json::parse(body).unwrap();
        let err = ExperimentSpec::from_json(&doc).expect_err(&format!("{body} must be rejected"));
        assert!(
            err.contains(needle),
            "error for {body} should mention {needle:?}, got: {err}"
        );
    }
}
