//! Bounded differential-cosimulation entry point for `cargo test`, plus
//! the injected-bug drill proving the harness catches and shrinks real
//! decoder defects. The long soak run is the `difftest` binary.

use csd::OpcodeClass;
use csd_difftest::{cosim, mode_matrix, shrink, Generator, InjectedBug};
use csd_telemetry::derive_seed;
use mx86_isa::Inst;

/// Every generated program must agree with the reference across the full
/// mode matrix. Bounded to stay inside a debug-build test budget; the CI
/// soak run covers hundreds of programs in release.
#[test]
fn bounded_random_cosim_full_matrix() {
    let legs = mode_matrix();
    assert!(legs.len() >= 16, "matrix must cover all 16 CSD combos");
    for i in 0..25u64 {
        let seed = derive_seed(0xD1FF_7E57, &format!("bounded/{i}"));
        let gp = Generator::new(seed).program();
        let program = gp.assemble().expect("generated programs assemble");
        let result = cosim(&program, &legs, None);
        assert!(
            result.ok(),
            "program {i} (seed {seed:#x}) diverged:\n{:#?}\n{}",
            result.divergences,
            gp.to_asm()
        );
        assert!(result.ref_insts > 0, "program {i} retired nothing");
    }
}

/// A corrupted translation — every `mov r, imm` decoded as a `nop` via
/// the MCU auto-translation path — must be detected and shrunk to a
/// reproducer of at most ten instructions.
#[test]
fn injected_decoder_bug_is_caught_and_shrunk() {
    let legs = mode_matrix();
    let bug = InjectedBug {
        target: OpcodeClass::MovRI,
        body: vec![Inst::Nop { len: 1 }],
    };

    let gp = Generator::new(0xBAD_C0DE).program();
    let program = gp.assemble().unwrap();
    let broken = cosim(&program, &legs, Some(&bug));
    assert!(!broken.ok(), "nop-ing MovRI must diverge");

    let small = shrink(&gp, &legs, Some(&bug));
    assert!(
        small.insts <= 10,
        "reproducer has {} insts (> 10):\n{}",
        small.insts,
        small.program.to_asm()
    );
    let shrunk = small.program.assemble().expect("shrunk program assembles");
    assert!(
        !cosim(&shrunk, &legs, Some(&bug)).ok(),
        "shrunk program must still reproduce the bug"
    );
    assert!(
        cosim(&shrunk, &legs, None).ok(),
        "shrunk program must be clean without the bug"
    );
}
