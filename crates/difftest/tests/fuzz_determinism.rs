//! Determinism contracts of the fuzzing stack: shrinker, coverage-class
//! naming, and divergence-class preservation under shrinking.

use csd::OpcodeClass;
use csd_difftest::{
    cosim, mode_matrix, reference_halts, shrink_with, GenProgram, Generator, InjectedBug, ModeLeg,
};
use csd_telemetry::coverage::{uop_class_name, COV_UOP_CLASSES};
use csd_uops::{FOp, FWidth, UopKind};
use mx86_isa::{AluOp, Cc, Inst, VecOp};

fn classes_under(gp: &GenProgram, legs: &[ModeLeg], bug: &InjectedBug) -> Vec<&'static str> {
    let Ok(p) = gp.assemble() else {
        return Vec::new();
    };
    if !reference_halts(&p) {
        return Vec::new();
    }
    let mut classes = cosim(&p, legs, Some(bug)).classes();
    classes.sort_unstable();
    classes
}

/// The fuzzer's failure path: shrinking the same failing program twice
/// under the class-preserving predicate yields byte-identical minimized
/// assembly, and the minimized program fails with exactly the
/// divergence-class set the original did (the corpus records that set,
/// so a class-shifting shrink would poison replay).
#[test]
fn shrink_is_deterministic_and_class_preserving() {
    // One all-features functional leg: the predicate runs a full cosim
    // per shrink attempt, so the test pins the property on the richest
    // single leg instead of paying for the whole matrix each time.
    let legs: Vec<ModeLeg> = mode_matrix()
        .into_iter()
        .filter(|l| l.name() == "fun-sdmu")
        .collect();
    assert_eq!(legs.len(), 1);
    let bug = InjectedBug {
        target: OpcodeClass::MovRI,
        body: vec![Inst::Nop { len: 1 }],
    };
    let gp = Generator::new(0xBAD_C0DE).program();
    let want = classes_under(&gp, &legs, &bug);
    assert!(!want.is_empty(), "nop-ing MovRI must diverge");

    let run = || shrink_with(&gp, &mut |c| classes_under(c, &legs, &bug) == want);
    let a = run();
    let b = run();
    assert_eq!(
        a.program.to_asm(),
        b.program.to_asm(),
        "same input must shrink byte-identically"
    );
    assert_eq!(a.attempts, b.attempts);
    assert!(a.insts < gp.inst_count(), "shrink must make progress");

    let got = classes_under(&a.program, &legs, &bug);
    assert_eq!(
        got,
        want,
        "shrunk reproducer changed divergence classes:\n{}",
        a.program.to_asm()
    );
}

/// `UopKind::coverage_class` (csd-uops) and `UOP_CLASS_NAMES`
/// (csd-telemetry) are maintained in different crates with no shared
/// type; this pins their agreement for every one of the 28 classes.
#[test]
fn uop_coverage_classes_match_telemetry_names() {
    let kinds: [(UopKind, &str); 28] = [
        (UopKind::Nop, "nop"),
        (UopKind::Mov, "mov"),
        (UopKind::MovImm, "movimm"),
        (UopKind::Alu(AluOp::Add), "alu"),
        (UopKind::Mul, "mul"),
        (UopKind::FAlu(FOp::Add, FWidth::S), "falu"),
        (UopKind::DivQ, "divq"),
        (UopKind::DivR, "divr"),
        (UopKind::Ld, "ld"),
        (UopKind::St, "st"),
        (UopKind::Lea, "lea"),
        (UopKind::Br(Cc::Eq), "br"),
        (UopKind::JmpImm, "jmp"),
        (UopKind::JmpReg, "jmpreg"),
        (UopKind::PushImm, "pushimm"),
        (UopKind::Push, "push"),
        (UopKind::Pop, "pop"),
        (UopKind::VAlu(VecOp::PAddD), "valu"),
        (UopKind::VLd, "vld"),
        (UopKind::VSt, "vst"),
        (UopKind::VMov, "vmov"),
        (UopKind::VExtractQ, "vextract"),
        (UopKind::VInsertQ, "vinsert"),
        (UopKind::Clflush, "clflush"),
        (UopKind::Rdtsc, "rdtsc"),
        (UopKind::Wrmsr, "wrmsr"),
        (UopKind::Rdmsr, "rdmsr"),
        (UopKind::Halt, "halt"),
    ];
    assert_eq!(kinds.len(), COV_UOP_CLASSES, "every class covered");
    let mut seen = [false; COV_UOP_CLASSES];
    for (kind, want) in kinds {
        let class = kind.coverage_class();
        assert_eq!(
            uop_class_name(class),
            want,
            "{kind:?} maps to class {class}"
        );
        assert!(
            !seen[class as usize],
            "class {class} assigned twice ({kind:?})"
        );
        seen[class as usize] = true;
    }
    assert!(seen.iter().all(|s| *s), "all 28 classes reachable");
}
