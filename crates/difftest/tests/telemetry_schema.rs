//! Golden-file test pinning the telemetry JSON schema: the full key set
//! and member ordering of `Core::telemetry_report()`. Downstream tooling
//! (the experiment suite, CI byte-compares) parses this layout, so any
//! schema change must be deliberate — update the golden file in the same
//! commit that changes the report.

use csd::CsdConfig;
use csd_difftest::Generator;
use csd_pipeline::{Core, CoreConfig, SimMode};
use csd_telemetry::Json;

const GOLDEN: &str = include_str!("golden/telemetry_schema.txt");

/// Flattens the object tree into dotted key paths in declaration order.
/// Leaves (numbers, strings, arrays) terminate a path; only objects
/// recurse, so the golden file pins structure, not values.
fn flatten(json: &Json, prefix: &str, out: &mut Vec<String>) {
    if let Json::Obj(members) = json {
        for (key, value) in members {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            out.push(path.clone());
            flatten(value, &path, out);
        }
    }
}

#[test]
fn telemetry_report_schema_matches_golden_file() {
    let program = Generator::new(0x7E1E)
        .program()
        .assemble()
        .expect("generated program assembles");
    let cfg = CoreConfig {
        uop_cache_enabled: true,
        decode_memo_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(cfg, CsdConfig::default(), program, SimMode::Cycle);
    core.run(200_000);
    assert!(core.halted());

    let mut keys = Vec::new();
    flatten(&core.telemetry_report(), "", &mut keys);
    let got = keys.join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/telemetry_schema.txt"
        );
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    assert_eq!(
        got, GOLDEN,
        "telemetry schema drifted from tests/golden/telemetry_schema.txt; \
         if the change is intentional, regenerate the golden file"
    );
}
