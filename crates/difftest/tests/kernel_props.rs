//! Kernel-level properties of the decode-memo table and the context key:
//! a memo hit must hand back a µop flow identical to a fresh
//! translation for the same `(pc, context_key, tainted)` triple, and the
//! context key must roll on every event that can change decode
//! semantics — MSR writes, microcode updates, and VPU gate-state
//! transitions.

use csd::{
    ContextId, CsdConfig, CsdEngine, DevecThresholds, MicrocodeUpdate, OpcodeClass, PrivilegeLevel,
    VpuPolicy,
};
use csd_telemetry::SplitMix64;
use csd_uops::{DecodeMemo, UopFlow};
use mx86_isa::{Gpr, Inst, MemRef, Placed, VecOp, Width, Xmm};

fn menu(addr: u64, pick: u64) -> Placed {
    let inst = match pick % 4 {
        0 => Inst::MovRI {
            dst: Gpr::Rax,
            imm: 0x1234 + (pick % 97) as i64,
        },
        1 => Inst::Load {
            dst: Gpr::Rcx,
            mem: MemRef::base(Gpr::Rbx),
            width: Width::B8,
        },
        2 => Inst::Store {
            mem: MemRef::base(Gpr::Rbx),
            src: Gpr::Rdx,
            width: Width::B4,
        },
        _ => Inst::VAlu {
            op: VecOp::PAddB,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        },
    };
    Placed { addr, inst }
}

/// A memo hit yields a flow identical to what a fresh engine translates
/// for the same `(pc, context_key, tainted)` — memoization changes the
/// allocation strategy (shared vs owned), never the µops.
#[test]
fn memo_hit_flow_is_identical_to_fresh_translation() {
    // AlwaysOn keeps the gate controller inert so the context key is
    // stable across both passes and hits can actually occur.
    let cfg = || CsdConfig {
        vpu_policy: VpuPolicy::AlwaysOn,
        ..CsdConfig::default()
    };
    let mut memoized = CsdEngine::new(cfg());
    let mut fresh = CsdEngine::new(cfg());
    let mut memo = DecodeMemo::new();
    let mut rng = SplitMix64::new(0x3E30);

    let placed: Vec<Placed> = (0..32)
        .map(|i| menu(0x1000 + 16 * i, rng.next_u64()))
        .collect();
    // First pass fills the table.
    for p in &placed {
        memoized.decode_memo(p, false, Some(&mut memo));
    }
    assert_eq!(memo.stats().inserts as usize, placed.len());
    // Second pass must hit, and every shared flow must equal the owned
    // flow a memo-less engine materializes.
    for p in &placed {
        let hit = memoized.decode_memo(p, false, Some(&mut memo));
        let own = fresh.decode(p, false);
        assert!(
            matches!(hit.translation, UopFlow::Shared(_)),
            "revisiting {p:?} must hit the table"
        );
        assert!(
            matches!(own.translation, UopFlow::Owned(_)),
            "memo-less decode must own its flow"
        );
        assert_eq!(
            hit.translation, own.translation,
            "memo hit and fresh translation differ for {p:?}"
        );
        assert_eq!(hit.context, own.context);
    }
    assert_eq!(memo.stats().hits as usize, placed.len());
}

/// Any MSR write invalidates cached flows: the same pc misses after the
/// write because the context key rolled. (Fills also hand out shared
/// flows, so the counters — not the `UopFlow` variant — tell hit from
/// refill.)
#[test]
fn msr_write_invalidates_memo_entries() {
    let mut e = CsdEngine::new(CsdConfig {
        vpu_policy: VpuPolicy::AlwaysOn,
        ..CsdConfig::default()
    });
    let mut memo = DecodeMemo::new();
    let p = menu(0x2000, 0);
    e.decode_memo(&p, false, Some(&mut memo));
    e.decode_memo(&p, false, Some(&mut memo));
    assert_eq!(memo.stats().hits, 1, "revisit under the same key must hit");

    e.write_msr(0x100, 42);
    e.decode_memo(&p, false, Some(&mut memo));
    assert_eq!(
        memo.stats().hits,
        1,
        "stale entry must not survive an MSR write"
    );
    assert_eq!(memo.stats().invalidations, 1, "key roll flushes the table");
    assert_eq!(memo.stats().misses, 2);
}

/// The context key strictly increases on every MSR write and every
/// verified microcode update, for arbitrary indices and payloads.
#[test]
fn context_key_rolls_on_msr_writes_and_microcode_updates() {
    let mut e = CsdEngine::default();
    let mut rng = SplitMix64::new(0xC0FF);
    for i in 0..256u64 {
        let before = e.context_key();
        if i % 4 == 3 {
            let mcu = MicrocodeUpdate::new(
                i as u32 + 1,
                OpcodeClass::Nop,
                ContextId::Custom(rng.next_u8() % 8),
                false,
                vec![Inst::Nop { len: 1 }],
            );
            e.apply_microcode_update(&mcu, PrivilegeLevel::Kernel)
                .expect("valid update");
        } else {
            e.write_msr(rng.next_u32(), rng.next_u64());
        }
        assert!(e.context_key() > before, "context key stalled at step {i}");
    }
}

/// Gate-state transitions roll the context key in both directions:
/// scalar-phase power-gating under the CSD policy, and wake-up on a
/// vector instruction under the conventional policy.
#[test]
fn context_key_rolls_on_gate_state_transitions() {
    // Gate-off transition: eight scalar decodes under CsdDevec gate the
    // VPU.
    let mut e = CsdEngine::new(CsdConfig {
        vpu_policy: VpuPolicy::CsdDevec(DevecThresholds {
            window: 8,
            low: 1,
            high: 16,
        }),
        ..CsdConfig::default()
    });
    let k0 = e.context_key();
    for i in 0..8 {
        e.decode(&menu(0x3000 + 16 * i, 0), false);
    }
    assert!(!e.vpu_available(), "scalar phase must gate the VPU");
    assert!(e.context_key() > k0, "gating transition must roll the key");

    // Wake-up transition: a gated conventional VPU powers back on for a
    // vector instruction during decode.
    let mut e = CsdEngine::new(CsdConfig {
        vpu_policy: VpuPolicy::Conventional {
            idle_gate_cycles: 10,
        },
        ..CsdConfig::default()
    });
    e.tick(20);
    assert!(!e.vpu_available(), "idle conventional VPU must gate");
    let k1 = e.context_key();
    let out = e.decode(&menu(0x4000, 3), false);
    assert!(
        out.stall_cycles > 0,
        "gated conventional VPU must pay a wake-up stall"
    );
    assert!(e.context_key() > k1, "wake transition must roll the key");
}
