//! Crypto-victim cosimulation: each in-pipeline cipher implementation
//! must produce exactly the software-reference output for randomized
//! keys and inputs, with the stealth defense both off and on. This is
//! the end-to-end form of the paper's semantics-preservation claim:
//! decoy injection must never perturb the ciphertext.

use csd::CsdConfig;
use csd_crypto::Victim;
use csd_crypto::{enable_stealth_for, AesKeySize, AesVictim, BlowfishVictim, CipherDir, RsaVictim};
use csd_pipeline::{Core, CoreConfig, SimMode};
use csd_telemetry::SplitMix64;

fn random_bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u8()).collect()
}

/// Runs three random inputs through `victim` on a cycle-level core and
/// checks each output against the pure-software reference.
fn check(victim: &dyn Victim, stealth: bool, rng: &mut SplitMix64) {
    let cfg = CoreConfig {
        dift_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(
        cfg,
        CsdConfig::default(),
        victim.program().clone(),
        SimMode::Cycle,
    );
    victim.install(&mut core);
    if stealth {
        enable_stealth_for(victim, &mut core, 2_000);
    }
    for round in 0..3 {
        let input = random_bytes(rng, victim.input_len());
        let out = victim.run_once(&mut core, &input);
        assert_eq!(
            out,
            victim.reference(&input),
            "{} round {round} stealth={stealth}: output differs from reference",
            victim.name()
        );
    }
    if stealth {
        assert!(
            core.engine().stats().decoy_uops > 0,
            "{}: stealth leg must actually inject decoys",
            victim.name()
        );
    }
}

#[test]
fn aes_matches_reference_with_and_without_stealth() {
    let mut rng = SplitMix64::new(0xAE5_AE5);
    for (size, dir) in [
        (AesKeySize::K128, CipherDir::Encrypt),
        (AesKeySize::K256, CipherDir::Decrypt),
    ] {
        let key_len = match size {
            AesKeySize::K128 => 16,
            AesKeySize::K256 => 32,
        };
        let key = random_bytes(&mut rng, key_len);
        let victim = AesVictim::new(size, dir, &key);
        check(&victim, false, &mut rng);
        check(&victim, true, &mut rng);
    }
}

#[test]
fn rsa_matches_reference_with_and_without_stealth() {
    let mut rng = SplitMix64::new(0x45A_45A);
    for _ in 0..2 {
        let exponent = rng.next_u64() | 1;
        let modulus = u64::from(rng.next_u32()).max(3) | 1;
        let victim = RsaVictim::new(exponent, modulus);
        check(&victim, false, &mut rng);
        check(&victim, true, &mut rng);
    }
}

#[test]
fn blowfish_matches_reference_with_and_without_stealth() {
    let mut rng = SplitMix64::new(0x00B1_0F15);
    for dir in [CipherDir::Encrypt, CipherDir::Decrypt] {
        let key = random_bytes(&mut rng, 16);
        let victim = BlowfishVictim::new(dir, &key);
        check(&victim, false, &mut rng);
        check(&victim, true, &mut rng);
    }
}
