//! Checkpoint coverage: `Core::snapshot()` taken mid-program must let
//! both the continued run and the restored re-run finish with exactly
//! the state an uncheckpointed run reaches.

use csd::CsdConfig;
use csd_crypto::{AesKeySize, AesVictim, CipherDir, Victim};
use csd_difftest::generator::{DATA_BASE, DATA_SIZE, STACK_TOP};
use csd_difftest::Generator;
use csd_pipeline::{Core, CoreConfig, SimMode};
use mx86_isa::Program;

fn build(program: &Program) -> Core {
    let cfg = CoreConfig {
        uop_cache_enabled: true,
        decode_memo_enabled: true,
        ..CoreConfig::default()
    };
    Core::new(cfg, CsdConfig::default(), program.clone(), SimMode::Cycle)
}

fn assert_same_final_state(core: &Core, base: &Core, what: &str) {
    assert!(core.halted(), "{what}: core did not halt");
    assert_eq!(core.stats().insts, base.stats().insts, "{what}: insts");
    assert_eq!(core.state.gprs, base.state.gprs, "{what}: gprs");
    assert_eq!(core.state.xmms, base.state.xmms, "{what}: xmms");
    assert_eq!(core.state.flags, base.state.flags, "{what}: flags");
    for (base_addr, len, region) in [
        (DATA_BASE, DATA_SIZE as usize, "data"),
        (STACK_TOP - 0x1000, 0x1000, "stack"),
    ] {
        assert_eq!(
            core.mem.read_bytes(base_addr, len),
            base.mem.read_bytes(base_addr, len),
            "{what}: {region} memory"
        );
    }
}

#[test]
fn restore_mid_program_reaches_uncheckpointed_state() {
    let program = Generator::new(0x5A9)
        .program()
        .assemble()
        .expect("generated program assembles");

    let mut base = build(&program);
    base.run(200_000);
    assert!(base.halted(), "baseline run must complete");

    let mut core = build(&program);
    core.run((base.stats().insts / 2).max(1));
    let snap = core.snapshot();

    core.run(200_000);
    assert_same_final_state(&core, &base, "continued leg");

    core.restore(&snap);
    core.run(200_000);
    assert_same_final_state(&core, &base, "restored leg");

    // The checkpoint counters are part of the kernel telemetry.
    let report = core.telemetry_report();
    let ckpt = report
        .get("kernel")
        .and_then(|k| k.get("checkpoint"))
        .expect("kernel.checkpoint present");
    assert_eq!(ckpt.get("snapshots"), Some(&csd_telemetry::Json::U64(1)));
    assert_eq!(ckpt.get("restores"), Some(&csd_telemetry::Json::U64(1)));
}

/// Same drill on a real workload: an AES block encryption restored from
/// a mid-encryption checkpoint must still produce the reference
/// ciphertext.
#[test]
fn aes_restored_from_checkpoint_produces_reference_ciphertext() {
    let key = [0x42u8; 16];
    let victim = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);
    let mut core = build(victim.program());
    victim.install(&mut core);

    let input = [0x5Au8; 16];
    let expect = victim.reference(&input);

    victim.prepare(&mut core, &input);
    core.run(500);
    assert!(!core.halted(), "snapshot must land mid-encryption");
    let snap = core.snapshot();

    core.run(10_000_000);
    assert!(core.halted());
    assert_eq!(victim.collect(&core), expect, "continued leg ciphertext");

    core.restore(&snap);
    core.run(10_000_000);
    assert!(core.halted());
    assert_eq!(victim.collect(&core), expect, "restored leg ciphertext");
}
