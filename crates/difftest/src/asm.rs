//! Parser for the reassemblable assembly the harness prints.
//!
//! [`GenProgram::to_asm`] renders a program with symbolic labels; this
//! module parses that exact grammar back into IR, which is what makes
//! the persisted corpus *reassemblable*: an `.asm` file under
//! `tests/corpus/` round-trips through [`parse_asm`] →
//! [`GenProgram::assemble`] into the very program that diverged (or that
//! covered a new bin). The grammar is the `Display` form of
//! [`mx86_isa::Inst`] plus the label pseudo-ops `L<id>:`, `jmp L<id>`,
//! `j<cc> L<id>`, `call L<id>`, and `mov <reg>, offset L<id>`.
//!
//! A round-trip property test (`parse_asm(gp.to_asm()) == gp`) pins the
//! parser to the printer; neither can drift alone.

use crate::generator::{GenOp, GenProgram};
use mx86_isa::{AluOp, Cc, Gpr, Inst, MemRef, RegImm, Scale, VecOp, Width, Xmm};

/// Parses one register name.
fn gpr(s: &str) -> Option<Gpr> {
    Gpr::ALL.into_iter().find(|g| g.to_string() == s)
}

/// Parses one xmm register name.
fn xmm(s: &str) -> Option<Xmm> {
    let n: u8 = s.strip_prefix("xmm")?.parse().ok()?;
    (n < 16).then(|| Xmm::new(n))
}

/// Parses a `{:#x}`-formatted value. Negative `i64`s display as their
/// two's-complement bit pattern (`-1` → `0xffffffffffffffff`), so the
/// value is parsed as `u64` and reinterpreted.
fn hex(s: &str) -> Option<i64> {
    let digits = s.strip_prefix("0x")?;
    u64::from_str_radix(digits, 16).ok().map(|v| v as i64)
}

fn width(s: &str) -> Option<Width> {
    match s {
        "byte" => Some(Width::B1),
        "word" => Some(Width::B2),
        "dword" => Some(Width::B4),
        "qword" => Some(Width::B8),
        "xmmword" => Some(Width::B16),
        _ => None,
    }
}

fn alu_op(s: &str) -> Option<AluOp> {
    match s {
        "add" => Some(AluOp::Add),
        "sub" => Some(AluOp::Sub),
        "and" => Some(AluOp::And),
        "or" => Some(AluOp::Or),
        "xor" => Some(AluOp::Xor),
        "shl" => Some(AluOp::Shl),
        "shr" => Some(AluOp::Shr),
        "sar" => Some(AluOp::Sar),
        _ => None,
    }
}

fn vec_op(s: &str) -> Option<VecOp> {
    match s {
        "paddb" => Some(VecOp::PAddB),
        "paddw" => Some(VecOp::PAddW),
        "paddd" => Some(VecOp::PAddD),
        "paddq" => Some(VecOp::PAddQ),
        "psubb" => Some(VecOp::PSubB),
        "psubd" => Some(VecOp::PSubD),
        "pand" => Some(VecOp::PAnd),
        "por" => Some(VecOp::POr),
        "pxor" => Some(VecOp::PXor),
        "pmullw" => Some(VecOp::PMullW),
        "pmulld" => Some(VecOp::PMullD),
        "addps" => Some(VecOp::AddPs),
        "mulps" => Some(VecOp::MulPs),
        "subps" => Some(VecOp::SubPs),
        "addpd" => Some(VecOp::AddPd),
        "mulpd" => Some(VecOp::MulPd),
        _ => None,
    }
}

fn cc(s: &str) -> Option<Cc> {
    Cc::ALL.into_iter().find(|c| c.to_string() == s)
}

fn label_id(s: &str) -> Option<usize> {
    s.strip_prefix('L')?.parse().ok()
}

fn scale(s: &str) -> Option<Scale> {
    match s {
        "1" => Some(Scale::S1),
        "2" => Some(Scale::S2),
        "4" => Some(Scale::S4),
        "8" => Some(Scale::S8),
        _ => None,
    }
}

/// Parses a `[base + index*scale + 0xdisp]` memory operand (every part
/// optional, matching [`MemRef`]'s `Display`).
fn memref(s: &str) -> Option<MemRef> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut m = MemRef {
        base: None,
        index: None,
        disp: 0,
    };
    let mut tokens = inner.split_whitespace();
    let mut sign: i64 = 1;
    let mut first = true;
    while let Some(tok) = tokens.next() {
        let term = if first {
            first = false;
            tok
        } else {
            sign = match tok {
                "+" => 1,
                "-" => -1,
                _ => return None,
            };
            tokens.next()?
        };
        if let Some((idx, sc)) = term.split_once('*') {
            if m.index.is_some() || sign < 0 {
                return None;
            }
            m.index = Some((gpr(idx)?, scale(sc)?));
        } else if let Some(r) = gpr(term) {
            if m.base.is_some() || m.index.is_some() || sign < 0 {
                return None;
            }
            m.base = Some(r);
        } else {
            m.disp = sign * hex(term)?;
        }
    }
    Some(m)
}

fn reg_imm(s: &str) -> Option<RegImm> {
    gpr(s).map(RegImm::Reg).or_else(|| hex(s).map(RegImm::Imm))
}

/// A `{width} {mem}` operand (loads/stores print the access width ahead
/// of the memory operand).
fn width_mem(s: &str) -> Option<(Width, MemRef)> {
    let (w, m) = s.split_once(' ')?;
    Some((width(w)?, memref(m)?))
}

/// Parses one instruction line (no label pseudo-ops).
fn inst(line: &str) -> Result<Inst, String> {
    let err = || format!("unparsable instruction {line:?}");
    let (mn, rest) = line.split_once(' ').unwrap_or((line, ""));
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(", ").collect()
    };
    let unary =
        || -> Result<&str, String> { (operands.len() == 1).then(|| operands[0]).ok_or_else(err) };
    let binary = || -> Result<(&str, &str), String> {
        (operands.len() == 2)
            .then(|| (operands[0], operands[1]))
            .ok_or_else(err)
    };

    if let Some(len) = mn.strip_prefix("nop").and_then(|d| d.parse::<u32>().ok()) {
        if operands.is_empty() {
            return Ok(Inst::Nop { len });
        }
    }
    match mn {
        "mov" => {
            let (a, b) = binary()?;
            if let Some((width, mem)) = width_mem(a) {
                return gpr(b)
                    .map(|src| Inst::Store { mem, src, width })
                    .ok_or_else(err);
            }
            let dst = gpr(a).ok_or_else(err)?;
            if let Some((width, mem)) = width_mem(b) {
                return Ok(Inst::Load { dst, mem, width });
            }
            if let Some(src) = gpr(b) {
                return Ok(Inst::MovRR { dst, src });
            }
            hex(b).map(|imm| Inst::MovRI { dst, imm }).ok_or_else(err)
        }
        "lea" => {
            let (a, b) = binary()?;
            Ok(Inst::Lea {
                dst: gpr(a).ok_or_else(err)?,
                mem: memref(b).ok_or_else(err)?,
            })
        }
        "imul" => {
            let (a, b) = binary()?;
            Ok(Inst::Mul {
                dst: gpr(a).ok_or_else(err)?,
                src: reg_imm(b).ok_or_else(err)?,
            })
        }
        "div" => Ok(Inst::Div {
            src: gpr(unary()?).ok_or_else(err)?,
        }),
        "cmp" | "test" => {
            let (a, b) = binary()?;
            let a = gpr(a).ok_or_else(err)?;
            let b = reg_imm(b).ok_or_else(err)?;
            Ok(if mn == "cmp" {
                Inst::Cmp { a, b }
            } else {
                Inst::Test { a, b }
            })
        }
        "jmp" => {
            let t = unary()?;
            if let Some(reg) = gpr(t) {
                return Ok(Inst::JmpInd { reg });
            }
            hex(t)
                .map(|target| Inst::Jmp {
                    target: target as u64,
                })
                .ok_or_else(err)
        }
        "call" => Ok(Inst::Call {
            target: hex(unary()?).ok_or_else(err)? as u64,
        }),
        "ret" => (operands.is_empty()).then_some(Inst::Ret).ok_or_else(err),
        "push" => Ok(Inst::Push {
            src: gpr(unary()?).ok_or_else(err)?,
        }),
        "pop" => Ok(Inst::Pop {
            dst: gpr(unary()?).ok_or_else(err)?,
        }),
        "movdqa" => {
            let (a, b) = binary()?;
            if let Some(mem) = memref(a) {
                return xmm(b).map(|src| Inst::VStore { mem, src }).ok_or_else(err);
            }
            let dst = xmm(a).ok_or_else(err)?;
            if let Some(mem) = memref(b) {
                return Ok(Inst::VLoad { dst, mem });
            }
            xmm(b).map(|src| Inst::VMovRR { dst, src }).ok_or_else(err)
        }
        "movq" => {
            let (a, b) = binary()?;
            if let Some(dst) = gpr(a) {
                return xmm(b)
                    .map(|src| Inst::VMovToGpr { dst, src })
                    .ok_or_else(err);
            }
            Ok(Inst::VMovFromGpr {
                dst: xmm(a).ok_or_else(err)?,
                src: gpr(b).ok_or_else(err)?,
            })
        }
        "clflush" => Ok(Inst::Clflush {
            mem: memref(unary()?).ok_or_else(err)?,
        }),
        "rdtsc" => (operands.is_empty()).then_some(Inst::Rdtsc).ok_or_else(err),
        "wrmsr" => {
            let (a, b) = binary()?;
            Ok(Inst::Wrmsr {
                msr: hex(a).ok_or_else(err)? as u32,
                src: gpr(b).ok_or_else(err)?,
            })
        }
        "rdmsr" => {
            let (a, b) = binary()?;
            Ok(Inst::Rdmsr {
                dst: gpr(a).ok_or_else(err)?,
                msr: hex(b).ok_or_else(err)? as u32,
            })
        }
        "hlt" => (operands.is_empty()).then_some(Inst::Halt).ok_or_else(err),
        j if j.starts_with('j') => {
            let c = cc(&j[1..]).ok_or_else(err)?;
            Ok(Inst::Jcc {
                cc: c,
                target: hex(unary()?).ok_or_else(err)? as u64,
            })
        }
        op => {
            let (a, b) = binary()?;
            if let Some(op) = alu_op(op) {
                if let Some((width, mem)) = width_mem(a) {
                    let src = reg_imm(b).ok_or_else(err)?;
                    return Ok(Inst::AluStore {
                        op,
                        mem,
                        src,
                        width,
                    });
                }
                let dst = gpr(a).ok_or_else(err)?;
                if let Some((width, mem)) = width_mem(b) {
                    return Ok(Inst::AluLoad {
                        op,
                        dst,
                        mem,
                        width,
                    });
                }
                let src = reg_imm(b).ok_or_else(err)?;
                return Ok(Inst::Alu { op, dst, src });
            }
            if let Some(op) = vec_op(op) {
                let dst = xmm(a).ok_or_else(err)?;
                if let Some(mem) = memref(b) {
                    return Ok(Inst::VAluLoad { op, dst, mem });
                }
                let src = xmm(b).ok_or_else(err)?;
                return Ok(Inst::VAlu { op, dst, src });
            }
            Err(err())
        }
    }
}

/// Parses a whole reassemblable-assembly listing back into IR.
///
/// Accepts exactly what [`GenProgram::to_asm`] prints: one instruction
/// or pseudo-op per line, `L<id>:` labels in column zero, blank lines
/// ignored, `#`-prefixed lines treated as comments (so corpus files can
/// carry a provenance header).
///
/// # Errors
///
/// Reports the first unparsable line with its 1-based line number.
pub fn parse_asm(src: &str) -> Result<GenProgram, String> {
    let mut ops = Vec::new();
    let mut max_label: Option<usize> = None;
    let mut note = |id: usize| {
        max_label = Some(max_label.map_or(id, |m| m.max(id)));
        id
    };
    for (n, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fail = |e: String| format!("line {}: {e}", n + 1);
        if let Some(l) = line.strip_suffix(':') {
            let id = label_id(l).ok_or_else(|| fail(format!("bad label {l:?}")))?;
            ops.push(GenOp::Label(note(id)));
            continue;
        }
        let (mn, rest) = line.split_once(' ').unwrap_or((line, ""));
        // Label pseudo-ops first: they share mnemonics with real
        // branches but target `L<id>` instead of an address.
        if let Some(id) = label_id(rest) {
            match mn {
                "jmp" => {
                    ops.push(GenOp::JmpTo(note(id)));
                    continue;
                }
                "call" => {
                    ops.push(GenOp::CallTo(note(id)));
                    continue;
                }
                _ => {
                    if let Some(c) = mn.strip_prefix('j').and_then(cc) {
                        ops.push(GenOp::JccTo(c, note(id)));
                        continue;
                    }
                }
            }
        }
        if mn == "mov" {
            if let Some((r, l)) = rest.split_once(", offset ") {
                let reg = gpr(r).ok_or_else(|| fail(format!("bad register {r:?}")))?;
                let id = label_id(l).ok_or_else(|| fail(format!("bad label {l:?}")))?;
                ops.push(GenOp::MovLabelAddr(reg, note(id)));
                continue;
            }
        }
        ops.push(GenOp::Plain(inst(line).map_err(fail)?));
    }
    Ok(GenProgram {
        ops,
        labels: max_label.map_or(0, |m| m + 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;

    #[test]
    fn roundtrips_generated_programs() {
        for seed in 0..40u64 {
            let gp = Generator::new(seed).program();
            let asm = gp.to_asm();
            let parsed = parse_asm(&asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
            assert_eq!(parsed, gp, "round-trip changed the program:\n{asm}");
            assert_eq!(parsed.to_asm(), asm);
        }
    }

    #[test]
    fn roundtrips_every_display_corner() {
        use mx86_isa::MemRef;
        let insts = [
            Inst::Nop { len: 3 },
            Inst::MovRI {
                dst: Gpr::Rax,
                imm: -1,
            },
            Inst::Load {
                dst: Gpr::R9,
                mem: MemRef::base_index(Gpr::Rax, Gpr::Rcx, Scale::S8).with_disp(-8),
                width: Width::B2,
            },
            Inst::Store {
                mem: MemRef::abs(0x10),
                src: Gpr::Rbx,
                width: Width::B1,
            },
            Inst::AluStore {
                op: AluOp::Xor,
                mem: MemRef::base(Gpr::R15).with_disp(0x40),
                src: RegImm::Imm(-5),
                width: Width::B4,
            },
            Inst::VAluLoad {
                op: VecOp::PMullW,
                dst: Xmm::new(7),
                mem: MemRef::base(Gpr::R15),
            },
            Inst::VMovToGpr {
                dst: Gpr::Rdx,
                src: Xmm::new(3),
            },
            Inst::VMovFromGpr {
                dst: Xmm::new(3),
                src: Gpr::Rdx,
            },
            Inst::Wrmsr {
                msr: 0x100,
                src: Gpr::Rsi,
            },
            Inst::Rdmsr {
                dst: Gpr::Rsi,
                msr: 0x107,
            },
            Inst::Jcc {
                cc: Cc::Lt,
                target: 0x40_0000,
            },
            Inst::JmpInd { reg: Gpr::R11 },
        ];
        for i in insts {
            let line = format!("    {i}\n");
            let parsed = parse_asm(&line).unwrap_or_else(|e| panic!("{e} for {line:?}"));
            assert_eq!(parsed.ops, vec![GenOp::Plain(i)], "mismatch for {line:?}");
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let gp = parse_asm("# provenance header\n\n    hlt\n").unwrap();
        assert_eq!(gp.ops, vec![GenOp::Plain(Inst::Halt)]);
        assert_eq!(gp.labels, 0);
    }

    #[test]
    fn bad_lines_name_their_line_number() {
        let err = parse_asm("    hlt\n    bogus r1, r2\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
