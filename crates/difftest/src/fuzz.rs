//! Coverage-guided differential fuzzing engine.
//!
//! Wraps the 19-leg cosimulation harness in a feedback loop: mutants of
//! the current population run across (a subset of) the mode matrix with
//! structural coverage recording, and an input survives only if it
//! diverges (a finding) or reaches a coverage bin nothing before it did.
//! Both kinds are greedily shrunk with [`crate::shrink::shrink_with`] —
//! findings under a *class-preserving* predicate (the minimized program
//! must fail with the same divergence-class set), discoveries under a
//! *coverage-preserving* one (must still reach the new bins, cleanly) —
//! and handed back as content-addressed [`CorpusEntry`]s.
//!
//! # Determinism
//!
//! The loop is byte-reproducible at any `--jobs` setting:
//!
//! - candidates are *constructed* sequentially, each from its own
//!   [`derive_seed`]`(seed, "fuzz/<round>/<k>")` stream, against the
//!   population as it stood at the start of the round;
//! - candidates are *evaluated* (the expensive cosimulation) by a scoped
//!   worker pool into index-addressed slots, so thread scheduling cannot
//!   reorder results;
//! - results are *folded* sequentially in candidate order — coverage
//!   merges, shrinks, and corpus admission all happen on one thread in a
//!   fixed order.
//!
//! Two runs with the same seed, iteration count, and mode filter produce
//! byte-identical corpus files and coverage JSON.

use crate::corpus::CorpusEntry;
use crate::generator::Generator;
use crate::harness::{cosim, cosim_with_coverage, mode_matrix, ModeLeg};
use crate::mutate::{mask_all, FuzzInput, Mutator};
use crate::shrink::shrink_with;
use csd_telemetry::{derive_seed, CoverageMap, SplitMix64};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Candidates constructed per round. Fixed (never derived from the job
/// count): the batch boundary is part of the deterministic schedule.
pub const BATCH: usize = 8;

/// Programs generated from scratch to seed the population.
const N_SEEDS: usize = 4;

/// Fuzzing campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Total mutants to evaluate.
    pub iters: u64,
    /// Substring filter over mode-matrix leg names (e.g. `cyc`, `-s`);
    /// `None` = all 19 legs.
    pub modes: Option<String>,
    /// Worker threads for candidate evaluation (output-invariant).
    pub jobs: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            iters: 64,
            modes: None,
            jobs: 1,
        }
    }
}

/// Outcome of a fuzzing campaign.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Structural coverage accumulated over every evaluated input.
    pub coverage: CoverageMap,
    /// Shrunk diverging inputs (new findings), in discovery order.
    pub failures: Vec<CorpusEntry>,
    /// Shrunk coverage-increasing inputs, in discovery order.
    pub discoveries: Vec<CorpusEntry>,
    /// Mutants actually evaluated.
    pub evaluated: u64,
}

/// The legs a campaign runs: the mode matrix filtered by name substring.
pub fn active_legs(modes: Option<&str>) -> Vec<ModeLeg> {
    mode_matrix()
        .into_iter()
        .filter(|l| modes.is_none_or(|m| l.name().contains(m)))
        .collect()
}

/// Legs of `legs` selected by `mask`.
fn select(legs: &[ModeLeg], mask: u32) -> Vec<ModeLeg> {
    legs.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, l)| *l)
        .collect()
}

/// One pure evaluation: cosimulate `input` over its selected legs with a
/// fresh coverage map. Returns the map and the observed divergence-class
/// set (sorted). Inputs are valid by construction, but a candidate that
/// somehow fails to assemble is reported as class `reference`.
fn evaluate(input: &FuzzInput, legs: &[ModeLeg]) -> (CoverageMap, Vec<String>) {
    let Ok(p) = input.program.assemble() else {
        let mut m = CoverageMap::new();
        m.record_divergence("reference");
        return (m, vec!["reference".into()]);
    };
    let map = Arc::new(Mutex::new(CoverageMap::new()));
    let result = cosim_with_coverage(&p, &select(legs, input.leg_mask), None, Some(&map));
    let mut classes: Vec<String> = result.classes().iter().map(|s| s.to_string()).collect();
    classes.sort();
    let map = map.lock().map(|m| m.clone()).unwrap_or_default();
    (map, classes)
}

/// Sorted divergence-class set of `input` (no coverage recording) — the
/// shrink predicate for findings.
fn classes_of(input: &FuzzInput, legs: &[ModeLeg]) -> Vec<String> {
    let Ok(p) = input.program.assemble() else {
        return vec!["reference".into()];
    };
    let result = cosim(&p, &select(legs, input.leg_mask), None);
    let mut classes: Vec<String> = result.classes().iter().map(|s| s.to_string()).collect();
    classes.sort();
    classes
}

/// Runs one fuzzing campaign. `seed_corpus` entries without recorded
/// divergence join the population (and their coverage primes the global
/// map); entries *with* recorded divergence are known reproducers — they
/// are regression-test material, not fuzzing stock, and are skipped.
pub fn fuzz(cfg: &FuzzConfig, seed_corpus: &[CorpusEntry]) -> FuzzOutcome {
    let legs = active_legs(cfg.modes.as_deref());
    assert!(!legs.is_empty(), "mode filter matched no legs");
    let n_legs = legs.len();

    // Seed population: generated programs first, then clean corpus
    // entries in their (sorted) load order.
    let mut population: Vec<FuzzInput> = (0..N_SEEDS)
        .map(|k| {
            let s = derive_seed(cfg.seed, &format!("fuzz/seed/{k}"));
            FuzzInput::full_matrix(Generator::new(s).program(), n_legs)
        })
        .collect();
    for entry in seed_corpus {
        if !entry.divergence.is_empty() {
            continue;
        }
        let mask = entry
            .legs
            .iter()
            .filter_map(|el| legs.iter().position(|l| l == el))
            .fold(0u32, |m, i| m | (1 << i));
        population.push(FuzzInput {
            program: entry.program.clone(),
            leg_mask: if mask == 0 { mask_all(n_legs) } else { mask },
        });
    }

    let mut global = CoverageMap::new();
    let mut failures: Vec<CorpusEntry> = Vec::new();
    let mut discoveries: Vec<CorpusEntry> = Vec::new();
    let mut seen_names: BTreeSet<String> = BTreeSet::new();
    let mut seen_classes: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut evaluated = 0u64;

    // Prime global coverage with the seed population, sequentially.
    for input in &population {
        let (cov, classes) = evaluate(input, &legs);
        global.merge(&cov);
        if !classes.is_empty() {
            // A seed that already diverges is a finding in its own right
            // (e.g. a regression the committed corpus missed).
            admit_failure(
                input,
                &classes,
                &legs,
                "seed population",
                &mut failures,
                &mut seen_names,
                &mut seen_classes,
            );
        }
    }

    let rounds = cfg.iters.div_ceil(BATCH as u64);
    for round in 0..rounds {
        let in_round = (cfg.iters - round * BATCH as u64).min(BATCH as u64) as usize;

        // Construct candidates sequentially against the round-start
        // population snapshot.
        let candidates: Vec<FuzzInput> = (0..in_round)
            .map(|k| {
                let s = derive_seed(cfg.seed, &format!("fuzz/{round}/{k}"));
                let mut picker = SplitMix64::new(derive_seed(s, "pick"));
                let base = &population[picker.next_u64() as usize % population.len()];
                let donor = &population[picker.next_u64() as usize % population.len()];
                Mutator::new(s).mutate(base, Some(donor), n_legs)
            })
            .collect();

        // Evaluate in parallel into index-addressed slots.
        let results = run_pool(&candidates, &legs, cfg.jobs);

        // Fold sequentially in candidate order.
        for (k, (cov, classes)) in results.into_iter().enumerate() {
            evaluated += 1;
            let input = &candidates[k];
            let origin = format!("fuzz seed {:#x} round {round} candidate {k}", cfg.seed);
            if !classes.is_empty() {
                admit_failure(
                    input,
                    &classes,
                    &legs,
                    &origin,
                    &mut failures,
                    &mut seen_names,
                    &mut seen_classes,
                );
                continue;
            }
            let new_bins = cov.new_bin_names(&global);
            global.merge(&cov);
            if new_bins.is_empty() {
                continue;
            }
            // Coverage-preserving shrink: the minimized program must
            // still reach every newly covered bin, cleanly.
            let shrunk = shrink_with(&input.program, &mut |gp| {
                let candidate = FuzzInput {
                    program: gp.clone(),
                    leg_mask: input.leg_mask,
                };
                let (c, cls) = evaluate(&candidate, &legs);
                cls.is_empty() && c.covers_all(&new_bins)
            });
            let kept = FuzzInput {
                program: shrunk.program,
                leg_mask: input.leg_mask,
            };
            // The shrunk variant's own coverage also feeds the map (it
            // reaches the new bins by construction).
            let (cov, _) = evaluate(&kept, &legs);
            global.merge(&cov);
            let entry = CorpusEntry::new(
                kept.program.clone(),
                select(&legs, kept.leg_mask),
                Vec::new(),
                format!("{origin}: +{} bins", new_bins.len()),
            );
            if seen_names.insert(entry.name.clone()) {
                discoveries.push(entry);
            }
            population.push(kept);
        }
    }

    FuzzOutcome {
        coverage: global,
        failures,
        discoveries,
        evaluated,
    }
}

/// Shrinks a diverging input class-preservingly and records it. One
/// entry per distinct divergence-class set per campaign: a second input
/// failing the same way adds no information.
#[allow(clippy::too_many_arguments)]
fn admit_failure(
    input: &FuzzInput,
    classes: &[String],
    legs: &[ModeLeg],
    origin: &str,
    failures: &mut Vec<CorpusEntry>,
    seen_names: &mut BTreeSet<String>,
    seen_classes: &mut BTreeSet<Vec<String>>,
) {
    if !seen_classes.insert(classes.to_vec()) {
        return;
    }
    let shrunk = shrink_with(&input.program, &mut |gp| {
        let candidate = FuzzInput {
            program: gp.clone(),
            leg_mask: input.leg_mask,
        };
        classes_of(&candidate, legs) == classes
    });
    let entry = CorpusEntry::new(
        shrunk.program,
        select(legs, input.leg_mask),
        classes.to_vec(),
        origin.to_string(),
    );
    if seen_names.insert(entry.name.clone()) {
        failures.push(entry);
    }
}

/// One candidate's evaluation: its coverage and its divergence classes.
type Evaluated = (CoverageMap, Vec<String>);

/// Evaluates `candidates` on up to `jobs` scoped workers; results land
/// in slots by candidate index, so the fold order is schedule-free.
fn run_pool(candidates: &[FuzzInput], legs: &[ModeLeg], jobs: usize) -> Vec<Evaluated> {
    let workers = jobs.max(1).min(candidates.len().max(1));
    if workers <= 1 {
        return candidates.iter().map(|c| evaluate(c, legs)).collect();
    }
    let slots: Mutex<Vec<Option<Evaluated>>> = Mutex::new(vec![None; candidates.len()]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(c) = candidates.get(i) else { break };
                let out = evaluate(c, legs);
                if let Ok(mut slots) = slots.lock() {
                    slots[i] = Some(out);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(jobs: usize) -> FuzzConfig {
        FuzzConfig {
            seed: 0x5EED,
            iters: 8,
            // One cheap functional leg keeps the smoke test fast.
            modes: Some("fun-....".into()),
            jobs,
        }
    }

    #[test]
    fn campaign_is_reproducible_across_job_counts() {
        let render = |o: &FuzzOutcome| {
            let mut s = csd_telemetry::ToJson::to_json(&o.coverage).dump();
            for e in o.failures.iter().chain(&o.discoveries) {
                s.push_str(&e.name);
                s.push_str(&e.program.to_asm());
                s.push_str(&e.metadata().dump());
            }
            s
        };
        let a = render(&fuzz(&smoke_cfg(1), &[]));
        let b = render(&fuzz(&smoke_cfg(1), &[]));
        let c = render(&fuzz(&smoke_cfg(4), &[]));
        assert_eq!(a, b, "same seed must reproduce byte-identically");
        assert_eq!(a, c, "job count must not change a single output byte");
    }

    #[test]
    fn campaign_accumulates_coverage_and_finds_no_bugs() {
        let out = fuzz(&smoke_cfg(2), &[]);
        assert_eq!(out.evaluated, 8);
        assert!(
            out.coverage.events() > 0,
            "seed population must produce coverage"
        );
        assert!(
            out.failures.is_empty(),
            "unexpected divergence: {:?}",
            out.failures
                .iter()
                .map(|f| (&f.name, &f.divergence))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn mode_filter_selects_legs() {
        assert_eq!(active_legs(None).len(), 19);
        assert_eq!(active_legs(Some("cyc")).len(), 2);
        assert_eq!(active_legs(Some("snap")).len(), 1);
    }
}
