//! Persistent regression corpus.
//!
//! Every interesting fuzz input — one that diverged, or one that covered
//! a structural-coverage bin no earlier input reached — is persisted
//! under a corpus directory as a *pair* of files:
//!
//! - `<name>.asm` — the program as reassemblable assembly
//!   ([`GenProgram::to_asm`] output, parsed back by
//!   [`crate::asm::parse_asm`]);
//! - `<name>.json` — metadata: origin, the mode-matrix legs the input
//!   runs under, the same legs as typed `csd-exp` leg specs (validated
//!   through `csd_exp::Leg::from_json`, the exact parser the serving
//!   layer uses), and the divergence classes it reproduces (empty for
//!   coverage-only entries).
//!
//! Names are content-addressed (FNV-1a over the assembly text), so the
//! same discovery never produces two entries and corpus merges are
//! conflict-free. The committed corpus under `tests/corpus/` is replayed
//! by a tier-1 test on every `cargo test`.

use crate::asm::parse_asm;
use crate::generator::GenProgram;
use crate::harness::{cosim, mode_matrix, ModeLeg};
use csd_telemetry::{write_atomic, Json, ToJson};
use std::fs;
use std::path::{Path, PathBuf};

/// Schema tag of corpus metadata files.
pub const CORPUS_SCHEMA: &str = "csd-corpus/1";

/// The committed corpus directory (`tests/corpus/` at the repo root).
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// FNV-1a 64-bit content hash (stable, dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One corpus entry: a program plus the metadata needed to replay it.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Content-addressed entry name (file stem of the on-disk pair).
    pub name: String,
    /// Human-readable provenance (seed/iteration, or "hand-written").
    pub origin: String,
    /// The mode-matrix legs this entry runs under.
    pub legs: Vec<ModeLeg>,
    /// Divergence classes the entry reproduces; empty = coverage-only.
    pub divergence: Vec<String>,
    /// The program itself.
    pub program: GenProgram,
}

impl CorpusEntry {
    /// Builds an entry, deriving its content-addressed name: `div-` +
    /// first divergence class for reproducers, `cov-` for coverage-only
    /// entries, then the FNV-1a hash of the assembly text.
    pub fn new(
        program: GenProgram,
        legs: Vec<ModeLeg>,
        divergence: Vec<String>,
        origin: String,
    ) -> CorpusEntry {
        let asm = program.to_asm();
        let hash = fnv1a64(asm.as_bytes());
        let name = match divergence.first() {
            Some(class) => format!("div-{class}-{hash:016x}"),
            None => format!("cov-{hash:016x}"),
        };
        CorpusEntry {
            name,
            origin,
            legs,
            divergence,
            program,
        }
    }

    /// The metadata document persisted next to the assembly.
    pub fn metadata(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(CORPUS_SCHEMA.into())),
            ("name", Json::Str(self.name.clone())),
            ("origin", Json::Str(self.origin.clone())),
            (
                "legs",
                Json::arr(self.legs.iter().map(|l| Json::Str(l.name()))),
            ),
            (
                "exp_legs",
                Json::arr(
                    self.legs
                        .iter()
                        .map(|l| Json::arr(l.exp_legs().iter().map(ToJson::to_json))),
                ),
            ),
            (
                "divergence",
                Json::arr(self.divergence.iter().map(|c| Json::Str(c.clone()))),
            ),
        ])
    }

    /// Writes the `.asm`/`.json` pair into `dir`. Both files land via
    /// temp-file + rename ([`csd_telemetry::write_atomic`]), so a crash
    /// mid-save never leaves a half-written corpus entry — at worst the
    /// pair is missing one file, which `load_corpus` reports rather than
    /// silently mis-replays.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as strings.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let asm_path = dir.join(format!("{}.asm", self.name));
        let asm = format!("# {}\n{}", self.origin, self.program.to_asm());
        write_atomic(&asm_path, asm.as_bytes()).map_err(|e| e.to_string())?;
        let json_path = dir.join(format!("{}.json", self.name));
        let mut text = self.metadata().pretty();
        text.push('\n');
        write_atomic(&json_path, text.as_bytes()).map_err(|e| e.to_string())
    }

    /// Reassembles and cosimulates the entry, checking it still behaves
    /// exactly as recorded: coverage-only entries must agree on every
    /// leg; reproducer entries must produce *the same set* of divergence
    /// classes (a new class, or a vanished one, is a real change in
    /// behavior either way).
    ///
    /// # Errors
    ///
    /// A human-readable report including the reassemblable assembly.
    pub fn replay(&self) -> Result<(), String> {
        let p = self.program.assemble().map_err(|e| {
            format!(
                "{}: assembly failed: {e:?}\n{}",
                self.name,
                self.program.to_asm()
            )
        })?;
        let result = cosim(&p, &self.legs, None);
        let mut observed: Vec<String> = result.classes().iter().map(|s| s.to_string()).collect();
        observed.sort();
        let mut expected = self.divergence.clone();
        expected.sort();
        expected.dedup();
        if observed != expected {
            let detail: Vec<String> = result
                .divergences
                .iter()
                .take(4)
                .map(|d| format!("  [{}] {}: {}", d.leg, d.class.name(), d.detail))
                .collect();
            return Err(format!(
                "{}: expected divergence classes {:?}, observed {:?}\n{}\nreassemblable input:\n{}",
                self.name,
                expected,
                observed,
                detail.join("\n"),
                self.program.to_asm()
            ));
        }
        Ok(())
    }
}

/// Maps persisted leg names back onto the live mode matrix.
fn leg_by_name(name: &str) -> Option<ModeLeg> {
    mode_matrix().into_iter().find(|l| l.name() == name)
}

/// Loads one entry from its metadata path (the `.asm` sits next to it).
fn load_entry(json_path: &Path) -> Result<CorpusEntry, String> {
    let ctx = |e: String| format!("{}: {e}", json_path.display());
    let text = fs::read_to_string(json_path).map_err(|e| ctx(e.to_string()))?;
    let j = Json::parse(&text).map_err(|e| ctx(format!("{e:?}")))?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != CORPUS_SCHEMA {
        return Err(ctx(format!("unknown schema {schema:?}")));
    }
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ctx("missing name".into()))?
        .to_string();
    let origin = j
        .get("origin")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let legs: Vec<ModeLeg> = j
        .get("legs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ctx("missing legs".into()))?
        .iter()
        .map(|l| {
            let n = l
                .as_str()
                .ok_or_else(|| ctx("leg name must be a string".into()))?;
            leg_by_name(n).ok_or_else(|| ctx(format!("unknown leg {n:?}")))
        })
        .collect::<Result<_, _>>()?;
    if legs.is_empty() {
        return Err(ctx("entry must name at least one leg".into()));
    }
    // Cross-validate the typed csd-exp leg specs through the shared
    // parser: corpus metadata must stay loadable by the serving layer.
    if let Some(exp) = j.get("exp_legs").and_then(Json::as_arr) {
        for per_leg in exp {
            for spec in per_leg.as_arr().unwrap_or(&[]) {
                csd_exp::Leg::from_json(spec).map_err(|e| ctx(format!("bad exp leg: {e}")))?;
            }
        }
    }
    let divergence = j
        .get("divergence")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let asm_path = json_path.with_extension("asm");
    let asm = fs::read_to_string(&asm_path).map_err(|e| format!("{}: {e}", asm_path.display()))?;
    let program = parse_asm(&asm).map_err(|e| format!("{}: {e}", asm_path.display()))?;
    Ok(CorpusEntry {
        name,
        origin,
        legs,
        divergence,
        program,
    })
}

/// Loads every entry under `dir`, sorted by name (deterministic
/// iteration regardless of directory order). A missing directory is an
/// empty corpus, not an error.
///
/// # Errors
///
/// Reports the first malformed entry.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths = Vec::new();
    match fs::read_dir(dir) {
        Ok(rd) => {
            for e in rd {
                let path = e.map_err(|e| format!("{}: {e}", dir.display()))?.path();
                if path.extension().is_some_and(|x| x == "json")
                    && path.file_stem().is_some_and(|s| s != "coverage-baseline")
                {
                    paths.push(path);
                }
            }
        }
        Err(_) => return Ok(Vec::new()),
    }
    paths.sort();
    paths.iter().map(|p| load_entry(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;

    #[test]
    fn entry_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "csd-corpus-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"roundtrip")
        ));
        let _ = fs::remove_dir_all(&dir);
        let gp = Generator::new(77).program();
        let legs = vec![mode_matrix()[0], mode_matrix()[5]];
        let entry = CorpusEntry::new(gp.clone(), legs.clone(), Vec::new(), "test".into());
        entry.save(&dir).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, entry.name);
        assert_eq!(loaded[0].program, gp);
        assert_eq!(loaded[0].legs, legs);
        assert!(loaded[0].divergence.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_are_content_addressed() {
        let gp = Generator::new(3).program();
        let a = CorpusEntry::new(gp.clone(), vec![mode_matrix()[0]], Vec::new(), "x".into());
        let b = CorpusEntry::new(gp, vec![mode_matrix()[1]], Vec::new(), "y".into());
        assert_eq!(a.name, b.name, "same program must hash to the same name");
        assert!(a.name.starts_with("cov-"));
        let c = CorpusEntry::new(
            Generator::new(4).program(),
            vec![mode_matrix()[0]],
            vec!["flags".into()],
            "z".into(),
        );
        assert!(c.name.starts_with("div-flags-"));
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        let entries = load_corpus(Path::new("/nonexistent/csd-corpus")).unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn coverage_only_entry_replays_clean() {
        let gp = Generator::new(12).program();
        let entry = CorpusEntry::new(gp, vec![mode_matrix()[0]], Vec::new(), "test".into());
        entry.replay().unwrap();
    }
}
