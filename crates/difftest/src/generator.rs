//! Deterministic randomized mx86 program generator.
//!
//! Programs are built as a list of [`GenOp`]s — a structured IR one level
//! above [`mx86_isa::Inst`] that keeps labels symbolic so the shrinker
//! can delete instructions and reassemble (branch displacements and the
//! variable-length encoding shift on every deletion, which is the point:
//! µop-cache windows and decode-memo keys get re-exercised at new
//! addresses).
//!
//! Structural guarantees that make every generated program a valid
//! cosimulation input:
//!
//! - control flow between blocks is strictly forward (random `jcc`/`jmp`
//!   always target a *later* block), so fallthrough reaches `hlt`;
//! - loops are bounded counted loops on a reserved counter register with
//!   the `sub`/`jcc` pair emitted adjacently;
//! - subroutine bodies sit after the `hlt` and are only entered by
//!   `call`;
//! - `rsp` is initialized in the prologue and only moved by
//!   push/pop/call/ret (kept balanced per block);
//! - data accesses are based on a reserved pointer register (R15) with
//!   small displacements or masked index registers, so loads and stores
//!   alias each other inside one 4 KiB data region;
//! - `rdtsc` is never emitted (timing-dependent destination);
//! - `wrmsr` targets a scratch MSR range only, so generated programs
//!   cannot reconfigure the decoder under test.

use csd_telemetry::SplitMix64;
use mx86_isa::{
    AluOp, AsmError, Assembler, Cc, Gpr, Inst, MemRef, Program, RegImm, Scale, VecOp, Width, Xmm,
};

/// Base of the 4 KiB data region all memory traffic aliases within.
pub const DATA_BASE: u64 = 0x10_0000;
/// Size of the data region.
pub const DATA_SIZE: u64 = 0x1000;
/// Initial stack pointer (stack grows down from here).
pub const STACK_TOP: u64 = 0x20_8000;
/// Code region base address.
pub const CODE_BASE: u64 = 0x40_0000;
/// First MSR of the scratch range `wrmsr`/`rdmsr` are allowed to touch.
pub const SCRATCH_MSR_BASE: u32 = 0x100;

/// Reserved data-region pointer.
const PTR: Gpr = Gpr::R15;
/// Reserved loop counter.
const CTR: Gpr = Gpr::R14;

/// One element of the generator IR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenOp {
    /// A label-free instruction, emitted verbatim.
    Plain(Inst),
    /// Bind label `id` here.
    Label(usize),
    /// `jmp` to label `id`.
    JmpTo(usize),
    /// `j<cc>` to label `id`.
    JccTo(Cc, usize),
    /// `call` to label `id`.
    CallTo(usize),
    /// `mov reg, <address of label id>` (materialized in a second
    /// assembly pass, for `jmp_ind`).
    MovLabelAddr(Gpr, usize),
}

/// A generated program in shrinkable IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct GenProgram {
    /// The IR stream.
    pub ops: Vec<GenOp>,
    /// Number of labels referenced by `ops`.
    pub labels: usize,
}

impl GenProgram {
    /// Assembles the IR at [`CODE_BASE`].
    ///
    /// Two passes: label-address moves first materialize with a
    /// placeholder immediate of representative encoding length, then the
    /// program is re-emitted with the real addresses (which cannot change
    /// any encoding length, so the second layout is final).
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`] (double-bound or dangling labels — not
    /// produced by the generator or shrinker by construction).
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let mut addrs = vec![CODE_BASE; self.labels];
        // Placeholder in the 4-byte immediate band, same as any code
        // address the label can resolve to.
        let mut resolved = self.emit(&addrs)?;
        for _ in 0..2 {
            for (i, a) in addrs.iter_mut().enumerate() {
                *a = resolved.symbol(&format!("L{i}")).unwrap_or(CODE_BASE);
            }
            resolved = self.emit(&addrs)?;
        }
        Ok(resolved)
    }

    fn emit(&self, label_addrs: &[u64]) -> Result<Program, AsmError> {
        let mut a = Assembler::new(CODE_BASE);
        let labels: Vec<_> = (0..self.labels).map(|_| a.fresh_label()).collect();
        let mut bound = vec![false; self.labels];
        for op in &self.ops {
            match *op {
                GenOp::Plain(inst) => {
                    a.emit(inst);
                }
                GenOp::Label(id) => {
                    a.bind(labels[id])?;
                    a.symbol(format!("L{id}"));
                    bound[id] = true;
                }
                GenOp::JmpTo(id) => {
                    a.jmp(labels[id]);
                }
                GenOp::JccTo(cc, id) => {
                    a.jcc(cc, labels[id]);
                }
                GenOp::CallTo(id) => {
                    a.call(labels[id]);
                }
                GenOp::MovLabelAddr(r, id) => {
                    a.mov_ri(r, label_addrs[id] as i64);
                }
            }
        }
        // The shrinker never removes Label ops, but a hand-written IR may
        // leave trailing labels unbound; bind them at the end.
        for (id, b) in bound.iter().enumerate() {
            if !b {
                a.bind(labels[id])?;
                a.symbol(format!("L{id}"));
            }
        }
        a.halt();
        a.finish()
    }

    /// Renders the IR as reassemblable assembly (labels symbolic).
    pub fn to_asm(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for op in &self.ops {
            match *op {
                GenOp::Plain(inst) => writeln!(s, "    {inst}").unwrap(),
                GenOp::Label(id) => writeln!(s, "L{id}:").unwrap(),
                GenOp::JmpTo(id) => writeln!(s, "    jmp L{id}").unwrap(),
                GenOp::JccTo(cc, id) => writeln!(s, "    j{cc} L{id}").unwrap(),
                GenOp::CallTo(id) => writeln!(s, "    call L{id}").unwrap(),
                GenOp::MovLabelAddr(r, id) => writeln!(s, "    mov {r}, offset L{id}").unwrap(),
            }
        }
        s
    }

    /// Number of instructions (IR elements that emit code).
    pub fn inst_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, GenOp::Label(_)))
            .count()
    }
}

/// GPRs free for random use (everything but the reserved pointer,
/// counter, and stack registers).
pub(crate) const FREE_GPRS: [Gpr; 13] = [
    Gpr::Rax,
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rbx,
    Gpr::Rbp,
    Gpr::Rsi,
    Gpr::Rdi,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
];

pub(crate) const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
];

pub(crate) const VEC_OPS: [VecOp; 11] = [
    VecOp::PAddB,
    VecOp::PAddW,
    VecOp::PAddD,
    VecOp::PAddQ,
    VecOp::PSubB,
    VecOp::PSubD,
    VecOp::PAnd,
    VecOp::POr,
    VecOp::PXor,
    VecOp::PMullW,
    VecOp::PMullD,
];

pub(crate) const WIDTHS: [Width; 4] = [Width::B1, Width::B2, Width::B4, Width::B8];

/// Seeded program generator.
pub struct Generator {
    rng: SplitMix64,
}

impl Generator {
    /// A generator drawing from the given seed.
    pub fn new(seed: u64) -> Generator {
        Generator {
            rng: SplitMix64::new(seed),
        }
    }

    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n.max(1)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    fn gpr(&mut self) -> Gpr {
        FREE_GPRS[self.below(FREE_GPRS.len() as u64) as usize]
    }

    fn xmm(&mut self) -> Xmm {
        Xmm::new(self.below(8) as u8)
    }

    fn cc(&mut self) -> Cc {
        Cc::ALL[self.below(12) as usize]
    }

    fn width(&mut self) -> Width {
        WIDTHS[self.below(4) as usize]
    }

    /// A data-region memory operand: `[r15 + disp]`, or with probability
    /// ~1/4 `[r15 + reg*scale + disp]` after masking `reg` to keep the
    /// effective address inside the region. Small displacements force
    /// aliasing between accesses of different widths.
    fn data_mem(&mut self, ops: &mut Vec<GenOp>) -> MemRef {
        let disp = self.below(0x200) as i64;
        if self.below(4) == 0 {
            let idx = self.gpr();
            let scale = match self.below(4) {
                0 => Scale::S1,
                1 => Scale::S2,
                2 => Scale::S4,
                _ => Scale::S8,
            };
            ops.push(GenOp::Plain(Inst::Alu {
                op: AluOp::And,
                dst: idx,
                src: RegImm::Imm(0xFF),
            }));
            MemRef::base_index(PTR, idx, scale).with_disp(disp)
        } else {
            MemRef::base(PTR).with_disp(disp)
        }
    }

    fn regimm(&mut self) -> RegImm {
        if self.below(2) == 0 {
            RegImm::Reg(self.gpr())
        } else {
            RegImm::Imm(self.rng.next_u64() as i64 % 0x1_0000)
        }
    }

    /// One random straight-line instruction as a fresh op sequence (one
    /// instruction, or two when a masked index register needs its AND
    /// prefix). This is the mutator's opcode pool: replacement and
    /// insertion operators draw from the same distribution the generator
    /// does, so every mutant stays inside the structural envelope that
    /// guarantees termination.
    pub fn straight_ops(&mut self) -> Vec<GenOp> {
        let mut ops = Vec::with_capacity(2);
        self.straight_inst(&mut ops);
        ops
    }

    /// Emits one random straight-line instruction into `ops`.
    fn straight_inst(&mut self, ops: &mut Vec<GenOp>) {
        match self.below(14) {
            0 => ops.push(GenOp::Plain(Inst::MovRI {
                dst: self.gpr(),
                imm: self.rng.next_u64() as i64,
            })),
            1 => ops.push(GenOp::Plain(Inst::MovRR {
                dst: self.gpr(),
                src: self.gpr(),
            })),
            2 => ops.push(GenOp::Plain(Inst::Alu {
                op: ALU_OPS[self.below(8) as usize],
                dst: self.gpr(),
                src: self.regimm(),
            })),
            3 => {
                let mem = self.data_mem(ops);
                ops.push(GenOp::Plain(Inst::Load {
                    dst: self.gpr(),
                    mem,
                    width: self.width(),
                }));
            }
            4 => {
                let mem = self.data_mem(ops);
                ops.push(GenOp::Plain(Inst::Store {
                    mem,
                    src: self.gpr(),
                    width: self.width(),
                }));
            }
            5 => {
                let mem = self.data_mem(ops);
                ops.push(GenOp::Plain(Inst::AluLoad {
                    op: ALU_OPS[self.below(5) as usize],
                    dst: self.gpr(),
                    mem,
                    width: self.width(),
                }));
            }
            6 => {
                let mem = self.data_mem(ops);
                ops.push(GenOp::Plain(Inst::AluStore {
                    op: ALU_OPS[self.below(5) as usize],
                    mem,
                    src: self.regimm(),
                    width: self.width(),
                }));
            }
            7 => ops.push(GenOp::Plain(Inst::Mul {
                dst: self.gpr(),
                src: self.regimm(),
            })),
            8 => ops.push(GenOp::Plain(Inst::Div { src: self.gpr() })),
            9 => {
                let mem = self.data_mem(ops);
                // 16-byte vector accesses: keep them inside the region.
                let mem = mem.with_disp(mem.disp & !0xF);
                if self.below(2) == 0 {
                    ops.push(GenOp::Plain(Inst::VLoad {
                        dst: self.xmm(),
                        mem,
                    }));
                } else {
                    ops.push(GenOp::Plain(Inst::VStore {
                        mem,
                        src: self.xmm(),
                    }));
                }
            }
            10 => ops.push(GenOp::Plain(Inst::VAlu {
                op: VEC_OPS[self.below(VEC_OPS.len() as u64) as usize],
                dst: self.xmm(),
                src: self.xmm(),
            })),
            11 => match self.below(3) {
                0 => ops.push(GenOp::Plain(Inst::VMovRR {
                    dst: self.xmm(),
                    src: self.xmm(),
                })),
                1 => ops.push(GenOp::Plain(Inst::VMovToGpr {
                    dst: self.gpr(),
                    src: self.xmm(),
                })),
                _ => ops.push(GenOp::Plain(Inst::VMovFromGpr {
                    dst: self.xmm(),
                    src: self.gpr(),
                })),
            },
            12 => {
                let mem = self.data_mem(ops);
                match self.below(3) {
                    0 => ops.push(GenOp::Plain(Inst::Lea {
                        dst: self.gpr(),
                        mem,
                    })),
                    1 => ops.push(GenOp::Plain(Inst::Clflush { mem })),
                    _ => {
                        let mem = mem.with_disp(mem.disp & !0xF);
                        ops.push(GenOp::Plain(Inst::VAluLoad {
                            op: VEC_OPS[self.below(VEC_OPS.len() as u64) as usize],
                            dst: self.xmm(),
                            mem,
                        }));
                    }
                }
            }
            _ => {
                let msr = SCRATCH_MSR_BASE + self.below(8) as u32;
                if self.below(2) == 0 {
                    ops.push(GenOp::Plain(Inst::Wrmsr {
                        msr,
                        src: self.gpr(),
                    }));
                } else {
                    ops.push(GenOp::Plain(Inst::Rdmsr {
                        dst: self.gpr(),
                        msr,
                    }));
                }
            }
        }
    }

    /// Emits a bounded counted loop on the reserved counter.
    fn counted_loop(&mut self, ops: &mut Vec<GenOp>, next_label: &mut usize) {
        let top = *next_label;
        *next_label += 1;
        let n = self.range(1, 6) as i64;
        ops.push(GenOp::Plain(Inst::MovRI { dst: CTR, imm: n }));
        ops.push(GenOp::Label(top));
        for _ in 0..self.range(1, 4) {
            self.straight_inst(ops);
        }
        // `sub` immediately before `jcc`: the loop exit must see the
        // counter's flags, whatever the body clobbered.
        ops.push(GenOp::Plain(Inst::Alu {
            op: AluOp::Sub,
            dst: CTR,
            src: RegImm::Imm(1),
        }));
        ops.push(GenOp::JccTo(Cc::Ne, top));
    }

    /// Generates one program.
    pub fn program(&mut self) -> GenProgram {
        let mut ops = Vec::new();
        let mut next_label = 0usize;

        // Prologue: stack, data pointer, GPR/XMM seeds, data-region fill.
        ops.push(GenOp::Plain(Inst::MovRI {
            dst: Gpr::Rsp,
            imm: STACK_TOP as i64,
        }));
        ops.push(GenOp::Plain(Inst::MovRI {
            dst: PTR,
            imm: DATA_BASE as i64,
        }));
        for (i, r) in FREE_GPRS.iter().enumerate() {
            ops.push(GenOp::Plain(Inst::MovRI {
                dst: *r,
                imm: self.rng.next_u64() as i64,
            }));
            if i >= 5 && self.below(2) == 0 {
                break;
            }
        }
        for i in 0..4u64 {
            let src = self.gpr();
            ops.push(GenOp::Plain(Inst::Store {
                mem: MemRef::base(PTR).with_disp((i * 8) as i64),
                src,
                width: Width::B8,
            }));
        }
        for x in 0..4u8 {
            ops.push(GenOp::Plain(Inst::VLoad {
                dst: Xmm::new(x),
                mem: MemRef::base(PTR).with_disp(i64::from(x & 1) * 16),
            }));
        }

        // Subroutines are laid out after the hlt; reserve their labels
        // now so calls can be generated inside blocks.
        let n_subs = self.below(3) as usize;
        let sub_labels: Vec<usize> = (0..n_subs)
            .map(|_| {
                let l = next_label;
                next_label += 1;
                l
            })
            .collect();

        // Forward-only block structure.
        let n_blocks = self.range(3, 7) as usize;
        let block_labels: Vec<usize> = (0..n_blocks)
            .map(|_| {
                let l = next_label;
                next_label += 1;
                l
            })
            .collect();

        for (bi, &label) in block_labels.iter().enumerate() {
            ops.push(GenOp::Label(label));
            let body = self.range(4, 12);
            for _ in 0..body {
                match self.below(12) {
                    0 if !sub_labels.is_empty() => {
                        ops.push(GenOp::CallTo(
                            sub_labels[self.below(n_subs as u64) as usize],
                        ));
                    }
                    1 => {
                        let r = self.gpr();
                        ops.push(GenOp::Plain(Inst::Push { src: r }));
                        self.straight_inst(&mut ops);
                        ops.push(GenOp::Plain(Inst::Pop { dst: self.gpr() }));
                    }
                    2 => self.counted_loop(&mut ops, &mut next_label),
                    _ => self.straight_inst(&mut ops),
                }
            }
            // Block exit: fallthrough, a conditional forward skip, or an
            // indirect jump to the next block.
            if bi + 1 < n_blocks {
                match self.below(4) {
                    0 => {
                        let target = self.range(bi as u64 + 1, n_blocks as u64 - 1) as usize;
                        let a = self.gpr();
                        ops.push(GenOp::Plain(Inst::Cmp {
                            a,
                            b: self.regimm(),
                        }));
                        ops.push(GenOp::JccTo(self.cc(), block_labels[target]));
                    }
                    1 => {
                        let r = self.gpr();
                        ops.push(GenOp::MovLabelAddr(r, block_labels[bi + 1]));
                        ops.push(GenOp::Plain(Inst::JmpInd { reg: r }));
                    }
                    2 => ops.push(GenOp::JmpTo(block_labels[bi + 1])),
                    _ => {}
                }
            }
        }
        ops.push(GenOp::Plain(Inst::Halt));

        // Subroutine bodies: straight-line + ret.
        for &l in &sub_labels {
            ops.push(GenOp::Label(l));
            for _ in 0..self.range(1, 4) {
                self.straight_inst(&mut ops);
            }
            ops.push(GenOp::Plain(Inst::Ret));
        }

        GenProgram {
            ops,
            labels: next_label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefCpu, RefOutcome};

    #[test]
    fn generated_programs_assemble_and_halt() {
        let mut g = Generator::new(7);
        for _ in 0..50 {
            let gp = g.program();
            let p = gp.assemble().expect("generated IR must assemble");
            let mut cpu = RefCpu::new(p.entry());
            let out = cpu.run(&p, 200_000);
            assert_eq!(
                out,
                RefOutcome::Halted,
                "program must halt:\n{}",
                gp.to_asm()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(42).program();
        let b = Generator::new(42).program();
        assert_eq!(a, b);
        let pa = a.assemble().unwrap();
        let pb = b.assemble().unwrap();
        assert_eq!(pa.to_string(), pb.to_string());
    }
}
