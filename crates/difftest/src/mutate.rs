//! Mutation operators over generator IR for coverage-guided fuzzing.
//!
//! Mutants are valid *by construction plus rejection*: every operator
//! only produces structurally plausible IR (drawing new instructions
//! from the same [`Generator`] pool the seed programs come from), and a
//! candidate is accepted only if it still assembles **and** still halts
//! in the architectural reference within the standard budget. That
//! second check is what makes mutation safe around control flow — e.g.
//! duplicating a `sub ctr, 1 / jne` pair can wrap the counter into an
//! infinite loop, and the halts check simply rejects that candidate.
//!
//! Everything is driven by one [`SplitMix64`] stream owned by the
//! [`Mutator`], so a fixed seed yields a byte-identical mutant — the
//! property the fuzzer's reproducibility contract rests on.

use crate::generator::{GenOp, GenProgram, Generator, ALU_OPS, FREE_GPRS, VEC_OPS, WIDTHS};
use crate::harness::reference_halts;
use csd_telemetry::SplitMix64;
use mx86_isa::{Cc, Inst, MemRef, RegImm};

/// One fuzzing input: a program plus the subset of mode-matrix legs it
/// runs under (bit `i` set → leg `i` of the matrix is exercised).
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzInput {
    /// The program, in shrinkable IR form.
    pub program: GenProgram,
    /// Mode-matrix leg mask; never zero.
    pub leg_mask: u32,
}

impl FuzzInput {
    /// An input running `program` under every leg of an `n_legs` matrix.
    pub fn full_matrix(program: GenProgram, n_legs: usize) -> FuzzInput {
        FuzzInput {
            program,
            leg_mask: mask_all(n_legs),
        }
    }
}

/// The all-legs mask for an `n_legs` matrix.
pub fn mask_all(n_legs: usize) -> u32 {
    if n_legs >= 32 {
        u32::MAX
    } else {
        (1u32 << n_legs) - 1
    }
}

/// Largest contiguous run duplicated by the block-duplication operator.
const MAX_DUP: usize = 8;
/// Candidate attempts before giving up and returning the input verbatim.
const MAX_TRIES: usize = 16;

/// Seeded, deterministic mutator over [`FuzzInput`]s.
pub struct Mutator {
    rng: SplitMix64,
}

impl Mutator {
    /// A mutator drawing from the given seed.
    pub fn new(seed: u64) -> Mutator {
        Mutator {
            rng: SplitMix64::new(seed),
        }
    }

    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n.max(1)
    }

    /// Indices of ops that may be replaced or deleted (labels must stay:
    /// deleting one would orphan its references mid-program).
    fn mutable_indices(ops: &[GenOp]) -> Vec<usize> {
        ops.iter()
            .enumerate()
            .filter(|(_, op)| !matches!(op, GenOp::Label(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Fresh instruction(s) from the generator's straight-line pool.
    fn fresh_ops(&mut self) -> Vec<GenOp> {
        Generator::new(self.rng.next_u64()).straight_ops()
    }

    fn small_imm(&mut self) -> RegImm {
        RegImm::Imm((self.rng.next_u64() as i64) % 0x1_0000)
    }

    /// Redraws a memory operand's displacement from the generator's
    /// range, 16-aligned for vector accesses.
    fn redisp(&mut self, m: MemRef, align16: bool) -> MemRef {
        let d = (self.rng.next_u64() % 0x200) as i64;
        m.with_disp(if align16 { d & !0xF } else { d })
    }

    /// Flips one operand of `inst` in place, staying inside the
    /// generator's envelope: destinations come from [`FREE_GPRS`] (never
    /// the reserved pointer/counter/stack registers), vector
    /// displacements stay 16-aligned, and MSR numbers are never touched
    /// (mutants must not escape the scratch MSR range).
    fn flip_operand(&mut self, inst: Inst) -> Inst {
        let gpr = FREE_GPRS[self.below(FREE_GPRS.len() as u64) as usize];
        match inst {
            Inst::MovRI { dst, .. } => Inst::MovRI {
                dst,
                imm: self.rng.next_u64() as i64,
            },
            Inst::MovRR { src, .. } => Inst::MovRR { dst: gpr, src },
            Inst::Alu { dst, src, .. } => Inst::Alu {
                op: ALU_OPS[self.below(8) as usize],
                dst,
                src,
            },
            Inst::Load { dst, mem, .. } => Inst::Load {
                dst,
                mem,
                width: WIDTHS[self.below(4) as usize],
            },
            Inst::Store { mem, src, width } => match self.below(2) {
                0 => Inst::Store {
                    mem: self.redisp(mem, false),
                    src,
                    width,
                },
                _ => Inst::Store {
                    mem,
                    src: gpr,
                    width,
                },
            },
            Inst::AluLoad {
                dst, mem, width, ..
            } => Inst::AluLoad {
                op: ALU_OPS[self.below(5) as usize],
                dst,
                mem,
                width,
            },
            Inst::AluStore { op, mem, width, .. } => Inst::AluStore {
                op,
                mem,
                src: self.small_imm(),
                width,
            },
            Inst::Mul { dst, .. } => Inst::Mul {
                dst,
                src: self.small_imm(),
            },
            Inst::Cmp { a, .. } => Inst::Cmp {
                a,
                b: self.small_imm(),
            },
            Inst::Test { a, .. } => Inst::Test {
                a,
                b: self.small_imm(),
            },
            Inst::VAlu { dst, src, .. } => Inst::VAlu {
                op: VEC_OPS[self.below(VEC_OPS.len() as u64) as usize],
                dst,
                src,
            },
            Inst::VAluLoad { dst, mem, .. } => Inst::VAluLoad {
                op: VEC_OPS[self.below(VEC_OPS.len() as u64) as usize],
                dst,
                mem,
            },
            Inst::VLoad { dst, mem } => Inst::VLoad {
                dst,
                mem: self.redisp(mem, true),
            },
            Inst::VStore { mem, src } => Inst::VStore {
                mem: self.redisp(mem, true),
                src,
            },
            Inst::Lea { mem, .. } => Inst::Lea { dst: gpr, mem },
            Inst::Clflush { mem } => Inst::Clflush {
                mem: self.redisp(mem, false),
            },
            // MSR ops: only the data register may move, never the MSR
            // number. Everything else is left untouched.
            Inst::Wrmsr { msr, .. } => Inst::Wrmsr { msr, src: gpr },
            Inst::Rdmsr { msr, .. } => Inst::Rdmsr { dst: gpr, msr },
            other => other,
        }
    }

    /// Produces one mutated candidate program (validity not yet checked).
    fn candidate(&mut self, base: &FuzzInput, other: Option<&FuzzInput>) -> GenProgram {
        let mut gp = base.program.clone();
        let idxs = Self::mutable_indices(&gp.ops);
        match self.below(6) {
            // Opcode flip: replace one instruction with a fresh draw.
            0 if !idxs.is_empty() => {
                let at = idxs[self.below(idxs.len() as u64) as usize];
                let fresh = self.fresh_ops();
                gp.ops.splice(at..=at, fresh);
            }
            // Insertion.
            1 => {
                let at = self.below(gp.ops.len() as u64 + 1) as usize;
                let fresh = self.fresh_ops();
                gp.ops.splice(at..at, fresh);
            }
            // Deletion.
            2 if !idxs.is_empty() => {
                let at = idxs[self.below(idxs.len() as u64) as usize];
                gp.ops.remove(at);
            }
            // Block duplication: copy a contiguous label-free run right
            // after itself (stresses µop-cache windows and the decode
            // memo with repeated byte patterns at shifted addresses).
            3 if !idxs.is_empty() => {
                let start = idxs[self.below(idxs.len() as u64) as usize];
                let want = 1 + self.below(MAX_DUP as u64) as usize;
                let mut end = start;
                while end < gp.ops.len()
                    && end - start < want
                    && !matches!(gp.ops[end], GenOp::Label(_))
                {
                    end += 1;
                }
                let block: Vec<GenOp> = gp.ops[start..end].to_vec();
                gp.ops.splice(end..end, block);
            }
            // Splice: prefix of this program + suffix of another corpus
            // entry. The donor's labels are renumbered past ours; any
            // reference left dangling binds just before the trailing
            // `hlt`, so spliced control flow still terminates.
            4 => {
                if let Some(o) = other {
                    let cut_a = self.below(gp.ops.len() as u64 + 1) as usize;
                    let donor = &o.program;
                    let cut_b = self.below(donor.ops.len() as u64 + 1) as usize;
                    let shift = gp.labels;
                    gp.ops.truncate(cut_a);
                    gp.ops.extend(donor.ops[cut_b..].iter().map(|op| match *op {
                        GenOp::Label(l) => GenOp::Label(l + shift),
                        GenOp::JmpTo(l) => GenOp::JmpTo(l + shift),
                        GenOp::JccTo(cc, l) => GenOp::JccTo(cc, l + shift),
                        GenOp::CallTo(l) => GenOp::CallTo(l + shift),
                        GenOp::MovLabelAddr(r, l) => GenOp::MovLabelAddr(r, l + shift),
                        plain => plain,
                    }));
                    gp.labels += donor.labels;
                }
            }
            // Operand flip (also retargets conditional branches).
            _ => {
                if !idxs.is_empty() {
                    let at = idxs[self.below(idxs.len() as u64) as usize];
                    gp.ops[at] = match gp.ops[at] {
                        GenOp::Plain(i) => GenOp::Plain(self.flip_operand(i)),
                        GenOp::JccTo(_, l) => GenOp::JccTo(Cc::ALL[self.below(12) as usize], l),
                        keep => keep,
                    };
                }
            }
        }
        gp
    }

    /// Mutates `input`, optionally splicing against `other`, over an
    /// `n_legs` mode matrix. Tries up to `MAX_TRIES` candidates and
    /// returns the first that still assembles and still halts in the
    /// reference; if none does (rare), returns `input` unchanged. Always
    /// terminates, and a fixed mutator state yields a byte-identical
    /// result.
    pub fn mutate(
        &mut self,
        input: &FuzzInput,
        other: Option<&FuzzInput>,
        n_legs: usize,
    ) -> FuzzInput {
        // Occasionally perturb only the leg mask: same program, fewer or
        // different decode modes. Always valid, so no retry loop.
        if self.below(8) == 0 && n_legs > 1 {
            let bit = 1u32 << self.below(n_legs as u64);
            let mask = input.leg_mask ^ bit;
            return FuzzInput {
                program: input.program.clone(),
                leg_mask: if mask == 0 { mask_all(n_legs) } else { mask },
            };
        }
        for _ in 0..MAX_TRIES {
            let gp = self.candidate(input, other);
            let Ok(p) = gp.assemble() else { continue };
            if !reference_halts(&p) {
                continue;
            }
            return FuzzInput {
                program: gp,
                leg_mask: input.leg_mask,
            };
        }
        input.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;

    fn seed_input(seed: u64) -> FuzzInput {
        FuzzInput::full_matrix(Generator::new(seed).program(), 19)
    }

    /// Every accepted mutant still assembles and still halts — over many
    /// chained mutations, so operator interactions are exercised too.
    #[test]
    fn mutants_assemble_and_halt() {
        let mut m = Mutator::new(0xC0FFEE);
        let donor = seed_input(11);
        let mut cur = seed_input(3);
        for step in 0..60 {
            cur = m.mutate(&cur, Some(&donor), 19);
            let p = cur
                .program
                .assemble()
                .unwrap_or_else(|e| panic!("step {step}: {e:?}\n{}", cur.program.to_asm()));
            assert!(
                reference_halts(&p),
                "step {step}: mutant no longer halts:\n{}",
                cur.program.to_asm()
            );
            assert_ne!(cur.leg_mask, 0, "leg mask must stay nonzero");
        }
    }

    /// Fixed seed → byte-identical mutant (asm text compared, since that
    /// is the persisted corpus format).
    #[test]
    fn mutation_is_deterministic() {
        let base = seed_input(5);
        let donor = seed_input(9);
        let run = || {
            let mut m = Mutator::new(0xDEAD_BEEF);
            let mut cur = base.clone();
            let mut transcript = String::new();
            for _ in 0..25 {
                cur = m.mutate(&cur, Some(&donor), 19);
                transcript.push_str(&cur.program.to_asm());
                transcript.push_str(&format!("mask={:#x}\n", cur.leg_mask));
            }
            transcript
        };
        assert_eq!(run(), run());
    }

    /// The splice operator renumbers donor labels, so a spliced program
    /// never aliases two bindings of one label id.
    #[test]
    fn splice_keeps_labels_disjoint() {
        let mut m = Mutator::new(1);
        let a = seed_input(21);
        let b = seed_input(22);
        for _ in 0..40 {
            let out = m.mutate(&a, Some(&b), 19);
            let max_ref = out
                .program
                .ops
                .iter()
                .filter_map(|op| match *op {
                    GenOp::Label(l)
                    | GenOp::JmpTo(l)
                    | GenOp::JccTo(_, l)
                    | GenOp::CallTo(l)
                    | GenOp::MovLabelAddr(_, l) => Some(l),
                    _ => None,
                })
                .max();
            if let Some(l) = max_ref {
                assert!(l < out.program.labels, "label {l} out of range");
            }
        }
    }

    #[test]
    fn mask_all_covers_matrix() {
        assert_eq!(mask_all(1), 1);
        assert_eq!(mask_all(19), (1 << 19) - 1);
        assert_eq!(mask_all(32), u32::MAX);
    }
}
