//! # csd-difftest — differential cosimulation for the CSD pipeline
//!
//! CSD's premise is that decoder-level rewriting — stealth decoy
//! injection, selective devectorization, microcode patches, decode
//! memoization — is *semantics-preserving*. This crate proves it
//! continuously:
//!
//! - [`mod@reference`]: an architectural interpreter executing mx86 macro-ops
//!   directly (no µops, no timing, no caches) as the ground-truth oracle;
//! - [`generator`]: a deterministic, SplitMix64-seeded random program
//!   generator whose outputs always terminate;
//! - [`harness`]: runs each program through the cycle-level pipeline
//!   under every leg of the CSD mode matrix (stealth × devec × memo ×
//!   µop-cache, functional and cycle timing, plus a snapshot/restore
//!   leg) and compares final architectural state, the
//!   retired-instruction partition, and the ordered store stream;
//! - [`mod@shrink`]: greedily minimizes any diverging program to a small
//!   reassemblable reproducer.
//!
//! The bounded entry point lives in `tests/`; the long-run fuzzer is the
//! `difftest` binary (`--seed`, `--programs`, `--modes`).

#![warn(missing_docs)]

pub mod generator;
pub mod harness;
pub mod reference;
pub mod shrink;

pub use generator::{GenOp, GenProgram, Generator};
pub use harness::{cosim, mode_matrix, CosimResult, Divergence, InjectedBug, ModeLeg};
pub use reference::{RefCpu, RefOutcome, StoreRecord};
pub use shrink::{shrink, Shrunk};
