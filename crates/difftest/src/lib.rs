//! # csd-difftest — differential cosimulation for the CSD pipeline
//!
//! CSD's premise is that decoder-level rewriting — stealth decoy
//! injection, selective devectorization, microcode patches, decode
//! memoization — is *semantics-preserving*. This crate proves it
//! continuously:
//!
//! - [`mod@reference`]: an architectural interpreter executing mx86 macro-ops
//!   directly (no µops, no timing, no caches) as the ground-truth oracle;
//! - [`generator`]: a deterministic, SplitMix64-seeded random program
//!   generator whose outputs always terminate;
//! - [`harness`]: runs each program through the cycle-level pipeline
//!   under every leg of the CSD mode matrix (stealth × devec × memo ×
//!   µop-cache, functional and cycle timing, plus a snapshot/restore
//!   leg) and compares final architectural state, the
//!   retired-instruction partition, and the ordered store stream;
//! - [`mod@shrink`]: greedily minimizes any diverging program to a small
//!   reassemblable reproducer;
//! - [`asm`]: parses the printed reassemblable assembly back into IR;
//! - [`mutate`]: seeded mutation operators over generator IR (opcode and
//!   operand flips, insertion/deletion, block duplication, splicing,
//!   leg-mask perturbation) whose accepted mutants always assemble and
//!   always terminate;
//! - [`corpus`]: the persistent regression corpus — content-addressed
//!   `.asm` + `.json` pairs under `tests/corpus/`, replayed as a tier-1
//!   test on every `cargo test`;
//! - [`mod@fuzz`]: the coverage-guided campaign loop tying it together —
//!   structural coverage (µop×mode matrix, context-key edges, gate and
//!   stealth bins, memo/µop-cache outcomes, divergence classes) decides
//!   which mutants survive, and survivors are shrunk and persisted.
//!
//! The bounded entry point lives in `tests/`; the long-run random fuzzer
//! is the `difftest` binary (`--seed`, `--programs`, `--modes`), and the
//! coverage-guided fuzzer is the `fuzz` binary (`--seed`, `--iters`,
//! `--corpus`, `--modes`).

#![warn(missing_docs)]

pub mod asm;
pub mod corpus;
pub mod fuzz;
pub mod generator;
pub mod harness;
pub mod mutate;
pub mod reference;
pub mod shrink;

pub use asm::parse_asm;
pub use corpus::{default_corpus_dir, fnv1a64, load_corpus, CorpusEntry, CORPUS_SCHEMA};
pub use fuzz::{active_legs, fuzz, FuzzConfig, FuzzOutcome};
pub use generator::{GenOp, GenProgram, Generator};
pub use harness::{
    cosim, cosim_with_coverage, mode_matrix, reference_halts, CosimResult, Divergence,
    DivergenceClass, InjectedBug, ModeLeg, STEALTH_WATCHDOG,
};
pub use mutate::{mask_all, FuzzInput, Mutator};
pub use reference::{RefCpu, RefOutcome, StoreRecord};
pub use shrink::{shrink, shrink_with, Shrunk};
