//! Cosimulation harness: runs one program through the cycle-level
//! pipeline under every leg of the CSD mode matrix and compares the final
//! architectural state, the retired-instruction partition, and the
//! ordered store stream against the [`crate::reference`] interpreter.

use crate::generator::{CODE_BASE, DATA_BASE, DATA_SIZE, STACK_TOP};
use crate::reference::{RefCpu, RefOutcome, StoreRecord};
use csd::{
    ContextId, CsdConfig, DevecThresholds, MicrocodeUpdate, OpcodeClass, PrivilegeLevel, VpuPolicy,
};
use csd_pipeline::{Core, CoreConfig, SimMode};
use csd_telemetry::{EventSink, StoreEvent};
use mx86_isa::AddrRange as TaintRange;
use mx86_isa::Program;
use std::sync::{Arc, Mutex};

/// Retirement budget per leg (applied identically to the reference).
pub const MAX_INSTS: u64 = 200_000;

/// One decoder configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeLeg {
    /// Stealth-mode decoy translation (and DIFT) enabled.
    pub stealth: bool,
    /// Selective devectorization (CSD VPU gating) enabled.
    pub devec: bool,
    /// Decode memoization enabled.
    pub memo: bool,
    /// µop cache enabled.
    pub ucache: bool,
    /// Cycle-level timing model (vs functional).
    pub cycle: bool,
    /// Snapshot mid-program, run to completion, restore, run again.
    pub snapshot: bool,
}

impl ModeLeg {
    /// Short leg name for reports: `s`tealth, `d`evec, `m`emo, `u`cache,
    /// with a mode prefix.
    pub fn name(&self) -> String {
        let mut s = String::from(if self.cycle { "cyc" } else { "fun" });
        if self.snapshot {
            s.push_str("-snap");
        }
        s.push('-');
        for (on, c) in [
            (self.stealth, 's'),
            (self.devec, 'd'),
            (self.memo, 'm'),
            (self.ucache, 'u'),
        ] {
            s.push(if on { c } else { '.' });
        }
        s
    }
}

/// The full mode matrix: all 16 functional stealth × devec × memo ×
/// µop-cache combinations, two cycle-accurate legs (everything off /
/// everything on), and a snapshot/restore leg — 19 legs.
pub fn mode_matrix() -> Vec<ModeLeg> {
    let mut legs = Vec::new();
    for bits in 0..16u32 {
        legs.push(ModeLeg {
            stealth: bits & 1 != 0,
            devec: bits & 2 != 0,
            memo: bits & 4 != 0,
            ucache: bits & 8 != 0,
            cycle: false,
            snapshot: false,
        });
    }
    for on in [false, true] {
        legs.push(ModeLeg {
            stealth: on,
            devec: on,
            memo: on,
            ucache: on,
            cycle: true,
            snapshot: false,
        });
    }
    legs.push(ModeLeg {
        stealth: true,
        devec: true,
        memo: true,
        ucache: true,
        cycle: false,
        snapshot: true,
    });
    legs
}

/// A deliberately corrupted translation, installed through the MCU
/// auto-translation path. Used by tests to prove the harness catches and
/// shrinks decoder bugs; `None` in normal operation.
#[derive(Debug, Clone)]
pub struct InjectedBug {
    /// The macro-op class whose translation is replaced.
    pub target: OpcodeClass,
    /// The (wrong) replacement body.
    pub body: Vec<mx86_isa::Inst>,
}

/// One observed divergence between a pipeline leg and the reference.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Leg that diverged.
    pub leg: String,
    /// What differed.
    pub detail: String,
}

/// Result of cosimulating one program across the matrix.
#[derive(Debug, Clone)]
pub struct CosimResult {
    /// Instructions the reference retired.
    pub ref_insts: u64,
    /// Divergences (empty = all legs agree with the reference).
    pub divergences: Vec<Divergence>,
}

impl CosimResult {
    /// Whether every leg matched the reference.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }
}

#[derive(Default)]
struct StoreCollector(Arc<Mutex<Vec<StoreRecord>>>);

impl EventSink for StoreCollector {
    fn on_store(&mut self, ev: &StoreEvent) {
        self.0.lock().unwrap().push(StoreRecord {
            addr: ev.addr,
            len: ev.len,
            value: ev.value,
        });
    }
}

fn build_core(program: &Program, leg: &ModeLeg, bug: Option<&InjectedBug>) -> Core {
    let cfg = CoreConfig {
        dift_enabled: leg.stealth,
        uop_cache_enabled: leg.ucache,
        decode_memo_enabled: leg.memo,
        ..CoreConfig::default()
    };
    let csd_cfg = CsdConfig {
        vpu_policy: if leg.devec {
            VpuPolicy::CsdDevec(DevecThresholds {
                window: 8,
                low: 1,
                high: 16,
            })
        } else {
            VpuPolicy::AlwaysOn
        },
        ..CsdConfig::default()
    };
    let mode = if leg.cycle {
        SimMode::Cycle
    } else {
        SimMode::Functional
    };
    let mut core = Core::new(cfg, csd_cfg, program.clone(), mode);
    if leg.stealth {
        // Program the decoy ranges over a slice of the data region and
        // the code head, taint the data region, and arm stealth with the
        // DIFT trigger — literally the recipe the crypto victims use.
        csd_crypto::arm_stealth(
            &mut core,
            &[TaintRange::new(DATA_BASE, DATA_BASE + 128)],
            &[TaintRange::new(CODE_BASE, CODE_BASE + 128)],
            200,
        );
        core.dift_mut()
            .taint_memory(TaintRange::new(DATA_BASE, DATA_BASE + DATA_SIZE));
    }
    if let Some(b) = bug {
        let update = MicrocodeUpdate::new(1, b.target, ContextId::Custom(0), true, b.body.clone());
        core.engine_mut()
            .apply_microcode_update(&update, PrivilegeLevel::Kernel)
            .expect("injected MCU must verify");
        core.engine_mut().set_custom_mode(Some(0));
    }
    core
}

fn compare(
    core: &Core,
    cpu: &RefCpu,
    stores: Option<&[StoreRecord]>,
    leg: &ModeLeg,
) -> Vec<Divergence> {
    let mut d = Vec::new();
    let diverge = |detail: String| Divergence {
        leg: leg.name(),
        detail,
    };
    let stats = core.stats();
    if !core.halted() {
        d.push(diverge(format!(
            "pipeline did not halt within {MAX_INSTS} insts (retired {})",
            stats.insts
        )));
        return d;
    }
    if stats.insts != cpu.retired {
        d.push(diverge(format!(
            "retired {} insts, reference retired {}",
            stats.insts, cpu.retired
        )));
    }
    let part = stats.uop_cache_insts + stats.legacy_insts + stats.msrom_insts;
    if part != stats.insts {
        d.push(diverge(format!(
            "retired-inst partition {} + {} + {} != {}",
            stats.uop_cache_insts, stats.legacy_insts, stats.msrom_insts, stats.insts
        )));
    }
    for (i, g) in mx86_isa::Gpr::ALL.iter().enumerate() {
        let (got, want) = (core.state.gprs[i], cpu.gprs[i]);
        if got != want {
            d.push(diverge(format!(
                "{g}: pipeline {got:#x}, reference {want:#x}"
            )));
        }
    }
    for i in 0..16 {
        let (got, want) = (core.state.xmms[i], cpu.xmms[i]);
        if got != want {
            d.push(diverge(format!(
                "xmm{i}: pipeline {got:?}, reference {want:?}"
            )));
        }
    }
    if core.state.flags != cpu.flags {
        d.push(diverge(format!(
            "flags: pipeline {:?}, reference {:?}",
            core.state.flags, cpu.flags
        )));
    }
    for (base, len, what) in [
        (DATA_BASE, DATA_SIZE as usize, "data region"),
        (STACK_TOP - 0x1000, 0x1000, "stack"),
    ] {
        let got = core.mem.read_bytes(base, len);
        let want = cpu.mem.read_bytes(base, len);
        if got != want {
            let off = got.iter().zip(&want).position(|(a, b)| a != b).unwrap_or(0);
            d.push(diverge(format!(
                "{what} byte at {:#x}: pipeline {:#04x}, reference {:#04x}",
                base + off as u64,
                got[off],
                want[off]
            )));
        }
    }
    if let Some(stores) = stores {
        if stores != cpu.stores.as_slice() {
            let n = stores
                .iter()
                .zip(&cpu.stores)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| stores.len().min(cpu.stores.len()));
            d.push(diverge(format!(
                "store stream differs at index {n}: pipeline {:?}, reference {:?} ({} vs {} stores)",
                stores.get(n),
                cpu.stores.get(n),
                stores.len(),
                cpu.stores.len()
            )));
        }
    }
    d
}

fn run_leg(
    program: &Program,
    leg: &ModeLeg,
    cpu: &RefCpu,
    bug: Option<&InjectedBug>,
) -> Vec<Divergence> {
    let mut core = build_core(program, leg, bug);
    let stores = Arc::new(Mutex::new(Vec::new()));
    core.set_event_sink(Box::new(StoreCollector(Arc::clone(&stores))));

    if leg.snapshot {
        // Run half the program, snapshot, finish; then rewind to the
        // checkpoint and finish again. Both completions must match the
        // reference (and therefore each other).
        let half = cpu.retired / 2;
        core.run(half.max(1));
        let snap = core.snapshot();
        core.run(MAX_INSTS);
        let first = compare(&core, cpu, Some(&stores.lock().unwrap()), leg);
        if !first.is_empty() {
            return first;
        }
        core.restore(&snap);
        core.run(MAX_INSTS);
        // The restored run re-executes only the second half, so its
        // collected store stream intentionally differs; the full-stream
        // check above already pinned ordering. Compare architectural
        // state and the retirement count only.
        return compare(&core, cpu, None, leg);
    }

    core.run(MAX_INSTS);
    let collected = stores.lock().unwrap().clone();
    compare(&core, cpu, Some(&collected), leg)
}

/// Runs one program across `legs` and compares each against the
/// reference interpreter.
pub fn cosim(program: &Program, legs: &[ModeLeg], bug: Option<&InjectedBug>) -> CosimResult {
    let mut cpu = RefCpu::new(program.entry());
    let out = cpu.run(program, MAX_INSTS);
    let mut divergences = Vec::new();
    if out != RefOutcome::Halted {
        // A program the reference cannot finish is not a usable input;
        // report it as a (non-leg) divergence so generators/shrinkers
        // reject it.
        divergences.push(Divergence {
            leg: "reference".into(),
            detail: format!("reference outcome {out:?}"),
        });
        return CosimResult {
            ref_insts: cpu.retired,
            divergences,
        };
    }
    for leg in legs {
        divergences.extend(run_leg(program, leg, &cpu, bug));
    }
    CosimResult {
        ref_insts: cpu.retired,
        divergences,
    }
}

/// Whether the reference itself can complete the program (used by the
/// shrinker to reject variants that no longer terminate).
pub fn reference_halts(program: &Program) -> bool {
    let mut cpu = RefCpu::new(program.entry());
    cpu.run(program, MAX_INSTS) == RefOutcome::Halted
}
