//! Cosimulation harness: runs one program through the cycle-level
//! pipeline under every leg of the CSD mode matrix and compares the final
//! architectural state, the retired-instruction partition, and the
//! ordered store stream against the [`crate::reference`] interpreter.

use crate::generator::{CODE_BASE, DATA_BASE, DATA_SIZE, STACK_TOP};
use crate::reference::{RefCpu, RefOutcome, StoreRecord};
use csd::{
    ContextId, CsdConfig, DevecThresholds, MicrocodeUpdate, OpcodeClass, PrivilegeLevel, VpuPolicy,
};
use csd_exp::{Leg, LegMode};
use csd_pipeline::{Core, CoreConfig, SimMode};
use csd_telemetry::{CoverageMap, CoverageSink, EventSink, StoreEvent, UopCacheEvent};
use mx86_isa::AddrRange as TaintRange;
use mx86_isa::Program;
use std::sync::{Arc, Mutex};

/// Retirement budget per leg (applied identically to the reference).
pub const MAX_INSTS: u64 = 200_000;

/// Stealth watchdog period armed by stealth legs — the same value the
/// harness passes to `csd_crypto::arm_stealth` and the one
/// [`ModeLeg::exp_legs`] records in corpus metadata.
pub const STEALTH_WATCHDOG: u64 = 200;

/// One decoder configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeLeg {
    /// Stealth-mode decoy translation (and DIFT) enabled.
    pub stealth: bool,
    /// Selective devectorization (CSD VPU gating) enabled.
    pub devec: bool,
    /// Decode memoization enabled.
    pub memo: bool,
    /// µop cache enabled.
    pub ucache: bool,
    /// Cycle-level timing model (vs functional).
    pub cycle: bool,
    /// Snapshot mid-program, run to completion, restore, run again.
    pub snapshot: bool,
}

impl ModeLeg {
    /// Short leg name for reports: `s`tealth, `d`evec, `m`emo, `u`cache,
    /// with a mode prefix.
    pub fn name(&self) -> String {
        let mut s = String::from(if self.cycle { "cyc" } else { "fun" });
        if self.snapshot {
            s.push_str("-snap");
        }
        s.push('-');
        for (on, c) in [
            (self.stealth, 's'),
            (self.devec, 'd'),
            (self.memo, 'm'),
            (self.ucache, 'u'),
        ] {
            s.push(if on { c } else { '.' });
        }
        s
    }

    /// The leg as typed `csd-exp` legs — the decode-context changes it
    /// applies, in the experiment spec's grammar. Corpus entries persist
    /// these so reproducer metadata shares one parser
    /// (`csd_exp::Leg::from_json`) with the serving layer. Memoization,
    /// the µop cache, timing mode, and snapshotting are pipeline
    /// configuration with no decode-context equivalent, so a leg that
    /// only varies those maps to a single base leg. Note the devec leg
    /// names the `csd-devec` policy *family*; the harness itself pins
    /// more aggressive thresholds (window 8) so short programs gate.
    pub fn exp_legs(&self) -> Vec<Leg> {
        let mut legs = Vec::new();
        if self.stealth {
            legs.push(Leg::new(LegMode::Stealth {
                watchdog: STEALTH_WATCHDOG,
            }));
        }
        if self.devec {
            legs.push(Leg::new(LegMode::Devec {
                policy: "csd-devec".to_string(),
            }));
        }
        if legs.is_empty() {
            legs.push(Leg::new(LegMode::Base));
        }
        legs
    }
}

/// The full mode matrix: all 16 functional stealth × devec × memo ×
/// µop-cache combinations, two cycle-accurate legs (everything off /
/// everything on), and a snapshot/restore leg — 19 legs.
pub fn mode_matrix() -> Vec<ModeLeg> {
    let mut legs = Vec::new();
    for bits in 0..16u32 {
        legs.push(ModeLeg {
            stealth: bits & 1 != 0,
            devec: bits & 2 != 0,
            memo: bits & 4 != 0,
            ucache: bits & 8 != 0,
            cycle: false,
            snapshot: false,
        });
    }
    for on in [false, true] {
        legs.push(ModeLeg {
            stealth: on,
            devec: on,
            memo: on,
            ucache: on,
            cycle: true,
            snapshot: false,
        });
    }
    legs.push(ModeLeg {
        stealth: true,
        devec: true,
        memo: true,
        ucache: true,
        cycle: false,
        snapshot: true,
    });
    legs
}

/// A deliberately corrupted translation, installed through the MCU
/// auto-translation path. Used by tests to prove the harness catches and
/// shrinks decoder bugs; `None` in normal operation.
#[derive(Debug, Clone)]
pub struct InjectedBug {
    /// The macro-op class whose translation is replaced.
    pub target: OpcodeClass,
    /// The (wrong) replacement body.
    pub body: Vec<mx86_isa::Inst>,
}

/// What kind of mismatch a [`Divergence`] is — a stable, coarse label
/// the fuzzer bins coverage by and the corpus records, so a shrunk
/// reproducer can be checked to still fail *the same way*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceClass {
    /// The reference interpreter itself could not finish the program.
    Reference,
    /// A pipeline leg did not halt within the retirement budget.
    NoHalt,
    /// Retired-instruction counts differ.
    Retired,
    /// The µop-cache/legacy/MSROM retirement partition doesn't add up.
    Partition,
    /// A general-purpose register differs.
    Gpr,
    /// A vector register differs.
    Xmm,
    /// The flags register differs.
    Flags,
    /// Final memory differs (data region or stack).
    Mem,
    /// The ordered store stream differs.
    Stores,
}

impl DivergenceClass {
    /// Stable class name (used in coverage bins and corpus JSON).
    pub fn name(self) -> &'static str {
        match self {
            DivergenceClass::Reference => "reference",
            DivergenceClass::NoHalt => "nohalt",
            DivergenceClass::Retired => "retired",
            DivergenceClass::Partition => "partition",
            DivergenceClass::Gpr => "gpr",
            DivergenceClass::Xmm => "xmm",
            DivergenceClass::Flags => "flags",
            DivergenceClass::Mem => "mem",
            DivergenceClass::Stores => "stores",
        }
    }

    /// Parses a class from its stable name.
    pub fn from_name(name: &str) -> Option<DivergenceClass> {
        [
            DivergenceClass::Reference,
            DivergenceClass::NoHalt,
            DivergenceClass::Retired,
            DivergenceClass::Partition,
            DivergenceClass::Gpr,
            DivergenceClass::Xmm,
            DivergenceClass::Flags,
            DivergenceClass::Mem,
            DivergenceClass::Stores,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// One observed divergence between a pipeline leg and the reference.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Leg that diverged.
    pub leg: String,
    /// What kind of mismatch.
    pub class: DivergenceClass,
    /// What differed.
    pub detail: String,
}

/// Result of cosimulating one program across the matrix.
#[derive(Debug, Clone)]
pub struct CosimResult {
    /// Instructions the reference retired.
    pub ref_insts: u64,
    /// Divergences (empty = all legs agree with the reference).
    pub divergences: Vec<Divergence>,
}

impl CosimResult {
    /// Whether every leg matched the reference.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Distinct divergence class names, in first-observed order.
    pub fn classes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for d in &self.divergences {
            if !out.contains(&d.class.name()) {
                out.push(d.class.name());
            }
        }
        out
    }
}

/// The core-side sink a leg runs under: collects the ordered store
/// stream the harness compares, and forwards µop-cache probes to the
/// coverage map when one is being filled.
#[derive(Default)]
struct LegSink {
    stores: Arc<Mutex<Vec<StoreRecord>>>,
    coverage: Option<CoverageSink>,
}

impl EventSink for LegSink {
    fn on_store(&mut self, ev: &StoreEvent) {
        self.stores.lock().unwrap().push(StoreRecord {
            addr: ev.addr,
            len: ev.len,
            value: ev.value,
        });
    }

    fn on_uop_cache(&mut self, ev: &UopCacheEvent) {
        if let Some(c) = &mut self.coverage {
            c.on_uop_cache(ev);
        }
    }
}

fn build_core(program: &Program, leg: &ModeLeg, bug: Option<&InjectedBug>) -> Core {
    let cfg = CoreConfig {
        dift_enabled: leg.stealth,
        uop_cache_enabled: leg.ucache,
        decode_memo_enabled: leg.memo,
        ..CoreConfig::default()
    };
    let csd_cfg = CsdConfig {
        vpu_policy: if leg.devec {
            VpuPolicy::CsdDevec(DevecThresholds {
                window: 8,
                low: 1,
                high: 16,
            })
        } else {
            VpuPolicy::AlwaysOn
        },
        ..CsdConfig::default()
    };
    let mode = if leg.cycle {
        SimMode::Cycle
    } else {
        SimMode::Functional
    };
    let mut core = Core::new(cfg, csd_cfg, program.clone(), mode);
    if leg.stealth {
        // Program the decoy ranges over a slice of the data region and
        // the code head, taint the data region, and arm stealth with the
        // DIFT trigger — literally the recipe the crypto victims use.
        csd_crypto::arm_stealth(
            &mut core,
            &[TaintRange::new(DATA_BASE, DATA_BASE + 128)],
            &[TaintRange::new(CODE_BASE, CODE_BASE + 128)],
            STEALTH_WATCHDOG,
        );
        core.dift_mut()
            .taint_memory(TaintRange::new(DATA_BASE, DATA_BASE + DATA_SIZE));
    }
    if let Some(b) = bug {
        let update = MicrocodeUpdate::new(1, b.target, ContextId::Custom(0), true, b.body.clone());
        core.engine_mut()
            .apply_microcode_update(&update, PrivilegeLevel::Kernel)
            .expect("injected MCU must verify");
        core.engine_mut().set_custom_mode(Some(0));
    }
    core
}

fn compare(
    core: &Core,
    cpu: &RefCpu,
    stores: Option<&[StoreRecord]>,
    leg: &ModeLeg,
) -> Vec<Divergence> {
    let mut d = Vec::new();
    let diverge = |class: DivergenceClass, detail: String| Divergence {
        leg: leg.name(),
        class,
        detail,
    };
    let stats = core.stats();
    if !core.halted() {
        d.push(diverge(
            DivergenceClass::NoHalt,
            format!(
                "pipeline did not halt within {MAX_INSTS} insts (retired {})",
                stats.insts
            ),
        ));
        return d;
    }
    if stats.insts != cpu.retired {
        d.push(diverge(
            DivergenceClass::Retired,
            format!(
                "retired {} insts, reference retired {}",
                stats.insts, cpu.retired
            ),
        ));
    }
    let part = stats.uop_cache_insts + stats.legacy_insts + stats.msrom_insts;
    if part != stats.insts {
        d.push(diverge(
            DivergenceClass::Partition,
            format!(
                "retired-inst partition {} + {} + {} != {}",
                stats.uop_cache_insts, stats.legacy_insts, stats.msrom_insts, stats.insts
            ),
        ));
    }
    for (i, g) in mx86_isa::Gpr::ALL.iter().enumerate() {
        let (got, want) = (core.state.gprs[i], cpu.gprs[i]);
        if got != want {
            d.push(diverge(
                DivergenceClass::Gpr,
                format!("{g}: pipeline {got:#x}, reference {want:#x}"),
            ));
        }
    }
    for i in 0..16 {
        let (got, want) = (core.state.xmms[i], cpu.xmms[i]);
        if got != want {
            d.push(diverge(
                DivergenceClass::Xmm,
                format!("xmm{i}: pipeline {got:?}, reference {want:?}"),
            ));
        }
    }
    if core.state.flags != cpu.flags {
        d.push(diverge(
            DivergenceClass::Flags,
            format!(
                "flags: pipeline {:?}, reference {:?}",
                core.state.flags, cpu.flags
            ),
        ));
    }
    for (base, len, what) in [
        (DATA_BASE, DATA_SIZE as usize, "data region"),
        (STACK_TOP - 0x1000, 0x1000, "stack"),
    ] {
        let got = core.mem.read_bytes(base, len);
        let want = cpu.mem.read_bytes(base, len);
        if got != want {
            let off = got.iter().zip(&want).position(|(a, b)| a != b).unwrap_or(0);
            d.push(diverge(
                DivergenceClass::Mem,
                format!(
                    "{what} byte at {:#x}: pipeline {:#04x}, reference {:#04x}",
                    base + off as u64,
                    got[off],
                    want[off]
                ),
            ));
        }
    }
    if let Some(stores) = stores {
        if stores != cpu.stores.as_slice() {
            let n = stores
                .iter()
                .zip(&cpu.stores)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| stores.len().min(cpu.stores.len()));
            d.push(diverge(
                DivergenceClass::Stores,
                format!(
                "store stream differs at index {n}: pipeline {:?}, reference {:?} ({} vs {} stores)",
                stores.get(n),
                cpu.stores.get(n),
                stores.len(),
                cpu.stores.len()
            ),
            ));
        }
    }
    d
}

fn run_leg(
    program: &Program,
    leg: &ModeLeg,
    cpu: &RefCpu,
    bug: Option<&InjectedBug>,
    coverage: Option<&Arc<Mutex<CoverageMap>>>,
) -> Vec<Divergence> {
    let mut core = build_core(program, leg, bug);
    let stores = Arc::new(Mutex::new(Vec::new()));
    core.set_event_sink(Box::new(LegSink {
        stores: Arc::clone(&stores),
        coverage: coverage.map(|m| CoverageSink::new(Arc::clone(m))),
    }));
    if let Some(map) = coverage {
        // Engine-side events (decode contexts, µops, memo probes, key
        // causes, gate and stealth windows) land in the same shared map.
        // The context-edge cursor resets per leg so edges never span two
        // unrelated runs.
        if let Ok(mut m) = map.lock() {
            m.reset_edge_cursor();
        }
        core.engine_mut()
            .set_event_sink(Box::new(CoverageSink::new(Arc::clone(map))));
    }

    if leg.snapshot {
        // Run half the program, snapshot, finish; then rewind to the
        // checkpoint and finish again. Both completions must match the
        // reference (and therefore each other).
        let half = cpu.retired / 2;
        core.run(half.max(1));
        let snap = core.snapshot();
        core.run(MAX_INSTS);
        let first = compare(&core, cpu, Some(&stores.lock().unwrap()), leg);
        if !first.is_empty() {
            return first;
        }
        core.restore(&snap);
        core.run(MAX_INSTS);
        // The restored run re-executes only the second half, so its
        // collected store stream intentionally differs; the full-stream
        // check above already pinned ordering. Compare architectural
        // state and the retirement count only.
        return compare(&core, cpu, None, leg);
    }

    core.run(MAX_INSTS);
    let collected = stores.lock().unwrap().clone();
    compare(&core, cpu, Some(&collected), leg)
}

/// Runs one program across `legs` and compares each against the
/// reference interpreter.
pub fn cosim(program: &Program, legs: &[ModeLeg], bug: Option<&InjectedBug>) -> CosimResult {
    cosim_with_coverage(program, legs, bug, None)
}

/// [`cosim`], additionally folding structural coverage from every leg —
/// and a bin per observed divergence class — into `coverage`. The
/// coverage tap is events-only: the compared outcome is byte-identical
/// with and without it.
pub fn cosim_with_coverage(
    program: &Program,
    legs: &[ModeLeg],
    bug: Option<&InjectedBug>,
    coverage: Option<&Arc<Mutex<CoverageMap>>>,
) -> CosimResult {
    let mut cpu = RefCpu::new(program.entry());
    let out = cpu.run(program, MAX_INSTS);
    let mut divergences = Vec::new();
    if out != RefOutcome::Halted {
        // A program the reference cannot finish is not a usable input;
        // report it as a (non-leg) divergence so generators/shrinkers
        // reject it.
        divergences.push(Divergence {
            leg: "reference".into(),
            class: DivergenceClass::Reference,
            detail: format!("reference outcome {out:?}"),
        });
        return CosimResult {
            ref_insts: cpu.retired,
            divergences,
        };
    }
    for leg in legs {
        divergences.extend(run_leg(program, leg, &cpu, bug, coverage));
    }
    if let Some(map) = coverage {
        if let Ok(mut m) = map.lock() {
            for d in &divergences {
                m.record_divergence(d.class.name());
            }
        }
    }
    CosimResult {
        ref_insts: cpu.retired,
        divergences,
    }
}

/// Whether the reference itself can complete the program (used by the
/// shrinker to reject variants that no longer terminate).
pub fn reference_halts(program: &Program) -> bool {
    let mut cpu = RefCpu::new(program.entry());
    cpu.run(program, MAX_INSTS) == RefOutcome::Halted
}
