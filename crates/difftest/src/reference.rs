//! Architectural reference interpreter for mx86.
//!
//! Executes macro-ops directly against flat architectural state — no
//! µops, no timing, no caches, no CSD engine — and serves as the
//! ground-truth oracle for differential cosimulation. Scalar and packed
//! arithmetic reuse the pipeline's own [`csd_pipeline::alu`] /
//! [`csd_pipeline::mul`] / [`csd_pipeline::valu`] helpers, so the two
//! executions can only disagree through *decoding and sequencing*, which
//! is exactly the surface CSD rewrites.
//!
//! The one deliberately pinned instruction is `rdtsc`: its result is the
//! cycle counter, which no architectural model can predict, so the
//! reference writes 0 and the program generator never emits it.

use csd::MsrFile;
use csd_pipeline::{alu, mul, valu, Flags, Memory};
use mx86_isa::{Gpr, Inst, MemRef, Program, RegImm, Xmm};

/// One architectural store, in program order. Mirrors
/// [`csd_telemetry::StoreEvent`] (vector stores split into two 64-bit
/// halves, low half first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRecord {
    /// Effective address.
    pub addr: u64,
    /// Bytes written (1–8).
    pub len: u32,
    /// Value written, truncated to `len` bytes.
    pub value: u64,
}

/// Why the reference interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefOutcome {
    /// Executed a `hlt`.
    Halted,
    /// Instruction budget exhausted before `hlt`.
    Running,
    /// `rip` left the program (no instruction starts at this address).
    Fault(u64),
}

/// The reference machine: architectural registers, flags, flat memory,
/// and an MSR file with the same store-verbatim/read-back-zero semantics
/// as the CSD engine's.
#[derive(Debug, Clone)]
pub struct RefCpu {
    /// General-purpose registers.
    pub gprs: [u64; 16],
    /// Vector registers as (low, high) 64-bit halves.
    pub xmms: [(u64, u64); 16],
    /// Architectural flags.
    pub flags: Flags,
    /// Flat data memory.
    pub mem: Memory,
    /// Model-specific registers (plain storage; the reference attaches no
    /// behavior to CSD MSRs — they only reconfigure the *decoder*).
    pub msrs: MsrFile,
    /// Program counter.
    pub rip: u64,
    /// Retired macro-ops.
    pub retired: u64,
    /// Ordered stream of architectural stores.
    pub stores: Vec<StoreRecord>,
    halted: bool,
}

impl RefCpu {
    /// A reference machine positioned at `entry` with zeroed state.
    pub fn new(entry: u64) -> RefCpu {
        RefCpu {
            gprs: [0; 16],
            xmms: [(0, 0); 16],
            flags: Flags::default(),
            mem: Memory::default(),
            msrs: MsrFile::default(),
            rip: entry,
            retired: 0,
            stores: Vec::new(),
            halted: false,
        }
    }

    /// Whether the machine has executed `hlt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn gpr(&self, r: Gpr) -> u64 {
        self.gprs[r as usize]
    }

    fn set_gpr(&mut self, r: Gpr, v: u64) {
        self.gprs[r as usize] = v;
    }

    fn xmm(&self, r: Xmm) -> (u64, u64) {
        self.xmms[r.index()]
    }

    fn set_xmm(&mut self, r: Xmm, v: (u64, u64)) {
        self.xmms[r.index()] = v;
    }

    fn regimm(&self, ri: RegImm) -> u64 {
        match ri {
            RegImm::Reg(r) => self.gpr(r),
            RegImm::Imm(i) => i as u64,
        }
    }

    fn ea(&self, m: MemRef) -> u64 {
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.gpr(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.gpr(i).wrapping_mul(s.factor()));
        }
        a
    }

    fn store(&mut self, addr: u64, len: u64, v: u64) {
        self.mem.write_le(addr, len, v);
        self.stores.push(StoreRecord {
            addr,
            len: len as u32,
            value: if len >= 8 {
                v
            } else {
                v & ((1u64 << (8 * len)) - 1)
            },
        });
    }

    fn push(&mut self, v: u64) {
        let rsp = self.gpr(Gpr::Rsp).wrapping_sub(8);
        self.set_gpr(Gpr::Rsp, rsp);
        self.store(rsp, 8, v);
    }

    /// Executes one macro-op. A `Running` return means "keep stepping".
    pub fn step(&mut self, program: &Program) -> RefOutcome {
        if self.halted {
            return RefOutcome::Halted;
        }
        let Some(placed) = program.fetch(self.rip) else {
            return RefOutcome::Fault(self.rip);
        };
        let next = placed.next_addr();
        let mut rip = next;
        match placed.inst {
            Inst::Nop { .. } | Inst::Clflush { .. } => {}
            Inst::MovRR { dst, src } => {
                let v = self.gpr(src);
                self.set_gpr(dst, v);
            }
            Inst::MovRI { dst, imm } => self.set_gpr(dst, imm as u64),
            Inst::Load { dst, mem, width } => {
                let v = self.mem.read_le(self.ea(mem), width.bytes().min(8));
                self.set_gpr(dst, v);
            }
            Inst::Store { mem, src, width } => {
                let (a, v) = (self.ea(mem), self.gpr(src));
                self.store(a, width.bytes().min(8), v);
            }
            Inst::Lea { dst, mem } => {
                let a = self.ea(mem);
                self.set_gpr(dst, a);
            }
            Inst::Alu { op, dst, src } => {
                let (res, flags) = alu(op, self.gpr(dst), self.regimm(src));
                self.set_gpr(dst, res);
                self.flags = flags;
            }
            Inst::AluLoad {
                op,
                dst,
                mem,
                width,
            } => {
                let b = self.mem.read_le(self.ea(mem), width.bytes().min(8));
                let (res, flags) = alu(op, self.gpr(dst), b);
                self.set_gpr(dst, res);
                self.flags = flags;
            }
            Inst::AluStore {
                op,
                mem,
                src,
                width,
            } => {
                let a = self.ea(mem);
                let w = width.bytes().min(8);
                let t = self.mem.read_le(a, w);
                let (res, flags) = alu(op, t, self.regimm(src));
                self.store(a, w, res);
                self.flags = flags;
            }
            Inst::Mul { dst, src } => {
                let (res, flags) = mul(self.gpr(dst), self.regimm(src));
                self.set_gpr(dst, res);
                self.flags = flags;
            }
            Inst::Div { src } => {
                // Mirror the µop flow's staging exactly: the quotient
                // lands in RAX before the remainder step re-reads the
                // divisor, so `div rax` divides the *original* dividend by
                // itself but computes the remainder against the quotient.
                let a = self.gpr(Gpr::Rax);
                let b0 = self.gpr(src);
                let q = a.checked_div(b0).unwrap_or(0);
                self.set_gpr(Gpr::Rax, q);
                let b1 = self.gpr(src);
                let r = a.checked_rem(b1).unwrap_or(0);
                self.set_gpr(Gpr::Rdx, r);
                self.flags = Flags {
                    zf: r == 0,
                    sf: false,
                    cf: false,
                    of: false,
                };
            }
            Inst::Cmp { a, b } => {
                let (_, flags) = alu(mx86_isa::AluOp::Sub, self.gpr(a), self.regimm(b));
                self.flags = flags;
            }
            Inst::Test { a, b } => {
                let (_, flags) = alu(mx86_isa::AluOp::And, self.gpr(a), self.regimm(b));
                self.flags = flags;
            }
            Inst::Jmp { target } => rip = target,
            Inst::Jcc { cc, target } => {
                if self.flags.eval(cc) {
                    rip = target;
                }
            }
            Inst::JmpInd { reg } => rip = self.gpr(reg),
            Inst::Call { target } => {
                self.push(next);
                rip = target;
            }
            Inst::Ret => {
                let rsp = self.gpr(Gpr::Rsp);
                let v = self.mem.read_le(rsp, 8);
                self.set_gpr(Gpr::Rsp, rsp.wrapping_add(8));
                rip = v;
            }
            Inst::Push { src } => {
                let v = self.gpr(src);
                self.push(v);
            }
            Inst::Pop { dst } => {
                let rsp = self.gpr(Gpr::Rsp);
                let v = self.mem.read_le(rsp, 8);
                self.set_gpr(Gpr::Rsp, rsp.wrapping_add(8));
                self.set_gpr(dst, v);
            }
            Inst::VLoad { dst, mem } => {
                let v = self.mem.read_u128(self.ea(mem));
                self.set_xmm(dst, v);
            }
            Inst::VStore { mem, src } => {
                let (a, v) = (self.ea(mem), self.xmm(src));
                self.mem.write_u128(a, v);
                self.stores.push(StoreRecord {
                    addr: a,
                    len: 8,
                    value: v.0,
                });
                self.stores.push(StoreRecord {
                    addr: a.wrapping_add(8),
                    len: 8,
                    value: v.1,
                });
            }
            Inst::VMovRR { dst, src } => {
                let v = self.xmm(src);
                self.set_xmm(dst, v);
            }
            Inst::VAlu { op, dst, src } => {
                let v = valu(op, self.xmm(dst), self.xmm(src));
                self.set_xmm(dst, v);
            }
            Inst::VAluLoad { op, dst, mem } => {
                let b = self.mem.read_u128(self.ea(mem));
                let v = valu(op, self.xmm(dst), b);
                self.set_xmm(dst, v);
            }
            Inst::VMovToGpr { dst, src } => {
                let v = self.xmm(src).0;
                self.set_gpr(dst, v);
            }
            Inst::VMovFromGpr { dst, src } => {
                let mut v = self.xmm(dst);
                v.0 = self.gpr(src);
                self.set_xmm(dst, v);
            }
            Inst::Rdtsc => self.set_gpr(Gpr::Rax, 0),
            Inst::Wrmsr { msr, src } => {
                let v = self.gpr(src);
                self.msrs.write(msr, v);
            }
            Inst::Rdmsr { dst, msr } => {
                let v = self.msrs.read(msr);
                self.set_gpr(dst, v);
            }
            Inst::Halt => {
                self.halted = true;
                self.retired += 1;
                return RefOutcome::Halted;
            }
        }
        self.rip = rip;
        self.retired += 1;
        RefOutcome::Running
    }

    /// Steps until `hlt`, a fault, or `max_insts` retirements.
    pub fn run(&mut self, program: &Program, max_insts: u64) -> RefOutcome {
        while self.retired < max_insts {
            match self.step(program) {
                RefOutcome::Running => {}
                end => return end,
            }
        }
        RefOutcome::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx86_isa::{AluOp, Assembler, Cc};

    #[test]
    fn arithmetic_flags_and_branching() {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rax, 5);
        a.alu_ri(AluOp::Sub, Gpr::Rax, 5);
        let done = a.fresh_label();
        a.jcc(Cc::Eq, done);
        a.mov_ri(Gpr::Rbx, 99);
        a.bind(done).unwrap();
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = RefCpu::new(p.entry());
        assert_eq!(cpu.run(&p, 100), RefOutcome::Halted);
        assert_eq!(cpu.gpr(Gpr::Rax), 0);
        assert_eq!(cpu.gpr(Gpr::Rbx), 0, "jcc eq must skip the mov");
        assert_eq!(cpu.retired, 4);
    }

    #[test]
    fn call_ret_and_store_stream() {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rsp, 0x9000);
        a.mov_ri(Gpr::Rax, 0x11);
        let sub = a.fresh_label();
        a.call(sub);
        a.store(mx86_isa::MemRef::abs(0x5000), Gpr::Rax);
        a.halt();
        a.bind(sub).unwrap();
        a.alu_ri(AluOp::Add, Gpr::Rax, 1);
        a.ret();
        let p = a.finish().unwrap();
        let mut cpu = RefCpu::new(p.entry());
        assert_eq!(cpu.run(&p, 100), RefOutcome::Halted);
        assert_eq!(cpu.gpr(Gpr::Rax), 0x12);
        assert_eq!(cpu.mem.read_le(0x5000, 8), 0x12);
        // Two architectural stores: the call's return-address push and
        // the explicit store.
        assert_eq!(cpu.stores.len(), 2);
        assert_eq!(cpu.stores[0].addr, 0x9000 - 8);
        assert_eq!(
            cpu.stores[1],
            StoreRecord {
                addr: 0x5000,
                len: 8,
                value: 0x12
            }
        );
    }

    #[test]
    fn fault_on_misaligned_fetch() {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rax, 0x1001);
        a.jmp_ind(Gpr::Rax);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = RefCpu::new(p.entry());
        assert_eq!(cpu.run(&p, 100), RefOutcome::Fault(0x1001));
    }
}
