//! Greedy program shrinker.
//!
//! Given a diverging program (in generator IR form), repeatedly deletes
//! chunks of instructions — largest chunks first, halving down to single
//! instructions — keeping any deletion that still assembles, still halts
//! in the reference, and still diverges. Labels are never deleted, so
//! every surviving branch stays well-formed; a deletion that breaks
//! termination (e.g. removing a loop counter's decrement) is rejected by
//! the reference-halts check.

use crate::generator::{GenOp, GenProgram};
use crate::harness::{cosim, reference_halts, InjectedBug, ModeLeg};

/// Outcome of shrinking a diverging program.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized program.
    pub program: GenProgram,
    /// Instructions in the minimized program.
    pub insts: usize,
    /// Deletion attempts made.
    pub attempts: u64,
}

fn diverges(gp: &GenProgram, legs: &[ModeLeg], bug: Option<&InjectedBug>) -> bool {
    let Ok(p) = gp.assemble() else {
        return false;
    };
    if !reference_halts(&p) {
        return false;
    }
    !cosim(&p, legs, bug).ok()
}

/// Greedily minimizes `gp`, which must diverge under `legs` (and `bug`,
/// if injected). Returns the smallest variant found.
pub fn shrink(gp: &GenProgram, legs: &[ModeLeg], bug: Option<&InjectedBug>) -> Shrunk {
    shrink_with(gp, &mut |candidate| diverges(candidate, legs, bug))
}

/// Greedy minimization against an arbitrary predicate: keeps any chunk
/// deletion for which `interesting` still holds. The predicate owns the
/// whole definition of "still reproduces" — the classic shrinker passes
/// "assembles, halts, diverges"; the fuzzer passes class-preserving and
/// coverage-preserving variants. The predicate must be deterministic or
/// the shrink (and with it the fuzzer's byte-reproducibility) is not.
pub fn shrink_with(gp: &GenProgram, interesting: &mut dyn FnMut(&GenProgram) -> bool) -> Shrunk {
    let mut best = gp.clone();
    let mut attempts = 0u64;
    // Indices of deletable elements (labels must survive).
    let deletable = |ops: &[GenOp]| -> Vec<usize> {
        ops.iter()
            .enumerate()
            .filter(|(_, op)| !matches!(op, GenOp::Label(_)))
            .map(|(i, _)| i)
            .collect()
    };

    let mut chunk = deletable(&best.ops).len().max(1) / 2;
    while chunk >= 1 {
        let mut progress = true;
        while progress {
            progress = false;
            let idxs = deletable(&best.ops);
            let mut start = 0;
            while start < idxs.len() {
                let end = (start + chunk).min(idxs.len());
                let remove: Vec<usize> = idxs[start..end].to_vec();
                let candidate = GenProgram {
                    ops: best
                        .ops
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !remove.contains(i))
                        .map(|(_, op)| *op)
                        .collect(),
                    labels: best.labels,
                };
                attempts += 1;
                if interesting(&candidate) {
                    best = candidate;
                    progress = true;
                    // idxs are stale after a deletion; restart the sweep.
                    break;
                }
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Drop labels nothing references (cosmetic: shorter reproducers).
    let referenced: Vec<usize> = best
        .ops
        .iter()
        .filter_map(|op| match *op {
            GenOp::JmpTo(l) | GenOp::JccTo(_, l) | GenOp::CallTo(l) | GenOp::MovLabelAddr(_, l) => {
                Some(l)
            }
            _ => None,
        })
        .collect();
    best.ops
        .retain(|op| !matches!(op, GenOp::Label(l) if !referenced.contains(l)));

    let insts = best.inst_count();
    Shrunk {
        program: best,
        insts,
        attempts,
    }
}
