//! Long-run differential cosimulation fuzzer.
//!
//! ```text
//! cargo run --release -p csd-difftest --bin difftest -- \
//!     [--seed S] [--programs N] [--modes FILTER] [--out PATH]
//! ```
//!
//! Generates `N` random programs from `--seed` (per-program seeds derived
//! with the telemetry crate's `derive_seed`, so the summary is
//! byte-identical for a given seed regardless of interruption), runs each
//! across the mode matrix, shrinks any divergence, and writes a
//! deterministic JSON summary. Exits non-zero on divergence.
//!
//! `--programs` defaults to the `DIFFTEST_PROGRAMS` environment variable
//! (CI knob for longer soak runs), then to 500. `--modes` filters legs by
//! substring of their name (e.g. `cyc`, `-s`, `fun-sdmu`); `all` (the
//! default) keeps the full matrix.

use csd_difftest::{cosim, mode_matrix, shrink, Generator};
use csd_telemetry::{derive_seed, write_atomic, Json};

fn die(msg: &str) -> ! {
    eprintln!("difftest: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut seed: u64 = 1;
    let mut programs: u64 = std::env::var("DIFFTEST_PROGRAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let mut modes = "all".to_string();
    let mut out_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--programs" => {
                programs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--programs needs a non-negative integer"));
            }
            "--modes" => {
                modes = args.next().unwrap_or_else(|| die("--modes needs a filter"));
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: difftest [--seed S] [--programs N] [--modes FILTER] [--out PATH]\n\
                     Cosimulates N random programs against the architectural reference\n\
                     across the CSD mode matrix. --modes filters legs by name substring\n\
                     ('all' = full matrix). --programs defaults to $DIFFTEST_PROGRAMS,\n\
                     then 500. Writes the JSON summary to --out (default stdout)."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let legs: Vec<_> = mode_matrix()
        .into_iter()
        .filter(|l| modes == "all" || l.name().contains(&modes))
        .collect();
    if legs.is_empty() {
        die(&format!("--modes {modes:?} matches no legs"));
    }
    eprintln!(
        "difftest: seed={seed} programs={programs} legs={}",
        legs.len()
    );

    let mut total_insts = 0u64;
    let mut failures = Vec::new();
    for i in 0..programs {
        let pseed = derive_seed(seed, &format!("difftest/{i}"));
        let gp = Generator::new(pseed).program();
        let program = match gp.assemble() {
            Ok(p) => p,
            Err(e) => die(&format!("program {i} failed to assemble: {e}")),
        };
        let result = cosim(&program, &legs, None);
        total_insts += result.ref_insts;
        if !result.ok() {
            eprintln!(
                "difftest: program {i} (seed {pseed:#x}) diverged; shrinking {} insts...",
                gp.inst_count()
            );
            let small = shrink(&gp, &legs, None);
            let reproduced = small
                .program
                .assemble()
                .map(|p| cosim(&p, &legs, None))
                .ok();
            let details: Vec<Json> = reproduced
                .iter()
                .flat_map(|r| &r.divergences)
                .map(|d| {
                    Json::obj([
                        ("leg", Json::from(d.leg.as_str())),
                        ("detail", Json::from(d.detail.as_str())),
                    ])
                })
                .collect();
            eprintln!(
                "difftest: shrunk to {} insts in {} attempts:\n{}",
                small.insts,
                small.attempts,
                small.program.to_asm()
            );
            failures.push(Json::obj([
                ("program", Json::from(i)),
                ("seed", Json::from(pseed)),
                ("shrunk_insts", Json::from(small.insts as u64)),
                ("asm", Json::from(small.program.to_asm().as_str())),
                ("divergences", Json::arr(details)),
            ]));
        }
        if (i + 1) % 100 == 0 {
            eprintln!("difftest: {}/{programs} programs done", i + 1);
        }
    }

    let summary = Json::obj([
        ("seed", Json::from(seed)),
        ("programs", Json::from(programs)),
        (
            "legs",
            Json::arr(legs.iter().map(|l| Json::from(l.name().as_str()))),
        ),
        ("ref_insts", Json::from(total_insts)),
        ("divergent_programs", Json::from(failures.len() as u64)),
        ("failures", Json::Arr(failures.clone())),
        (
            "status",
            Json::from(if failures.is_empty() { "pass" } else { "fail" }),
        ),
    ]);
    let text = summary.pretty();
    match out_path {
        Some(p) => {
            write_atomic(std::path::Path::new(&p), text.as_bytes())
                .unwrap_or_else(|e| die(&e.to_string()));
            eprintln!("difftest: wrote {p}");
        }
        None => println!("{text}"),
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
