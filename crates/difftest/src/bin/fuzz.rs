//! Coverage-guided differential fuzzer with a persistent corpus.
//!
//! ```text
//! cargo run --release -p csd-difftest --bin fuzz -- \
//!     [--seed S] [--iters N] [--corpus DIR] [--modes FILTER] \
//!     [--jobs J] [--out PATH] [--coverage-out PATH] [--baseline PATH]
//! ```
//!
//! Loads the corpus from `--corpus` (default `tests/corpus/`), runs an
//! `N`-mutant coverage-guided campaign from `--seed`, writes every new
//! shrunk finding and coverage discovery back into the corpus, and emits
//! a deterministic JSON summary (`--out`, default stdout) plus the
//! accumulated coverage map (`--coverage-out`). Output is byte-identical
//! for a given seed/iters/modes at any `--jobs` setting.
//!
//! Exit status: `0` clean, `1` new divergence found, `2` usage or I/O
//! error, `3` coverage regressed below the `--baseline` document.

use csd_difftest::{fnv1a64, fuzz, load_corpus, FuzzConfig};
use csd_telemetry::{write_atomic, Json, ToJson};
use std::path::{Path, PathBuf};

fn die(msg: &str) -> ! {
    eprintln!("fuzz: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut cfg = FuzzConfig {
        seed: 1,
        iters: 64,
        modes: None,
        jobs: 1,
    };
    let mut corpus_dir = csd_difftest::default_corpus_dir();
    let mut out_path: Option<String> = None;
    let mut coverage_out: Option<String> = None;
    let mut baseline: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--seed" => {
                cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--iters" => {
                cfg.iters = value("--iters")
                    .parse()
                    .unwrap_or_else(|_| die("--iters needs a non-negative integer"));
            }
            "--modes" => {
                let m = value("--modes");
                cfg.modes = (m != "all").then_some(m);
            }
            "--jobs" => {
                cfg.jobs = value("--jobs")
                    .parse()
                    .unwrap_or_else(|_| die("--jobs needs a positive integer"));
            }
            "--corpus" => corpus_dir = PathBuf::from(value("--corpus")),
            "--out" => out_path = Some(value("--out")),
            "--coverage-out" => coverage_out = Some(value("--coverage-out")),
            "--baseline" => baseline = Some(value("--baseline")),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seed S] [--iters N] [--corpus DIR] [--modes FILTER]\n\
                     \x20           [--jobs J] [--out PATH] [--coverage-out PATH] [--baseline PATH]\n\
                     Coverage-guided differential fuzzing over the CSD mode matrix.\n\
                     Interesting inputs (divergences, new coverage) are shrunk and\n\
                     persisted into the corpus directory as reassemblable .asm + .json\n\
                     pairs. Deterministic: same seed/iters/modes => byte-identical\n\
                     corpus and coverage output at any --jobs setting.\n\
                     Exit: 0 clean, 1 new divergence, 2 error, 3 coverage < baseline."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let seed_corpus =
        load_corpus(&corpus_dir).unwrap_or_else(|e| die(&format!("loading corpus: {e}")));
    eprintln!(
        "fuzz: seed={} iters={} corpus={} entries={} jobs={}",
        cfg.seed,
        cfg.iters,
        corpus_dir.display(),
        seed_corpus.len(),
        cfg.jobs
    );

    let outcome = fuzz(&cfg, &seed_corpus);

    for entry in outcome.failures.iter().chain(&outcome.discoveries) {
        entry
            .save(&corpus_dir)
            .unwrap_or_else(|e| die(&format!("saving {}: {e}", entry.name)));
    }
    for f in &outcome.failures {
        eprintln!(
            "fuzz: NEW DIVERGENCE {} (classes {:?}):\n{}",
            f.name,
            f.divergence,
            f.program.to_asm()
        );
    }

    let coverage_json = outcome.coverage.to_json();
    let missing = baseline
        .as_ref()
        .map(|p| {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| die(&format!("reading baseline {p}: {e}")));
            let doc =
                Json::parse(&text).unwrap_or_else(|e| die(&format!("parsing baseline {p}: {e:?}")));
            outcome.coverage.missing_from_baseline(&doc)
        })
        .unwrap_or_default();

    let summary = Json::obj([
        ("schema", Json::from("csd-fuzz/1")),
        ("seed", Json::from(cfg.seed)),
        ("iters", Json::from(cfg.iters)),
        ("modes", Json::from(cfg.modes.as_deref().unwrap_or("all"))),
        ("corpus_entries", Json::from(seed_corpus.len() as u64)),
        ("evaluated", Json::from(outcome.evaluated)),
        ("coverage_bins", Json::from(outcome.coverage.bins())),
        ("coverage_events", Json::from(outcome.coverage.events())),
        (
            "new_failures",
            Json::arr(outcome.failures.iter().map(|f| Json::from(f.name.as_str()))),
        ),
        (
            "new_discoveries",
            Json::arr(
                outcome
                    .discoveries
                    .iter()
                    .map(|d| Json::from(d.name.as_str())),
            ),
        ),
        (
            "coverage_missing_from_baseline",
            Json::arr(missing.iter().map(|m| Json::from(m.as_str()))),
        ),
        (
            "coverage_fnv",
            Json::from(fnv1a64(coverage_json.dump().as_bytes())),
        ),
        (
            "status",
            Json::from(if !outcome.failures.is_empty() {
                "fail"
            } else if !missing.is_empty() {
                "coverage-regressed"
            } else {
                "pass"
            }),
        ),
    ]);

    if let Some(p) = &coverage_out {
        let mut text = coverage_json.pretty();
        text.push('\n');
        write_atomic(Path::new(p), text.as_bytes()).unwrap_or_else(|e| die(&e.to_string()));
    }
    let text = summary.pretty();
    match &out_path {
        Some(p) => {
            write_atomic(Path::new(p), text.as_bytes()).unwrap_or_else(|e| die(&e.to_string()));
            eprintln!("fuzz: wrote {p}");
        }
        None => println!("{text}"),
    }

    if !outcome.failures.is_empty() {
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!("fuzz: coverage regressed; missing bins: {missing:?}");
        std::process::exit(3);
    }
}
