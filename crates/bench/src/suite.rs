//! The parallel experiment-suite runner behind `--bin suite`.
//!
//! The task grid itself lives in [`crate::tasks`] (shared with the
//! `csd-serve` daemon); this module runs tasks on a `std::thread` worker
//! pool and assembles one deterministic JSON report
//! (`BENCH_suite.json`).
//!
//! Determinism contract: each task derives its own input seed from the
//! suite's root seed and the task's *label* (never from scheduling
//! order), results are re-assembled in grid order, and the report
//! carries no timestamps or host details — so the same root seed
//! produces a byte-identical report at any `--jobs` setting.

use crate::mean;
use crate::tasks::{build_tasks, filter_tasks, pipelines, victim_names, TaskDef};
use csd_telemetry::{Json, RunJournal, ToJson};
use csd_workloads::specs;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Knobs for one suite invocation.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Root seed every per-task seed is derived from.
    pub root_seed: u64,
    /// Worker threads; `0` means one per available hardware thread
    /// (see [`resolve_jobs`]).
    pub jobs: usize,
    /// Measured operations per security datapoint (figures 8–10).
    pub sec_blocks: usize,
    /// Measured operations per watchdog-sweep datapoint (figure 11).
    pub wd_blocks: usize,
    /// Watchdog periods swept by figure 11, in cycles.
    pub wd_periods: Vec<u64>,
    /// PRIME+PROBE encryptions per candidate nibble (figure 7a).
    pub aes_trials: usize,
    /// Workload scale for the devectorization family (figures 12–16).
    pub devec_scale: f64,
    /// Evaluate tolerance bands (`checks` section; off for smoke runs).
    pub checks: bool,
    /// Profile name echoed into the report (`full` / `quick`).
    pub profile: &'static str,
}

impl SuiteConfig {
    /// The full figure grid at publication fidelity.
    pub fn full(root_seed: u64, jobs: usize) -> SuiteConfig {
        SuiteConfig {
            root_seed,
            jobs,
            sec_blocks: 48,
            wd_blocks: 24,
            wd_periods: vec![1000, 2000, 4000, 6000, 8000, 10_000],
            aes_trials: 80,
            devec_scale: 0.5,
            checks: true,
            profile: "full",
        }
    }

    /// A down-scaled grid for CI smoke tests and the determinism
    /// property test; tolerance checks are disabled (the bands assume
    /// full-fidelity runs).
    pub fn quick(root_seed: u64, jobs: usize) -> SuiteConfig {
        SuiteConfig {
            root_seed,
            jobs,
            sec_blocks: 2,
            wd_blocks: 2,
            wd_periods: vec![1000, 4000],
            aes_trials: 3,
            devec_scale: 0.05,
            checks: false,
            profile: "quick",
        }
    }

    /// Builds the profile by name (`"full"` / `"quick"`) — the
    /// convention shared by `suite` CLI flags and server requests.
    pub fn named(profile: &str, root_seed: u64, jobs: usize) -> Option<SuiteConfig> {
        match profile {
            "full" => Some(SuiteConfig::full(root_seed, jobs)),
            "quick" => Some(SuiteConfig::quick(root_seed, jobs)),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("profile", Json::from(self.profile)),
            ("root_seed", Json::from(self.root_seed)),
            ("sec_blocks", Json::from(self.sec_blocks as u64)),
            ("wd_blocks", Json::from(self.wd_blocks as u64)),
            (
                "wd_periods",
                Json::Arr(self.wd_periods.iter().map(|p| Json::from(*p)).collect()),
            ),
            ("aes_trials", Json::from(self.aes_trials as u64)),
            ("devec_scale", Json::from(self.devec_scale)),
        ])
    }
}

/// One tolerance-band evaluation over a headline metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable identifier, e.g. `fig08_opt_avg_slowdown`.
    pub name: &'static str,
    /// Measured value.
    pub value: f64,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Check {
    /// Whether the value sits inside the band.
    pub fn pass(&self) -> bool {
        self.value >= self.lo && self.value <= self.hi
    }
}

impl ToJson for Check {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name)),
            ("value", Json::from(self.value)),
            ("lo", Json::from(self.lo)),
            ("hi", Json::from(self.hi)),
            ("pass", Json::from(self.pass())),
        ])
    }
}

/// Everything one suite run produced.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The full nested report (serialize with [`Json::pretty`]).
    pub json: Json,
    /// Tolerance checks evaluated (empty when `checks` was off).
    pub checks: Vec<Check>,
}

impl SuiteReport {
    /// Names of the checks whose value fell outside its band.
    pub fn failed_checks(&self) -> Vec<&'static str> {
        self.checks
            .iter()
            .filter(|c| !c.pass())
            .map(|c| c.name)
            .collect()
    }
}

/// Runs `tasks` on a `jobs`-worker pool (see [`resolve_jobs`]) and
/// returns their results in task order, each task seeded from
/// `root_seed` by label. Deterministic at any worker count.
///
/// # Panics
///
/// Panics if a worker thread panics (the underlying experiment faulted).
pub fn run_tasks(tasks: &[TaskDef], root_seed: u64, jobs: usize) -> Vec<Json> {
    let n = tasks.len();
    let slots: Vec<Mutex<Option<Json>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = resolve_jobs(jobs).min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t = &tasks[i];
                let out = t.run(t.seed(root_seed));
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker completed every claimed task")
        })
        .collect()
}

/// Runs the whole grid on `cfg.jobs` worker threads and assembles the
/// report. Deterministic for a fixed config (any job count).
///
/// # Panics
///
/// Panics if a worker thread panics (the underlying experiment faulted).
pub fn run_suite(cfg: &SuiteConfig) -> SuiteReport {
    let tasks = build_tasks(cfg);
    let values = run_tasks(&tasks, cfg.root_seed, cfg.jobs);
    assemble_report(cfg, values)
}

/// The journal meta document pinning a grid run's determinism domain:
/// `(profile, root seed, filter)` are exactly the inputs the artifact
/// bytes are a pure function of, so a journal opened under a different
/// meta is a different run and must be refused. Scheduling knobs
/// (`jobs`, worker count) are deliberately absent — they cannot change
/// the bytes, so a run may crash under `--jobs 8` and resume under
/// `--jobs 1`, or crash under `suite` and resume under `cluster`.
pub fn journal_meta(cfg: &SuiteConfig, filter: Option<&str>) -> Json {
    Json::obj([
        ("kind", Json::from("suite-grid")),
        ("profile", Json::from(cfg.profile)),
        ("root_seed", Json::from(cfg.root_seed)),
        ("filter", filter.map_or(Json::Null, Json::from)),
    ])
}

/// Splits `tasks` against a resumed journal: returns one slot per task
/// (`Some` for tasks whose result was replayed — label, seed, and
/// digest verified — `None` for tasks still to run). The journal's meta
/// frame was already matched by [`RunJournal::open`], so any replay
/// mismatch here means the file was tampered with, not misused.
///
/// # Errors
///
/// A record naming an unknown label, the wrong seed, or unparseable
/// result bytes — the journal cannot be trusted and the caller should
/// delete it and rerun.
pub fn replay_into_slots(
    tasks: &[TaskDef],
    root_seed: u64,
    journal: &RunJournal,
) -> Result<Vec<Option<Json>>, String> {
    let mut slots: Vec<Option<Json>> = (0..tasks.len()).map(|_| None).collect();
    for rec in journal.replayed() {
        let Some(i) = tasks.iter().position(|t| t.label() == rec.label) else {
            return Err(format!(
                "journal {}: replayed task {:?} is not in this grid",
                journal.path().display(),
                rec.label
            ));
        };
        let expected = tasks[i].seed(root_seed);
        if rec.seed != expected {
            return Err(format!(
                "journal {}: task {:?} recorded seed {:#x} != expected {expected:#x}",
                journal.path().display(),
                rec.label,
                rec.seed
            ));
        }
        let text = std::str::from_utf8(&rec.bytes).map_err(|_| {
            format!(
                "journal {}: task {:?} result is not UTF-8",
                journal.path().display(),
                rec.label
            )
        })?;
        let value = Json::parse(text).map_err(|e| {
            format!(
                "journal {}: task {:?} result is not JSON: {e}",
                journal.path().display(),
                rec.label
            )
        })?;
        if let Some(prev) = &slots[i] {
            if prev.dump() != value.dump() {
                return Err(format!(
                    "journal {}: task {:?} recorded twice with different results",
                    journal.path().display(),
                    rec.label
                ));
            }
        }
        slots[i] = Some(value);
    }
    Ok(slots)
}

/// [`run_tasks`] with a write-ahead journal: replayed tasks are skipped
/// outright, every fresh completion is durably appended before it
/// counts, and the returned values are byte-equivalent to an
/// uninterrupted [`run_tasks`] — the resumed artifact `cmp`s clean.
///
/// # Errors
///
/// An untrustworthy journal (see [`replay_into_slots`]) or a journal
/// append failure (`ENOSPC` and friends) — the durability contract is
/// broken, so the run stops instead of continuing unjournaled.
pub fn run_tasks_resumable(
    tasks: &[TaskDef],
    root_seed: u64,
    jobs: usize,
    journal: &Mutex<RunJournal>,
) -> Result<Vec<Json>, String> {
    let prefilled = {
        let j = journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        replay_into_slots(tasks, root_seed, &j)?
    };
    let remaining: Vec<usize> = prefilled
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let slots: Vec<Mutex<Option<Json>>> = prefilled.into_iter().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<String>> = Mutex::new(None);
    let workers = resolve_jobs(jobs).min(remaining.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= remaining.len() || failed.load(Ordering::SeqCst) {
                    break;
                }
                let i = remaining[k];
                let t = &tasks[i];
                let seed = t.seed(root_seed);
                let out = t.run(seed);
                // Journal before publishing: a completion the caller can
                // observe is a completion a crash cannot lose.
                let appended = journal
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .record(t.label(), seed, out.dump().as_bytes());
                if let Err(e) = appended {
                    failed.store(true, Ordering::SeqCst);
                    error
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .get_or_insert_with(|| format!("journal append for {:?}: {e}", t.label()));
                    break;
                }
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        }
    });
    if let Some(msg) = error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        return Err(msg);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .ok_or_else(|| "worker exited without completing a claimed task".to_string())
        })
        .collect()
}

/// [`run_suite`] under a write-ahead journal (see
/// [`run_tasks_resumable`]): byte-identical to the uninterrupted run.
///
/// # Errors
///
/// Journal replay or append failures.
pub fn run_suite_resumable(
    cfg: &SuiteConfig,
    journal: &Mutex<RunJournal>,
) -> Result<SuiteReport, String> {
    let tasks = build_tasks(cfg);
    let values = run_tasks_resumable(&tasks, cfg.root_seed, cfg.jobs, journal)?;
    Ok(assemble_report(cfg, values))
}

/// [`run_filtered`] under a write-ahead journal: byte-identical to the
/// uninterrupted filtered run.
///
/// # Errors
///
/// Journal replay or append failures.
pub fn run_filtered_resumable(
    cfg: &SuiteConfig,
    filter: &str,
    journal: &Mutex<RunJournal>,
) -> Result<Json, String> {
    let tasks = filter_tasks(cfg, filter);
    let values = run_tasks_resumable(&tasks, cfg.root_seed, cfg.jobs, journal)?;
    Ok(filtered_report(cfg, filter, values))
}

/// Assembles the full suite report from per-task result values in grid
/// order (what [`run_tasks`] returns for [`build_tasks`]). Split out
/// from [`run_suite`] so a distributed runner — `csd-cluster` collects
/// the same values over HTTP from many daemons — reassembles the exact
/// CLI artifact: the report is a pure function of `(cfg, values)`.
///
/// # Panics
///
/// Panics if `values` does not line up with the grid (`build_tasks`
/// length mismatch).
pub fn assemble_report(cfg: &SuiteConfig, values: Vec<Json>) -> SuiteReport {
    let tasks = build_tasks(cfg);
    assert_eq!(
        tasks.len(),
        values.len(),
        "assemble_report needs one value per grid task"
    );
    let results = Results {
        labels: tasks.iter().map(|t| t.label().to_string()).collect(),
        values,
    };
    assemble(cfg, &results)
}

/// Runs the label-matched subset of the grid and returns a reduced
/// report: no figure summaries or tolerance checks, just each task's
/// label, seed, and result in grid order. The `csd-serve` daemon emits
/// the identical document for a single-task request, which is what lets
/// CI byte-compare a served experiment against `suite --filter`.
pub fn run_filtered(cfg: &SuiteConfig, filter: &str) -> Json {
    let tasks = filter_tasks(cfg, filter);
    let values = run_tasks(&tasks, cfg.root_seed, cfg.jobs);
    filtered_report(cfg, filter, values)
}

/// Builds the reduced `--filter` document from result values in
/// filtered-grid order (what [`run_tasks`] returns for
/// [`filter_tasks`]). Like [`assemble_report`], this is the merge point
/// a distributed runner shares with the CLI: same values in, same bytes
/// out.
///
/// # Panics
///
/// Panics if `values` does not line up with the filtered grid.
pub fn filtered_report(cfg: &SuiteConfig, filter: &str, values: Vec<Json>) -> Json {
    let tasks = filter_tasks(cfg, filter);
    assert_eq!(
        tasks.len(),
        values.len(),
        "filtered_report needs one value per matched task"
    );
    let rows: Vec<Json> = tasks
        .iter()
        .zip(values)
        .map(|(t, v)| {
            Json::obj([
                ("label", Json::from(t.label())),
                ("seed", Json::from(t.seed(cfg.root_seed))),
                ("result", v),
            ])
        })
        .collect();
    Json::obj([
        ("suite", cfg.to_json()),
        ("filter", Json::from(filter)),
        ("tasks", Json::Arr(rows)),
    ])
}

/// Resolves a worker-count request: `0` (the "auto" convention shared by
/// `--jobs 0` and an omitted flag) becomes one worker per available
/// hardware thread; any other value passes through. Never returns zero.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

struct Results {
    labels: Vec<String>,
    values: Vec<Json>,
}

impl Results {
    fn get(&self, label: &str) -> &Json {
        let i = self
            .labels
            .iter()
            .position(|l| l == label)
            .unwrap_or_else(|| panic!("no task labelled {label}"));
        &self.values[i]
    }
}

fn num(j: &Json, path: &[&str]) -> f64 {
    let mut cur = j;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing member {key} on path {path:?}"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("non-numeric member at path {path:?}"))
}

fn assemble(cfg: &SuiteConfig, results: &Results) -> SuiteReport {
    let names = victim_names();

    // Family sections, in grid order.
    let mut security = Json::Obj(Vec::new());
    for (cfg_name, _) in pipelines() {
        let rows: Vec<Json> = names
            .iter()
            .map(|n| results.get(&format!("sec/{cfg_name}/{n}")).clone())
            .collect();
        security.push_member(cfg_name, Json::Arr(rows));
    }
    let watchdog = Json::Arr(
        names
            .iter()
            .map(|n| results.get(&format!("wd/{n}")).clone())
            .collect(),
    );
    let mut attacks = Json::Obj(Vec::new());
    for (key, fam) in [
        ("aes_prime_probe", "aes-pp"),
        ("rsa_flush_reload", "rsa-fr"),
        ("rsa_prime_probe", "rsa-pp"),
    ] {
        attacks.push_member(
            key,
            Json::obj([
                (
                    "undefended",
                    results.get(&format!("attack/{fam}/undefended")).clone(),
                ),
                (
                    "stealth",
                    results.get(&format!("attack/{fam}/stealth")).clone(),
                ),
            ]),
        );
    }
    let workload_names: Vec<&'static str> = specs().iter().map(|s| s.name).collect();
    let mut devec = Json::Obj(Vec::new());
    for w in &workload_names {
        let mut per = Json::Obj(Vec::new());
        for (pname, _) in crate::policies() {
            per.push_member(
                pname,
                results
                    .get(&format!("devec/{w}/{pname}"))
                    .get("run")
                    .unwrap()
                    .clone(),
            );
        }
        devec.push_member(*w, per);
    }

    // Figure summaries.
    let sec_avgs = |cfg_name: &str, metric: &str| -> (Vec<Json>, f64) {
        let per: Vec<Json> = names
            .iter()
            .map(|n| {
                let r = results.get(&format!("sec/{cfg_name}/{n}"));
                Json::obj([
                    ("name", Json::from(n.as_str())),
                    (metric, Json::from(num(r, &[metric]))),
                ])
            })
            .collect();
        let avg = mean(
            names
                .iter()
                .map(|n| num(results.get(&format!("sec/{cfg_name}/{n}")), &[metric])),
        );
        (per, avg)
    };

    let mut figures = Json::Obj(Vec::new());

    let aes_und = results.get("attack/aes-pp/undefended");
    let aes_ste = results.get("attack/aes-pp/stealth");
    figures.push_member(
        "fig07a",
        Json::obj([
            ("undefended", aes_und.clone()),
            ("stealth", aes_ste.clone()),
        ]),
    );
    figures.push_member(
        "fig07b",
        Json::obj([
            (
                "flush_reload",
                attacks.get("rsa_flush_reload").unwrap().clone(),
            ),
            (
                "prime_probe",
                attacks.get("rsa_prime_probe").unwrap().clone(),
            ),
        ]),
    );

    let mut fig08 = Json::Obj(Vec::new());
    let mut fig09 = Json::Obj(Vec::new());
    for (cfg_name, _) in pipelines() {
        let (per_s, avg_s) = sec_avgs(cfg_name, "slowdown");
        fig08.push_member(
            cfg_name,
            Json::obj([
                ("per", Json::Arr(per_s)),
                ("avg_slowdown", Json::from(avg_s)),
            ]),
        );
        let (per_e, avg_e) = sec_avgs(cfg_name, "uop_expansion");
        fig09.push_member(
            cfg_name,
            Json::obj([
                ("per", Json::Arr(per_e)),
                ("avg_uop_expansion", Json::from(avg_e)),
            ]),
        );
    }
    figures.push_member("fig08", fig08);
    figures.push_member("fig09", fig09);

    let fig10_per: Vec<Json> = names
        .iter()
        .map(|n| {
            let r = results.get(&format!("sec/opt/{n}"));
            Json::obj([
                ("name", Json::from(n.as_str())),
                ("base_l1d_mpki", Json::from(num(r, &["base", "l1d_mpki"]))),
                (
                    "stealth_l1d_mpki",
                    Json::from(num(r, &["stealth", "l1d_mpki"])),
                ),
            ])
        })
        .collect();
    figures.push_member(
        "fig10",
        Json::obj([
            (
                "avg_base_l1d_mpki",
                Json::from(mean(names.iter().map(|n| {
                    num(results.get(&format!("sec/opt/{n}")), &["base", "l1d_mpki"])
                }))),
            ),
            (
                "avg_stealth_l1d_mpki",
                Json::from(mean(names.iter().map(|n| {
                    num(
                        results.get(&format!("sec/opt/{n}")),
                        &["stealth", "l1d_mpki"],
                    )
                }))),
            ),
            ("per", Json::Arr(fig10_per)),
        ]),
    );

    let fig11_series: Vec<Json> = cfg
        .wd_periods
        .iter()
        .enumerate()
        .map(|(pi, period)| {
            let avg = mean(names.iter().map(|n| {
                let r = results.get(&format!("wd/{n}"));
                let periods = r.get("periods").unwrap().as_arr().unwrap();
                num(&periods[pi], &["slowdown"])
            }));
            Json::obj([
                ("period", Json::from(*period)),
                ("avg_slowdown", Json::from(avg)),
            ])
        })
        .collect();
    figures.push_member("fig11", Json::Arr(fig11_series));

    let run_of = |w: &str, p: &str| results.get(&format!("devec/{w}/{p}")).get("run").unwrap();
    let fig12_per: Vec<Json> = workload_names
        .iter()
        .map(|w| {
            let conv = num(run_of(w, "conventional"), &["total_pj"]);
            let csd = num(run_of(w, "csd-devec"), &["total_pj"]);
            Json::obj([
                ("name", Json::from(*w)),
                (
                    "always_on_pj",
                    Json::from(num(run_of(w, "always-on"), &["total_pj"])),
                ),
                ("conventional_pj", Json::from(conv)),
                ("csd_pj", Json::from(csd)),
                ("saving_vs_conventional", Json::from(1.0 - csd / conv)),
            ])
        })
        .collect();
    let savings: Vec<f64> = workload_names
        .iter()
        .map(|w| {
            1.0 - num(run_of(w, "csd-devec"), &["total_pj"])
                / num(run_of(w, "conventional"), &["total_pj"])
        })
        .collect();
    figures.push_member(
        "fig12",
        Json::obj([
            (
                "avg_saving_vs_conventional",
                Json::from(mean(savings.iter().copied())),
            ),
            (
                "workloads_with_positive_saving",
                Json::from(savings.iter().filter(|s| **s > 0.0).count() as u64),
            ),
            ("per", Json::Arr(fig12_per)),
        ]),
    );

    let cycle_ratio = |w: &str, p: &str, q: &str| {
        num(run_of(w, p), &["stats", "cycles"]) / num(run_of(w, q), &["stats", "cycles"])
    };
    figures.push_member(
        "fig13",
        Json::obj([
            (
                "avg_csd_over_always_on",
                Json::from(mean(
                    workload_names
                        .iter()
                        .map(|w| cycle_ratio(w, "csd-devec", "always-on")),
                )),
            ),
            (
                "avg_csd_over_conventional",
                Json::from(mean(
                    workload_names
                        .iter()
                        .map(|w| cycle_ratio(w, "csd-devec", "conventional")),
                )),
            ),
        ]),
    );
    figures.push_member(
        "fig14",
        Json::obj([(
            "avg_uop_expansion_csd_over_always_on",
            Json::from(
                mean(workload_names.iter().map(|w| {
                    num(run_of(w, "csd-devec"), &["stats", "uops"])
                        / num(run_of(w, "always-on"), &["stats", "uops"])
                })) - 1.0,
            ),
        )]),
    );

    let gated_fraction = |w: &str| num(run_of(w, "csd-devec"), &["gate", "gated_fraction"]);
    let fig15_per: Vec<Json> = workload_names
        .iter()
        .map(|w| {
            Json::obj([
                ("name", Json::from(*w)),
                ("gated_fraction", Json::from(gated_fraction(w))),
            ])
        })
        .collect();
    figures.push_member(
        "fig15",
        Json::obj([
            (
                "avg_gated_fraction",
                Json::from(mean(workload_names.iter().map(|w| gated_fraction(w)))),
            ),
            ("per", Json::Arr(fig15_per)),
        ]),
    );

    let fig16_per: Vec<Json> = workload_names
        .iter()
        .map(|w| {
            let g = run_of(w, "csd-devec").get("gate").unwrap();
            let total =
                num(g, &["on_cycles"]) + num(g, &["waking_cycles"]) + num(g, &["gated_cycles"]);
            let frac = |k: &str| {
                if total > 0.0 {
                    num(g, &[k]) / total
                } else {
                    0.0
                }
            };
            Json::obj([
                ("name", Json::from(*w)),
                ("on_fraction", Json::from(frac("on_cycles"))),
                ("waking_fraction", Json::from(frac("waking_cycles"))),
                ("gated_fraction", Json::from(frac("gated_cycles"))),
            ])
        })
        .collect();
    figures.push_member("fig16", Json::Arr(fig16_per));
    figures.push_member("table1", results.get("table1").clone());

    // Tolerance bands over the headline metrics (EXPERIMENTS.md).
    let checks = if cfg.checks {
        let first = cfg.wd_periods.first().copied().unwrap_or(0);
        let last = cfg.wd_periods.last().copied().unwrap_or(0);
        let wd_slowdown = |period: u64| {
            let pi = cfg.wd_periods.iter().position(|p| *p == period).unwrap();
            mean(names.iter().map(|n| {
                let r = results.get(&format!("wd/{n}"));
                num(
                    &r.get("periods").unwrap().as_arr().unwrap()[pi],
                    &["slowdown"],
                )
            }))
        };
        vec![
            Check {
                name: "fig07a_undefended_bits",
                value: num(aes_und, &["bits_recovered"]),
                lo: 56.0,
                hi: 128.0,
            },
            Check {
                name: "fig07a_stealth_bits",
                value: num(aes_ste, &["bits_recovered"]),
                lo: 0.0,
                hi: 0.0,
            },
            Check {
                name: "fig07b_fr_undefended_bits",
                value: num(results.get("attack/rsa-fr/undefended"), &["correct_bits"]),
                lo: 60.0,
                hi: 64.0,
            },
            Check {
                name: "fig07b_fr_stealth_bits",
                value: num(results.get("attack/rsa-fr/stealth"), &["correct_bits"]),
                lo: 0.0,
                hi: 45.0,
            },
            Check {
                name: "fig08_opt_avg_slowdown",
                value: mean(
                    names
                        .iter()
                        .map(|n| num(results.get(&format!("sec/opt/{n}")), &["slowdown"])),
                ),
                lo: 1.0,
                hi: 1.15,
            },
            Check {
                name: "fig09_opt_avg_uop_expansion",
                value: mean(
                    names
                        .iter()
                        .map(|n| num(results.get(&format!("sec/opt/{n}")), &["uop_expansion"])),
                ),
                lo: 0.0,
                hi: 0.35,
            },
            Check {
                name: "fig11_slowdown_longest_minus_shortest",
                value: wd_slowdown(last) - wd_slowdown(first),
                lo: -0.5,
                hi: 0.005,
            },
            Check {
                name: "fig12_avg_saving_vs_conventional",
                value: mean(savings.iter().copied()),
                lo: 0.005,
                hi: 0.20,
            },
            Check {
                name: "fig13_avg_csd_over_conventional_cycles",
                value: mean(
                    workload_names
                        .iter()
                        .map(|w| cycle_ratio(w, "csd-devec", "conventional")),
                ),
                lo: 0.90,
                hi: 1.05,
            },
            Check {
                name: "fig15_avg_gated_fraction",
                value: mean(workload_names.iter().map(|w| gated_fraction(w))),
                lo: 0.5,
                hi: 1.0,
            },
        ]
    } else {
        Vec::new()
    };

    let json = Json::obj([
        ("suite", cfg.to_json()),
        ("security", security),
        ("watchdog", watchdog),
        ("attacks", attacks),
        ("devec", devec),
        ("figures", figures),
        (
            "checks",
            Json::Arr(checks.iter().map(|c| c.to_json()).collect()),
        ),
    ]);
    SuiteReport { json, checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{security_row, DEFAULT_WATCHDOG};
    use csd_exp::{run_plan_with, ExperimentSpec, NoCache};
    use csd_pipeline::CoreConfig;
    use csd_telemetry::derive_seed;

    #[test]
    fn grid_covers_every_family() {
        let cfg = SuiteConfig::quick(1, 1);
        let tasks = build_tasks(&cfg);
        assert_eq!(tasks.len(), 16 + 8 + 2 + 4 + 30 + 1);
        let labels: Vec<&str> = tasks.iter().map(|t| t.label()).collect();
        assert!(labels.contains(&"sec/opt/aes-enc"));
        assert!(labels.contains(&"sec/noopt/rijndael-dec"));
        assert!(labels.contains(&"wd/rsa-dec"));
        assert!(labels.contains(&"attack/aes-pp/stealth"));
        assert!(labels.contains(&"attack/rsa-pp/undefended"));
        assert!(labels.contains(&"devec/namd/csd-devec"));
        assert!(labels.contains(&"table1"));
        // Labels are unique: each is a distinct seed-derivation domain.
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn memoization_is_transparent_to_a_suite_task() {
        // A fig08 datapoint — the exact closure body of `sec/opt/aes-enc`
        // — must serialize to byte-identical JSON with decode memoization
        // force-disabled, enabled memo being pure simulator bookkeeping.
        let seed = derive_seed(0xC5D_2018, "sec/opt/aes-enc");
        let spec = ExperimentSpec::pair("aes-enc", "opt", seed, 2, DEFAULT_WATCHDOG);
        let run = |cfg: CoreConfig| {
            let result = run_plan_with(&spec, cfg, &NoCache, 1).unwrap();
            security_row(&result).to_json().pretty()
        };
        let on = run(CoreConfig::opt());
        let off = run(CoreConfig {
            decode_memo_enabled: false,
            ..CoreConfig::opt()
        });
        assert_eq!(on, off, "memoization must not perturb suite output");
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn filtered_run_matches_full_grid_task() {
        // `run_filtered` must reproduce the exact bytes the same task
        // produces inside the full grid: same label-derived seed, same
        // closure — only the report wrapper differs.
        let cfg = SuiteConfig::quick(0xC5D, 1);
        let doc = run_filtered(&cfg, "table1");
        let rows = doc.get("tasks").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("label").and_then(Json::as_str), Some("table1"));
        let t = crate::tasks::find_task(&cfg, "table1").unwrap();
        let direct = t.run(t.seed(cfg.root_seed));
        assert_eq!(
            rows[0].get("result").unwrap().pretty(),
            direct.pretty(),
            "filtered run must serve the grid's bytes"
        );
        // And the whole filtered document is deterministic.
        assert_eq!(doc.pretty(), run_filtered(&cfg, "table1").pretty());
    }

    #[test]
    fn check_band_logic() {
        let c = Check {
            name: "x",
            value: 1.0,
            lo: 0.5,
            hi: 1.0,
        };
        assert!(c.pass());
        let c = Check {
            name: "x",
            value: 1.01,
            lo: 0.5,
            hi: 1.0,
        };
        assert!(!c.pass());
    }

    #[test]
    fn table1_reports_the_default_machine() {
        let t = crate::tasks::table1_json();
        assert_eq!(t.get("rob_entries").and_then(Json::as_u64), Some(168));
        assert!(t.get("l1d").and_then(|l| l.get("size_bytes")).is_some());
    }
}
