//! Figure 14: dynamic µop counts for the three VPU policies — performance
//! scales with the µop expansion of devectorization.

use csd_bench::{policies, row, run_devec};
use csd_workloads::suite;

fn main() {
    let scale: f64 = std::env::args()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(0.5);
    println!("== Figure 14: dynamic micro-op counts by VPU policy ==\n");
    let widths = [10, 12, 12, 12];
    println!(
        "{}",
        row(
            &["bench", "always-on", "conv", "csd"].map(String::from),
            &widths
        )
    );
    for w in suite(scale) {
        let runs: Vec<_> = policies().iter().map(|(_, p)| run_devec(&w, *p)).collect();
        println!(
            "{}",
            row(
                &[
                    w.name().to_string(),
                    runs[0].stats.uops.to_string(),
                    runs[1].stats.uops.to_string(),
                    runs[2].stats.uops.to_string(),
                ],
                &widths
            )
        );
    }
    println!("\npaper: CSD's µop count grows only where devectorization is active");
}
