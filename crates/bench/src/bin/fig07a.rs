//! Figure 7a: PRIME+PROBE attack on AES — per-candidate touch rates with
//! and without stealth-mode translation, and key bits recovered.

use csd_attack::{aes_attack, AesAttackConfig, AttackMethod, Defense};
use csd_crypto::{AesKeySize, AesVictim, CipherDir};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    let key: Vec<u8> = vec![
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let victim = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);

    println!("== Figure 7a: PRIME+PROBE on AES (T-table first-round attack) ==\n");
    for (label, defense) in [
        ("no defense", Defense::None),
        ("stealth mode", Defense::stealth_default()),
    ] {
        let cfg = AesAttackConfig {
            method: AttackMethod::PrimeProbe,
            trials_per_candidate: trials,
            defense,
            ..AesAttackConfig::default()
        };
        let out = aes_attack(&victim, &cfg);
        println!(
            "[{label}] encryptions={}  recovered {}/16 positions = {} key bits",
            out.encryptions,
            out.correct_positions(),
            out.bits_recovered()
        );
        // The Figure 7a curve for position 0: touch rate per candidate.
        print!("  pos0 touch-rate by candidate:");
        for g in 0..16 {
            print!(" {:>4.2}", out.touch_rates[0][g]);
        }
        println!("\n");
    }
    println!("paper: 64/128 bits in ~64k attempts undefended; 0 bits with stealth");
}
