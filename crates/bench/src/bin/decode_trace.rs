//! Inspect CSD translations: dump a victim's first N macro-ops with their
//! µop flows under the native and stealth contexts.
//!
//! ```sh
//! cargo run --release -p csd-bench --bin decode_trace [n]
//! ```

use csd::{msr, CsdConfig, CsdEngine};
use csd_crypto::{AesKeySize, AesVictim, CipherDir, Victim};

fn main() {
    let n: usize = std::env::args()
        .filter_map(|a| a.parse().ok())
        .next()
        .unwrap_or(12);
    let key: Vec<u8> = (0..16).collect();
    let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);

    let mut engine = CsdEngine::new(CsdConfig::default());
    engine.write_msr(msr::MSR_DATA_RANGE_BASE, v.layout().tables);
    engine.write_msr(msr::MSR_DATA_RANGE_BASE + 1, v.layout().tables + 2 * 64);
    engine.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);

    println!("decode trace: AES victim, stealth armed, 2-line decoy range\n");
    for placed in v.program().iter().take(n) {
        // Pretend the table lookups (index register-based loads) are
        // tainted, as DIFT would flag them.
        let tainted = placed.inst.is_load()
            && matches!(placed.inst, mx86_isa::Inst::Load { mem, .. } if mem.index.is_some());
        let out = engine.decode(placed, tainted);
        println!("{:#06x}: {}   [{}]", placed.addr, placed.inst, out.context);
        for u in &out.translation.uops {
            println!("          {u}");
        }
        engine.tick(2000); // keep the watchdog re-arming between insts
    }
}
