//! Table I: the baseline processor configuration.

use csd_pipeline::CoreConfig;

fn main() {
    let c = CoreConfig::default();
    println!("== Table I: baseline core (Sandy-Bridge-style) ==\n");
    println!("fetch width           : {} B/cycle", c.fetch_bytes);
    println!("macro-op queue        : {} entries", c.macro_op_queue);
    println!(
        "decoders              : {} (1 complex + {} simple), {} uops/cycle",
        c.decoders,
        c.decoders - 1,
        c.decode_width_uops
    );
    println!("MSROM                 : {} uops/cycle", c.msrom_width_uops);
    println!("micro-op cache        : {} uops, {}-way, {} sets, {} fused uops/line, <= {} lines per 32B window",
        c.uop_cache_uops, c.uop_cache_ways, c.uop_cache_sets(), c.uop_cache_line_uops,
        c.uop_cache_max_lines_per_window);
    println!(
        "dispatch / commit     : {} / {} uops/cycle",
        c.dispatch_width, c.commit_width
    );
    println!("ROB                   : {} entries", c.rob_entries);
    println!(
        "issue ports           : {} ALU, {} load, {} store, {} vector",
        c.alu_units, c.load_units, c.store_units, c.vector_units
    );
    println!("mispredict penalty    : {} cycles", c.mispredict_penalty);
    let h = c.hierarchy;
    println!(
        "L1I/L1D               : {} KiB {}-way, {}-cycle",
        h.l1i.size_bytes / 1024,
        h.l1i.ways,
        h.l1i.latency
    );
    println!(
        "L2                    : {} KiB {}-way, {}-cycle",
        h.l2.size_bytes / 1024,
        h.l2.ways,
        h.l2.latency
    );
    println!(
        "LLC                   : {} MiB {}-way, {}-cycle (inclusive)",
        h.llc.size_bytes / 1024 / 1024,
        h.llc.ways,
        h.llc.latency
    );
    println!("memory                : {} cycles", h.memory_latency);
    println!(
        "VPU wake latency      : {} cycles",
        csd_power::VPU_WAKE_CYCLES
    );
}
