//! Figure 9: dynamic µop expansion caused by CSD stealth mode.

use csd_bench::{mean, row, security_sweep, DEFAULT_WATCHDOG};
use csd_pipeline::CoreConfig;

fn main() {
    println!("== Figure 9: micro-op expansion under stealth mode ==\n");
    let rows = security_sweep(&CoreConfig::opt(), 48, DEFAULT_WATCHDOG);
    let widths = [14, 12, 12, 12];
    println!(
        "{}",
        row(
            &["bench", "base uops", "csd uops", "expansion"].map(String::from),
            &widths
        )
    );
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.name.clone(),
                    r.base.uops.to_string(),
                    r.stealth.uops.to_string(),
                    format!("{:+.1}%", 100.0 * r.uop_expansion()),
                ],
                &widths
            )
        );
    }
    println!(
        "\naverage expansion: {:+.1}%   (paper: 8.0%)",
        100.0 * mean(rows.iter().map(|r| r.uop_expansion()))
    );
}
