//! Ablations called out in DESIGN.md: (1) criticality-threshold sweep
//! (motivated by the paper's namd observation); (2) µop-cache
//! window-constraint relaxation.

use csd::DevecThresholds;
use csd_bench::{row, run_devec_thresholds, DEFAULT_WATCHDOG};
use csd_exp::{run_plan_with, ExperimentSpec, LegMode, NoCache};
use csd_pipeline::CoreConfig;
use csd_workloads::Workload;

fn main() {
    println!("== Ablation 1: devectorization threshold sweep (namd) ==\n");
    let w = Workload::with_scale(
        csd_workloads::specs()
            .into_iter()
            .find(|s| s.name == "namd")
            .unwrap(),
        0.3,
    );
    let widths = [16, 10, 12, 12];
    println!(
        "{}",
        row(
            &["low/high", "cycles", "energy(uJ)", "gated"].map(String::from),
            &widths
        )
    );
    for (low, high) in [(1, 8), (4, 24), (8, 48), (16, 96)] {
        let r = run_devec_thresholds(
            &w,
            DevecThresholds {
                window: 256,
                low,
                high,
            },
        );
        println!(
            "{}",
            row(
                &[
                    format!("{low}/{high}"),
                    r.stats.cycles.to_string(),
                    format!("{:.2}", r.total_energy() / 1e6),
                    format!("{:.1}%", 100.0 * r.gate.gated_fraction()),
                ],
                &widths
            )
        );
    }

    println!("\n== Ablation 2: µop-cache 3-lines-per-window constraint ==\n");
    for max_lines in [3usize, 8] {
        let cfg = CoreConfig {
            uop_cache_max_lines_per_window: max_lines,
            ..CoreConfig::opt()
        };
        let spec = ExperimentSpec::single(
            "aes-enc",
            "opt",
            0xBEEF ^ 6,
            6,
            LegMode::Stealth {
                watchdog: DEFAULT_WATCHDOG,
            },
        );
        let m = run_plan_with(&spec, cfg, &NoCache, 1)
            .expect("static victim grid resolves")
            .legs[0]
            .metrics;
        println!(
            "max {} lines/window: uop$ hit rate {:.1}%  cycles {}",
            max_lines,
            100.0 * m.uop_cache_hit_rate,
            m.cycles
        );
    }
}
