//! The parallel experiment suite: every `EXPERIMENTS.md` figure/table in
//! one run, one JSON report, and a tolerance-band verdict.
//!
//! ```text
//! cargo run --release -p csd-bench --bin suite -- \
//!     [--jobs N] [--seed S] [--quick] [--out PATH] [--list] [--filter SUBSTR] \
//!     [--journal] [--resume ID] [--journal-dir DIR]
//! ```
//!
//! Exits non-zero if any headline metric drifts outside its declared
//! band (full profile only). `--list` prints the task grid without
//! running anything; `--filter` runs only label-matched tasks and writes
//! a reduced report (no figure summaries or checks) — the same document
//! the `csd-serve` daemon returns for a task request.
//!
//! Durability: `--journal` records every completed task in a
//! write-ahead journal under `--journal-dir` (default `runs/`), and
//! `--resume ID` reopens `runs/ID.journal` — creating it if absent —
//! replays the completed prefix, runs only the remainder, and writes a
//! report byte-identical to an uninterrupted run. Crash it anywhere
//! (even mid-append; the torn tail is truncated on reopen), rerun the
//! same `--resume` command, and only the missing work repeats.

use csd_bench::suite::{
    journal_meta, resolve_jobs, run_filtered, run_filtered_resumable, run_suite,
    run_suite_resumable, SuiteConfig, SuiteReport,
};
use csd_bench::tasks::{build_tasks, filter_tasks};
use csd_telemetry::{write_atomic, RunJournal};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

fn main() {
    // 0 means "auto": one worker per available hardware thread. The same
    // convention applies when --jobs is omitted entirely.
    let mut jobs = 0;
    let mut seed = 0xC5D_2018;
    let mut quick = false;
    let mut list = false;
    let mut filter: Option<String> = None;
    let mut out_path = "BENCH_suite.json".to_string();
    let mut journal = false;
    let mut resume: Option<String> = None;
    let mut journal_dir = "runs".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a non-negative integer (0 = auto)"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--quick" => quick = true,
            "--list" => list = true,
            "--filter" => {
                filter = Some(
                    args.next()
                        .unwrap_or_else(|| die("--filter needs a substring")),
                );
            }
            "--journal" => journal = true,
            "--resume" => {
                resume = Some(
                    args.next()
                        .unwrap_or_else(|| die("--resume needs a run id")),
                );
            }
            "--journal-dir" => {
                journal_dir = args
                    .next()
                    .unwrap_or_else(|| die("--journal-dir needs a path"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: suite [--jobs N] [--seed S] [--quick] [--out PATH]\n\
                     \x20            [--list] [--filter SUBSTR]\n\
                     \x20            [--journal] [--resume ID] [--journal-dir DIR]\n\
                     Runs the full figure grid and writes the JSON report (default\n\
                     BENCH_suite.json). --jobs 0 (or omitted) uses one worker per\n\
                     available hardware thread. --quick runs a down-scaled smoke grid\n\
                     without tolerance checks. --list prints the task labels without\n\
                     running; --filter runs only tasks whose label contains SUBSTR and\n\
                     writes a reduced report. --journal write-ahead-journals every\n\
                     completed task under --journal-dir (default runs/); --resume ID\n\
                     reopens runs/ID.journal (creating it if absent), skips the\n\
                     completed prefix, and produces a report byte-identical to an\n\
                     uninterrupted run."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let cfg = if quick {
        SuiteConfig::quick(seed, jobs)
    } else {
        SuiteConfig::full(seed, jobs)
    };

    if list {
        let tasks = match &filter {
            Some(f) => filter_tasks(&cfg, f),
            None => build_tasks(&cfg),
        };
        for t in &tasks {
            println!("{}", t.label());
        }
        eprintln!("suite: {} task(s)", tasks.len());
        return;
    }

    let run_journal = open_journal(journal, resume, &journal_dir, &cfg, filter.as_deref());

    if let Some(f) = filter {
        let matched = filter_tasks(&cfg, &f).len();
        if matched == 0 {
            die(&format!("--filter {f:?} matches no task (try --list)"));
        }
        eprintln!(
            "suite: profile={} root_seed={:#x} jobs={} filter={f:?} tasks={matched}",
            cfg.profile,
            cfg.root_seed,
            resolve_jobs(cfg.jobs)
        );
        let t0 = Instant::now();
        let doc = match &run_journal {
            Some(j) => run_filtered_resumable(&cfg, &f, j).unwrap_or_else(|e| die(&e)),
            None => run_filtered(&cfg, &f),
        };
        write_artifact(&out_path, doc.pretty().as_bytes());
        eprintln!(
            "suite: wrote {out_path} in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        return;
    }

    eprintln!(
        "suite: profile={} root_seed={:#x} jobs={}",
        cfg.profile,
        cfg.root_seed,
        resolve_jobs(cfg.jobs)
    );
    let t0 = Instant::now();
    let report: SuiteReport = match &run_journal {
        Some(j) => run_suite_resumable(&cfg, j).unwrap_or_else(|e| die(&e)),
        None => run_suite(&cfg),
    };
    let elapsed = t0.elapsed();

    write_artifact(&out_path, report.json.pretty().as_bytes());
    eprintln!("suite: wrote {out_path} in {:.1}s", elapsed.as_secs_f64());

    for c in &report.checks {
        eprintln!(
            "  [{}] {:<42} {:>12.5}  in [{}, {}]",
            if c.pass() { "ok" } else { "FAIL" },
            c.name,
            c.value,
            c.lo,
            c.hi
        );
    }
    let failed = report.failed_checks();
    if !failed.is_empty() {
        eprintln!(
            "suite: {} check(s) outside tolerance: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}

/// Opens (or creates) the run journal when journaling was requested.
/// `--resume ID` names the journal explicitly; bare `--journal` derives
/// a fresh id from the config and pid and prints it, so the resume
/// command after a crash is copy-pasteable from the log.
fn open_journal(
    journal: bool,
    resume: Option<String>,
    journal_dir: &str,
    cfg: &SuiteConfig,
    filter: Option<&str>,
) -> Option<Mutex<RunJournal>> {
    if !journal && resume.is_none() {
        return None;
    }
    let id = resume.unwrap_or_else(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!(
            "{}-{:x}-{t}-{}",
            cfg.profile,
            cfg.root_seed,
            std::process::id()
        )
    });
    let path = PathBuf::from(journal_dir).join(format!("{id}.journal"));
    let meta = journal_meta(cfg, filter);
    let rj = RunJournal::open(&path, &meta).unwrap_or_else(|e| die(&e.to_string()));
    if rj.truncated() > 0 {
        eprintln!(
            "suite: journal {} had a torn tail; truncated {} byte(s)",
            path.display(),
            rj.truncated()
        );
    }
    eprintln!(
        "suite: journaling to {} ({} completed task(s) replayed; resume with --resume {id})",
        path.display(),
        rj.replayed().len()
    );
    Some(Mutex::new(rj))
}

/// Writes an artifact atomically; any failure (`ENOSPC` included) exits
/// non-zero with the path and cause instead of leaving a torn file.
fn write_artifact(path: &str, bytes: &[u8]) {
    write_atomic(std::path::Path::new(path), bytes).unwrap_or_else(|e| die(&e.to_string()));
}

fn die(msg: &str) -> ! {
    eprintln!("suite: {msg}");
    std::process::exit(2);
}
