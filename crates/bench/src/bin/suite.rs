//! The parallel experiment suite: every `EXPERIMENTS.md` figure/table in
//! one run, one JSON report, and a tolerance-band verdict.
//!
//! ```text
//! cargo run --release -p csd-bench --bin suite -- \
//!     [--jobs N] [--seed S] [--quick] [--out PATH] [--list] [--filter SUBSTR]
//! ```
//!
//! Exits non-zero if any headline metric drifts outside its declared
//! band (full profile only). `--list` prints the task grid without
//! running anything; `--filter` runs only label-matched tasks and writes
//! a reduced report (no figure summaries or checks) — the same document
//! the `csd-serve` daemon returns for a task request.

use csd_bench::suite::{resolve_jobs, run_filtered, run_suite, SuiteConfig};
use csd_bench::tasks::{build_tasks, filter_tasks};
use std::time::Instant;

fn main() {
    // 0 means "auto": one worker per available hardware thread. The same
    // convention applies when --jobs is omitted entirely.
    let mut jobs = 0;
    let mut seed = 0xC5D_2018;
    let mut quick = false;
    let mut list = false;
    let mut filter: Option<String> = None;
    let mut out_path = "BENCH_suite.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a non-negative integer (0 = auto)"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--quick" => quick = true,
            "--list" => list = true,
            "--filter" => {
                filter = Some(
                    args.next()
                        .unwrap_or_else(|| die("--filter needs a substring")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: suite [--jobs N] [--seed S] [--quick] [--out PATH]\n\
                     \x20            [--list] [--filter SUBSTR]\n\
                     Runs the full figure grid and writes the JSON report (default\n\
                     BENCH_suite.json). --jobs 0 (or omitted) uses one worker per\n\
                     available hardware thread. --quick runs a down-scaled smoke grid\n\
                     without tolerance checks. --list prints the task labels without\n\
                     running; --filter runs only tasks whose label contains SUBSTR and\n\
                     writes a reduced report."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let cfg = if quick {
        SuiteConfig::quick(seed, jobs)
    } else {
        SuiteConfig::full(seed, jobs)
    };

    if list {
        let tasks = match &filter {
            Some(f) => filter_tasks(&cfg, f),
            None => build_tasks(&cfg),
        };
        for t in &tasks {
            println!("{}", t.label());
        }
        eprintln!("suite: {} task(s)", tasks.len());
        return;
    }

    if let Some(f) = filter {
        let matched = filter_tasks(&cfg, &f).len();
        if matched == 0 {
            die(&format!("--filter {f:?} matches no task (try --list)"));
        }
        eprintln!(
            "suite: profile={} root_seed={:#x} jobs={} filter={f:?} tasks={matched}",
            cfg.profile,
            cfg.root_seed,
            resolve_jobs(cfg.jobs)
        );
        let t0 = Instant::now();
        let doc = run_filtered(&cfg, &f);
        std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| {
            die(&format!("writing {out_path}: {e}"));
        });
        eprintln!(
            "suite: wrote {out_path} in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        return;
    }

    eprintln!(
        "suite: profile={} root_seed={:#x} jobs={}",
        cfg.profile,
        cfg.root_seed,
        resolve_jobs(cfg.jobs)
    );
    let t0 = Instant::now();
    let report = run_suite(&cfg);
    let elapsed = t0.elapsed();

    std::fs::write(&out_path, report.json.pretty()).unwrap_or_else(|e| {
        die(&format!("writing {out_path}: {e}"));
    });
    eprintln!("suite: wrote {out_path} in {:.1}s", elapsed.as_secs_f64());

    for c in &report.checks {
        eprintln!(
            "  [{}] {:<42} {:>12.5}  in [{}, {}]",
            if c.pass() { "ok" } else { "FAIL" },
            c.name,
            c.value,
            c.lo,
            c.hi
        );
    }
    let failed = report.failed_checks();
    if !failed.is_empty() {
        eprintln!(
            "suite: {} check(s) outside tolerance: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("suite: {msg}");
    std::process::exit(2);
}
