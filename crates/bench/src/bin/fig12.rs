//! Figure 12: energy breakdown — conventional power gating vs CSD
//! selective devectorization, normalized to conventional gating.

use csd::VpuPolicy;
use csd_bench::{energy_split, mean, row, run_devec, CONVENTIONAL_IDLE_GATE};
use csd_workloads::suite;

fn main() {
    let scale: f64 = std::env::args()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(0.5);
    println!("== Figure 12: normalized energy, conventional PG vs CSD devectorization ==\n");
    let widths = [10, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "bench",
                "conv total",
                "csd total",
                "csd vpu-dyn",
                "csd vpu-stat"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut savings = Vec::new();
    for w in suite(scale) {
        let conv = run_devec(
            &w,
            VpuPolicy::Conventional {
                idle_gate_cycles: CONVENTIONAL_IDLE_GATE,
            },
        );
        let csd = run_devec(&w, VpuPolicy::default());
        let norm = csd.total_energy() / conv.total_energy();
        let (vdyn, vstat, _) = energy_split(&csd.energy);
        savings.push(1.0 - norm);
        println!(
            "{}",
            row(
                &[
                    w.name().to_string(),
                    "1.000".into(),
                    format!("{norm:.3}"),
                    format!("{:.3}", vdyn / conv.total_energy()),
                    format!("{:.3}", vstat / conv.total_energy()),
                ],
                &widths
            )
        );
    }
    println!(
        "\naverage energy saving: {:.1}%   (paper: 12.9%)",
        100.0 * mean(savings)
    );
}
