//! Figure 13: execution time of the three VPU policies, normalized to
//! Always-On.

use csd_bench::{mean, policies, row, run_devec};
use csd_workloads::suite;

fn main() {
    let scale: f64 = std::env::args()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(0.5);
    println!("== Figure 13: normalized execution time by VPU policy ==\n");
    let widths = [10, 12, 12, 12];
    println!(
        "{}",
        row(
            &["bench", "always-on", "conv", "csd"].map(String::from),
            &widths
        )
    );
    let mut conv_norm = Vec::new();
    let mut csd_norm = Vec::new();
    for w in suite(scale) {
        let runs: Vec<_> = policies().iter().map(|(_, p)| run_devec(&w, *p)).collect();
        let base = runs[0].stats.cycles as f64;
        conv_norm.push(runs[1].stats.cycles as f64 / base);
        csd_norm.push(runs[2].stats.cycles as f64 / base);
        println!(
            "{}",
            row(
                &[
                    w.name().to_string(),
                    "1.000".into(),
                    format!("{:.3}", runs[1].stats.cycles as f64 / base),
                    format!("{:.3}", runs[2].stats.cycles as f64 / base),
                ],
                &widths
            )
        );
    }
    let (c, d) = (mean(conv_norm), mean(csd_norm));
    println!(
        "\naverage: conventional {:.3}, csd {:.3} -> csd is {:.1}% faster than conventional (paper: 3.4%)",
        c,
        d,
        100.0 * (c - d) / c
    );
}
