//! Figure 16: breakdown of SSE (vector) instructions by how they executed
//! under CSD — on the powered VPU, devectorized while waking, or
//! devectorized while gated.

use csd::VpuPolicy;
use csd_bench::{row, run_devec};
use csd_workloads::suite;

fn main() {
    let scale: f64 = std::env::args()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(0.5);
    println!("== Figure 16: vector-instruction execution breakdown under CSD ==\n");
    let widths = [10, 12, 13, 13, 10];
    println!(
        "{}",
        row(
            &["bench", "powered-on", "powering-on", "power-gated", "total"].map(String::from),
            &widths
        )
    );
    for w in suite(scale) {
        let r = run_devec(&w, VpuPolicy::default());
        let total = r.gate.vec_total().max(1);
        let pct = |x: u64| format!("{:.1}%", 100.0 * x as f64 / total as f64);
        println!(
            "{}",
            row(
                &[
                    w.name().to_string(),
                    pct(r.gate.vec_on),
                    pct(r.gate.vec_powering_on),
                    pct(r.gate.vec_gated),
                    r.gate.vec_total().to_string(),
                ],
                &widths
            )
        );
    }
    println!(
        "\npaper: bwaves/milc devectorize while waking; omnetpp runs nearly all vector ops gated"
    );
}
