//! Figure 15: fraction of execution time the VPU is power-gated under CSD.

use csd::VpuPolicy;
use csd_bench::{mean, row, run_devec, CONVENTIONAL_IDLE_GATE};
use csd_workloads::suite;

fn main() {
    let scale: f64 = std::env::args()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(0.5);
    println!("== Figure 15: VPU power-gated time fraction ==\n");
    let widths = [10, 12, 12];
    println!(
        "{}",
        row(&["bench", "conv", "csd"].map(String::from), &widths)
    );
    let mut fracs = Vec::new();
    for w in suite(scale) {
        let conv = run_devec(
            &w,
            VpuPolicy::Conventional {
                idle_gate_cycles: CONVENTIONAL_IDLE_GATE,
            },
        );
        let csd = run_devec(&w, VpuPolicy::default());
        fracs.push(csd.gate.gated_fraction());
        println!(
            "{}",
            row(
                &[
                    w.name().to_string(),
                    format!("{:.1}%", 100.0 * conv.gate.gated_fraction()),
                    format!("{:.1}%", 100.0 * csd.gate.gated_fraction()),
                ],
                &widths
            )
        );
    }
    println!(
        "\naverage CSD gated fraction: {:.1}%   (paper: >70%; ~100% for astar/gcc/gobmk/sjeng)",
        100.0 * mean(fracs)
    );
}
