//! Figure 7b: FLUSH+RELOAD (or PRIME+PROBE with --prime-probe) on RSA —
//! reload-latency trace of the `multiply` line and recovered exponent bits.

use csd_attack::{rsa_attack, AttackMethod, Defense, RsaAttackConfig};
use csd_crypto::RsaVictim;

fn main() {
    let method = if std::env::args().any(|a| a == "--prime-probe") {
        AttackMethod::PrimeProbe
    } else {
        AttackMethod::FlushReload
    };
    let victim = RsaVictim::new(0xB7E1_5163_0000_F36D, 1_000_003);

    println!("== Figure 7b: {method:?} on RSA (square-and-multiply) ==\n");
    for (label, defense_of) in [("no defense", None), ("stealth mode", Some(()))] {
        let base = rsa_attack(
            &victim,
            &RsaAttackConfig {
                method,
                ..Default::default()
            },
        );
        let interval = base.ts + base.tm / 2;
        let cfg = RsaAttackConfig {
            method,
            probe_interval: defense_of.map(|_| interval),
            defense: match defense_of {
                None => Defense::None,
                Some(()) => Defense::Stealth {
                    watchdog_period: interval / 2,
                },
            },
        };
        let out = rsa_attack(&victim, &cfg);
        println!(
            "[{label}] samples={} correct bits={}/64 (ts={} tm={})",
            out.trace.samples.len(),
            out.correct_bits(),
            out.ts,
            out.tm
        );
        print!("  first 40 probe latencies:");
        for s in out.trace.samples.iter().take(40) {
            print!(" {}", s.latency);
        }
        println!("\n");
    }
    println!("paper: exponent fully visible undefended; perceived hit every probe with stealth");
}
