//! Figure 8: normalized execution time with stealth mode, for the NoOpt
//! (no µop cache/fusion) and Opt pipelines. Pass --uop-cache-report for
//! the §VII-A µop-cache hit-rate numbers.

use csd_bench::{mean, row, security_sweep, DEFAULT_WATCHDOG};
use csd_pipeline::CoreConfig;

fn main() {
    let blocks: usize = std::env::args()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(48);
    let report = std::env::args().any(|a| a == "--uop-cache-report");

    println!("== Figure 8: execution time, stealth on / stealth off ==\n");
    let widths = [14, 10, 10, 12, 12];
    println!(
        "{}",
        row(
            &["bench", "noopt", "opt", "uop$ base", "uop$ stealth"].map(String::from),
            &widths
        )
    );

    let noopt = security_sweep(&CoreConfig::no_opt(), blocks, DEFAULT_WATCHDOG);
    let opt = security_sweep(&CoreConfig::opt(), blocks, DEFAULT_WATCHDOG);
    for (n, o) in noopt.iter().zip(&opt) {
        println!(
            "{}",
            row(
                &[
                    n.name.clone(),
                    format!("{:.3}", n.slowdown()),
                    format!("{:.3}", o.slowdown()),
                    format!("{:.1}%", 100.0 * o.base.uop_cache_hit_rate),
                    format!("{:.1}%", 100.0 * o.stealth.uop_cache_hit_rate),
                ],
                &widths
            )
        );
    }
    let avg_noopt = mean(noopt.iter().map(|r| r.slowdown()));
    let avg_opt = mean(opt.iter().map(|r| r.slowdown()));
    println!(
        "\naverage slowdown: noopt {:.1}%  opt {:.1}%   (paper: avg 5.6%, all <10%)",
        100.0 * (avg_noopt - 1.0),
        100.0 * (avg_opt - 1.0)
    );

    if report {
        let nf_base = mean(noopt.iter().map(|r| r.base.uop_cache_hit_rate));
        let nf_st = mean(noopt.iter().map(|r| r.stealth.uop_cache_hit_rate));
        let f_base = mean(opt.iter().map(|r| r.base.uop_cache_hit_rate));
        let f_st = mean(opt.iter().map(|r| r.stealth.uop_cache_hit_rate));
        println!(
            "\nµop cache hit rate (no fusion): {:.1}% -> {:.1}% with CSD (paper: 44% -> 39%)",
            100.0 * nf_base,
            100.0 * nf_st
        );
        println!(
            "µop cache hit rate (fusion):    {:.1}% -> {:.1}% with CSD (paper: 43% -> 42%)",
            100.0 * f_base,
            100.0 * f_st
        );
    }
}
