//! Figure 10: L1D misses per kilo-instruction with and without CSD —
//! the decoy loads mostly hit, so MPKI stays about the same.

use csd_bench::{mean, row, security_sweep, DEFAULT_WATCHDOG};
use csd_pipeline::CoreConfig;

fn main() {
    println!("== Figure 10: D-cache MPKI, baseline vs stealth ==\n");
    let rows = security_sweep(&CoreConfig::opt(), 48, DEFAULT_WATCHDOG);
    let widths = [14, 12, 12];
    println!(
        "{}",
        row(&["bench", "base", "stealth"].map(String::from), &widths)
    );
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.name.clone(),
                    format!("{:.2}", r.base.l1d_mpki),
                    format!("{:.2}", r.stealth.l1d_mpki),
                ],
                &widths
            )
        );
    }
    println!(
        "\naverage MPKI: base {:.2}  stealth {:.2}   (paper: ~unchanged)",
        mean(rows.iter().map(|r| r.base.l1d_mpki)),
        mean(rows.iter().map(|r| r.stealth.l1d_mpki))
    );
}
