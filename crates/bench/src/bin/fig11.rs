//! Figure 11: normalized execution time sweeping the watchdog period
//! from 1000 to 10000 cycles.

use csd_bench::{mean, row, security_sweep};
use csd_pipeline::CoreConfig;

fn main() {
    println!("== Figure 11: watchdog-period sweep ==\n");
    let widths = [10, 14];
    println!(
        "{}",
        row(&["period", "avg slowdown"].map(String::from), &widths)
    );
    for period in [1000u64, 2000, 4000, 6000, 8000, 10000] {
        let rows = security_sweep(&CoreConfig::opt(), 24, period);
        let avg = mean(rows.iter().map(|r| r.slowdown()));
        println!(
            "{}",
            row(
                &[period.to_string(), format!("{:+.2}%", 100.0 * (avg - 1.0))],
                &widths
            )
        );
    }
    println!("\npaper: overhead decreases monotonically as the watchdog slows");
}
