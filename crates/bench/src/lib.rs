//! # csd-bench — the figure/table reproduction harness
//!
//! One function per experiment family, shared by the `fig*` binaries
//! (`cargo run --release -p csd-bench --bin fig08`), the `suite` runner,
//! and the micro-benchmarks. Each binary prints the same rows/series the
//! paper reports; `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! Security experiments (warm-fork-measure over victims) execute through
//! the `csd-exp` plan layer; this crate re-exports its measurement
//! vocabulary so figure binaries keep their historical imports, and adds
//! the figure-shaped assembly ([`SecurityRow`], [`security_sweep`]) plus
//! the devectorization family on top.

#![warn(missing_docs)]

pub mod microbench;
pub mod suite;
pub mod tasks;

use csd::{CsdConfig, DevecThresholds, VpuPolicy};
use csd_exp::{run_plan_with, ExperimentSpec, NoCache};
use csd_pipeline::{Core, CoreConfig, SimMode, SimStats, StepOutcome};
use csd_power::{Activity, EnergyBreakdown, EnergyModel, Unit};
use csd_telemetry::{Json, ToJson};
use csd_workloads::Workload;

pub use csd_exp::{
    measure_blocks, policies, security_core, security_victims, warm_up, ExperimentResult,
    SecMetrics, CONVENTIONAL_IDLE_GATE, DEFAULT_WATCHDOG, WARMUP_OPS,
};

/// One row of the Figure 8/9/10 family for a single benchmark.
#[derive(Debug, Clone)]
pub struct SecurityRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline (stealth off).
    pub base: SecMetrics,
    /// Stealth on.
    pub stealth: SecMetrics,
}

impl SecurityRow {
    /// Normalized execution time (stealth / base).
    pub fn slowdown(&self) -> f64 {
        self.stealth.cycles as f64 / self.base.cycles as f64
    }

    /// µop expansion (stealth / base − 1).
    pub fn uop_expansion(&self) -> f64 {
        self.stealth.uops as f64 / self.base.uops as f64 - 1.0
    }
}

impl ToJson for SecurityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("base", self.base.to_json()),
            ("stealth", self.stealth.to_json()),
            ("slowdown", Json::from(self.slowdown())),
            ("uop_expansion", Json::from(self.uop_expansion())),
        ])
    }
}

/// Assembles a Figure 8/9/10 row from a `[base, stealth]` plan result
/// (the [`ExperimentSpec::pair`] shape).
///
/// # Panics
///
/// Panics if the result has fewer than two legs.
pub fn security_row(result: &ExperimentResult) -> SecurityRow {
    assert!(
        result.legs.len() >= 2,
        "a security row needs a base and a stealth leg"
    );
    SecurityRow {
        name: result.victim.clone(),
        base: result.legs[0].metrics,
        stealth: result.legs[1].metrics,
    }
}

/// Runs the full 8-datapoint security sweep under one core configuration:
/// per victim, one warmed checkpoint forked into a base and a stealth leg.
pub fn security_sweep(core_cfg: &CoreConfig, blocks: usize, watchdog: u64) -> Vec<SecurityRow> {
    security_victims()
        .iter()
        .map(|v| {
            // The pipeline name only keys a checkpoint provider; with
            // `NoCache` it never collides, so the explicit `core_cfg`
            // (which may be neither named configuration) is safe.
            let spec =
                ExperimentSpec::pair(&v.name(), "opt", 0xBEEF ^ blocks as u64, blocks, watchdog);
            let result = run_plan_with(&spec, core_cfg.clone(), &NoCache, 1)
                .expect("static victim grid resolves");
            security_row(&result)
        })
        .collect()
}

/// Geometric-mean helper.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / f64::from(n)).exp()
}

/// Arithmetic-mean helper.
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    sum / f64::from(n)
}

// ---------------------------------------------------------------------
// Devectorization (Figures 12–16)
// ---------------------------------------------------------------------

/// Results of running one workload under one policy.
#[derive(Debug, Clone)]
pub struct DevecRun {
    /// Simulation statistics.
    pub stats: SimStats,
    /// Gate-controller statistics.
    pub gate: csd::GateStats,
    /// Per-unit activity.
    pub activity: Activity,
    /// Energy breakdown from the default model.
    pub energy: EnergyBreakdown,
}

impl DevecRun {
    /// Total energy in picojoules.
    pub fn total_energy(&self) -> f64 {
        self.energy.total_pj()
    }
}

impl ToJson for DevecRun {
    fn to_json(&self) -> Json {
        let (vpu_dyn, vpu_static, rest) = energy_split(&self.energy);
        Json::obj([
            ("stats", self.stats.to_json()),
            ("gate", self.gate.to_json()),
            ("activity", self.activity.to_json()),
            ("energy", self.energy.to_json()),
            ("total_pj", Json::from(self.total_energy())),
            ("vpu_dynamic_pj", Json::from(vpu_dyn)),
            ("vpu_static_pj", Json::from(vpu_static)),
            ("rest_pj", Json::from(rest)),
        ])
    }
}

/// Runs `workload` under `policy` on the cycle engine.
///
/// # Panics
///
/// Panics if the workload faults or exceeds the instruction budget.
pub fn run_devec(workload: &Workload, policy: VpuPolicy) -> DevecRun {
    let csd_cfg = CsdConfig {
        vpu_policy: policy,
        ..CsdConfig::default()
    };
    let mut core = Core::new(
        CoreConfig::default(),
        csd_cfg,
        workload.program().clone(),
        SimMode::Cycle,
    );
    workload.install(&mut core);
    let out = core.run(100_000_000);
    assert_eq!(out, StepOutcome::Halted, "{} must halt", workload.name());
    let activity = core.activity();
    let energy = EnergyModel::default().breakdown(&activity);
    DevecRun {
        stats: *core.stats(),
        gate: *core.engine().gate().stats(),
        activity,
        energy,
    }
}

/// Runs one workload under a custom threshold configuration (the
/// ablation sweep motivated by the paper's `namd` observation).
pub fn run_devec_thresholds(workload: &Workload, thresholds: DevecThresholds) -> DevecRun {
    run_devec(workload, VpuPolicy::CsdDevec(thresholds))
}

/// Pretty-prints a fixed-width table row.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    cols.iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// VPU-relevant share of the energy breakdown, for Figure 12's stacked
/// bars: `(vpu_dynamic, vpu_leakage+overhead, rest)`.
pub fn energy_split(e: &EnergyBreakdown) -> (f64, f64, f64) {
    let vpu_dyn = e.dynamic(Unit::Vpu);
    let vpu_static = e.leakage(Unit::Vpu) + e.gating_overhead_pj;
    (vpu_dyn, vpu_static, e.total_pj() - vpu_dyn - vpu_static)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_exp::{run_plan, LegMode};
    use csd_telemetry::SplitMix64;

    #[test]
    fn stealth_costs_cycles_but_modestly() {
        let spec = ExperimentSpec::pair("aes-enc", "opt", 0xBEEF ^ 4, 4, DEFAULT_WATCHDOG);
        let r = run_plan(&spec, &NoCache, 1).unwrap();
        let row = security_row(&r);
        assert!(row.stealth.decoy_uops > 0);
        assert!(row.stealth.cycles > row.base.cycles);
        assert!(
            row.slowdown() < 1.5,
            "stealth slowdown should be modest, got {}",
            row.slowdown()
        );
    }

    #[test]
    fn forked_base_leg_matches_unforked_run() {
        // The base leg of a plan — fresh core, checkpoint restored — must
        // be bit-equal to the original warm-then-measure recipe on one
        // live core: same construction, same warmup, same plaintext
        // stream (a snapshot/restore costs no model time and rewinds the
        // complete machine).
        let victims = security_victims();
        let v = victims[0].as_ref(); // aes-enc
        let mut core = security_core(v, CoreConfig::opt());
        let mut rng = SplitMix64::new(77);
        let mut input = vec![0u8; v.input_len()];
        warm_up(&mut core, v, &mut rng, &mut input);
        let solo = measure_blocks(&mut core, v, &mut rng, &mut input, 2);

        let spec = ExperimentSpec::pair("aes-enc", "opt", 77, 2, DEFAULT_WATCHDOG);
        let r = run_plan(&spec, &NoCache, 1).unwrap();
        assert_eq!(r.legs[0].metrics, solo);
        assert!(
            r.legs[1].metrics.decoy_uops > 0,
            "stealth leg must arm decoys"
        );
        assert!(r.legs[1].metrics.cycles > r.legs[0].metrics.cycles);
    }

    #[test]
    fn restored_forks_are_deterministic_at_any_job_count() {
        // Restoring the same checkpoint twice with the same watchdog
        // period must reproduce the stealth leg exactly, and running the
        // legs on a thread pool must not change a single result — the
        // snapshot carries the complete modeled machine and legs are
        // fully independent.
        let spec = ExperimentSpec::watchdog_sweep("blowfish-enc", "opt", 9, 2, &[1000, 1000, 4000]);
        let sequential = run_plan(&spec, &NoCache, 1).unwrap();
        assert_eq!(
            sequential.legs[1].metrics, sequential.legs[2].metrics,
            "identical forks must agree"
        );
        assert!(sequential.legs[1].metrics.cycles > sequential.legs[0].metrics.cycles);
        assert!(sequential.legs[3].metrics.decoy_uops > 0);

        let parallel = run_plan(&spec, &NoCache, 4).unwrap();
        assert_eq!(
            sequential, parallel,
            "jobs count must not leak into results"
        );
    }

    #[test]
    fn devec_leg_swaps_the_vpu_policy_at_fork_time() {
        // A devec leg measures under a different gating policy than the
        // warmed core was built with; always-on must not gate, while the
        // shared base leg is unaffected.
        let spec = ExperimentSpec {
            victim: "aes-enc".to_string(),
            pipeline: "opt".to_string(),
            seed: 5,
            blocks: 2,
            cold: false,
            legs: vec![
                csd_exp::Leg::new(LegMode::Base),
                csd_exp::Leg::new(LegMode::Devec {
                    policy: "always-on".to_string(),
                }),
            ],
        };
        let r = run_plan(&spec, &NoCache, 1).unwrap();
        assert_eq!(r.legs.len(), 2);
        assert_eq!(
            r.legs[0].metrics.insts, r.legs[1].metrics.insts,
            "policy swap must not change the instruction stream"
        );
    }

    #[test]
    fn devec_saves_energy_on_a_scalar_workload() {
        let w = Workload::with_scale(
            csd_workloads::specs()
                .into_iter()
                .find(|s| s.name == "gcc")
                .unwrap(),
            0.1,
        );
        let on = run_devec(&w, VpuPolicy::AlwaysOn);
        let csd = run_devec(&w, VpuPolicy::CsdDevec(DevecThresholds::default()));
        assert!(csd.total_energy() < on.total_energy());
        assert!(csd.gate.gated_fraction() > 0.5);
    }

    #[test]
    fn helpers() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }
}
