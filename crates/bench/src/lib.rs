//! # csd-bench — the figure/table reproduction harness
//!
//! One function per experiment family, shared by the `fig*` binaries
//! (`cargo run --release -p csd-bench --bin fig08`), the `suite` runner,
//! and the micro-benchmarks. Each binary prints the same rows/series the
//! paper reports; `EXPERIMENTS.md` records paper-vs-measured values.

#![warn(missing_docs)]

pub mod microbench;
pub mod suite;
pub mod tasks;

use csd::{CsdConfig, DevecThresholds, VpuPolicy};
use csd_crypto::{
    enable_stealth_for, AesKeySize, AesVictim, BlowfishVictim, CipherDir, RsaVictim, Victim,
};
use csd_pipeline::{Core, CoreConfig, SimMode, SimStats, StepOutcome};
use csd_power::{Activity, EnergyBreakdown, EnergyModel, Unit};
use csd_telemetry::{Json, SplitMix64, ToJson};
use csd_workloads::Workload;

/// The paper's default watchdog period (cycles).
pub const DEFAULT_WATCHDOG: u64 = 1000;

/// Idle threshold for the conventional power-gating baseline (cycles the
/// VPU must sit idle before it is gated).
pub const CONVENTIONAL_IDLE_GATE: u64 = 400;

/// The eight security datapoints: {AES, RSA, Blowfish, Rijndael} ×
/// {encrypt, decrypt} (paper §VI-A).
pub fn security_victims() -> Vec<Box<dyn Victim>> {
    let aes_key: Vec<u8> = (0..16).map(|i| i * 11 + 3).collect();
    let rij_key: Vec<u8> = (0..32).map(|i| i * 7 + 5).collect();
    vec![
        Box::new(AesVictim::new(
            AesKeySize::K128,
            CipherDir::Encrypt,
            &aes_key,
        )),
        Box::new(AesVictim::new(
            AesKeySize::K128,
            CipherDir::Decrypt,
            &aes_key,
        )),
        Box::new(RsaVictim::named("rsa-enc", 65_537, 1_000_003)),
        Box::new(RsaVictim::named(
            "rsa-dec",
            0xC3A5_55AA_0F0F_1234,
            1_000_003,
        )),
        Box::new(BlowfishVictim::new(CipherDir::Encrypt, b"BF-SECRET-KEY")),
        Box::new(BlowfishVictim::new(CipherDir::Decrypt, b"BF-SECRET-KEY")),
        Box::new(AesVictim::new(
            AesKeySize::K256,
            CipherDir::Encrypt,
            &rij_key,
        )),
        Box::new(AesVictim::new(
            AesKeySize::K256,
            CipherDir::Decrypt,
            &rij_key,
        )),
    ]
}

/// Metrics from one security-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecMetrics {
    /// Cycles over the measured region.
    pub cycles: u64,
    /// Retired macro-ops.
    pub insts: u64,
    /// Retired µops.
    pub uops: u64,
    /// Decoy µops among them.
    pub decoy_uops: u64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// µop-cache hit rate over the measured region.
    pub uop_cache_hit_rate: f64,
}

/// Runs `blocks` operations of `victim` on a cycle-accurate core and
/// returns steady-state metrics (twelve warm-up operations excluded).
///
/// # Panics
///
/// Panics if the victim faults.
pub fn run_security(
    victim: &dyn Victim,
    stealth: bool,
    core_cfg: CoreConfig,
    blocks: usize,
    watchdog: u64,
) -> SecMetrics {
    run_security_seeded(
        victim,
        stealth,
        core_cfg,
        blocks,
        watchdog,
        0xBEEF ^ blocks as u64,
    )
}

/// [`run_security`] with an explicit input-stream seed. The suite runner
/// derives one seed per `(pipeline, victim)` pair from its root seed, so
/// the base and stealth runs of a datapoint see identical plaintexts and
/// their ratio is noise-free.
///
/// # Panics
///
/// Panics if the victim faults.
pub fn run_security_seeded(
    victim: &dyn Victim,
    stealth: bool,
    core_cfg: CoreConfig,
    blocks: usize,
    watchdog: u64,
    seed: u64,
) -> SecMetrics {
    let mut core = security_core(victim, core_cfg);
    if stealth {
        enable_stealth_for(victim, &mut core, watchdog);
    }
    let mut rng = SplitMix64::new(seed);
    let mut input = vec![0u8; victim.input_len()];
    warm_up(&mut core, victim, &mut rng, &mut input);
    measure_blocks(&mut core, victim, &mut rng, &mut input, blocks)
}

/// Both legs of one Figure 8/9/10 datapoint, forked from a single warmed
/// checkpoint. The victim warms up once with stealth off, the core is
/// snapshotted, the base leg measures from the live core, and the stealth
/// leg restores the checkpoint (and a copy of the RNG, so both legs see
/// the identical plaintext stream), arms stealth, and measures again —
/// halving the warmup cost of [`run_security_seeded`] pairs.
///
/// # Panics
///
/// Panics if the victim faults.
pub fn run_security_pair_seeded(
    victim: &dyn Victim,
    core_cfg: CoreConfig,
    blocks: usize,
    watchdog: u64,
    seed: u64,
) -> SecurityRow {
    let mut core = security_core(victim, core_cfg);
    let mut rng = SplitMix64::new(seed);
    let mut input = vec![0u8; victim.input_len()];
    warm_up(&mut core, victim, &mut rng, &mut input);
    let ckpt = core.snapshot();
    let fork_rng = rng;

    let base = measure_blocks(&mut core, victim, &mut rng, &mut input, blocks);

    core.restore(&ckpt);
    let mut rng = fork_rng;
    enable_stealth_for(victim, &mut core, watchdog);
    let stealth = measure_blocks(&mut core, victim, &mut rng, &mut input, blocks);

    SecurityRow {
        name: victim.name(),
        base,
        stealth,
    }
}

/// The Figure 11 sweep for one victim: a single warmed checkpoint, a base
/// leg, and one stealth leg per watchdog period — each leg forked from the
/// same snapshot with the same plaintext stream. Returns the base metrics
/// and `(period, stealth metrics)` rows in sweep order.
///
/// # Panics
///
/// Panics if the victim faults.
pub fn run_watchdog_sweep_seeded(
    victim: &dyn Victim,
    core_cfg: CoreConfig,
    blocks: usize,
    periods: &[u64],
    seed: u64,
) -> (SecMetrics, Vec<(u64, SecMetrics)>) {
    let mut core = security_core(victim, core_cfg);
    let mut rng = SplitMix64::new(seed);
    let mut input = vec![0u8; victim.input_len()];
    warm_up(&mut core, victim, &mut rng, &mut input);
    let ckpt = core.snapshot();
    let fork_rng = rng;

    let base = measure_blocks(&mut core, victim, &mut rng, &mut input, blocks);

    let mut rows = Vec::with_capacity(periods.len());
    for &period in periods {
        core.restore(&ckpt);
        let mut rng = fork_rng;
        enable_stealth_for(victim, &mut core, period);
        let m = measure_blocks(&mut core, victim, &mut rng, &mut input, blocks);
        rows.push((period, m));
    }
    (base, rows)
}

/// Operations [`warm_up`] simulates before the measured region.
pub const WARMUP_OPS: usize = 12;

/// Builds the cycle-accurate, DIFT-enabled core every security experiment
/// runs on, with `victim` installed. Public so the serving layer can
/// construct an identical core to restore a cached checkpoint into.
pub fn security_core(victim: &dyn Victim, core_cfg: CoreConfig) -> Core {
    let cfg = CoreConfig {
        dift_enabled: true,
        ..core_cfg
    };
    let mut core = Core::new(
        cfg,
        CsdConfig::default(),
        victim.program().clone(),
        SimMode::Cycle,
    );
    victim.install(&mut core);
    core
}

/// Warm-up ([`WARMUP_OPS`] operations) long enough for the sparse table
/// touches of the baseline to fully populate the caches — otherwise
/// decoy prefetching makes stealth look *faster* (the paper's
/// "prefetching effect", which should only mute, not invert, the cost).
pub fn warm_up(core: &mut Core, victim: &dyn Victim, rng: &mut SplitMix64, input: &mut [u8]) {
    for _ in 0..WARMUP_OPS {
        rng.fill_bytes(input);
        victim.run_once(core, input);
    }
}

/// Runs `blocks` operations and returns the metric deltas over them.
pub fn measure_blocks(
    core: &mut Core,
    victim: &dyn Victim,
    rng: &mut SplitMix64,
    input: &mut [u8],
    blocks: usize,
) -> SecMetrics {
    let s0 = *core.stats();
    let h0 = core.hierarchy().stats();
    let u0 = *core.uop_cache_stats();
    for _ in 0..blocks {
        rng.fill_bytes(input);
        victim.run_once(core, input);
    }
    let s1 = *core.stats();
    let h1 = core.hierarchy().stats();
    let u1 = *core.uop_cache_stats();

    let insts = s1.insts - s0.insts;
    let l1d = h1.l1d.delta(&h0.l1d);
    let lookups = u1.lookups - u0.lookups;
    let hits = u1.hits - u0.hits;
    SecMetrics {
        cycles: s1.cycles - s0.cycles,
        insts,
        uops: s1.uops - s0.uops,
        decoy_uops: s1.decoy_uops - s0.decoy_uops,
        l1d_mpki: l1d.mpki(insts),
        uop_cache_hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
    }
}

impl ToJson for SecMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("insts", Json::from(self.insts)),
            ("uops", Json::from(self.uops)),
            ("decoy_uops", Json::from(self.decoy_uops)),
            ("l1d_mpki", Json::from(self.l1d_mpki)),
            ("uop_cache_hit_rate", Json::from(self.uop_cache_hit_rate)),
        ])
    }
}

/// One row of the Figure 8/9/10 family for a single benchmark.
#[derive(Debug, Clone)]
pub struct SecurityRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline (stealth off).
    pub base: SecMetrics,
    /// Stealth on.
    pub stealth: SecMetrics,
}

impl SecurityRow {
    /// Normalized execution time (stealth / base).
    pub fn slowdown(&self) -> f64 {
        self.stealth.cycles as f64 / self.base.cycles as f64
    }

    /// µop expansion (stealth / base − 1).
    pub fn uop_expansion(&self) -> f64 {
        self.stealth.uops as f64 / self.base.uops as f64 - 1.0
    }
}

/// Runs the full 8-datapoint security sweep under one core configuration.
pub fn security_sweep(core_cfg: &CoreConfig, blocks: usize, watchdog: u64) -> Vec<SecurityRow> {
    security_victims()
        .iter()
        .map(|v| SecurityRow {
            name: v.name(),
            base: run_security(v.as_ref(), false, core_cfg.clone(), blocks, watchdog),
            stealth: run_security(v.as_ref(), true, core_cfg.clone(), blocks, watchdog),
        })
        .collect()
}

/// Geometric-mean helper.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / f64::from(n)).exp()
}

/// Arithmetic-mean helper.
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    sum / f64::from(n)
}

// ---------------------------------------------------------------------
// Devectorization (Figures 12–16)
// ---------------------------------------------------------------------

/// The three VPU policies of the paper's comparison.
pub fn policies() -> [(&'static str, VpuPolicy); 3] {
    [
        ("always-on", VpuPolicy::AlwaysOn),
        (
            "conventional",
            VpuPolicy::Conventional {
                idle_gate_cycles: CONVENTIONAL_IDLE_GATE,
            },
        ),
        ("csd-devec", VpuPolicy::CsdDevec(DevecThresholds::default())),
    ]
}

/// Results of running one workload under one policy.
#[derive(Debug, Clone)]
pub struct DevecRun {
    /// Simulation statistics.
    pub stats: SimStats,
    /// Gate-controller statistics.
    pub gate: csd::GateStats,
    /// Per-unit activity.
    pub activity: Activity,
    /// Energy breakdown from the default model.
    pub energy: EnergyBreakdown,
}

impl DevecRun {
    /// Total energy in picojoules.
    pub fn total_energy(&self) -> f64 {
        self.energy.total_pj()
    }
}

impl ToJson for SecurityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("base", self.base.to_json()),
            ("stealth", self.stealth.to_json()),
            ("slowdown", Json::from(self.slowdown())),
            ("uop_expansion", Json::from(self.uop_expansion())),
        ])
    }
}

impl ToJson for DevecRun {
    fn to_json(&self) -> Json {
        let (vpu_dyn, vpu_static, rest) = energy_split(&self.energy);
        Json::obj([
            ("stats", self.stats.to_json()),
            ("gate", self.gate.to_json()),
            ("activity", self.activity.to_json()),
            ("energy", self.energy.to_json()),
            ("total_pj", Json::from(self.total_energy())),
            ("vpu_dynamic_pj", Json::from(vpu_dyn)),
            ("vpu_static_pj", Json::from(vpu_static)),
            ("rest_pj", Json::from(rest)),
        ])
    }
}

/// Runs `workload` under `policy` on the cycle engine.
///
/// # Panics
///
/// Panics if the workload faults or exceeds the instruction budget.
pub fn run_devec(workload: &Workload, policy: VpuPolicy) -> DevecRun {
    let csd_cfg = CsdConfig {
        vpu_policy: policy,
        ..CsdConfig::default()
    };
    let mut core = Core::new(
        CoreConfig::default(),
        csd_cfg,
        workload.program().clone(),
        SimMode::Cycle,
    );
    workload.install(&mut core);
    let out = core.run(100_000_000);
    assert_eq!(out, StepOutcome::Halted, "{} must halt", workload.name());
    let activity = core.activity();
    let energy = EnergyModel::default().breakdown(&activity);
    DevecRun {
        stats: *core.stats(),
        gate: *core.engine().gate().stats(),
        activity,
        energy,
    }
}

/// Runs one workload under a custom threshold configuration (the
/// ablation sweep motivated by the paper's `namd` observation).
pub fn run_devec_thresholds(workload: &Workload, thresholds: DevecThresholds) -> DevecRun {
    run_devec(workload, VpuPolicy::CsdDevec(thresholds))
}

/// Pretty-prints a fixed-width table row.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    cols.iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// VPU-relevant share of the energy breakdown, for Figure 12's stacked
/// bars: `(vpu_dynamic, vpu_leakage+overhead, rest)`.
pub fn energy_split(e: &EnergyBreakdown) -> (f64, f64, f64) {
    let vpu_dyn = e.dynamic(Unit::Vpu);
    let vpu_static = e.leakage(Unit::Vpu) + e.gating_overhead_pj;
    (vpu_dyn, vpu_static, e.total_pj() - vpu_dyn - vpu_static)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_suite_has_eight_datapoints() {
        let names: Vec<String> = security_victims().iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"aes-enc".to_string()));
        assert!(names.contains(&"rsa-dec".to_string()));
        assert!(names.contains(&"rijndael-dec".to_string()));
        assert!(names.contains(&"blowfish-enc".to_string()));
    }

    #[test]
    fn stealth_costs_cycles_but_modestly() {
        let v = &security_victims()[0]; // aes-enc
        let base = run_security(v.as_ref(), false, CoreConfig::opt(), 4, DEFAULT_WATCHDOG);
        let stealth = run_security(v.as_ref(), true, CoreConfig::opt(), 4, DEFAULT_WATCHDOG);
        assert!(stealth.decoy_uops > 0);
        assert!(stealth.cycles > base.cycles);
        let slowdown = stealth.cycles as f64 / base.cycles as f64;
        assert!(
            slowdown < 1.5,
            "stealth slowdown should be modest, got {slowdown}"
        );
    }

    #[test]
    fn checkpoint_pair_base_matches_unforked_run() {
        // The base leg of the checkpoint-forked pair must be bit-equal to
        // the original warm-then-measure recipe: same construction, same
        // warmup, same plaintext stream (a snapshot costs no model time).
        let v = &security_victims()[0]; // aes-enc
        let row = run_security_pair_seeded(v.as_ref(), CoreConfig::opt(), 2, DEFAULT_WATCHDOG, 77);
        let solo = run_security_seeded(
            v.as_ref(),
            false,
            CoreConfig::opt(),
            2,
            DEFAULT_WATCHDOG,
            77,
        );
        assert_eq!(row.base, solo);
        assert!(row.stealth.decoy_uops > 0, "stealth leg must arm decoys");
        assert!(row.stealth.cycles > row.base.cycles);
    }

    #[test]
    fn restored_forks_are_deterministic() {
        // Restoring the same checkpoint twice with the same watchdog
        // period must reproduce the stealth leg exactly — the snapshot
        // carries the complete modeled machine.
        let v = &security_victims()[4]; // blowfish-enc
        let (base, rows) =
            run_watchdog_sweep_seeded(v.as_ref(), CoreConfig::opt(), 2, &[1000, 1000, 4000], 9);
        assert_eq!(rows[0].1, rows[1].1, "identical forks must agree");
        assert!(rows[0].1.cycles > base.cycles);
        assert!(rows[2].1.decoy_uops > 0);
    }

    #[test]
    fn devec_saves_energy_on_a_scalar_workload() {
        let w = Workload::with_scale(
            csd_workloads::specs()
                .into_iter()
                .find(|s| s.name == "gcc")
                .unwrap(),
            0.1,
        );
        let on = run_devec(&w, VpuPolicy::AlwaysOn);
        let csd = run_devec(&w, VpuPolicy::CsdDevec(DevecThresholds::default()));
        assert!(csd.total_energy() < on.total_energy());
        assert!(csd.gate.gated_fraction() > 0.5);
    }

    #[test]
    fn helpers() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }
}
