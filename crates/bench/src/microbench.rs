//! Minimal in-tree micro-benchmark harness.
//!
//! The workspace builds offline, so the `harness = false` bench targets
//! use this module instead of an external framework. The protocol is the
//! classic one: measure a single call to pick an iteration count that
//! fills a ~50 ms sample, take several samples, and report the fastest
//! (least-noise) per-iteration time. Results go to stdout; `cargo bench`
//! exits zero regardless of timings — these are for eyeballing relative
//! cost, not for CI gating.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget for one timing sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(50);
/// Samples per benchmark; the fastest wins.
const SAMPLES: u32 = 5;

/// Times `f` and prints one `name  ns/iter` line.
///
/// Returns the best-sample per-iteration time so callers can derive
/// throughput figures.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    // Warm-up + calibration: how many iterations fill one sample budget?
    let once = {
        let t = Instant::now();
        black_box(f());
        t.elapsed().max(Duration::from_nanos(1))
    };
    let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u32;

    let mut best = Duration::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed() / iters);
    }
    println!(
        "{name:<44} {:>12}/iter  ({iters} iters/sample)",
        fmt_duration(best)
    );
    best
}

/// Like [`fn@bench`], but also reports throughput for `elems` logical
/// elements processed per call.
pub fn bench_throughput<R>(name: &str, elems: u64, f: impl FnMut() -> R) -> Duration {
    let per_iter = bench(name, f);
    let per_sec = elems as f64 / per_iter.as_secs_f64();
    println!(
        "{:<44} {:>14.2} Melem/s",
        format!("{name} (throughput)"),
        per_sec / 1e6
    );
    per_iter
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        // The workload must be slow enough that per-iter time survives the
        // integer division by the iteration count (a sub-ns body measures
        // as 0 ns on a fast machine).
        let d = bench("selftest/sum-1k", || {
            (0..1_000u64).fold(0u64, |a, x| a ^ black_box(x))
        });
        assert!(d > Duration::ZERO);
    }
}
