//! The experiment-task grid as a library.
//!
//! Every figure/table datapoint of `EXPERIMENTS.md` is one [`TaskDef`]:
//! a stable label (which also salts the task's seed — never scheduling
//! order) plus the closure computing that datapoint as deterministic
//! JSON. The `suite` binary and the `csd-serve` daemon both build their
//! work from this one definition, so a task served over HTTP is
//! byte-identical to the same task run from the CLI.

use crate::suite::SuiteConfig;
use crate::{policies, security_row, DEFAULT_WATCHDOG};
use csd_attack::{aes_attack, rsa_attack, AesAttackConfig, AttackMethod, Defense, RsaAttackConfig};
use csd_crypto::RsaVictim;
use csd_exp::{run_plan, ExperimentSpec, LegMode, NoCache};
use csd_pipeline::CoreConfig;
use csd_telemetry::{derive_seed, Json, ToJson};
use csd_workloads::{specs, Workload};

pub use csd_exp::{pipelines, victim_names, Pipeline};

/// A unit of work: a stable label plus the closure computing that
/// datapoint from a seed.
pub struct TaskDef {
    label: String,
    run: Box<dyn Fn(u64) -> Json + Send + Sync>,
}

impl TaskDef {
    /// The task's stable label, e.g. `sec/opt/aes-enc`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The seed this task consumes under `root_seed` (derived from the
    /// label, so it is independent of grid position and scheduling).
    pub fn seed(&self, root_seed: u64) -> u64 {
        derive_seed(root_seed, &self.label)
    }

    /// Computes the datapoint.
    pub fn run(&self, seed: u64) -> Json {
        (self.run)(seed)
    }
}

impl std::fmt::Debug for TaskDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskDef({})", self.label)
    }
}

fn task(label: String, run: impl Fn(u64) -> Json + Send + Sync + 'static) -> TaskDef {
    TaskDef {
        label,
        run: Box::new(run),
    }
}

/// Builds the full task grid for one suite configuration.
pub fn build_tasks(cfg: &SuiteConfig) -> Vec<TaskDef> {
    let mut tasks = Vec::new();
    let names = victim_names();

    // -- Figures 8/9/10: {opt, noopt} × victim. Both legs fork from one
    //    warmed checkpoint, so they share the plaintext stream (the ratio
    //    is noise-free) and the warmup simulates only once.
    let blocks = cfg.sec_blocks;
    for (cfg_name, _) in pipelines() {
        for name in names.iter() {
            let name = name.clone();
            tasks.push(task(format!("sec/{cfg_name}/{name}"), move |seed| {
                let spec = ExperimentSpec::pair(&name, cfg_name, seed, blocks, DEFAULT_WATCHDOG);
                let result = run_plan(&spec, &NoCache, 1).expect("static grid names resolve");
                security_row(&result).to_json()
            }));
        }
    }

    // -- Figure 11: watchdog-period sweep per victim (optimized pipeline).
    //    One warmed checkpoint per victim; the base leg and every period's
    //    stealth leg fork from it.
    let wd_blocks = cfg.wd_blocks;
    let periods = cfg.wd_periods.clone();
    for name in names.iter() {
        let name = name.clone();
        let periods = periods.clone();
        tasks.push(task(format!("wd/{name}"), move |seed| {
            let spec = ExperimentSpec::watchdog_sweep(&name, "opt", seed, wd_blocks, &periods);
            let result = run_plan(&spec, &NoCache, 1).expect("static grid names resolve");
            let base = result.legs[0].metrics;
            let rows: Vec<Json> = result.legs[1..]
                .iter()
                .map(|leg| {
                    let LegMode::Stealth { watchdog } = leg.mode else {
                        unreachable!("a watchdog sweep has only stealth legs after base");
                    };
                    let slowdown = leg.metrics.cycles as f64 / base.cycles as f64;
                    Json::obj([
                        ("period", Json::from(watchdog)),
                        ("stealth", leg.metrics.to_json()),
                        ("slowdown", Json::from(slowdown)),
                    ])
                })
                .collect();
            Json::obj([
                ("name", Json::from(result.victim.as_str())),
                ("base", base.to_json()),
                ("periods", Json::Arr(rows)),
            ])
        }));
    }

    // -- Figure 7a: PRIME+PROBE on AES, undefended vs stealth. Both legs
    //    share the family-derived plaintext seed so only the defense
    //    differs.
    let trials = cfg.aes_trials;
    let aes_seed_root = cfg.root_seed;
    for leg in ["undefended", "stealth"] {
        let stealth = leg == "stealth";
        tasks.push(task(format!("attack/aes-pp/{leg}"), move |_seed| {
            let attack_cfg = AesAttackConfig {
                method: AttackMethod::PrimeProbe,
                trials_per_candidate: trials,
                seed: derive_seed(aes_seed_root, "attack/aes-pp"),
                defense: if stealth {
                    Defense::stealth_default()
                } else {
                    Defense::None
                },
                ..AesAttackConfig::default()
            };
            let out = aes_attack(&fig07a_victim(), &attack_cfg);
            let pos0: Vec<Json> = out.touch_rates[0].iter().map(|r| Json::from(*r)).collect();
            Json::obj([
                ("encryptions", Json::from(out.encryptions)),
                (
                    "correct_positions",
                    Json::from(out.correct_positions() as u64),
                ),
                ("bits_recovered", Json::from(out.bits_recovered() as u64)),
                ("pos0_touch_rates", Json::Arr(pos0)),
            ])
        }));
    }

    // -- Figure 7b: FLUSH+RELOAD and PRIME+PROBE on RSA. The attack is
    //    fully deterministic (fixed exponent, calibrated probe interval),
    //    so no seed is consumed. The stealth leg mirrors the `fig07b`
    //    binary: calibrate the interval from an undefended run, then
    //    probe the defended victim at that cadence.
    for (mname, method) in [
        ("rsa-fr", AttackMethod::FlushReload),
        ("rsa-pp", AttackMethod::PrimeProbe),
    ] {
        for leg in ["undefended", "stealth"] {
            let stealth = leg == "stealth";
            tasks.push(task(format!("attack/{mname}/{leg}"), move |_seed| {
                let victim = fig07b_victim();
                let base = rsa_attack(
                    &victim,
                    &RsaAttackConfig {
                        method,
                        ..Default::default()
                    },
                );
                let out = if stealth {
                    let interval = base.ts + base.tm / 2;
                    rsa_attack(
                        &victim,
                        &RsaAttackConfig {
                            method,
                            probe_interval: Some(interval),
                            defense: Defense::Stealth {
                                watchdog_period: interval / 2,
                            },
                        },
                    )
                } else {
                    base
                };
                Json::obj([
                    ("samples", Json::from(out.trace.samples.len() as u64)),
                    ("correct_bits", Json::from(out.correct_bits() as u64)),
                    ("ts", Json::from(out.ts)),
                    ("tm", Json::from(out.tm)),
                ])
            }));
        }
    }

    // -- Figures 12–16: workload × VPU policy. Workload generation is
    //    seeded by its spec, so these tasks are deterministic by
    //    construction.
    let scale = cfg.devec_scale;
    for spec in specs() {
        let wname = spec.name;
        for (pi, (pname, _)) in policies().iter().enumerate() {
            tasks.push(task(format!("devec/{wname}/{pname}"), move |_seed| {
                let w = Workload::with_scale(
                    specs().into_iter().find(|s| s.name == wname).unwrap(),
                    scale,
                );
                let (pname, policy) = policies()[pi];
                let run = crate::run_devec(&w, policy);
                Json::obj([
                    ("workload", Json::from(wname)),
                    ("policy", Json::from(pname)),
                    ("run", run.to_json()),
                ])
            }));
        }
    }

    // -- Table I: the baseline machine description.
    tasks.push(task("table1".to_string(), |_seed| table1_json()));

    tasks
}

/// The tasks whose label contains `substr` (every task when `substr` is
/// empty), preserving grid order. Shared by `suite --filter` and the
/// server's task lookup, so both run the identical subset.
pub fn filter_tasks(cfg: &SuiteConfig, substr: &str) -> Vec<TaskDef> {
    build_tasks(cfg)
        .into_iter()
        .filter(|t| t.label.contains(substr))
        .collect()
}

/// The task with exactly this label, if it exists in the grid.
pub fn find_task(cfg: &SuiteConfig, label: &str) -> Option<TaskDef> {
    build_tasks(cfg).into_iter().find(|t| t.label == label)
}

fn fig07a_victim() -> csd_crypto::AesVictim {
    let key: Vec<u8> = vec![
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    csd_crypto::AesVictim::new(
        csd_crypto::AesKeySize::K128,
        csd_crypto::CipherDir::Encrypt,
        &key,
    )
}

fn fig07b_victim() -> RsaVictim {
    RsaVictim::new(0xB7E1_5163_0000_F36D, 1_000_003)
}

/// The Table I machine description as JSON.
pub fn table1_json() -> Json {
    let c = CoreConfig::default();
    let h = &c.hierarchy;
    let cache = |l: &csd_cache::CacheConfig| {
        Json::obj([
            ("size_bytes", Json::from(l.size_bytes)),
            ("ways", Json::from(l.ways)),
            ("line_bytes", Json::from(l.line_bytes)),
            ("latency", Json::from(l.latency)),
        ])
    };
    Json::obj([
        ("fetch_bytes", Json::from(c.fetch_bytes)),
        ("macro_op_queue", Json::from(c.macro_op_queue)),
        ("decoders", Json::from(c.decoders)),
        ("decode_width_uops", Json::from(c.decode_width_uops)),
        ("msrom_width_uops", Json::from(c.msrom_width_uops)),
        ("uop_cache_uops", Json::from(c.uop_cache_uops)),
        ("uop_cache_ways", Json::from(c.uop_cache_ways)),
        ("uop_cache_sets", Json::from(c.uop_cache_sets())),
        ("uop_cache_line_uops", Json::from(c.uop_cache_line_uops)),
        (
            "uop_cache_max_lines_per_window",
            Json::from(c.uop_cache_max_lines_per_window),
        ),
        ("dispatch_width", Json::from(c.dispatch_width)),
        ("commit_width", Json::from(c.commit_width)),
        ("rob_entries", Json::from(c.rob_entries)),
        ("alu_units", Json::from(c.alu_units)),
        ("load_units", Json::from(c.load_units)),
        ("store_units", Json::from(c.store_units)),
        ("vector_units", Json::from(c.vector_units)),
        ("mispredict_penalty", Json::from(c.mispredict_penalty)),
        ("l1i", cache(&h.l1i)),
        ("l1d", cache(&h.l1d)),
        ("l2", cache(&h.l2)),
        ("llc", cache(&h.llc)),
        ("memory_latency", Json::from(h.memory_latency)),
        ("vpu_wake_cycles", Json::from(csd_power::VPU_WAKE_CYCLES)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_and_find_share_the_grid() {
        let cfg = SuiteConfig::quick(1, 1);
        let all = build_tasks(&cfg);
        assert_eq!(filter_tasks(&cfg, "").len(), all.len());
        let wd = filter_tasks(&cfg, "wd/");
        assert_eq!(wd.len(), 8);
        assert!(wd.iter().all(|t| t.label().starts_with("wd/")));
        assert!(find_task(&cfg, "table1").is_some());
        assert!(find_task(&cfg, "wd").is_none(), "find is exact-match");
        assert!(filter_tasks(&cfg, "no-such-task").is_empty());
    }

    #[test]
    fn task_seed_depends_only_on_label_and_root() {
        let cfg = SuiteConfig::quick(1, 1);
        let t = find_task(&cfg, "sec/opt/aes-enc").unwrap();
        assert_eq!(t.seed(7), derive_seed(7, "sec/opt/aes-enc"));
        assert_ne!(t.seed(7), t.seed(8));
    }
}
