//! The suite runner's determinism contract: the report depends only on
//! the root seed — not on worker count or scheduling order.

use csd_bench::suite::{run_suite, SuiteConfig};

#[test]
fn same_seed_same_bytes_regardless_of_jobs() {
    let a = run_suite(&SuiteConfig::quick(0xD5EE_D001, 1));
    let b = run_suite(&SuiteConfig::quick(0xD5EE_D001, 2));
    assert_eq!(
        a.json.pretty(),
        b.json.pretty(),
        "report must be byte-identical across --jobs settings"
    );
}

#[test]
fn different_seed_different_report() {
    let a = run_suite(&SuiteConfig::quick(1, 2));
    let b = run_suite(&SuiteConfig::quick(2, 2));
    // The seed feeds every security datapoint's plaintext stream; at
    // least the raw cycle counts must move.
    assert_ne!(a.json.pretty(), b.json.pretty());
}
