//! End-to-end resume: a journaled suite run interrupted at any point —
//! between appends or mid-append — resumes to a report byte-identical
//! to an uninterrupted run, re-executing only the missing tasks.

use csd_bench::suite::{journal_meta, run_suite, run_suite_resumable, SuiteConfig};
use csd_telemetry::{Journal, RunJournal};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const SEED: u64 = 0xC5D_2018;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csd-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Counts frames (meta + task records) in a journal file.
fn frames(path: &Path) -> Vec<Vec<u8>> {
    Journal::open(path).expect("reopen journal").records
}

#[test]
fn resume_from_any_interruption_matches_uninterrupted_bytes() {
    let cfg = SuiteConfig::quick(SEED, 2);
    let baseline = run_suite(&cfg).json.pretty();
    let dir = temp_dir("suite");
    let meta = journal_meta(&cfg, None);

    // A journaled run from scratch produces the same bytes and leaves
    // one frame per task (plus the meta frame) behind.
    let full = dir.join("full.journal");
    let rj = RunJournal::open(&full, &meta).expect("create journal");
    assert!(rj.replayed().is_empty());
    let report = run_suite_resumable(&cfg, &Mutex::new(rj)).expect("journaled run");
    assert_eq!(report.json.pretty(), baseline, "journaled run bytes");
    let all = frames(&full);
    let tasks = all.len() - 1;
    assert!(tasks > 1, "quick grid must have more than one task");

    // Crash after k completed appends: rebuild the journal prefix a
    // clean shutdown at that point would have left, resume, cmp.
    for k in [1, tasks / 2, tasks - 1] {
        let path = dir.join(format!("cut-{k}.journal"));
        let mut j = Journal::create(&path).expect("create cut journal");
        for rec in all.iter().take(1 + k) {
            j.append(rec).expect("append prefix frame");
        }
        drop(j);
        let rj = RunJournal::open(&path, &meta).expect("reopen cut journal");
        assert_eq!(rj.replayed().len(), k, "replayed count after {k} appends");
        let report = run_suite_resumable(&cfg, &Mutex::new(rj)).expect("resumed run");
        assert_eq!(report.json.pretty(), baseline, "resume after {k} tasks");
        // Only the remainder re-ran: k replayed frames + (tasks - k)
        // fresh appends. A journal that re-ran replayed tasks would
        // hold more.
        assert_eq!(frames(&path).len(), 1 + tasks, "no task journaled twice");
    }

    // Crash *mid-append*: chop arbitrary byte counts off the complete
    // journal, as a kill during the final write would. The torn tail is
    // truncated on reopen and the resume still lands on the same bytes.
    let bytes = std::fs::read(&full).expect("read full journal");
    for cut in [1usize, 7, 13] {
        let path = dir.join(format!("torn-{cut}.journal"));
        std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("write torn journal");
        let rj = RunJournal::open(&path, &meta).expect("reopen torn journal");
        assert!(rj.truncated() > 0, "a mid-frame cut must report truncation");
        assert!(rj.replayed().len() < tasks, "the torn record must be gone");
        let report = run_suite_resumable(&cfg, &Mutex::new(rj)).expect("resumed run");
        assert_eq!(
            report.json.pretty(),
            baseline,
            "resume after {cut}-byte tear"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
