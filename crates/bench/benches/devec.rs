//! Devectorization benchmarks: scalarization translation cost and the
//! end-to-end policy comparison on a short workload.

use csd::{Devectorizer, VpuPolicy};
use csd_bench::microbench::{bench, black_box};
use csd_bench::run_devec;
use csd_uops::translate;
use csd_workloads::Workload;
use mx86_isa::{Inst, VecOp, Xmm};

fn bench_scalarize() {
    for op in [VecOp::PAddB, VecOp::PMullW, VecOp::MulPs, VecOp::PXor] {
        let inst = Inst::VAlu {
            op,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        };
        let native = translate(&inst, 0);
        let mut d = Devectorizer::new();
        bench(&format!("devectorize/{op}"), || {
            black_box(d.devectorize(black_box(&inst), &native))
        });
    }
}

fn bench_policies() {
    let w = Workload::with_scale(
        csd_workloads::specs()
            .into_iter()
            .find(|s| s.name == "gamess")
            .unwrap(),
        0.05,
    );
    for (name, policy) in [
        ("always-on", VpuPolicy::AlwaysOn),
        ("csd-devec", VpuPolicy::default()),
    ] {
        bench(&format!("gamess/{name}"), || {
            run_devec(black_box(&w), policy)
        });
    }
}

fn main() {
    bench_scalarize();
    bench_policies();
}
