//! Security-path benchmarks: one AES encryption with and without the
//! stealth defense, and one PRIME+PROBE trial.

use criterion::{criterion_group, criterion_main, Criterion};
use csd_attack::{victim_core, Defense, PrimeProbe, ProbeKind};
use csd_crypto::{AesKeySize, AesVictim, CipherDir, Victim};
use csd_pipeline::SimMode;

fn bench_aes(c: &mut Criterion) {
    let key: Vec<u8> = (0..16).collect();
    let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);
    for (name, defense) in [("plain", Defense::None), ("stealth", Defense::stealth_default())] {
        c.bench_function(&format!("aes-block/{name}"), |b| {
            let mut core = victim_core(&v, SimMode::Functional, defense);
            b.iter(|| v.run_once(&mut core, &[7u8; 16]))
        });
    }
    c.bench_function("prime-probe-trial", |b| {
        let mut core = victim_core(&v, SimMode::Functional, Defense::None);
        let pp = PrimeProbe::new(v.table_line(0, 4), ProbeKind::Data, core.hierarchy());
        b.iter(|| {
            pp.reset(core.hierarchy_mut());
            v.run_once(&mut core, &[3u8; 16]);
            pp.probe(core.hierarchy_mut())
        })
    });
}

criterion_group!(benches, bench_aes);
criterion_main!(benches);
