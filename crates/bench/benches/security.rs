//! Security-path benchmarks: one AES encryption with and without the
//! stealth defense, and one PRIME+PROBE trial.

use csd_attack::{victim_core, Defense, PrimeProbe, ProbeKind};
use csd_bench::microbench::bench;
use csd_crypto::{AesKeySize, AesVictim, CipherDir, Victim};
use csd_pipeline::SimMode;

fn main() {
    let key: Vec<u8> = (0..16).collect();
    let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);
    for (name, defense) in [
        ("plain", Defense::None),
        ("stealth", Defense::stealth_default()),
    ] {
        let mut core = victim_core(&v, SimMode::Functional, defense);
        bench(&format!("aes-block/{name}"), || {
            v.run_once(&mut core, &[7u8; 16])
        });
    }

    let mut core = victim_core(&v, SimMode::Functional, Defense::None);
    let pp = PrimeProbe::new(v.table_line(0, 4), ProbeKind::Data, core.hierarchy());
    bench("prime-probe-trial", || {
        pp.reset(core.hierarchy_mut());
        v.run_once(&mut core, &[3u8; 16]);
        pp.probe(core.hierarchy_mut())
    });
}
