//! Whole-simulator throughput: cycle-level and functional stepping.

use csd::CsdConfig;
use csd_bench::microbench::bench_throughput;
use csd_pipeline::{Core, CoreConfig, SimMode};
use mx86_isa::{AluOp, Assembler, Cc, Gpr, MemRef, Program};

fn loop_program(iters: i64) -> Program {
    let mut a = Assembler::new(0x1000);
    let top = a.fresh_label();
    a.mov_ri(Gpr::Rcx, iters);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.bind(top).unwrap();
    a.load(Gpr::Rax, MemRef::base(Gpr::Rbx));
    a.alu_ri(AluOp::Add, Gpr::Rax, 1);
    a.store(MemRef::base(Gpr::Rbx), Gpr::Rax);
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, top);
    a.halt();
    a.finish().unwrap()
}

fn main() {
    const ITERS: i64 = 2_000;
    for (name, mode) in [
        ("simulator/functional", SimMode::Functional),
        ("simulator/cycle", SimMode::Cycle),
    ] {
        bench_throughput(name, 5 * ITERS as u64, || {
            let mut core = Core::new(
                CoreConfig::default(),
                CsdConfig::default(),
                loop_program(ITERS),
                mode,
            );
            core.run(u64::MAX)
        });
    }
}
