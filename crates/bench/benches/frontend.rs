//! Front-end microbenchmarks: static translation, fusion, and the CSD
//! decode path with stealth translation armed.

use csd::{msr, CsdConfig, CsdEngine};
use csd_bench::microbench::{bench, black_box};
use csd_uops::{fuse_slots, translate};
use mx86_isa::{AluOp, Gpr, Inst, MemRef, Placed, RegImm, VecOp, Width, Xmm};

fn inst_mix() -> Vec<Inst> {
    vec![
        Inst::MovRI {
            dst: Gpr::Rax,
            imm: 42,
        },
        Inst::Load {
            dst: Gpr::Rbx,
            mem: MemRef::base(Gpr::Rax),
            width: Width::B8,
        },
        Inst::AluLoad {
            op: AluOp::Xor,
            dst: Gpr::Rcx,
            mem: MemRef::abs(0x100),
            width: Width::B4,
        },
        Inst::AluStore {
            op: AluOp::Add,
            mem: MemRef::abs(0x200),
            src: RegImm::Imm(1),
            width: Width::B8,
        },
        Inst::VAlu {
            op: VecOp::PAddB,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        },
        Inst::Div { src: Gpr::Rdx },
        Inst::Call { target: 0x4000 },
        Inst::Ret,
    ]
}

fn bench_translate() {
    let mix = inst_mix();
    bench("translate/inst-mix", || {
        for i in &mix {
            black_box(translate(black_box(i), 0x1000));
        }
    });
    let flows: Vec<_> = mix.iter().map(|i| translate(i, 0x1000).uops).collect();
    bench("fuse/inst-mix", || {
        for f in &flows {
            black_box(fuse_slots(black_box(f)));
        }
    });
}

fn bench_csd_decode() {
    let tainted_load = Placed {
        addr: 0x1000,
        inst: Inst::Load {
            dst: Gpr::Rax,
            mem: MemRef::base(Gpr::Rbx),
            width: Width::B4,
        },
    };
    let mut e = CsdEngine::new(CsdConfig::default());
    bench("csd-decode/native", || {
        black_box(e.decode(black_box(&tainted_load), false))
    });

    let mut e = CsdEngine::new(CsdConfig::default());
    e.write_msr(msr::MSR_DATA_RANGE_BASE, 0x2_0000);
    e.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x2_1000);
    e.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);
    bench("csd-decode/stealth-sweep-64-lines", || {
        e.tick(10_000); // watchdog re-arm so every decode sweeps
        black_box(e.decode(black_box(&tainted_load), true))
    });
}

fn main() {
    bench_translate();
    bench_csd_decode();
}
