//! The Blowfish victim: a 16-round Feistel cipher with key-dependent
//! S-box loads (MiBench's `blowfish` benchmark).
//!
//! Structure (P-array whitening, `F(x) = ((S0[a]+S1[b])^S2[c])+S3[d]`,
//! byte-indexed 256-entry S-boxes) is standard Blowfish; the initial P/S
//! constants are derived from a deterministic PRNG instead of the digits
//! of π (documented substitution — the side channel lives in the
//! *key-dependent S-box indices*, which are unchanged).

use crate::victim::{CipherDir, Victim};
use csd_pipeline::Core;
use mx86_isa::{AddrRange, AluOp, Assembler, Gpr, MemRef, Program, Scale, Width};

const ROUNDS: usize = 16;

/// Reference Blowfish context.
#[derive(Debug, Clone)]
pub struct Blowfish {
    /// The 18-entry P-array after key scheduling.
    pub p: [u32; 18],
    /// The four 256-entry S-boxes after key scheduling.
    pub s: [[u32; 256]; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Blowfish {
    /// Key-schedules a new context. `key` must be 4–56 bytes.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range key length.
    pub fn new(key: &[u8]) -> Blowfish {
        assert!(
            (4..=56).contains(&key.len()),
            "Blowfish keys are 4..=56 bytes"
        );
        // Initial constants from a fixed PRNG stream (π substitution).
        let mut seed = 0x243F_6A88_85A3_08D3u64;
        let mut p = [0u32; 18];
        let mut s = [[0u32; 256]; 4];
        for v in p.iter_mut() {
            *v = splitmix(&mut seed) as u32;
        }
        for sb in s.iter_mut() {
            for v in sb.iter_mut() {
                *v = splitmix(&mut seed) as u32;
            }
        }

        let mut bf = Blowfish { p, s };
        // XOR the key cyclically into P.
        let mut k = 0;
        for i in 0..18 {
            let mut w = 0u32;
            for _ in 0..4 {
                w = (w << 8) | u32::from(key[k % key.len()]);
                k += 1;
            }
            bf.p[i] ^= w;
        }
        // Replace P and S with successive encryptions of the zero block.
        let (mut l, mut r) = (0u32, 0u32);
        for i in (0..18).step_by(2) {
            (l, r) = bf.encrypt_words(l, r);
            bf.p[i] = l;
            bf.p[i + 1] = r;
        }
        for b in 0..4 {
            for j in (0..256).step_by(2) {
                (l, r) = bf.encrypt_words(l, r);
                bf.s[b][j] = l;
                bf.s[b][j + 1] = r;
            }
        }
        bf
    }

    fn f(&self, x: u32) -> u32 {
        let a = (x >> 24) as usize;
        let b = ((x >> 16) & 0xff) as usize;
        let c = ((x >> 8) & 0xff) as usize;
        let d = (x & 0xff) as usize;
        self.s[0][a]
            .wrapping_add(self.s[1][b])
            .bitxor_add(self.s[2][c], self.s[3][d])
    }

    /// Encrypts a 64-bit block given as two 32-bit words.
    pub fn encrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in 0..ROUNDS {
            l ^= self.p[i];
            r ^= self.f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[16];
        l ^= self.p[17];
        (l, r)
    }

    /// Decrypts a 64-bit block.
    pub fn decrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in (2..18).rev() {
            l ^= self.p[i];
            r ^= self.f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[1];
        l ^= self.p[0];
        (l, r)
    }

    /// The P-array in the order the victim program consumes it.
    fn p_in_order(&self, dir: CipherDir) -> [u32; 18] {
        match dir {
            CipherDir::Encrypt => self.p,
            CipherDir::Decrypt => {
                // Round keys reversed; final whitening uses p[1], p[0].
                let mut q = [0u32; 18];
                for (i, qi) in q.iter_mut().take(16).enumerate() {
                    *qi = self.p[17 - i];
                }
                q[16] = self.p[1];
                q[17] = self.p[0];
                q
            }
        }
    }
}

trait BitxorAdd {
    fn bitxor_add(self, x: u32, y: u32) -> u32;
}

impl BitxorAdd for u32 {
    fn bitxor_add(self, x: u32, y: u32) -> u32 {
        (self ^ x).wrapping_add(y)
    }
}

/// Data-segment layout of the Blowfish victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlowfishLayout {
    /// Base of S-box `i` (`base + i * 0x400`); 4 KiB total (64 lines).
    pub sboxes: u64,
    /// The P-array (18 words, stored in consumption order).
    pub p: u64,
    /// Input block (L, R as two 32-bit words).
    pub input: u64,
    /// Output block.
    pub output: u64,
}

/// The default layout.
pub const BLOWFISH_LAYOUT: BlowfishLayout = BlowfishLayout {
    sboxes: 0x3_0000,
    p: 0x3_1000,
    input: 0x3_1100,
    output: 0x3_1108,
};

fn generate(layout: &BlowfishLayout) -> Program {
    let mut a = Assembler::new(0x1000);
    let (l, r) = (Gpr::R8, Gpr::R9);
    a.symbol("bf_entry");
    a.load_w(l, MemRef::abs(layout.input as i64), Width::B4);
    a.load_w(r, MemRef::abs((layout.input + 4) as i64), Width::B4);

    let mask32 = 0xFFFF_FFFFi64;
    for i in 0..ROUNDS {
        // l ^= P[i]
        a.alu_load(
            AluOp::Xor,
            l,
            MemRef::abs((layout.p + 4 * i as u64) as i64),
            Width::B4,
        );
        // rbx = F(l)
        for (k, sh) in [(0usize, 24i64), (1, 16), (2, 8), (3, 0)] {
            a.mov_rr(Gpr::Rax, l);
            if sh > 0 {
                a.alu_ri(AluOp::Shr, Gpr::Rax, sh);
            }
            a.alu_ri(AluOp::And, Gpr::Rax, 0xff);
            let table = (layout.sboxes + 0x400 * k as u64) as i64;
            let mem = MemRef::index_disp(Gpr::Rax, Scale::S4, table);
            match k {
                0 => {
                    a.load_w(Gpr::Rbx, mem, Width::B4);
                }
                1 => {
                    a.alu_load(AluOp::Add, Gpr::Rbx, mem, Width::B4);
                    a.alu_ri(AluOp::And, Gpr::Rbx, mask32);
                }
                2 => {
                    a.alu_load(AluOp::Xor, Gpr::Rbx, mem, Width::B4);
                }
                _ => {
                    a.alu_load(AluOp::Add, Gpr::Rbx, mem, Width::B4);
                    a.alu_ri(AluOp::And, Gpr::Rbx, mask32);
                }
            }
        }
        // r ^= F(l); swap(l, r)
        a.alu_rr(AluOp::Xor, r, Gpr::Rbx);
        a.mov_rr(Gpr::Rdx, l);
        a.mov_rr(l, r);
        a.mov_rr(r, Gpr::Rdx);
    }
    // Undo the final swap, then whiten.
    a.mov_rr(Gpr::Rdx, l);
    a.mov_rr(l, r);
    a.mov_rr(r, Gpr::Rdx);
    a.alu_load(
        AluOp::Xor,
        r,
        MemRef::abs((layout.p + 4 * 16) as i64),
        Width::B4,
    );
    a.alu_load(
        AluOp::Xor,
        l,
        MemRef::abs((layout.p + 4 * 17) as i64),
        Width::B4,
    );
    a.store_w(MemRef::abs(layout.output as i64), l, Width::B4);
    a.store_w(MemRef::abs((layout.output + 4) as i64), r, Width::B4);
    a.halt();
    a.finish().expect("Blowfish program assembles")
}

/// A Blowfish victim in one direction.
#[derive(Debug, Clone)]
pub struct BlowfishVictim {
    bf: Blowfish,
    dir: CipherDir,
    layout: BlowfishLayout,
    program: Program,
}

impl BlowfishVictim {
    /// Builds the victim with `key` (4–56 bytes).
    pub fn new(dir: CipherDir, key: &[u8]) -> BlowfishVictim {
        BlowfishVictim {
            bf: Blowfish::new(key),
            dir,
            layout: BLOWFISH_LAYOUT,
            program: generate(&BLOWFISH_LAYOUT),
        }
    }

    /// The reference context.
    pub fn blowfish(&self) -> &Blowfish {
        &self.bf
    }
}

impl Victim for BlowfishVictim {
    fn name(&self) -> String {
        format!("blowfish-{}", self.dir.label())
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn install(&self, core: &mut Core) {
        for (i, sb) in self.bf.s.iter().enumerate() {
            for (j, &w) in sb.iter().enumerate() {
                core.mem.write_le(
                    self.layout.sboxes + 0x400 * i as u64 + 4 * j as u64,
                    4,
                    u64::from(w),
                );
            }
        }
        for (i, &w) in self.bf.p_in_order(self.dir).iter().enumerate() {
            core.mem
                .write_le(self.layout.p + 4 * i as u64, 4, u64::from(w));
        }
        // P and S are key-derived secrets; tainting P suffices to taint
        // every S-box index.
        core.dift_mut()
            .taint_memory(AddrRange::with_len(self.layout.p, 18 * 4));
    }

    fn prepare(&self, core: &mut Core, input: &[u8]) {
        assert_eq!(input.len(), 8, "Blowfish blocks are 8 bytes");
        core.restart();
        let l = u32::from_be_bytes(input[0..4].try_into().unwrap());
        let r = u32::from_be_bytes(input[4..8].try_into().unwrap());
        core.mem.write_le(self.layout.input, 4, u64::from(l));
        core.mem.write_le(self.layout.input + 4, 4, u64::from(r));
    }

    fn collect(&self, core: &Core) -> Vec<u8> {
        let lo = core.mem.read_le(self.layout.output, 4) as u32;
        let ro = core.mem.read_le(self.layout.output + 4, 4) as u32;
        let mut v = lo.to_be_bytes().to_vec();
        v.extend_from_slice(&ro.to_be_bytes());
        v
    }

    fn input_len(&self) -> usize {
        8
    }

    fn sensitive_data_ranges(&self) -> Vec<AddrRange> {
        vec![AddrRange::with_len(self.layout.sboxes, 4 * 0x400)]
    }

    fn sensitive_inst_ranges(&self) -> Vec<AddrRange> {
        Vec::new()
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        let l = u32::from_be_bytes(input[0..4].try_into().expect("8-byte block"));
        let r = u32::from_be_bytes(input[4..8].try_into().expect("8-byte block"));
        let (lo, ro) = match self.dir {
            CipherDir::Encrypt => self.bf.encrypt_words(l, r),
            CipherDir::Decrypt => self.bf.decrypt_words(l, r),
        };
        let mut v = lo.to_be_bytes().to_vec();
        v.extend_from_slice(&ro.to_be_bytes());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd::CsdConfig;
    use csd_pipeline::{CoreConfig, SimMode};

    #[test]
    fn reference_roundtrips() {
        let bf = Blowfish::new(b"TESTKEY!");
        for (l, r) in [(0u32, 0u32), (0xDEAD_BEEF, 0x0123_4567), (1, u32::MAX)] {
            let (cl, cr) = bf.encrypt_words(l, r);
            assert_ne!((cl, cr), (l, r));
            assert_eq!(bf.decrypt_words(cl, cr), (l, r));
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Blowfish::new(b"KEY-AAAA");
        let b = Blowfish::new(b"KEY-BBBB");
        assert_ne!(a.encrypt_words(1, 2), b.encrypt_words(1, 2));
    }

    #[test]
    fn program_matches_reference_both_directions() {
        for dir in CipherDir::BOTH {
            let v = BlowfishVictim::new(dir, b"SECRETKEY123");
            let mut core = Core::new(
                CoreConfig::default(),
                CsdConfig::default(),
                v.program().clone(),
                SimMode::Functional,
            );
            v.install(&mut core);
            for seed in 0u8..4 {
                let input: Vec<u8> = (0..8).map(|i| seed.wrapping_mul(31) + i * 11).collect();
                assert_eq!(
                    v.run_once(&mut core, &input),
                    v.reference(&input),
                    "{} seed {seed}",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn simulator_encrypt_then_decrypt_roundtrips() {
        let key = b"ROUNDTRIP-KEY";
        let enc = BlowfishVictim::new(CipherDir::Encrypt, key);
        let dec = BlowfishVictim::new(CipherDir::Decrypt, key);
        let mk = |v: &BlowfishVictim| {
            let mut c = Core::new(
                CoreConfig::default(),
                CsdConfig::default(),
                v.program().clone(),
                SimMode::Functional,
            );
            v.install(&mut c);
            c
        };
        let (mut ec, mut dc) = (mk(&enc), mk(&dec));
        let pt = [9u8, 8, 7, 6, 5, 4, 3, 2];
        let ct = enc.run_once(&mut ec, &pt);
        assert_eq!(dec.run_once(&mut dc, &ct), pt.to_vec());
    }

    #[test]
    fn sbox_range_is_64_lines() {
        let v = BlowfishVictim::new(CipherDir::Encrypt, b"ANYKEY");
        assert_eq!(v.sensitive_data_ranges()[0].blocks(64).count(), 64);
    }

    #[test]
    #[should_panic(expected = "4..=56")]
    fn short_keys_are_rejected() {
        let _ = Blowfish::new(b"ab");
    }
}
