//! The AES victim: OpenSSL-style T-table AES hand-compiled to mx86.
//!
//! The generated program mirrors the reference cipher exactly — same
//! tables, same per-round T-table lookups — so its *data-cache access
//! pattern* carries the same key dependence the paper attacks: the index
//! of every T-table load is a byte of `state ⊕ round-key`. The four 1 KiB
//! tables span 64 cache lines (paper §IV-D).

use crate::aes_ref::{inv_sbox, td_tables, te_tables, Aes, AesKeySize, DEC_SHIFT, ENC_SHIFT, SBOX};
use crate::victim::{CipherDir, Victim};
use csd_pipeline::Core;
use mx86_isa::{AddrRange, AluOp, Assembler, Gpr, MemRef, Program, Scale, Width};

/// Data-segment layout of the AES victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesLayout {
    /// Base of T-table `i` (`base + i * 0x400`).
    pub tables: u64,
    /// Base of the final-round S-box (256 bytes).
    pub sbox: u64,
    /// Base of the expanded round keys.
    pub round_keys: u64,
    /// Input block (four 32-bit words).
    pub input: u64,
    /// Output block.
    pub output: u64,
}

/// The default layout: tables at `0x2_0000`, exactly 64 cache lines.
pub const AES_LAYOUT: AesLayout = AesLayout {
    tables: 0x2_0000,
    sbox: 0x2_1000,
    round_keys: 0x2_2000,
    input: 0x2_2200,
    output: 0x2_2240,
};

const S: [Gpr; 4] = [Gpr::R8, Gpr::R9, Gpr::R10, Gpr::R11];
const N: [Gpr; 4] = [Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

/// Emits `rax ← (src >> (24 - 8*k)) & 0xff`.
fn emit_byte_extract(a: &mut Assembler, src: Gpr, k: usize) {
    a.mov_rr(Gpr::Rax, src);
    let sh = 24 - 8 * k as i64;
    if sh > 0 {
        a.alu_ri(AluOp::Shr, Gpr::Rax, sh);
    }
    a.alu_ri(AluOp::And, Gpr::Rax, 0xff);
}

fn generate(size: AesKeySize, shift: [usize; 4], layout: &AesLayout) -> Program {
    let rounds = size.rounds();
    let mut a = Assembler::new(0x1000);
    a.symbol("aes_entry");

    // Round 0: s[c] = input[c] ^ rk[c].
    for (c, &sreg) in S.iter().enumerate() {
        a.load_w(
            sreg,
            MemRef::abs((layout.input + 4 * c as u64) as i64),
            Width::B4,
        );
        a.alu_load(
            AluOp::Xor,
            sreg,
            MemRef::abs((layout.round_keys + 4 * c as u64) as i64),
            Width::B4,
        );
    }

    // Middle rounds: four T-table lookups + round key per column.
    for r in 1..rounds {
        for c in 0..4 {
            for k in 0..4 {
                let src = S[(c + shift[k]) % 4];
                emit_byte_extract(&mut a, src, k);
                let table = layout.tables + 0x400 * k as u64;
                let mem = MemRef::index_disp(Gpr::Rax, Scale::S4, table as i64);
                if k == 0 {
                    a.load_w(N[c], mem, Width::B4);
                } else {
                    a.alu_load(AluOp::Xor, N[c], mem, Width::B4);
                }
            }
            let rk = layout.round_keys + 4 * (4 * r + c) as u64;
            a.alu_load(AluOp::Xor, N[c], MemRef::abs(rk as i64), Width::B4);
        }
        for c in 0..4 {
            a.mov_rr(S[c], N[c]);
        }
    }

    // Final round: S-box bytes, shifted into place, ^ last round key.
    for c in 0..4 {
        for k in 0..4 {
            let src = S[(c + shift[k]) % 4];
            emit_byte_extract(&mut a, src, k);
            a.load_w(
                Gpr::Rbx,
                MemRef::index_disp(Gpr::Rax, Scale::S1, layout.sbox as i64),
                Width::B1,
            );
            let sh = 24 - 8 * k as i64;
            if sh > 0 {
                a.alu_ri(AluOp::Shl, Gpr::Rbx, sh);
            }
            if k == 0 {
                a.mov_rr(N[c], Gpr::Rbx);
            } else {
                a.alu_rr(AluOp::Or, N[c], Gpr::Rbx);
            }
        }
        let rk = layout.round_keys + 4 * (4 * rounds + c) as u64;
        a.alu_load(AluOp::Xor, N[c], MemRef::abs(rk as i64), Width::B4);
        a.store_w(
            MemRef::abs((layout.output + 4 * c as u64) as i64),
            N[c],
            Width::B4,
        );
    }
    a.halt();
    a.finish().expect("AES program assembles")
}

/// An AES (or Rijndael/AES-256) victim in one direction.
#[derive(Debug, Clone)]
pub struct AesVictim {
    aes: Aes,
    dir: CipherDir,
    layout: AesLayout,
    program: Program,
}

impl AesVictim {
    /// Builds the victim for `size` and `dir` with the given `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` does not match the key size.
    pub fn new(size: AesKeySize, dir: CipherDir, key: &[u8]) -> AesVictim {
        let shift = match dir {
            CipherDir::Encrypt => ENC_SHIFT,
            CipherDir::Decrypt => DEC_SHIFT,
        };
        AesVictim {
            aes: Aes::new(size, key),
            dir,
            layout: AES_LAYOUT,
            program: generate(size, shift, &AES_LAYOUT),
        }
    }

    /// The victim's data layout.
    pub fn layout(&self) -> &AesLayout {
        &self.layout
    }

    /// The reference cipher context.
    pub fn aes(&self) -> &Aes {
        &self.aes
    }

    /// Address of the cache line holding T-table `t`, line `l` (for
    /// attack-agent targeting).
    pub fn table_line(&self, t: usize, l: usize) -> u64 {
        self.layout.tables + 0x400 * t as u64 + 64 * l as u64
    }
}

impl Victim for AesVictim {
    fn name(&self) -> String {
        let alg = match self.aes.size() {
            AesKeySize::K128 => "aes",
            AesKeySize::K256 => "rijndael",
        };
        format!("{alg}-{}", self.dir.label())
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn install(&self, core: &mut Core) {
        let (tables, sbox, keys): ([[u32; 256]; 4], [u8; 256], &[u32]) = match self.dir {
            CipherDir::Encrypt => (te_tables(), SBOX, &self.aes.enc_keys),
            CipherDir::Decrypt => (td_tables(), inv_sbox(), &self.aes.dec_keys),
        };
        for (i, t) in tables.iter().enumerate() {
            for (j, &w) in t.iter().enumerate() {
                core.mem.write_le(
                    self.layout.tables + 0x400 * i as u64 + 4 * j as u64,
                    4,
                    u64::from(w),
                );
            }
        }
        core.mem.write_bytes(self.layout.sbox, &sbox);
        for (i, &w) in keys.iter().enumerate() {
            core.mem
                .write_le(self.layout.round_keys + 4 * i as u64, 4, u64::from(w));
        }
        // The expanded key schedule is the secret: taint it so every
        // state word (and hence every table index) becomes tainted.
        core.dift_mut().taint_memory(AddrRange::with_len(
            self.layout.round_keys,
            4 * keys.len() as u64,
        ));
    }

    fn prepare(&self, core: &mut Core, input: &[u8]) {
        assert_eq!(input.len(), 16, "AES blocks are 16 bytes");
        core.restart();
        for c in 0..4 {
            let w = u32::from_be_bytes(input[4 * c..4 * c + 4].try_into().unwrap());
            core.mem
                .write_le(self.layout.input + 4 * c as u64, 4, u64::from(w));
        }
    }

    fn collect(&self, core: &Core) -> Vec<u8> {
        let mut ct = Vec::with_capacity(16);
        for c in 0..4 {
            let w = core.mem.read_le(self.layout.output + 4 * c as u64, 4) as u32;
            ct.extend_from_slice(&w.to_be_bytes());
        }
        ct
    }

    fn input_len(&self) -> usize {
        16
    }

    fn sensitive_data_ranges(&self) -> Vec<AddrRange> {
        // All four T-tables plus the final-round S-box: 68 cache lines.
        vec![AddrRange::new(self.layout.tables, self.layout.sbox + 0x100)]
    }

    fn sensitive_inst_ranges(&self) -> Vec<AddrRange> {
        Vec::new()
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        let block: [u8; 16] = input.try_into().expect("16-byte block");
        match self.dir {
            CipherDir::Encrypt => self.aes.encrypt_block(&block).to_vec(),
            CipherDir::Decrypt => self.aes.decrypt_block(&block).to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd::CsdConfig;
    use csd_pipeline::{CoreConfig, SimMode};

    fn fresh_core(v: &AesVictim) -> Core {
        let mut core = Core::new(
            CoreConfig::default(),
            CsdConfig::default(),
            v.program().clone(),
            SimMode::Functional,
        );
        v.install(&mut core);
        core
    }

    #[test]
    fn program_matches_reference_both_sizes_and_directions() {
        for size in [AesKeySize::K128, AesKeySize::K256] {
            let key: Vec<u8> = (0..size.key_bytes() as u8).collect();
            for dir in CipherDir::BOTH {
                let v = AesVictim::new(size, dir, &key);
                let mut core = fresh_core(&v);
                for seed in 0u8..4 {
                    let input: Vec<u8> = (0..16)
                        .map(|i| seed.wrapping_mul(41).wrapping_add(i * 17))
                        .collect();
                    assert_eq!(
                        v.run_once(&mut core, &input),
                        v.reference(&input),
                        "{} seed {seed}",
                        v.name()
                    );
                }
            }
        }
    }

    #[test]
    fn encrypt_then_decrypt_roundtrips_on_the_simulator() {
        let key: Vec<u8> = (0..16).map(|i| i * 7 + 3).collect();
        let enc = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);
        let dec = AesVictim::new(AesKeySize::K128, CipherDir::Decrypt, &key);
        let mut ecore = fresh_core(&enc);
        let mut dcore = fresh_core(&dec);
        let pt: Vec<u8> = (100..116).collect();
        let ct = enc.run_once(&mut ecore, &pt);
        assert_eq!(dec.run_once(&mut dcore, &ct), pt);
    }

    #[test]
    fn table_accesses_are_key_dependent_and_tainted() {
        let key: Vec<u8> = (0..16).collect();
        let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &key);
        let mut core = fresh_core(&v);
        let _ = v.run_once(&mut core, &[0u8; 16]);
        // The victim must have touched T-table lines.
        let touched = (0..64)
            .filter(|&l| core.hierarchy().l1d().contains(AES_LAYOUT.tables + 64 * l))
            .count();
        assert!(
            touched > 16,
            "a block encryption touches many table lines: {touched}"
        );
    }

    #[test]
    fn sensitive_range_covers_all_tables() {
        let v = AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &[0; 16]);
        let r = v.sensitive_data_ranges()[0];
        assert!(r.contains(AES_LAYOUT.tables));
        assert!(r.contains(AES_LAYOUT.tables + 4 * 0x400 - 1));
        assert!(r.contains(AES_LAYOUT.sbox + 0xFF));
        assert_eq!(r.blocks(64).count(), 68);
    }

    #[test]
    fn names_follow_the_benchmark_convention() {
        assert_eq!(
            AesVictim::new(AesKeySize::K128, CipherDir::Encrypt, &[0; 16]).name(),
            "aes-enc"
        );
        assert_eq!(
            AesVictim::new(AesKeySize::K256, CipherDir::Decrypt, &[0; 32]).name(),
            "rijndael-dec"
        );
    }
}
