//! The RSA victim: square-and-multiply modular exponentiation.
//!
//! GnuPG's RSA (the paper's I-cache target) spends its time in
//! `square`/`multiply`/`reduce` routines; `multiply` runs **only when the
//! current exponent bit is 1**, so the I-cache lines of `multiply` leak the
//! private exponent bit-by-bit. This victim reproduces that structure with
//! 64-bit arithmetic (see `DESIGN.md` for the bignum substitution): the
//! three routines are separate, NOP-padded, line-aligned functions, and
//! the exponent-bit test is a tainted branch that triggers stealth mode
//! under DIFT.

use crate::victim::Victim;
use csd_pipeline::Core;
use mx86_isa::{AddrRange, AluOp, Assembler, Cc, Gpr, MemRef, Program};

/// Data-segment layout of the RSA victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsaLayout {
    /// The private exponent (8 bytes, tainted).
    pub exponent: u64,
    /// The modulus (8 bytes; must be `< 2^32` so products stay exact).
    pub modulus: u64,
    /// The message/base input (8 bytes).
    pub base: u64,
    /// The result (8 bytes).
    pub result: u64,
    /// Stack top.
    pub stack: u64,
}

/// The default layout.
pub const RSA_LAYOUT: RsaLayout = RsaLayout {
    exponent: 0x4_0000,
    modulus: 0x4_0008,
    base: 0x4_0010,
    result: 0x4_0018,
    stack: 0x5_0000,
};

/// Bytes of executed NOP padding inside `square`/`multiply`, making each
/// function span several I-cache lines (GnuPG's are "fairly large
/// functions that span multiple cache blocks").
const FN_PAD: u64 = 3 * 64;

fn generate(layout: &RsaLayout) -> Program {
    let mut a = Assembler::new(0x1000);
    let square = a.fresh_label();
    let multiply = a.fresh_label();
    let reduce = a.fresh_label();
    let loop_top = a.fresh_label();
    let skip_mul = a.fresh_label();

    // r8 = exponent (tainted), r9 = modulus, r10 = base, r11 = result.
    a.symbol("rsa_entry");
    a.mov_ri(Gpr::Rsp, layout.stack as i64);
    a.load(Gpr::R8, MemRef::abs(layout.exponent as i64));
    a.load(Gpr::R9, MemRef::abs(layout.modulus as i64));
    a.load(Gpr::R10, MemRef::abs(layout.base as i64));
    a.mov_ri(Gpr::R11, 1);
    a.mov_ri(Gpr::Rcx, 63);

    a.bind(loop_top).unwrap();
    a.call(square);
    // Tainted exponent-bit test: rbx = (exp >> bit) & 1.
    a.mov_rr(Gpr::Rbx, Gpr::R8);
    a.alu_rr(AluOp::Shr, Gpr::Rbx, Gpr::Rcx);
    a.test_ri(Gpr::Rbx, 1);
    a.jcc(Cc::Eq, skip_mul);
    a.call(multiply);
    a.bind(skip_mul).unwrap();
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ge, loop_top);
    a.store(MemRef::abs(layout.result as i64), Gpr::R11);
    a.halt();

    // square: result = result² mod m
    a.align(64);
    a.begin_region("square");
    a.bind(square).unwrap();
    a.mov_rr(Gpr::Rax, Gpr::R11);
    a.mul_rr(Gpr::Rax, Gpr::R11);
    a.pad_to(a.here() + FN_PAD);
    a.call(reduce);
    a.ret();
    a.end_region().unwrap();

    // multiply: result = result * base mod m  — THE leaking function.
    a.align(64);
    a.begin_region("multiply");
    a.bind(multiply).unwrap();
    a.mov_rr(Gpr::Rax, Gpr::R11);
    a.mul_rr(Gpr::Rax, Gpr::R10);
    a.pad_to(a.here() + FN_PAD);
    a.call(reduce);
    a.ret();
    a.end_region().unwrap();

    // reduce: result = rax mod m
    a.align(64);
    a.begin_region("reduce");
    a.bind(reduce).unwrap();
    a.mov_ri(Gpr::Rdx, 0);
    a.div(Gpr::R9);
    a.mov_rr(Gpr::R11, Gpr::Rdx);
    a.ret();
    a.end_region().unwrap();

    a.finish().expect("RSA program assembles")
}

/// The RSA square-and-multiply victim.
#[derive(Debug, Clone)]
pub struct RsaVictim {
    label: String,
    exponent: u64,
    modulus: u64,
    layout: RsaLayout,
    program: Program,
}

impl RsaVictim {
    /// Builds a victim with the given private `exponent` and `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or does not fit 32 bits (the 64-bit
    /// arithmetic substitution requires `modulus² ≤ 2^64`).
    pub fn new(exponent: u64, modulus: u64) -> RsaVictim {
        RsaVictim::named("rsa", exponent, modulus)
    }

    /// Builds a victim with an explicit benchmark label (the paper's
    /// datapoints distinguish the private-exponent "decrypt" direction
    /// from the public-exponent "encrypt" direction).
    ///
    /// # Panics
    ///
    /// As for [`RsaVictim::new`].
    pub fn named(label: impl Into<String>, exponent: u64, modulus: u64) -> RsaVictim {
        assert!(modulus > 1, "modulus must exceed one");
        assert!(modulus < (1 << 32), "modulus must fit 32 bits");
        RsaVictim {
            label: label.into(),
            exponent,
            modulus,
            layout: RSA_LAYOUT,
            program: generate(&RSA_LAYOUT),
        }
    }

    /// The code range of the `multiply` routine (the FLUSH+RELOAD target).
    pub fn multiply_range(&self) -> AddrRange {
        self.program
            .region("multiply")
            .expect("multiply region exists")
    }

    /// The code range of the `square` routine.
    pub fn square_range(&self) -> AddrRange {
        self.program.region("square").expect("square region exists")
    }

    /// The private exponent (attack ground truth).
    pub fn exponent(&self) -> u64 {
        self.exponent
    }

    /// Reference modular exponentiation.
    pub fn modexp(&self, base: u64) -> u64 {
        let m = self.modulus;
        let b = base % m;
        let mut result: u64 = 1;
        for bit in (0..64).rev() {
            result = (result * result) % m;
            if (self.exponent >> bit) & 1 == 1 {
                result = (result * b) % m;
            }
        }
        result
    }
}

impl Victim for RsaVictim {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn install(&self, core: &mut Core) {
        core.mem.write_le(self.layout.exponent, 8, self.exponent);
        core.mem.write_le(self.layout.modulus, 8, self.modulus);
        core.dift_mut()
            .taint_memory(AddrRange::with_len(self.layout.exponent, 8));
    }

    fn prepare(&self, core: &mut Core, input: &[u8]) {
        assert_eq!(input.len(), 8, "RSA base is 8 bytes");
        core.restart();
        let base = u64::from_le_bytes(input.try_into().unwrap()) % self.modulus;
        core.mem.write_le(self.layout.base, 8, base);
    }

    fn collect(&self, core: &Core) -> Vec<u8> {
        core.mem
            .read_le(self.layout.result, 8)
            .to_le_bytes()
            .to_vec()
    }

    fn input_len(&self) -> usize {
        8
    }

    fn sensitive_data_ranges(&self) -> Vec<AddrRange> {
        Vec::new()
    }

    fn sensitive_inst_ranges(&self) -> Vec<AddrRange> {
        // Obfuscate both key-dependent routines' fetch footprints.
        vec![self.multiply_range(), self.square_range()]
    }

    fn reference(&self, input: &[u8]) -> Vec<u8> {
        let base = u64::from_le_bytes(input.try_into().expect("8-byte base"));
        self.modexp(base % self.modulus).to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd::CsdConfig;
    use csd_pipeline::{CoreConfig, SimMode};

    fn run(v: &RsaVictim, base: u64) -> u64 {
        let mut core = Core::new(
            CoreConfig::default(),
            CsdConfig::default(),
            v.program().clone(),
            SimMode::Functional,
        );
        v.install(&mut core);
        u64::from_le_bytes(
            v.run_once(&mut core, &base.to_le_bytes())
                .try_into()
                .unwrap(),
        )
    }

    #[test]
    fn program_matches_reference() {
        let v = RsaVictim::new(0xB7E1_5163_9A5F_F36D, 1_000_003);
        for base in [2u64, 7, 12345, 999_999] {
            assert_eq!(run(&v, base), v.modexp(base), "base {base}");
        }
    }

    /// Independent wide-arithmetic modpow for cross-checking.
    fn modpow_u128(mut b: u128, mut e: u64, m: u128) -> u64 {
        let mut r: u128 = 1;
        b %= m;
        while e > 0 {
            if e & 1 == 1 {
                r = r * b % m;
            }
            b = b * b % m;
            e >>= 1;
        }
        r as u64
    }

    #[test]
    fn reference_matches_independent_modpow() {
        let v = RsaVictim::new(13, 497);
        assert_eq!(v.modexp(5), modpow_u128(5, 13, 497));
        assert_eq!(run(&v, 5), modpow_u128(5, 13, 497));
        let v = RsaVictim::new(0xDEAD_BEEF_CAFE, 4_294_967_291);
        for base in [3u64, 65_537, 123_456_789] {
            assert_eq!(
                v.modexp(base),
                modpow_u128(u128::from(base), v.exponent(), 4_294_967_291)
            );
        }
    }

    #[test]
    fn multiply_and_square_are_distinct_multiline_regions() {
        let v = RsaVictim::new(0xABCD, 65_521);
        let m = v.multiply_range();
        let s = v.square_range();
        assert!(!m.overlaps(&s));
        assert!(m.blocks(64).count() >= 4, "multiply spans multiple lines");
        assert!(s.blocks(64).count() >= 4);
        assert_eq!(m.start % 64, 0, "line-aligned for clean F+R targeting");
    }

    #[test]
    fn multiply_lines_fetched_only_for_one_bits() {
        // exponent = 1: multiply runs exactly once (bit 0).
        let v1 = RsaVictim::new(1, 65_521);
        let mut core = Core::new(
            CoreConfig::default(),
            CsdConfig::default(),
            v1.program().clone(),
            SimMode::Functional,
        );
        v1.install(&mut core);
        // Flush I-cache lines of multiply, run, check they were fetched.
        let _ = v1.run_once(&mut core, &7u64.to_le_bytes());
        let m = v1.multiply_range();
        let fetched = m
            .blocks(64)
            .filter(|&l| core.hierarchy().l1i().contains(l))
            .count();
        assert!(fetched >= 4, "multiply fetched for exponent with a 1-bit");
    }

    #[test]
    #[should_panic(expected = "modulus must fit 32 bits")]
    fn oversized_modulus_is_rejected() {
        let _ = RsaVictim::new(3, 1 << 33);
    }
}
