//! # csd-crypto — cryptographic victim programs for the side-channel study
//!
//! The paper evaluates stealth-mode translation on commercial crypto codes:
//! OpenSSL's T-table AES, GnuPG's square-and-multiply RSA, and MiBench's
//! Blowfish and Rijndael. This crate rebuilds those *victims* for the mx86
//! simulator:
//!
//! - a pure-Rust **reference** implementation of each algorithm (verified
//!   against FIPS-197 vectors for AES/Rijndael), used as ground truth;
//! - a **program generator** that hand-compiles the same algorithm to mx86,
//!   preserving the side-channel-relevant structure exactly: four 1 KiB
//!   T-tables (64 cache lines) indexed by key⊕plaintext bytes for
//!   AES/Rijndael, key-dependent S-box loads for Blowfish, and a
//!   key-dependent call to a multi-line `multiply` function for RSA;
//! - the [`Victim`] trait used by the attack and benchmark harnesses to
//!   install tables/keys (and DIFT taint), run one operation, and expose
//!   the sensitive address ranges that stealth mode's decoy range
//!   registers must cover.
//!
//! Substitutions from the paper's artifacts are documented in `DESIGN.md`
//! (64-bit modexp for GnuPG's bignum; PRNG-seeded instead of π-seeded
//! Blowfish boxes; AES-256 standing in for MiBench Rijndael).

#![warn(missing_docs)]

mod aes;
mod aes_ref;
mod blowfish;
mod rsa;
mod victim;

pub use aes::{AesLayout, AesVictim, AES_LAYOUT};
pub use aes_ref::{Aes, AesKeySize};
pub use blowfish::{Blowfish, BlowfishLayout, BlowfishVictim, BLOWFISH_LAYOUT};
pub use rsa::{RsaLayout, RsaVictim, RSA_LAYOUT};
pub use victim::{arm_stealth, enable_stealth_for, CipherDir, Victim};
