//! The common victim interface used by attack and benchmark harnesses.

use csd_pipeline::Core;
use mx86_isa::{AddrRange, Program};

/// Whether a cipher victim runs in encrypt or decrypt mode (the paper's
/// eight datapoints are four ciphers × two modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherDir {
    /// Encryption.
    Encrypt,
    /// Decryption.
    Decrypt,
}

impl CipherDir {
    /// Both directions.
    pub const BOTH: [CipherDir; 2] = [CipherDir::Encrypt, CipherDir::Decrypt];

    /// Short label ("enc"/"dec").
    pub fn label(self) -> &'static str {
        match self {
            CipherDir::Encrypt => "enc",
            CipherDir::Decrypt => "dec",
        }
    }
}

/// A victim program: an algorithm compiled to mx86 plus the data and
/// configuration the harness must install.
pub trait Victim {
    /// Benchmark name (e.g. `"aes-enc"`).
    fn name(&self) -> String;

    /// The victim's mx86 program.
    fn program(&self) -> &Program;

    /// Installs tables, keys, and DIFT taint into a fresh core built
    /// around [`Victim::program`].
    fn install(&self, core: &mut Core);

    /// Restarts the program and writes `input`, leaving the core ready to
    /// run (attack tracers interleave probes with partial runs).
    fn prepare(&self, core: &mut Core, input: &[u8]);

    /// Reads the operation's output after the program halted.
    fn collect(&self, core: &Core) -> Vec<u8>;

    /// Runs one operation (e.g. one block encryption) on `core`: restarts
    /// the program, writes `input`, runs to halt, and returns the output.
    ///
    /// # Panics
    ///
    /// Panics if the program faults or fails to halt — victim programs are
    /// closed, known-terminating code.
    fn run_once(&self, core: &mut Core, input: &[u8]) -> Vec<u8> {
        self.prepare(core, input);
        let out = core.run(10_000_000);
        assert_eq!(
            out,
            csd_pipeline::StepOutcome::Halted,
            "victim program must halt"
        );
        self.collect(core)
    }

    /// Input length in bytes for [`Victim::run_once`].
    fn input_len(&self) -> usize;

    /// Data address ranges whose access pattern is key-dependent (the
    /// decoy *data* range registers must cover these — AES T-tables,
    /// Blowfish S-boxes).
    fn sensitive_data_ranges(&self) -> Vec<AddrRange>;

    /// Code address ranges whose fetch pattern is key-dependent (the decoy
    /// *instruction* range registers — RSA's `multiply`).
    fn sensitive_inst_ranges(&self) -> Vec<AddrRange>;

    /// The reference (ground-truth) computation for correctness checks.
    fn reference(&self, input: &[u8]) -> Vec<u8>;
}

/// Configures a core's CSD engine for this victim: programs the decoy
/// address-range MSRs with the victim's sensitive ranges and enables
/// stealth mode with the DIFT trigger.
pub fn enable_stealth_for(victim: &dyn Victim, core: &mut Core, watchdog_period: u64) {
    arm_stealth(
        core,
        &victim.sensitive_data_ranges(),
        &victim.sensitive_inst_ranges(),
        watchdog_period,
    );
}

/// Programs stealth mode from raw address ranges: the first four data
/// and instruction ranges go into the decoy range MSRs, then the
/// watchdog period and the stealth+DIFT-trigger control bits arm the
/// mode. [`enable_stealth_for`] wraps this with a victim's declared
/// ranges; the difftest harness passes synthetic ranges directly.
pub fn arm_stealth(
    core: &mut Core,
    data_ranges: &[AddrRange],
    inst_ranges: &[AddrRange],
    watchdog_period: u64,
) {
    use csd::msr;
    let e = core.engine_mut();
    for (i, r) in data_ranges.iter().take(4).enumerate() {
        e.write_msr(msr::MSR_DATA_RANGE_BASE + 2 * i as u32, r.start);
        e.write_msr(msr::MSR_DATA_RANGE_BASE + 2 * i as u32 + 1, r.end);
    }
    for (i, r) in inst_ranges.iter().take(4).enumerate() {
        e.write_msr(msr::MSR_INST_RANGE_BASE + 2 * i as u32, r.start);
        e.write_msr(msr::MSR_INST_RANGE_BASE + 2 * i as u32 + 1, r.end);
    }
    e.write_msr(msr::MSR_WATCHDOG_PERIOD, watchdog_period);
    e.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);
}
