//! Reference AES (FIPS-197) with OpenSSL-style T-tables.
//!
//! Supports AES-128 (the paper's "AES" benchmark, after OpenSSL) and
//! AES-256 (standing in for MiBench's "Rijndael" benchmark). The encrypt
//! and decrypt paths both use the four-table formulation whose
//! key-dependent loads are the data-cache side channel under study.

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box, derived from [`SBOX`].
pub fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

/// GF(2^8) multiplication.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut r = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    r
}

/// Builds the four encryption T-tables:
/// `Te0[x] = (2s, s, s, 3s)` big-endian, `Te_i = rotr(Te0, 8i)`.
pub fn te_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    for x in 0..256 {
        let s = SBOX[x];
        let t0 = (u32::from(xtime(s)) << 24)
            | (u32::from(s) << 16)
            | (u32::from(s) << 8)
            | u32::from(xtime(s) ^ s);
        for (i, ti) in t.iter_mut().enumerate() {
            ti[x] = t0.rotate_right(8 * i as u32);
        }
    }
    t
}

/// Builds the four decryption T-tables:
/// `Td0[x] = (0e·si, 09·si, 0d·si, 0b·si)`, `Td_i = rotr(Td0, 8i)`.
pub fn td_tables() -> [[u32; 256]; 4] {
    let inv = inv_sbox();
    let mut t = [[0u32; 256]; 4];
    for x in 0..256 {
        let s = inv[x];
        let t0 = (u32::from(gf_mul(s, 0x0e)) << 24)
            | (u32::from(gf_mul(s, 0x09)) << 16)
            | (u32::from(gf_mul(s, 0x0d)) << 8)
            | u32::from(gf_mul(s, 0x0b));
        for (i, ti) in t.iter_mut().enumerate() {
            ti[x] = t0.rotate_right(8 * i as u32);
        }
    }
    t
}

/// Column byte-source pattern for encryption (ShiftRows).
pub const ENC_SHIFT: [usize; 4] = [0, 1, 2, 3];
/// Column byte-source pattern for decryption (InvShiftRows).
pub const DEC_SHIFT: [usize; 4] = [0, 3, 2, 1];

/// Key size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesKeySize {
    /// AES-128: 10 rounds (OpenSSL AES benchmark).
    K128,
    /// AES-256: 14 rounds (the "Rijndael" benchmark).
    K256,
}

impl AesKeySize {
    /// Key length in bytes.
    pub fn key_bytes(self) -> usize {
        match self {
            AesKeySize::K128 => 16,
            AesKeySize::K256 => 32,
        }
    }

    /// Number of rounds.
    pub fn rounds(self) -> usize {
        match self {
            AesKeySize::K128 => 10,
            AesKeySize::K256 => 14,
        }
    }
}

/// A reference AES context (expanded encryption + decryption schedules).
#[derive(Debug, Clone)]
pub struct Aes {
    size: AesKeySize,
    /// Encryption round keys, `4 * (rounds + 1)` words.
    pub enc_keys: Vec<u32>,
    /// Equivalent-inverse-cipher round keys.
    pub dec_keys: Vec<u32>,
}

fn sub_word(w: u32) -> u32 {
    (u32::from(SBOX[(w >> 24) as usize]) << 24)
        | (u32::from(SBOX[((w >> 16) & 0xff) as usize]) << 16)
        | (u32::from(SBOX[((w >> 8) & 0xff) as usize]) << 8)
        | u32::from(SBOX[(w & 0xff) as usize])
}

fn inv_mix_column(w: u32) -> u32 {
    let b: [u8; 4] = w.to_be_bytes();
    let m = |r: usize| {
        gf_mul(b[r], 0x0e)
            ^ gf_mul(b[(r + 1) % 4], 0x0b)
            ^ gf_mul(b[(r + 2) % 4], 0x0d)
            ^ gf_mul(b[(r + 3) % 4], 0x09)
    };
    u32::from_be_bytes([m(0), m(1), m(2), m(3)])
}

impl Aes {
    /// Expands `key` (16 or 32 bytes per `size`).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` does not match `size`.
    pub fn new(size: AesKeySize, key: &[u8]) -> Aes {
        assert_eq!(key.len(), size.key_bytes(), "key length mismatch");
        let nk = size.key_bytes() / 4;
        let rounds = size.rounds();
        let total = 4 * (rounds + 1);
        let mut w = Vec::with_capacity(total);
        for i in 0..nk {
            w.push(u32::from_be_bytes([
                key[4 * i],
                key[4 * i + 1],
                key[4 * i + 2],
                key[4 * i + 3],
            ]));
        }
        let mut rcon: u8 = 1;
        for i in nk..total {
            let mut t = w[i - 1];
            if i % nk == 0 {
                t = sub_word(t.rotate_left(8)) ^ (u32::from(rcon) << 24);
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                t = sub_word(t);
            }
            w.push(w[i - nk] ^ t);
        }

        // Equivalent inverse cipher schedule: reverse round order and
        // InvMixColumns on the middle rounds.
        let mut dk = vec![0u32; total];
        for r in 0..=rounds {
            for c in 0..4 {
                dk[4 * r + c] = w[4 * (rounds - r) + c];
            }
        }
        for word in dk.iter_mut().take(4 * rounds).skip(4) {
            *word = inv_mix_column(*word);
        }

        Aes {
            size,
            enc_keys: w,
            dec_keys: dk,
        }
    }

    /// The key size.
    pub fn size(&self) -> AesKeySize {
        self.size
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, pt: &[u8; 16]) -> [u8; 16] {
        self.rounds_with(&te_tables(), &SBOX, &self.enc_keys, pt, ENC_SHIFT)
    }

    /// Decrypts one 16-byte block (equivalent inverse cipher; InvShiftRows
    /// rotates the other way, hence the mirrored column pattern).
    pub fn decrypt_block(&self, ct: &[u8; 16]) -> [u8; 16] {
        self.rounds_with(&td_tables(), &inv_sbox(), &self.dec_keys, ct, DEC_SHIFT)
    }

    fn rounds_with(
        &self,
        t: &[[u32; 256]; 4],
        sbox: &[u8; 256],
        rk: &[u32],
        input: &[u8; 16],
        shift: [usize; 4],
    ) -> [u8; 16] {
        let rounds = self.size.rounds();
        let get = |i: usize| {
            u32::from_be_bytes([
                input[4 * i],
                input[4 * i + 1],
                input[4 * i + 2],
                input[4 * i + 3],
            ])
        };
        let mut s = [
            get(0) ^ rk[0],
            get(1) ^ rk[1],
            get(2) ^ rk[2],
            get(3) ^ rk[3],
        ];
        for r in 1..rounds {
            let mut n = [0u32; 4];
            for (c, out) in n.iter_mut().enumerate() {
                *out = t[0][(s[(c + shift[0]) % 4] >> 24) as usize]
                    ^ t[1][((s[(c + shift[1]) % 4] >> 16) & 0xff) as usize]
                    ^ t[2][((s[(c + shift[2]) % 4] >> 8) & 0xff) as usize]
                    ^ t[3][(s[(c + shift[3]) % 4] & 0xff) as usize]
                    ^ rk[4 * r + c];
            }
            s = n;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let mut out = [0u8; 16];
        for c in 0..4 {
            let w = (u32::from(sbox[(s[(c + shift[0]) % 4] >> 24) as usize]) << 24)
                | (u32::from(sbox[((s[(c + shift[1]) % 4] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(sbox[((s[(c + shift[2]) % 4] >> 8) & 0xff) as usize]) << 8)
                | u32::from(sbox[(s[(c + shift[3]) % 4] & 0xff) as usize]);
            let w = w ^ rk[4 * rounds + c];
            out[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &s in &SBOX {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
        let inv = inv_sbox();
        for i in 0..256 {
            assert_eq!(inv[SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn gf_mul_matches_known_values() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xAB), 0xAB);
    }

    #[test]
    fn aes128_fips_vector() {
        let key: Vec<u8> = (0u8..16).collect();
        let aes = Aes::new(AesKeySize::K128, &key);
        let ct = aes.encrypt_block(&FIPS_PT);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn aes256_fips_vector() {
        let key: Vec<u8> = (0u8..32).collect();
        let aes = Aes::new(AesKeySize::K256, &key);
        let ct = aes.encrypt_block(&FIPS_PT);
        assert_eq!(
            ct,
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89
            ]
        );
    }

    #[test]
    fn decrypt_inverts_encrypt_128_and_256() {
        for size in [AesKeySize::K128, AesKeySize::K256] {
            let key: Vec<u8> = (0..size.key_bytes() as u8)
                .map(|i| i.wrapping_mul(37))
                .collect();
            let aes = Aes::new(size, &key);
            for seed in 0u8..8 {
                let mut pt = [0u8; 16];
                for (i, b) in pt.iter_mut().enumerate() {
                    *b = seed.wrapping_mul(29).wrapping_add(i as u8 * 13);
                }
                let ct = aes.encrypt_block(&pt);
                assert_eq!(aes.decrypt_block(&ct), pt, "{size:?} seed {seed}");
            }
        }
    }

    #[test]
    fn key_schedule_lengths() {
        let aes = Aes::new(AesKeySize::K128, &[0; 16]);
        assert_eq!(aes.enc_keys.len(), 44);
        assert_eq!(aes.dec_keys.len(), 44);
        let aes = Aes::new(AesKeySize::K256, &[0; 32]);
        assert_eq!(aes.enc_keys.len(), 60);
    }
}
