//! A small JSON document model with a deterministic serializer.
//!
//! Object members keep their insertion order, numbers keep their integer
//! vs float identity, and floats render with Rust's shortest-roundtrip
//! formatting — so the same data always serializes to byte-identical
//! text. That property is load-bearing: the experiment suite asserts that
//! two runs with the same root seed produce byte-identical
//! `BENCH_suite.json`, which makes the artifact diffable across commits.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (most simulator counters).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a member to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push_member(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(members) => members.push((key.into(), value)),
            other => panic!("push_member on non-object {other:?}"),
        }
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, trailing newline — the format
    /// of `BENCH_suite.json`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Shortest-roundtrip float formatting; non-finite values become `null`.
/// Integral floats gain a `.0` so they stay floats on re-parse.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`]: byte offset of the failure plus a short
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth [`Json::parse`] accepts — a request-body
/// parser must not let a hostile payload of `[[[[…` exhaust the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.expect_word("null", Json::Null),
            Some(b't') => self.expect_word("true", Json::Bool(true)),
            Some(b'f') => self.expect_word("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.err(format!("unexpected byte {:?}", b as char)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `]`");
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // {
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected string key");
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.err("expected `:`");
            }
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `}`");
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return self.err("lone high surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        other => return self.err(format!("invalid escape `\\{}`", other as char)),
                    }
                }
                _ if b < 0x20 => return self.err("raw control character in string"),
                _ => {
                    // Re-borrow the full UTF-8 character (input is `&str`,
                    // so slicing at a char start is safe after validation).
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|_| ParseError {
                        offset: start,
                        message: "invalid utf-8".into(),
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return self.err("truncated \\u escape");
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return self.err("invalid hex digit"),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.eat(b'.') {
            float = true;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::F64(v)),
            Err(_) => {
                self.pos = start;
                self.err(format!("invalid number `{text}`"))
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of [`Json::dump`] /
    /// [`Json::pretty`]). Integers without fraction or exponent parse to
    /// [`Json::U64`] (or [`Json::I64`] when negative); everything else
    /// numeric becomes [`Json::F64`]. Duplicate object keys are kept in
    /// order ([`Json::get`] returns the first). Trailing non-whitespace
    /// input is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after document");
        }
        Ok(v)
    }
}

/// Conversion into the telemetry report tree. Implemented by every
/// counter struct in the workspace (`SimStats`, `CsdStats`, cache and
/// energy statistics, …).
pub trait ToJson {
    /// The value as a JSON subtree.
    fn to_json(&self) -> Json;
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_deterministic_and_ordered() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            (
                "a",
                Json::arr([Json::from(0.5), Json::from(-3i64), Json::Null]),
            ),
        ]);
        assert_eq!(doc.dump(), r#"{"b":1,"a":[0.5,-3,null]}"#);
        assert_eq!(doc.dump(), doc.clone().dump());
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        assert_eq!(Json::from(0.1).dump(), "0.1");
        assert_eq!(Json::from(2.0).dump(), "2.0");
        assert_eq!(Json::from(f64::NAN).dump(), "null");
        assert_eq!(Json::from(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\n").dump(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").dump(), "\"\\u0001\"");
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("x", Json::from(3u64)), ("s", Json::from("hi"))]);
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_documents() {
        let docs = [
            r#"{"b":1,"a":[0.5,-3,null],"s":"hi\n","t":true}"#,
            r#"[]"#,
            r#"{}"#,
            r#"[18446744073709551615,-9223372036854775808,1e3]"#,
            r#""Aé😀""#,
        ];
        for d in docs {
            let v = Json::parse(d).unwrap();
            assert_eq!(Json::parse(&v.dump()).unwrap(), v, "round-trip of {d}");
        }
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::from("\u{1F600}"));
    }

    #[test]
    fn parse_preserves_number_identity() {
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::F64(7.0));
        assert_eq!(Json::parse("1e2").unwrap(), Json::F64(100.0));
        // Too big for u64: falls back to float rather than failing.
        assert!(matches!(
            Json::parse("99999999999999999999999").unwrap(),
            Json::F64(_)
        ));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            r#"{"a"}"#,
            "1 2",
            "\"\u{1}\"",
            "[1]]",
            "nul",
            "--1",
            r#""\ud83d""#,
            r#""\q""#,
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err(), "must bound nesting depth");
    }

    #[test]
    fn parse_whitespace_and_duplicate_keys() {
        let v = Json::parse(" {\n\t\"a\" : 1 , \"a\" : 2 } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn pretty_prints_with_indentation() {
        let doc = Json::obj([("a", Json::arr([Json::from(1u64)]))]);
        assert_eq!(doc.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj::<String>([]).pretty(), "{}\n");
    }
}
