//! A small JSON document model with a deterministic serializer.
//!
//! Object members keep their insertion order, numbers keep their integer
//! vs float identity, and floats render with Rust's shortest-roundtrip
//! formatting — so the same data always serializes to byte-identical
//! text. That property is load-bearing: the experiment suite asserts that
//! two runs with the same root seed produce byte-identical
//! `BENCH_suite.json`, which makes the artifact diffable across commits.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (most simulator counters).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a member to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push_member(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(members) => members.push((key.into(), value)),
            other => panic!("push_member on non-object {other:?}"),
        }
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, trailing newline — the format
    /// of `BENCH_suite.json`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Shortest-roundtrip float formatting; non-finite values become `null`.
/// Integral floats gain a `.0` so they stay floats on re-parse.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the telemetry report tree. Implemented by every
/// counter struct in the workspace (`SimStats`, `CsdStats`, cache and
/// energy statistics, …).
pub trait ToJson {
    /// The value as a JSON subtree.
    fn to_json(&self) -> Json;
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_deterministic_and_ordered() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            (
                "a",
                Json::arr([Json::from(0.5), Json::from(-3i64), Json::Null]),
            ),
        ]);
        assert_eq!(doc.dump(), r#"{"b":1,"a":[0.5,-3,null]}"#);
        assert_eq!(doc.dump(), doc.clone().dump());
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        assert_eq!(Json::from(0.1).dump(), "0.1");
        assert_eq!(Json::from(2.0).dump(), "2.0");
        assert_eq!(Json::from(f64::NAN).dump(), "null");
        assert_eq!(Json::from(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\n").dump(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").dump(), "\"\\u0001\"");
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("x", Json::from(3u64)), ("s", Json::from("hi"))]);
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn pretty_prints_with_indentation() {
        let doc = Json::obj([("a", Json::arr([Json::from(1u64)]))]);
        assert_eq!(doc.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj::<String>([]).pretty(), "{}\n");
    }
}
