//! A log2-bucketed latency histogram.
//!
//! [`Histogram`] trades per-sample storage for 65 power-of-two buckets:
//! recording is two increments and a saturating add, merging is
//! element-wise addition (commutative, so per-thread histograms can be
//! combined in any order), and percentiles come back as the upper bound
//! of the bucket holding the requested rank — at most one power of two
//! above the true sample. The server records queue-wait and run-time
//! samples into these, `loadgen` records end-to-end latencies, and both
//! report through the same [`ToJson`] shape.

use crate::json::{Json, ToJson};

/// Number of buckets: one for zero plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// A fixed-size log2 histogram over `u64` samples (e.g. microseconds).
///
/// Bucket `0` holds only the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. The struct is plain data: `merge` never fails and
/// two histograms built from the same samples in any interleaving
/// compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a sample: `0` for `0`, else `floor(log2(v)) + 1`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the value a percentile reports).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Folds `other` into `self`. Merging is commutative and associative
    /// up to the saturating `sum`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Merges any number of histograms into one — the fleet view a
    /// cluster coordinator builds from per-worker latency distributions.
    /// Identity on empty input; order-independent (merge is commutative
    /// and associative up to the saturating `sum`).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Histogram>) -> Histogram {
        let mut all = Histogram::new();
        for p in parts {
            all.merge(p);
        }
        all
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counters (`buckets()[i]` covers `[2^(i-1), 2^i)`,
    /// with bucket `0` holding only zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper-bound estimate of the `p`-th percentile (`0.0 ..= 100.0`):
    /// the inclusive upper edge of the bucket containing the sample of
    /// that rank, clamped to the observed extremes. `None` when empty —
    /// distinguishable from a real 0µs sample, which reports `Some(0)`.
    /// Rank 1 (any `p` that resolves to the first order statistic,
    /// including `p = 0`) is exact: it is the tracked minimum, not a
    /// bucket edge. Monotone in `p`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            // The rank-1 order statistic *is* the minimum, which is
            // tracked exactly — no bucket rounding.
            return Some(self.min);
        }
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                Json::obj([
                    ("lo", Json::from(lo)),
                    ("hi", Json::from(bucket_upper(i))),
                    ("n", Json::from(*n)),
                ])
            })
            .collect();
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max)),
            ("mean", Json::from(self.mean())),
            // Empty histograms report 0 for every percentile; `count`
            // disambiguates (count == 0 means "no samples", not "0µs").
            ("p50", Json::from(self.percentile(50.0).unwrap_or(0))),
            ("p90", Json::from(self.percentile(90.0).unwrap_or(0))),
            ("p99", Json::from(self.percentile(99.0).unwrap_or(0))),
            ("p999", Json::from(self.percentile(99.9).unwrap_or(0))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn records_and_reports() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.percentile(0.0), Some(0));
        assert!(h.percentile(100.0) >= Some(1000));
        assert_eq!(h.percentile(100.0), Some(1000)); // clamped to observed max
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), None, "no samples, no percentile");
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn zero_sample_is_distinguishable_from_empty() {
        // The ambiguity this API exists to kill: a real 0µs sample
        // reports Some(0); an empty histogram reports None.
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(0));
    }

    #[test]
    fn one_sample_percentiles_are_exact() {
        // Rank 1 resolves to the tracked minimum, so a one-sample
        // histogram reports the sample itself at p=0, not the upper
        // edge of its log2 bucket.
        let mut h = Histogram::new();
        h.record(100);
        assert_eq!(h.percentile(0.0), Some(100));
        assert_eq!(h.percentile(50.0), Some(100));
        assert_eq!(h.percentile(100.0), Some(100));
    }

    #[test]
    fn merged_folds_a_fleet_in_any_order() {
        let mut parts = Vec::new();
        let mut all = Histogram::new();
        for w in 0..4u64 {
            let mut h = Histogram::new();
            for v in [w, w * 100 + 1, 1 << w] {
                h.record(v);
                all.record(v);
            }
            parts.push(h);
        }
        assert_eq!(Histogram::merged(parts.iter()), all);
        assert_eq!(Histogram::merged(parts.iter().rev()), all);
        assert_eq!(Histogram::merged([]), Histogram::new());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5u64, 17, 0, 9000] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1, 2, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new();
        h.record(7);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("p50").and_then(Json::as_u64), Some(7));
        let buckets = j.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("lo").and_then(Json::as_u64), Some(4));
        assert_eq!(buckets[0].get("hi").and_then(Json::as_u64), Some(7));
    }
}
