//! # csd-telemetry — the unified telemetry layer
//!
//! Every counter struct in the workspace (`SimStats`, `CsdStats`, cache
//! and energy statistics, …) serializes through this crate into one
//! nested, machine-readable report, and every simulator component can
//! expose fine-grained events through a zero-cost-when-disabled hook
//! trait. The crate is dependency-free by design: the container image
//! cannot reach a crates.io registry, so JSON emission, deterministic
//! seeding, and event plumbing are all implemented in-tree.
//!
//! Four pieces:
//!
//! - [`json`] — a small JSON document model ([`Json`]) with a
//!   *deterministic* serializer (stable key order, shortest-roundtrip
//!   float formatting), a strict parser ([`Json::parse`], used by the
//!   serving layer for request bodies), and the [`ToJson`] trait the
//!   workspace's counter structs implement. Same data ⇒ byte-identical
//!   output, which is what lets `BENCH_suite.json` be diffed across
//!   runs and commits.
//! - [`hist`] — [`Histogram`], a mergeable log2-bucket latency
//!   histogram shared by the `csd-serve` daemon (queue-wait / run-time
//!   metrics) and the `loadgen` client (end-to-end percentiles).
//! - [`rng`] — [`SplitMix64`], the workspace's deterministic PRNG, plus
//!   [`derive_seed`] for deriving independent per-task streams from one
//!   root seed.
//! - [`events`] — the [`EventSink`] hook trait (decode / retire / gate /
//!   stealth-window events) and the [`SinkHandle`] container the
//!   pipeline embeds so tracing can be attached without touching the hot
//!   path when disabled.
//! - [`coverage`] — [`CoverageMap`], the fixed-shape structural coverage
//!   counters behind coverage-guided differential fuzzing, and
//!   [`CoverageSink`], the [`EventSink`] adapter that fills one.
//! - [`journal`] — the durability layer: [`write_atomic`] (temp+rename
//!   artifact writes with typed [`ArtifactError`]s) and the CRC-framed
//!   write-ahead [`Journal`] / [`RunJournal`] behind crash-resumable
//!   `suite --resume` / `cluster --resume` runs.

#![warn(missing_docs)]

pub mod coverage;
pub mod events;
pub mod hist;
pub mod journal;
pub mod json;
pub mod rng;

pub use coverage::{CoverageMap, CoverageSink};
pub use events::{
    ContextKeyEvent, CountingSink, DecodeEvent, EventSink, GateEvent, MemoProbeEvent, RetireEvent,
    SinkHandle, StealthWindowEvent, StoreEvent, UopCacheEvent, UopDecodeEvent,
};
pub use hist::Histogram;
pub use journal::{
    content_digest, crc32, write_atomic, ArtifactError, Journal, Recovered, RunJournal, TaskRecord,
};
pub use json::{Json, ParseError, ToJson};
pub use rng::{derive_seed, SplitMix64};
