//! Structural coverage counters for coverage-guided differential fuzzing.
//!
//! A [`CoverageMap`] is a fixed shape of cheap counters over the
//! decoder-visible structure the CSD engine exercises: which µop classes
//! were emitted under which translation context, which context-to-context
//! transitions the decode stream took, why the context key advanced, the
//! VPU gate states seen, stealth decoy-window sizes, decode-memo and
//! µop-cache probe outcomes, and (filled in by the harness) divergence
//! classes. Bins are deliberately coarse — the point is a stable,
//! deterministic fingerprint a fuzzer can compare across inputs, not a
//! profile.
//!
//! The map serializes through [`ToJson`] with stable names and only the
//! nonzero bins, so two runs that exercised the same structure produce
//! byte-identical JSON, and a committed baseline can be checked with
//! [`CoverageMap::missing_from_baseline`].
//!
//! [`CoverageSink`] adapts a shared map to the [`EventSink`] hook trait;
//! attach one clone to the pipeline core and another to the CSD engine
//! and every event lands in the same map.

use crate::events::{
    ContextKeyEvent, DecodeEvent, EventSink, GateEvent, MemoProbeEvent, StealthWindowEvent,
    UopCacheEvent, UopDecodeEvent,
};
use crate::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of translation-context tags (the µop-cache context-bit space:
/// native, stealth, devectorize, five folded custom modes).
pub const COV_CONTEXTS: usize = 8;

/// Number of µop coverage classes (one per µop-kind family; the mapping
/// from concrete µops lives in `csd-uops`).
pub const COV_UOP_CLASSES: usize = 28;

/// Number of context-key bump causes.
pub const COV_KEY_CAUSES: usize = 8;

/// Number of log2 bins for stealth decoy-window sizes.
pub const COV_DECOY_BINS: usize = 8;

/// Stable names for the µop coverage classes, indexed by class id. The
/// `csd-uops` crate's `Uop::coverage_class` must stay in range; a test
/// in `csd-difftest` (which sees both crates) pins the agreement.
pub const UOP_CLASS_NAMES: [&str; COV_UOP_CLASSES] = [
    "nop", "mov", "movimm", "alu", "mul", "falu", "divq", "divr", "ld", "st", "lea", "br", "jmp",
    "jmpreg", "pushimm", "push", "pop", "valu", "vld", "vst", "vmov", "vextract", "vinsert",
    "clflush", "rdtsc", "wrmsr", "rdmsr", "halt",
];

/// Name of a translation-context tag (`ContextId::bit` value).
pub fn context_name(ctx: u8) -> &'static str {
    match ctx {
        0 => "native",
        1 => "stealth",
        2 => "devec",
        3 => "custom0",
        4 => "custom1",
        5 => "custom2",
        6 => "custom3",
        _ => "custom4",
    }
}

/// Name of a µop coverage class, or `"unknown"` when out of range.
pub fn uop_class_name(class: u8) -> &'static str {
    UOP_CLASS_NAMES
        .get(class as usize)
        .copied()
        .unwrap_or("unknown")
}

/// Context-key bump causes carried by [`ContextKeyEvent::cause`].
pub mod key_cause {
    /// An MSR write.
    pub const MSR: u8 = 0;
    /// A bulk MSR refresh.
    pub const REFRESH: u8 = 1;
    /// A custom-mode activation change.
    pub const CUSTOM_MODE: u8 = 2;
    /// A VPU-policy replacement.
    pub const VPU_POLICY: u8 = 3;
    /// A microcode update.
    pub const MCU: u8 = 4;
    /// A stealth watchdog arm/disarm transition.
    pub const STEALTH_ARM: u8 = 5;
    /// A VPU gate-state change.
    pub const GATE: u8 = 6;
    /// A stealth decoy injection (window disarm at decode).
    pub const STEALTH_INJECT: u8 = 7;

    /// Stable name of a cause code.
    pub fn name(cause: u8) -> &'static str {
        match cause {
            MSR => "msr",
            REFRESH => "refresh",
            CUSTOM_MODE => "custom-mode",
            VPU_POLICY => "vpu-policy",
            MCU => "mcu",
            STEALTH_ARM => "stealth-arm",
            GATE => "gate",
            _ => "stealth-inject",
        }
    }
}

/// Decode-memo probe outcomes carried by
/// [`MemoProbeEvent::outcome`].
pub mod memo_probe {
    /// The probe returned a usable cached flow.
    pub const HIT: u8 = 0;
    /// The probe missed (or the occupant's tag was stale).
    pub const MISS: u8 = 1;
    /// The decode skipped the table entirely (stealth enabled).
    pub const BYPASS: u8 = 2;

    /// Stable name of an outcome code.
    pub fn name(outcome: u8) -> &'static str {
        match outcome {
            HIT => "hit",
            MISS => "miss",
            _ => "bypass",
        }
    }
}

/// The structural coverage map. See the module docs for the bin shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    /// µop class × translation context occupancy.
    uop_mode: [[u64; COV_UOP_CLASSES]; COV_CONTEXTS],
    /// Decode-stream context-transition edges (from × to, self-edges
    /// included).
    ctx_edges: [[u64; COV_CONTEXTS]; COV_CONTEXTS],
    /// Context-key bump causes.
    key_causes: [u64; COV_KEY_CAUSES],
    /// VPU gate states observed (`[ungated, gated]` transitions-to).
    gate: [u64; 2],
    /// Stealth decoy-window sizes, log2-binned.
    decoy_bins: [u64; COV_DECOY_BINS],
    /// Decode-memo probe outcomes (`[hit, miss, bypass]`).
    memo: [u64; 3],
    /// µop-cache probe outcomes (`[miss, hit]`).
    ucache: [u64; 2],
    /// Divergence classes observed by the harness.
    divergence: BTreeMap<String, u64>,
    /// Context of the previous decode (edge-tracking cursor; not a bin,
    /// excluded from merge and serialization).
    last_ctx: Option<u8>,
}

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap {
            uop_mode: [[0; COV_UOP_CLASSES]; COV_CONTEXTS],
            ctx_edges: [[0; COV_CONTEXTS]; COV_CONTEXTS],
            key_causes: [0; COV_KEY_CAUSES],
            gate: [0; 2],
            decoy_bins: [0; COV_DECOY_BINS],
            memo: [0; 3],
            ucache: [0; 2],
            divergence: BTreeMap::new(),
            last_ctx: None,
        }
    }
}

fn log2_bin(n: u64) -> usize {
    ((64 - n.max(1).leading_zeros() as usize) - 1).min(COV_DECOY_BINS - 1)
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Records a decoded macro-op's translation context (feeds the
    /// context-edge matrix).
    pub fn record_decode_context(&mut self, ctx: u8) {
        let ctx = (ctx as usize).min(COV_CONTEXTS - 1);
        if let Some(prev) = self.last_ctx {
            self.ctx_edges[prev as usize][ctx] += 1;
        }
        self.last_ctx = Some(ctx as u8);
    }

    /// Forgets the previous decode context, so the next decode opens a
    /// fresh edge chain. Call between independent runs sharing one map —
    /// an edge spanning two runs is noise, not coverage.
    pub fn reset_edge_cursor(&mut self) {
        self.last_ctx = None;
    }

    /// Records one emitted µop of `class` under translation context `ctx`.
    pub fn record_uop(&mut self, ctx: u8, class: u8) {
        let ctx = (ctx as usize).min(COV_CONTEXTS - 1);
        let class = (class as usize).min(COV_UOP_CLASSES - 1);
        self.uop_mode[ctx][class] += 1;
    }

    /// Records a context-key bump and its cause.
    pub fn record_key_cause(&mut self, cause: u8) {
        self.key_causes[(cause as usize).min(COV_KEY_CAUSES - 1)] += 1;
    }

    /// Records a VPU gate transition into the gated or ungated state.
    pub fn record_gate(&mut self, gated: bool) {
        self.gate[usize::from(gated)] += 1;
    }

    /// Records a stealth decoy window of `decoys` µops (log2-binned).
    pub fn record_stealth_window(&mut self, decoys: u32) {
        self.decoy_bins[log2_bin(u64::from(decoys))] += 1;
    }

    /// Records a decode-memo probe outcome (see [`memo_probe`]).
    pub fn record_memo(&mut self, outcome: u8) {
        self.memo[(outcome as usize).min(2)] += 1;
    }

    /// Records a µop-cache probe outcome.
    pub fn record_ucache(&mut self, hit: bool) {
        self.ucache[usize::from(hit)] += 1;
    }

    /// Records one observed divergence of the named class.
    pub fn record_divergence(&mut self, class: &str) {
        *self.divergence.entry(class.to_string()).or_insert(0) += 1;
    }

    /// Iterates every bin as `(stable name, count)`, including zeros.
    fn bins_iter(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        let uop = self.uop_mode.iter().enumerate().flat_map(|(c, row)| {
            row.iter().enumerate().map(move |(k, &n)| {
                (
                    format!("uop/{}/{}", context_name(c as u8), uop_class_name(k as u8)),
                    n,
                )
            })
        });
        let edges = self.ctx_edges.iter().enumerate().flat_map(|(a, row)| {
            row.iter().enumerate().map(move |(b, &n)| {
                (
                    format!("edge/{}>{}", context_name(a as u8), context_name(b as u8)),
                    n,
                )
            })
        });
        let causes = self
            .key_causes
            .iter()
            .enumerate()
            .map(|(c, &n)| (format!("key/{}", key_cause::name(c as u8)), n));
        let gate = self.gate.iter().enumerate().map(|(g, &n)| {
            (
                format!("gate/{}", if g == 1 { "gated" } else { "ungated" }),
                n,
            )
        });
        let decoys = self
            .decoy_bins
            .iter()
            .enumerate()
            .map(|(b, &n)| (format!("decoys/2^{b}"), n));
        let memo = self
            .memo
            .iter()
            .enumerate()
            .map(|(o, &n)| (format!("memo/{}", memo_probe::name(o as u8)), n));
        let ucache = self
            .ucache
            .iter()
            .enumerate()
            .map(|(h, &n)| (format!("ucache/{}", if h == 1 { "hit" } else { "miss" }), n));
        let div = self
            .divergence
            .iter()
            .map(|(k, &n)| (format!("divergence/{k}"), n));
        uop.chain(edges)
            .chain(causes)
            .chain(gate)
            .chain(decoys)
            .chain(memo)
            .chain(ucache)
            .chain(div)
    }

    /// Number of distinct nonzero bins.
    pub fn bins(&self) -> u64 {
        self.bins_iter().filter(|(_, n)| *n > 0).count() as u64
    }

    /// Total events recorded across all bins.
    pub fn events(&self) -> u64 {
        self.bins_iter().map(|(_, n)| n).sum()
    }

    /// Number of bins nonzero in `self` but zero (or absent) in `global`
    /// — the fuzzer's "is this input interesting" signal.
    pub fn new_bins(&self, global: &CoverageMap) -> u64 {
        let theirs: BTreeMap<String, u64> = global.bins_iter().collect();
        self.bins_iter()
            .filter(|(name, n)| *n > 0 && theirs.get(name).copied().unwrap_or(0) == 0)
            .count() as u64
    }

    /// Names of the bins nonzero in `self` but zero (or absent) in
    /// `global` — what [`CoverageMap::new_bins`] counts.
    pub fn new_bin_names(&self, global: &CoverageMap) -> Vec<String> {
        let theirs: BTreeMap<String, u64> = global.bins_iter().collect();
        self.bins_iter()
            .filter(|(name, n)| *n > 0 && theirs.get(name).copied().unwrap_or(0) == 0)
            .map(|(name, _)| name)
            .collect()
    }

    /// Whether every named bin is nonzero in `self` (the fuzzer's
    /// coverage-preserving shrink predicate).
    pub fn covers_all(&self, names: &[String]) -> bool {
        let ours: BTreeMap<String, u64> = self.bins_iter().collect();
        names.iter().all(|n| ours.get(n).copied().unwrap_or(0) > 0)
    }

    /// Folds another map's counts into this one (the edge cursor is not
    /// merged — it is per-run state, not coverage).
    pub fn merge(&mut self, other: &CoverageMap) {
        for (a, b) in self.uop_mode.iter_mut().zip(&other.uop_mode) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.ctx_edges.iter_mut().zip(&other.ctx_edges) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (x, y) in self.key_causes.iter_mut().zip(&other.key_causes) {
            *x += y;
        }
        for (x, y) in self.gate.iter_mut().zip(&other.gate) {
            *x += y;
        }
        for (x, y) in self.decoy_bins.iter_mut().zip(&other.decoy_bins) {
            *x += y;
        }
        for (x, y) in self.memo.iter_mut().zip(&other.memo) {
            *x += y;
        }
        for (x, y) in self.ucache.iter_mut().zip(&other.ucache) {
            *x += y;
        }
        for (k, &n) in &other.divergence {
            *self.divergence.entry(k.clone()).or_insert(0) += n;
        }
    }

    /// Checks this map against a baseline coverage document (a previous
    /// [`CoverageMap::to_json`] dump): returns every bin name the
    /// baseline had nonzero that this map left at zero. Empty = coverage
    /// did not regress.
    pub fn missing_from_baseline(&self, baseline: &Json) -> Vec<String> {
        let Some(bins) = baseline.get("bins") else {
            return vec!["<baseline has no bins object>".to_string()];
        };
        let Json::Obj(members) = bins else {
            return vec!["<baseline bins is not an object>".to_string()];
        };
        let ours: BTreeMap<String, u64> = self.bins_iter().collect();
        members
            .iter()
            .filter(|(name, count)| {
                count.as_u64().unwrap_or(0) > 0 && ours.get(name).copied().unwrap_or(0) == 0
            })
            .map(|(name, _)| name.clone())
            .collect()
    }
}

impl ToJson for CoverageMap {
    /// Deterministic dump: schema tag, summary counts, then every
    /// nonzero bin under `"bins"` in a fixed section-then-index order.
    fn to_json(&self) -> Json {
        let bins: Vec<(String, Json)> = self
            .bins_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| (name, Json::from(n)))
            .collect();
        Json::obj([
            ("schema", Json::from("csd-cover/1")),
            ("bin_count", Json::from(bins.len() as u64)),
            ("events", Json::from(self.events())),
            ("bins", Json::obj(bins)),
        ])
    }
}

/// An [`EventSink`] that folds every observed event into a shared
/// [`CoverageMap`]. Clone it to attach the same map at several emission
/// points (the pipeline core and the CSD engine each own a sink slot).
#[derive(Clone, Default)]
pub struct CoverageSink(Arc<Mutex<CoverageMap>>);

impl CoverageSink {
    /// A sink folding into `map`.
    pub fn new(map: Arc<Mutex<CoverageMap>>) -> CoverageSink {
        CoverageSink(map)
    }

    /// The shared map.
    pub fn map(&self) -> Arc<Mutex<CoverageMap>> {
        Arc::clone(&self.0)
    }

    fn with(&self, f: impl FnOnce(&mut CoverageMap)) {
        // A poisoned map just stops accumulating; coverage is advisory.
        if let Ok(mut m) = self.0.lock() {
            f(&mut m);
        }
    }
}

impl EventSink for CoverageSink {
    fn on_decode(&mut self, event: &DecodeEvent) {
        self.with(|m| m.record_decode_context(event.context));
    }

    fn on_gate(&mut self, event: &GateEvent) {
        self.with(|m| m.record_gate(event.gated));
    }

    fn on_stealth_window(&mut self, event: &StealthWindowEvent) {
        self.with(|m| m.record_stealth_window(event.decoy_uops));
    }

    fn on_uop_decode(&mut self, event: &UopDecodeEvent) {
        self.with(|m| m.record_uop(event.context, event.class));
    }

    fn on_memo_probe(&mut self, event: &MemoProbeEvent) {
        self.with(|m| m.record_memo(event.outcome));
    }

    fn on_uop_cache(&mut self, event: &UopCacheEvent) {
        self.with(|m| m.record_ucache(event.hit));
    }

    fn on_context_key(&mut self, event: &ContextKeyEvent) {
        self.with(|m| m.record_key_cause(event.cause));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_has_no_bins_and_empty_dump_is_stable() {
        let m = CoverageMap::new();
        assert_eq!(m.bins(), 0);
        assert_eq!(m.events(), 0);
        let j = m.to_json().dump();
        assert_eq!(j, CoverageMap::new().to_json().dump());
        assert!(j.contains("csd-cover/1"));
    }

    #[test]
    fn recording_creates_named_bins() {
        let mut m = CoverageMap::new();
        m.record_uop(0, 8); // native/ld
        m.record_uop(1, 8); // stealth/ld
        m.record_decode_context(0);
        m.record_decode_context(1); // edge native>stealth
        m.record_key_cause(key_cause::MSR);
        m.record_gate(true);
        m.record_stealth_window(5); // 2^2 bin
        m.record_memo(memo_probe::HIT);
        m.record_ucache(false);
        m.record_divergence("flags");
        let dump = m.to_json().dump();
        for needle in [
            "uop/native/ld",
            "uop/stealth/ld",
            "edge/native>stealth",
            "key/msr",
            "gate/gated",
            "decoys/2^2",
            "memo/hit",
            "ucache/miss",
            "divergence/flags",
        ] {
            assert!(dump.contains(needle), "missing bin {needle} in {dump}");
        }
        assert_eq!(m.bins(), 9);
    }

    #[test]
    fn merge_and_new_bins() {
        let mut global = CoverageMap::new();
        global.record_uop(0, 0);
        let mut local = CoverageMap::new();
        local.record_uop(0, 0); // already covered
        local.record_uop(2, 3); // new: devec/alu
        assert_eq!(local.new_bins(&global), 1);
        global.merge(&local);
        assert_eq!(local.new_bins(&global), 0);
        assert_eq!(global.bins(), 2);
        assert_eq!(global.events(), 3);
    }

    #[test]
    fn baseline_regression_is_detected() {
        let mut baseline = CoverageMap::new();
        baseline.record_uop(0, 8);
        baseline.record_memo(memo_probe::MISS);
        let doc = baseline.to_json();

        let mut run = CoverageMap::new();
        run.record_uop(0, 8);
        let missing = run.missing_from_baseline(&doc);
        assert_eq!(missing, vec!["memo/miss".to_string()]);

        run.record_memo(memo_probe::MISS);
        run.record_uop(1, 1); // extra coverage never fails the check
        assert!(run.missing_from_baseline(&doc).is_empty());
    }

    #[test]
    fn sink_routes_events_into_the_shared_map() {
        let map = Arc::new(Mutex::new(CoverageMap::new()));
        let mut a = CoverageSink::new(Arc::clone(&map));
        let mut b = a.clone();
        a.on_uop_decode(&UopDecodeEvent {
            context: 0,
            class: 8,
        });
        b.on_context_key(&ContextKeyEvent {
            key: 1,
            cause: key_cause::GATE,
        });
        let m = map.lock().unwrap();
        assert_eq!(m.bins(), 2);
    }

    #[test]
    fn log2_bins_are_monotonic_and_bounded() {
        assert_eq!(log2_bin(0), 0);
        assert_eq!(log2_bin(1), 0);
        assert_eq!(log2_bin(2), 1);
        assert_eq!(log2_bin(3), 1);
        assert_eq!(log2_bin(4), 2);
        assert_eq!(log2_bin(u64::MAX), COV_DECOY_BINS - 1);
    }

    #[test]
    fn out_of_range_codes_saturate() {
        let mut m = CoverageMap::new();
        m.record_uop(200, 200);
        m.record_key_cause(200);
        m.record_memo(200);
        assert_eq!(m.bins(), 3);
        assert_eq!(uop_class_name(200), "unknown");
        assert_eq!(context_name(200), "custom4");
    }
}
