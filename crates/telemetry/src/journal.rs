//! Write-ahead run journal and atomic artifact writes — the durability
//! layer behind `suite --resume` / `cluster --resume`.
//!
//! Two independent guarantees live here:
//!
//! - **No committed work is lost.** A [`Journal`] is an append-only,
//!   CRC-framed record log with fsync discipline: every
//!   [`Journal::append`] writes one `[len][crc32][payload]` frame and
//!   fsyncs before returning, so a record the caller saw succeed
//!   survives a crash at any later instant. On open, the tail is
//!   scanned; a torn final frame (the crash landed mid-`write`) is
//!   detected by length or CRC and truncated away, leaving the clean
//!   prefix. The typed layer on top, [`RunJournal`], records one
//!   completed task per frame as `(label, seed, content-digest, result
//!   bytes)` plus a leading meta frame that pins the run configuration,
//!   so a resumed run can prove it is continuing the *same* run.
//! - **No torn artifacts.** [`write_atomic`] writes through a temp file
//!   in the destination directory, fsyncs it, `rename`s it over the
//!   target, and fsyncs the parent directory — a reader (or a crash)
//!   observes either the old bytes or the new bytes, never a prefix.
//!
//! Crash points are testable: setting `CSD_CRASH_AT=<n>` makes the
//! *n*-th journal append in this process write a deliberately torn
//! half-frame and abort, which is exactly the state a power cut
//! mid-append leaves behind. `scripts/crash_smoke.sh` loops
//! crash→resume over seeded kill points and byte-compares the final
//! artifact against an uninterrupted run.

use crate::json::Json;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Magic bytes opening every journal file (version-tagged).
pub const JOURNAL_MAGIC: &[u8; 8] = b"CSDJRNL1";

/// Largest frame [`Journal::open`] will believe. A length word beyond
/// this is treated as tail corruption, not an allocation request.
const MAX_FRAME: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit content hash — the digest stored with each task record
/// (integrity is the CRC's job; the digest names the *content* so a
/// resumed run can assert it replays the bytes it thinks it does).
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Typed artifact I/O errors
// ---------------------------------------------------------------------

/// A filesystem failure with the path it happened on — what every
/// artifact writer and the journal report instead of a bare
/// `io::Error`, so `ENOSPC` at 2 a.m. names the file and the disk
/// problem rather than panicking.
#[derive(Debug)]
pub struct ArtifactError {
    /// What was being attempted, e.g. `writing` or `fsync`.
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl ArtifactError {
    fn new(op: &'static str, path: &Path, source: io::Error) -> ArtifactError {
        ArtifactError {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// Whether the failure is the disk filling up (`ENOSPC` / `EDQUOT`)
    /// — the case operators hit in practice and the one the error
    /// message calls out explicitly.
    pub fn is_out_of_space(&self) -> bool {
        matches!(self.source.raw_os_error(), Some(28 | 122))
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.source)?;
        if self.is_out_of_space() {
            write!(
                f,
                " (disk full — free space and retry; no torn file was left behind)"
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Writes `bytes` to `path` atomically: temp file in the destination
/// directory, fsync, `rename` over the target, fsync of the parent
/// directory. A crash at any instant leaves either the old file or the
/// new one — never a prefix, never a torn tail.
///
/// # Errors
///
/// Any filesystem failure, with the path attached; the temp file is
/// removed on error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let tmp = dir.join(format!(".{stem}.tmp.{}", std::process::id()));
    let write_all = || -> Result<(), ArtifactError> {
        let mut f = File::create(&tmp).map_err(|e| ArtifactError::new("creating", &tmp, e))?;
        f.write_all(bytes)
            .map_err(|e| ArtifactError::new("writing", &tmp, e))?;
        f.sync_all()
            .map_err(|e| ArtifactError::new("fsync", &tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| ArtifactError::new("renaming into", path, e))?;
        // Persist the rename itself: fsync the directory entry.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    };
    let out = write_all();
    if out.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    out
}

// ---------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------

/// Global append counter behind the `CSD_CRASH_AT=<n>` kill point: when
/// the *n*-th append (1-based, process-wide) is reached, the journal
/// writes a deliberately torn half-frame and aborts the process —
/// exactly what a power cut mid-append leaves on disk.
static APPENDS: AtomicU64 = AtomicU64::new(0);

fn crash_at() -> Option<u64> {
    static CRASH_AT: OnceLock<Option<u64>> = OnceLock::new();
    *CRASH_AT.get_or_init(|| {
        std::env::var("CSD_CRASH_AT")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|n| *n > 0)
    })
}

// ---------------------------------------------------------------------
// Frame-level journal
// ---------------------------------------------------------------------

/// What [`Journal::open`] recovered from an existing file.
pub struct Recovered {
    /// The journal, positioned for appending after the clean prefix.
    pub journal: Journal,
    /// Every intact frame payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail that were truncated away (0 for a
    /// clean file).
    pub truncated: u64,
}

/// An append-only, CRC-framed record log with fsync discipline.
///
/// Frame layout: `[len: u32 LE] [crc32(payload): u32 LE] [payload]`,
/// preceded once by [`JOURNAL_MAGIC`]. Appends are durable when
/// [`Journal::append`] returns; a crash mid-append leaves a torn final
/// frame that the next [`Journal::open`] truncates away.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates a new journal (truncating any existing file), writes the
    /// magic header, and fsyncs file and parent directory so the
    /// journal's existence itself survives a crash.
    ///
    /// # Errors
    ///
    /// Any filesystem failure, with the path attached.
    pub fn create(path: &Path) -> Result<Journal, ArtifactError> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| ArtifactError::new("creating", dir, e))?;
        }
        let mut file = File::create(path).map_err(|e| ArtifactError::new("creating", path, e))?;
        file.write_all(JOURNAL_MAGIC)
            .map_err(|e| ArtifactError::new("writing", path, e))?;
        file.sync_all()
            .map_err(|e| ArtifactError::new("fsync", path, e))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing journal, scanning every frame: intact payloads
    /// are returned in order, and a torn or CRC-corrupt tail — a partial
    /// length word, a length running past EOF, an implausible length, or
    /// a checksum mismatch — is truncated away so the file ends on a
    /// record boundary again. Truncation also drops any frames *after*
    /// the first bad one: bytes beyond a corrupt frame cannot be framed
    /// reliably, and the grid re-runs those tasks anyway.
    ///
    /// # Errors
    ///
    /// Filesystem failures, a missing file, or a file that does not
    /// start with [`JOURNAL_MAGIC`].
    pub fn open(path: &Path) -> Result<Recovered, ArtifactError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| ArtifactError::new("opening", path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| ArtifactError::new("reading", path, e))?;
        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(ArtifactError::new(
                "opening",
                path,
                io::Error::new(io::ErrorKind::InvalidData, "not a csd journal (bad magic)"),
            ));
        }
        let mut records = Vec::new();
        let mut clean_end = JOURNAL_MAGIC.len();
        let mut pos = clean_end;
        loop {
            if pos + 8 > bytes.len() {
                break; // torn or absent header
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if len > MAX_FRAME {
                break; // implausible length word — corruption
            }
            let start = pos + 8;
            let end = start + len as usize;
            if end > bytes.len() {
                break; // torn payload
            }
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // corrupt payload
            }
            records.push(payload.to_vec());
            pos = end;
            clean_end = end;
        }
        let truncated = (bytes.len() - clean_end) as u64;
        if truncated > 0 {
            file.set_len(clean_end as u64)
                .map_err(|e| ArtifactError::new("truncating", path, e))?;
            file.sync_all()
                .map_err(|e| ArtifactError::new("fsync", path, e))?;
        }
        file.seek(SeekFrom::Start(clean_end as u64))
            .map_err(|e| ArtifactError::new("seeking", path, e))?;
        Ok(Recovered {
            journal: Journal {
                file,
                path: path.to_path_buf(),
            },
            records,
            truncated,
        })
    }

    /// Appends one framed record and fsyncs — when this returns `Ok`,
    /// the record survives any subsequent crash.
    ///
    /// Honors the `CSD_CRASH_AT=<n>` kill point: the *n*-th append in
    /// this process writes only half its frame and aborts, simulating a
    /// crash mid-`write`.
    ///
    /// # Errors
    ///
    /// Any filesystem failure (`ENOSPC` included), with the path
    /// attached.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), ArtifactError> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Some(n) = crash_at() {
            if APPENDS.fetch_add(1, Ordering::SeqCst) + 1 == n {
                // Simulate a crash mid-write: half the frame lands on
                // disk, then the process dies without unwinding.
                let torn = &frame[..frame.len() / 2];
                let _ = self.file.write_all(torn);
                let _ = self.file.sync_all();
                eprintln!(
                    "journal: CSD_CRASH_AT={n} reached on {} — aborting with a torn frame",
                    self.path.display()
                );
                std::process::abort();
            }
        }
        self.file
            .write_all(&frame)
            .map_err(|e| ArtifactError::new("appending to", &self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| ArtifactError::new("fsync", &self.path, e))?;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------
// Typed run journal
// ---------------------------------------------------------------------

/// Frame tags of the typed layer.
const TAG_META: u8 = b'M';
const TAG_TASK: u8 = b'T';

/// One replayed task record: a completed task's identity and result
/// bytes, exactly as journaled by the run that crashed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRecord {
    /// The task's grid label.
    pub label: String,
    /// The label-derived seed the task ran with.
    pub seed: u64,
    /// [`content_digest`] of `bytes`, re-verified on replay.
    pub digest: u64,
    /// The task's result bytes (deterministic JSON text).
    pub bytes: Vec<u8>,
}

/// A run-level journal: a meta frame pinning the run configuration,
/// then one task frame per completed task. Opening an existing journal
/// whose meta frame differs from the expected one is an error — a
/// `--resume` under a different profile, seed, or filter would
/// otherwise silently merge incompatible results.
#[derive(Debug)]
pub struct RunJournal {
    journal: Journal,
    replayed: Vec<TaskRecord>,
    truncated: u64,
}

impl RunJournal {
    /// Opens `path` for this run: creates a fresh journal (writing the
    /// meta frame) if the file does not exist, otherwise recovers the
    /// clean prefix, verifies the meta frame equals `meta`, and replays
    /// every intact task record.
    ///
    /// # Errors
    ///
    /// Filesystem failures; an existing journal whose meta frame is
    /// missing or differs from `meta`; a task frame whose digest does
    /// not match its bytes (CRC passed but content lies — refuse to
    /// trust the file).
    pub fn open(path: &Path, meta: &Json) -> Result<RunJournal, ArtifactError> {
        let meta_bytes = Self::meta_frame(meta);
        if !path.exists() {
            let mut journal = Journal::create(path)?;
            journal.append(&meta_bytes)?;
            return Ok(RunJournal {
                journal,
                replayed: Vec::new(),
                truncated: 0,
            });
        }
        let recovered = Journal::open(path)?;
        let bad = |msg: String| {
            ArtifactError::new(
                "resuming",
                path,
                io::Error::new(io::ErrorKind::InvalidData, msg),
            )
        };
        let Some(first) = recovered.records.first() else {
            // The meta frame itself was torn away: nothing was ever
            // durably recorded, so restart the journal from scratch.
            let mut journal = Journal::create(path)?;
            journal.append(&meta_bytes)?;
            return Ok(RunJournal {
                journal,
                replayed: Vec::new(),
                truncated: recovered.truncated,
            });
        };
        if first.as_slice() != meta_bytes.as_slice() {
            let found = first
                .strip_prefix(&[TAG_META])
                .and_then(|b| std::str::from_utf8(b).ok())
                .unwrap_or("<not a meta frame>");
            return Err(bad(format!(
                "journal belongs to a different run: recorded meta {found} != expected {}",
                meta.dump()
            )));
        }
        let mut replayed = Vec::new();
        for (i, rec) in recovered.records.iter().enumerate().skip(1) {
            let task = Self::parse_task(rec)
                .ok_or_else(|| bad(format!("record {i} is not a task frame")))?;
            if content_digest(&task.bytes) != task.digest {
                return Err(bad(format!(
                    "record {i} ({}): content digest mismatch — journal is corrupt",
                    task.label
                )));
            }
            replayed.push(task);
        }
        Ok(RunJournal {
            journal: recovered.journal,
            replayed,
            truncated: recovered.truncated,
        })
    }

    fn meta_frame(meta: &Json) -> Vec<u8> {
        let mut bytes = vec![TAG_META];
        bytes.extend_from_slice(meta.dump().as_bytes());
        bytes
    }

    /// Task frame layout after the tag byte:
    /// `[seed u64 LE] [digest u64 LE] [label_len u32 LE] [label] [bytes]`.
    fn task_frame(label: &str, seed: u64, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 8 + 8 + 4 + label.len() + bytes.len());
        out.push(TAG_TASK);
        out.extend_from_slice(&seed.to_le_bytes());
        out.extend_from_slice(&content_digest(bytes).to_le_bytes());
        out.extend_from_slice(&(label.len() as u32).to_le_bytes());
        out.extend_from_slice(label.as_bytes());
        out.extend_from_slice(bytes);
        out
    }

    fn parse_task(rec: &[u8]) -> Option<TaskRecord> {
        let rest = rec.strip_prefix(&[TAG_TASK])?;
        if rest.len() < 20 {
            return None;
        }
        let seed = u64::from_le_bytes(rest[0..8].try_into().ok()?);
        let digest = u64::from_le_bytes(rest[8..16].try_into().ok()?);
        let label_len = u32::from_le_bytes(rest[16..20].try_into().ok()?) as usize;
        let rest = &rest[20..];
        if rest.len() < label_len {
            return None;
        }
        let label = std::str::from_utf8(&rest[..label_len]).ok()?.to_string();
        Some(TaskRecord {
            label,
            seed,
            digest,
            bytes: rest[label_len..].to_vec(),
        })
    }

    /// Durably records one completed task.
    ///
    /// # Errors
    ///
    /// Any filesystem failure — the caller must treat this as fatal
    /// (the durability contract is broken, not just this one record).
    pub fn record(&mut self, label: &str, seed: u64, bytes: &[u8]) -> Result<(), ArtifactError> {
        self.journal.append(&Self::task_frame(label, seed, bytes))
    }

    /// The task records replayed from the clean prefix, in append order.
    pub fn replayed(&self) -> &[TaskRecord] {
        &self.replayed
    }

    /// Bytes of torn tail truncated during recovery (0 for a clean or
    /// fresh journal).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csd-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn journal_roundtrips_records() {
        let path = tmp("roundtrip.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"alpha").unwrap();
        j.append(b"").unwrap();
        j.append(&[0u8, 255, 1, 254]).unwrap();
        drop(j);
        let r = Journal::open(&path).unwrap();
        assert_eq!(
            r.records,
            vec![b"alpha".to_vec(), Vec::new(), vec![0, 255, 1, 254]]
        );
        assert_eq!(r.truncated, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let path = tmp("continue.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"one").unwrap();
        drop(j);
        let mut r = Journal::open(&path).unwrap();
        r.journal.append(b"two").unwrap();
        let r2 = Journal::open(&path).unwrap();
        assert_eq!(r2.records, vec![b"one".to_vec(), b"two".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_at_every_byte_boundary_recovers_clean_prefix() {
        // Build a journal of three records, then for every possible
        // truncation point reopen and assert: no panic, the intact
        // prefix of records survives, and the file is truncated back to
        // a record boundary that supports further appends.
        let path = tmp("torn.journal");
        let mut j = Journal::create(&path).unwrap();
        let payloads: [&[u8]; 3] = [b"first-record", b"x", b"the-third-record"];
        let mut boundaries = vec![JOURNAL_MAGIC.len()];
        for p in payloads {
            j.append(p).unwrap();
            boundaries.push(boundaries.last().unwrap() + 8 + p.len());
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len(), *boundaries.last().unwrap());
        for cut in JOURNAL_MAGIC.len()..=full.len() {
            let case = tmp("torn-case.journal");
            std::fs::write(&case, &full[..cut]).unwrap();
            let r = Journal::open(&case).unwrap();
            let intact = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(
                r.records.len(),
                intact,
                "cut at byte {cut}: expected the longest clean prefix"
            );
            for (rec, want) in r.records.iter().zip(payloads) {
                assert_eq!(rec.as_slice(), want);
            }
            assert_eq!(r.truncated, (cut - boundaries[intact]) as u64);
            // The recovered journal must accept appends again.
            let mut j = r.journal;
            j.append(b"appended-after-recovery").unwrap();
            drop(j);
            let r2 = Journal::open(&case).unwrap();
            assert_eq!(r2.records.len(), intact + 1);
            assert_eq!(r2.records[intact].as_slice(), b"appended-after-recovery");
            std::fs::remove_file(&case).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc_corruption_rejects_the_frame_and_its_suffix() {
        let path = tmp("corrupt.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"good-one").unwrap();
        j.append(b"to-be-corrupted").unwrap();
        j.append(b"unreachable-after-corruption").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the second record.
        let off = JOURNAL_MAGIC.len() + (8 + 8) + 8 + 3;
        bytes[off] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = Journal::open(&path).unwrap();
        assert_eq!(r.records, vec![b"good-one".to_vec()]);
        assert!(
            r.truncated > 0,
            "the corrupt frame and its suffix are dropped"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn implausible_length_word_is_corruption_not_allocation() {
        let path = tmp("hugelen.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"fine").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        std::fs::write(&path, &bytes).unwrap();
        let r = Journal::open(&path).unwrap();
        assert_eq!(r.records, vec![b"fine".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("notajournal.bin");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_journal_replays_and_pins_meta() {
        let path = tmp("run.journal");
        let _ = std::fs::remove_file(&path);
        let meta = Json::obj([("profile", Json::from("quick")), ("seed", Json::from(7u64))]);
        let mut rj = RunJournal::open(&path, &meta).unwrap();
        assert!(rj.replayed().is_empty());
        rj.record("sec/opt/aes-enc", 42, b"{\"x\": 1}").unwrap();
        rj.record("table1", 9, b"{}").unwrap();
        drop(rj);
        let rj = RunJournal::open(&path, &meta).unwrap();
        assert_eq!(rj.replayed().len(), 2);
        assert_eq!(rj.replayed()[0].label, "sec/opt/aes-enc");
        assert_eq!(rj.replayed()[0].seed, 42);
        assert_eq!(rj.replayed()[0].bytes, b"{\"x\": 1}");
        assert_eq!(
            rj.replayed()[0].digest,
            content_digest(b"{\"x\": 1}"),
            "digest is recomputed and verified on replay"
        );
        // A different run config must be refused, not merged.
        let other = Json::obj([("profile", Json::from("full")), ("seed", Json::from(7u64))]);
        let err = RunJournal::open(&path, &other).unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_journal_with_torn_task_tail_resumes() {
        let path = tmp("run-torn.journal");
        let _ = std::fs::remove_file(&path);
        let meta = Json::obj([("t", Json::from("x"))]);
        let mut rj = RunJournal::open(&path, &meta).unwrap();
        rj.record("a", 1, b"aaa").unwrap();
        rj.record("b", 2, b"bbb").unwrap();
        drop(rj);
        // Tear the final record in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let rj = RunJournal::open(&path, &meta).unwrap();
        assert_eq!(rj.replayed().len(), 1);
        assert_eq!(rj.replayed()[0].label, "a");
        assert!(rj.truncated() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_journal_restarts_when_even_meta_was_torn() {
        let path = tmp("run-meta-torn.journal");
        let _ = std::fs::remove_file(&path);
        let meta = Json::obj([("t", Json::from("y"))]);
        drop(RunJournal::open(&path, &meta).unwrap());
        // Truncate into the middle of the meta frame.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(JOURNAL_MAGIC.len() as u64 + 3).unwrap();
        drop(f);
        let mut rj = RunJournal::open(&path, &meta).unwrap();
        assert!(rj.replayed().is_empty());
        rj.record("a", 1, b"ok").unwrap();
        drop(rj);
        assert_eq!(RunJournal::open(&path, &meta).unwrap().replayed().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_atomic_replaces_without_tearing() {
        let path = tmp("artifact.json");
        write_atomic(&path, b"{\"v\": 1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\": 1}");
        write_atomic(&path, b"{\"v\": 2, \"longer\": true}").unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"{\"v\": 2, \"longer\": true}"
        );
        // No temp files left behind.
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files must not survive: {leftovers:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_atomic_to_missing_dir_is_a_typed_error() {
        let err = write_atomic(Path::new("/nonexistent-csd/deep/artifact.json"), b"x").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("/nonexistent-csd/deep"), "{msg}");
        assert!(!err.is_out_of_space());
    }

    #[test]
    fn enospc_errors_carry_the_disk_full_hint() {
        // ENOSPC (os error 28) is the failure operators actually hit;
        // the typed error must name the path and call out the disk.
        let err = ArtifactError::new(
            "writing",
            Path::new("/runs/x.journal"),
            io::Error::from_raw_os_error(28),
        );
        assert!(err.is_out_of_space());
        let msg = err.to_string();
        assert!(msg.contains("/runs/x.journal"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
    }
}
