//! Event hooks for tracing the simulator without touching the hot path.
//!
//! The pipeline and the CSD engine each embed a [`SinkHandle`]; with no
//! sink attached (the default) every emission site is a single
//! `Option` test. Attaching a boxed [`EventSink`] turns on decode,
//! retire, gate-transition, and stealth-window events — enough to build
//! tracers, coverage tools, or live dashboards outside the simulator
//! crates.
//!
//! Events carry only primitive fields so the trait can live below every
//! other crate in the dependency graph.

/// One macro-op decoded through the CSD engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeEvent {
    /// Address of the macro-op.
    pub addr: u64,
    /// Translation context tag (0 = native, 1 = stealth, 2 = devectorize,
    /// 3+n = custom mode n) — mirrors the µop-cache context bits.
    pub context: u8,
    /// µops in the emitted flow.
    pub uops: u32,
    /// Decoy µops among them.
    pub decoy_uops: u32,
    /// Stall imposed before execution (conventional VPU wake).
    pub stall_cycles: u64,
}

/// One macro-op retired by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// Address of the macro-op.
    pub addr: u64,
    /// µops retired with it.
    pub uops: u32,
    /// Total macro-ops retired so far.
    pub insts: u64,
    /// Cycle count after retirement.
    pub cycles: u64,
}

/// The VPU power gate changed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateEvent {
    /// Whether the VPU is now gated.
    pub gated: bool,
    /// Cumulative gate→on round trips.
    pub transitions: u64,
}

/// One architectural store performed by the core, in program order.
///
/// The differential-cosimulation harness compares this ordered stream
/// against the reference interpreter's; vector stores emit one event per
/// 64-bit half (low half first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Effective address of the store.
    pub addr: u64,
    /// Bytes written (1–8).
    pub len: u32,
    /// The value written, truncated to `len` bytes.
    pub value: u64,
}

/// A stealth-mode decoy window was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealthWindowEvent {
    /// Address of the triggering macro-op.
    pub addr: u64,
    /// Decoy µops injected by this translation.
    pub decoy_uops: u32,
}

/// One µop emitted by a decode, with its translation context. Emitted
/// per µop (not per macro-op), so only when a sink is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopDecodeEvent {
    /// Translation context tag (same encoding as [`DecodeEvent::context`]).
    pub context: u8,
    /// Coverage class of the µop (see `coverage::UOP_CLASS_NAMES`).
    pub class: u8,
}

/// A decode-memo table probe resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoProbeEvent {
    /// Outcome code (see `coverage::memo_probe`): 0 = hit, 1 = miss,
    /// 2 = bypass.
    pub outcome: u8,
}

/// A µop-cache lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopCacheEvent {
    /// Address of the fetch window probed.
    pub addr: u64,
    /// Translation context tag of the probe.
    pub context: u8,
    /// Whether the window hit.
    pub hit: bool,
}

/// The CSD context key advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextKeyEvent {
    /// The new context-key value.
    pub key: u64,
    /// Why it advanced (see `coverage::key_cause`).
    pub cause: u8,
}

/// Receiver for simulator events. Every method is a no-op by default, so
/// implementors override only what they observe.
///
/// The `Send + Sync` bound makes every structure that *may* hold a sink
/// — including a [`SinkHandle`] and a core checkpoint cloned from one —
/// shareable across threads: the serving layer parks warmed snapshots
/// in an `Arc` and forks sessions from them concurrently. Dispatch is
/// still `&mut self`, so implementors need interior synchronization
/// only if they are actually shared.
pub trait EventSink: Send + Sync {
    /// A macro-op was decoded.
    fn on_decode(&mut self, event: &DecodeEvent) {
        let _ = event;
    }

    /// A macro-op retired.
    fn on_retire(&mut self, event: &RetireEvent) {
        let _ = event;
    }

    /// An architectural store was performed.
    fn on_store(&mut self, event: &StoreEvent) {
        let _ = event;
    }

    /// The VPU gate changed state.
    fn on_gate(&mut self, event: &GateEvent) {
        let _ = event;
    }

    /// A stealth decoy window was injected.
    fn on_stealth_window(&mut self, event: &StealthWindowEvent) {
        let _ = event;
    }

    /// A µop was emitted by a decode.
    fn on_uop_decode(&mut self, event: &UopDecodeEvent) {
        let _ = event;
    }

    /// A decode-memo probe resolved.
    fn on_memo_probe(&mut self, event: &MemoProbeEvent) {
        let _ = event;
    }

    /// A µop-cache lookup resolved.
    fn on_uop_cache(&mut self, event: &UopCacheEvent) {
        let _ = event;
    }

    /// The CSD context key advanced.
    fn on_context_key(&mut self, event: &ContextKeyEvent) {
        let _ = event;
    }
}

/// Holder for an optional event sink, embeddable in `derive(Debug,
/// Clone)` structs: cloning a handle yields a *detached* handle (sinks
/// are stateful observers of one simulation, not data), and `Debug`
/// prints only the attachment state.
#[derive(Default)]
pub struct SinkHandle {
    sink: Option<Box<dyn EventSink>>,
}

impl SinkHandle {
    /// A handle with no sink attached.
    pub fn new() -> SinkHandle {
        SinkHandle::default()
    }

    /// Attaches a sink, replacing any previous one.
    pub fn attach(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the current sink.
    pub fn detach(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// Runs `f` against the sink, if one is attached. This is the only
    /// cost emission sites pay when tracing is off: one `Option` test.
    #[inline]
    pub fn with(&mut self, f: impl FnOnce(&mut dyn EventSink)) {
        if let Some(sink) = self.sink.as_mut() {
            f(&mut **sink);
        }
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_attached() {
            "SinkHandle(attached)"
        } else {
            "SinkHandle(none)"
        })
    }
}

impl Clone for SinkHandle {
    fn clone(&self) -> SinkHandle {
        SinkHandle::new()
    }
}

/// A sink that counts events — the cheapest useful tracer, and the one
/// the workspace's tests attach to prove the hooks fire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Decode events observed.
    pub decodes: u64,
    /// Retire events observed.
    pub retires: u64,
    /// Gate transitions observed.
    pub gate_events: u64,
    /// Stealth windows observed.
    pub stealth_windows: u64,
    /// Total decoy µops across observed decode events.
    pub decoy_uops: u64,
    /// Architectural stores observed.
    pub stores: u64,
}

impl EventSink for CountingSink {
    fn on_decode(&mut self, event: &DecodeEvent) {
        self.decodes += 1;
        self.decoy_uops += u64::from(event.decoy_uops);
    }

    fn on_retire(&mut self, _event: &RetireEvent) {
        self.retires += 1;
    }

    fn on_store(&mut self, _event: &StoreEvent) {
        self.stores += 1;
    }

    fn on_gate(&mut self, _event: &GateEvent) {
        self.gate_events += 1;
    }

    fn on_stealth_window(&mut self, _event: &StealthWindowEvent) {
        self.stealth_windows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handle_is_free_and_silent() {
        let mut h = SinkHandle::new();
        assert!(!h.is_attached());
        h.with(|_| panic!("must not run without a sink"));
    }

    #[test]
    fn attached_sink_observes_events() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct Shared(Arc<AtomicU64>);
        impl EventSink for Shared {
            fn on_decode(&mut self, _event: &DecodeEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let count = Arc::new(AtomicU64::new(0));
        let mut h = SinkHandle::new();
        h.attach(Box::new(Shared(Arc::clone(&count))));
        let ev = DecodeEvent {
            addr: 0x1000,
            context: 1,
            uops: 5,
            decoy_uops: 4,
            stall_cycles: 0,
        };
        h.with(|s| s.on_decode(&ev));
        h.with(|s| s.on_decode(&ev));
        assert_eq!(count.load(Ordering::Relaxed), 2);
        assert!(h.detach().is_some());
        assert!(!h.is_attached());
    }

    #[test]
    fn cloning_detaches() {
        let mut h = SinkHandle::new();
        h.attach(Box::new(CountingSink::default()));
        let c = h.clone();
        assert!(h.is_attached());
        assert!(!c.is_attached());
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.on_decode(&DecodeEvent {
            addr: 0,
            context: 0,
            uops: 1,
            decoy_uops: 2,
            stall_cycles: 0,
        });
        s.on_gate(&GateEvent {
            gated: true,
            transitions: 1,
        });
        s.on_stealth_window(&StealthWindowEvent {
            addr: 0,
            decoy_uops: 2,
        });
        assert_eq!(s.decodes, 1);
        assert_eq!(s.decoy_uops, 2);
        assert_eq!(s.gate_events, 1);
        assert_eq!(s.stealth_windows, 1);
    }
}
