//! Deterministic pseudo-random number generation.
//!
//! The workspace cannot depend on the `rand` crate (offline builds), and
//! more importantly the experiment suite *wants* full control of its
//! streams: every task derives its own independent seed from one root
//! seed so results are reproducible regardless of scheduling.

/// Sebastiano Vigna's SplitMix64 generator: tiny, fast, full-period over
/// the 64-bit state, and plenty for plaintext randomization and property
/// tests (nothing here is cryptographic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// The next boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Multiply-shift rejection-free mapping; the bias is < 2^-64 per
        // draw, irrelevant for simulation workloads.
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(((u128::from(self.next_u64()) * u128::from(span)) >> 64) as i64)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives an independent task seed from a root seed and a task label.
///
/// FNV-1a over the label, mixed with the root through one SplitMix64
/// step, so `derive_seed(root, "sec/opt/aes-enc")` and
/// `derive_seed(root, "sec/opt/rsa-enc")` give uncorrelated streams while
/// remaining a pure function of `(root, label)` — the scheduling of a
/// parallel suite run can never leak into results.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::new(root ^ h).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        let mut r2 = SplitMix64::new(1);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn derived_seeds_differ_by_label_and_root() {
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
    }
}
