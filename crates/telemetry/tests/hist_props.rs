//! Seeded-loop property tests for the log2 latency histogram: bucket
//! conservation, merge commutativity/associativity, and percentile
//! monotonicity — the invariants `csd-serve` metrics and `loadgen`
//! percentile reports lean on.

use csd_telemetry::{Histogram, SplitMix64, ToJson};

/// Draws a sample spread across many orders of magnitude (latencies in
/// microseconds range from sub-µs queue waits to multi-second runs).
fn sample(rng: &mut SplitMix64) -> u64 {
    let magnitude = rng.next_u64() % 40;
    rng.next_u64() & ((1u64 << magnitude) | ((1u64 << magnitude) - 1))
}

#[test]
fn count_equals_bucket_sum() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xA11CE ^ seed);
        let mut h = Histogram::new();
        let n = rng.next_u64() % 500;
        for _ in 0..n {
            h.record(sample(&mut rng));
        }
        assert_eq!(h.count(), n);
        assert_eq!(h.count(), h.buckets().iter().sum::<u64>());
    }
}

#[test]
fn merge_is_commutative_and_matches_sequential_recording() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xB0B ^ seed);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for _ in 0..rng.next_u64() % 300 {
            let v = sample(&mut rng);
            a.record(v);
            all.record(v);
        }
        for _ in 0..rng.next_u64() % 300 {
            let v = sample(&mut rng);
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative (seed {seed})");
        assert_eq!(ab, all, "merge must equal combined recording (seed {seed})");
        assert_eq!(
            ab.to_json().pretty(),
            all.to_json().pretty(),
            "reports of equal histograms must be byte-identical"
        );
    }
}

#[test]
fn percentiles_are_monotone_and_bounded_by_observations() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xCAFE ^ seed);
        let mut h = Histogram::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for _ in 0..1 + rng.next_u64() % 400 {
            let v = sample(&mut rng);
            lo = lo.min(v);
            hi = hi.max(v);
            h.record(v);
        }
        let mut prev = 0;
        for p in 0..=1000 {
            let q = h
                .percentile(p as f64 / 10.0)
                .expect("non-empty histogram reports percentiles");
            assert!(
                q >= prev,
                "percentile must be monotone (seed {seed}, p {p})"
            );
            assert!(q <= hi, "percentile cannot exceed the max sample");
            assert!(q >= lo, "percentile cannot undercut the min sample");
            prev = q;
        }
        assert_eq!(h.percentile(0.0), Some(lo), "p0 is the observed min");
        assert_eq!(h.percentile(100.0), Some(hi), "p100 is the observed max");
        assert_eq!(h.min(), lo);
        assert_eq!(h.max(), hi);
    }
}

#[test]
fn empty_histogram_has_no_percentiles() {
    let h = Histogram::new();
    for p in [0.0, 50.0, 99.9, 100.0] {
        assert_eq!(h.percentile(p), None);
    }
    // And a single zero sample is *not* the same thing.
    let mut z = Histogram::new();
    z.record(0);
    assert_eq!(z.percentile(50.0), Some(0));
}

#[test]
fn percentiles_stay_monotone_across_merge() {
    // Merging must keep every percentile monotone in p and inside the
    // merged [min, max]; the exact endpoints compose (p0 is the smaller
    // input min, p100 the larger input max). The interior percentiles
    // are only bucket-accurate, so the invariant there is monotonicity
    // plus the merged min/max bounds — a merged estimate may legally
    // round up past both inputs' estimates within one log2 bucket.
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0x4E16 ^ seed);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..1 + rng.next_u64() % 300 {
            a.record(sample(&mut rng));
        }
        for _ in 0..1 + rng.next_u64() % 300 {
            b.record(sample(&mut rng));
        }
        let mut m = a.clone();
        m.merge(&b);
        let mut prev = 0;
        for p in 0..=200 {
            let qm = m.percentile(p as f64 / 2.0).unwrap();
            assert!(
                qm >= prev,
                "merged percentile must stay monotone (seed {seed}, p {p})"
            );
            assert!(qm >= m.min() && qm <= m.max());
            prev = qm;
        }
        assert_eq!(
            m.percentile(0.0),
            Some(a.percentile(0.0).unwrap().min(b.percentile(0.0).unwrap())),
            "merged p0 is the smaller input p0 (seed {seed})"
        );
        assert_eq!(
            m.percentile(100.0),
            Some(
                a.percentile(100.0)
                    .unwrap()
                    .max(b.percentile(100.0).unwrap())
            ),
            "merged p100 is the larger input p100 (seed {seed})"
        );
        // Merging an empty histogram changes nothing.
        let mut me = m.clone();
        me.merge(&Histogram::new());
        assert_eq!(me, m);
    }
}

#[test]
fn percentile_upper_bound_is_within_one_bucket() {
    // The histogram's percentile is the bucket's inclusive upper edge:
    // never below the true order statistic, and less than 2× above it
    // (the log2 guarantee), except in bucket 0 where it is exact.
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xD1CE ^ seed);
        let mut h = Histogram::new();
        let mut vals = Vec::new();
        for _ in 0..1 + rng.next_u64() % 200 {
            let v = sample(&mut rng);
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0 * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let est = h.percentile(p).expect("non-empty");
            assert!(est >= exact, "estimate below true value (seed {seed})");
            if exact > 0 {
                assert!(est < exact * 2, "estimate more than 2x off (seed {seed})");
            } else {
                assert_eq!(est, 0);
            }
        }
    }
}
