//! Seeded-loop property tests for the log2 latency histogram: bucket
//! conservation, merge commutativity/associativity, and percentile
//! monotonicity — the invariants `csd-serve` metrics and `loadgen`
//! percentile reports lean on.

use csd_telemetry::{Histogram, SplitMix64, ToJson};

/// Draws a sample spread across many orders of magnitude (latencies in
/// microseconds range from sub-µs queue waits to multi-second runs).
fn sample(rng: &mut SplitMix64) -> u64 {
    let magnitude = rng.next_u64() % 40;
    rng.next_u64() & ((1u64 << magnitude) | ((1u64 << magnitude) - 1))
}

#[test]
fn count_equals_bucket_sum() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xA11CE ^ seed);
        let mut h = Histogram::new();
        let n = rng.next_u64() % 500;
        for _ in 0..n {
            h.record(sample(&mut rng));
        }
        assert_eq!(h.count(), n);
        assert_eq!(h.count(), h.buckets().iter().sum::<u64>());
    }
}

#[test]
fn merge_is_commutative_and_matches_sequential_recording() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xB0B ^ seed);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for _ in 0..rng.next_u64() % 300 {
            let v = sample(&mut rng);
            a.record(v);
            all.record(v);
        }
        for _ in 0..rng.next_u64() % 300 {
            let v = sample(&mut rng);
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative (seed {seed})");
        assert_eq!(ab, all, "merge must equal combined recording (seed {seed})");
        assert_eq!(
            ab.to_json().pretty(),
            all.to_json().pretty(),
            "reports of equal histograms must be byte-identical"
        );
    }
}

#[test]
fn percentiles_are_monotone_and_bounded_by_observations() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xCAFE ^ seed);
        let mut h = Histogram::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for _ in 0..1 + rng.next_u64() % 400 {
            let v = sample(&mut rng);
            lo = lo.min(v);
            hi = hi.max(v);
            h.record(v);
        }
        let mut prev = 0;
        for p in 0..=1000 {
            let q = h.percentile(p as f64 / 10.0);
            assert!(
                q >= prev,
                "percentile must be monotone (seed {seed}, p {p})"
            );
            assert!(q <= hi, "percentile cannot exceed the max sample");
            prev = q;
        }
        assert!(h.percentile(100.0) >= lo);
        assert_eq!(h.percentile(100.0), hi, "p100 is the observed max");
        assert_eq!(h.min(), lo);
        assert_eq!(h.max(), hi);
    }
}

#[test]
fn percentile_upper_bound_is_within_one_bucket() {
    // The histogram's percentile is the bucket's inclusive upper edge:
    // never below the true order statistic, and less than 2× above it
    // (the log2 guarantee), except in bucket 0 where it is exact.
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xD1CE ^ seed);
        let mut h = Histogram::new();
        let mut vals = Vec::new();
        for _ in 0..1 + rng.next_u64() % 200 {
            let v = sample(&mut rng);
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0 * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let est = h.percentile(p);
            assert!(est >= exact, "estimate below true value (seed {seed})");
            if exact > 0 {
                assert!(est < exact * 2, "estimate more than 2x off (seed {seed})");
            } else {
                assert_eq!(est, 0);
            }
        }
    }
}
