//! The context-sensitive decoding engine: the single decode entry point
//! the pipeline integrates at its decoder stage.

use crate::devec::Devectorizer;
use crate::gating::{VectorDecision, VpuGateController, VpuPolicy, VpuState};
use crate::mcu::{McuError, MicrocodeUpdate, MsromPatchTable, OpcodeClass, PrivilegeLevel};
use crate::mode::{ContextId, VectorExecClass};
use crate::msr::MsrFile;
use crate::stealth::{StealthConfig, StealthTranslator};
use csd_power::GatingParams;
use csd_telemetry::coverage::{key_cause, memo_probe};
use csd_telemetry::{
    ContextKeyEvent, DecodeEvent, EventSink, GateEvent, Json, MemoProbeEvent, SinkHandle,
    StealthWindowEvent, ToJson, UopDecodeEvent,
};
use csd_uops::{translate, DecodeMemo, MemoEntry, UopFlow};
use mx86_isa::Placed;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct CsdConfig {
    /// Stealth-mode parameters.
    pub stealth: StealthConfig,
    /// VPU power-management policy.
    pub vpu_policy: VpuPolicy,
    /// Gating cost model.
    pub gating: GatingParams,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsdStats {
    /// Macro-ops decoded through the engine.
    pub decoded_insts: u64,
    /// Macro-ops whose translation came from a custom decoder (stealth,
    /// devectorize, or MCU patch).
    pub custom_decoded: u64,
    /// Total µops emitted.
    pub total_uops: u64,
    /// µops that were decoys.
    pub decoy_uops: u64,
    /// Microcode updates successfully applied.
    pub mcu_applied: u64,
}

impl ToJson for CsdStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("decoded_insts", Json::from(self.decoded_insts)),
            ("custom_decoded", Json::from(self.custom_decoded)),
            ("total_uops", Json::from(self.total_uops)),
            ("decoy_uops", Json::from(self.decoy_uops)),
            ("mcu_applied", Json::from(self.mcu_applied)),
        ])
    }
}

/// The result of decoding one macro-op through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// The µop flow to execute: owned when freshly materialized, shared
    /// when a memoized decode hands out the same allocation to every
    /// dynamic instance of the instruction.
    pub translation: UopFlow,
    /// The translation context that produced it (micro-op cache tag bits).
    pub context: ContextId,
    /// Pipeline stall imposed before execution (conventional VPU wake).
    pub stall_cycles: u64,
    /// For vector macro-ops, how the instruction was classified for the
    /// paper's Figure 16 breakdown.
    pub vector_class: Option<VectorExecClass>,
}

/// The context-sensitive decoding engine.
///
/// Owns the MSR file, the stealth translator, the devectorizer, the VPU
/// gate controller, and the microcode patch table. The pipeline calls
/// [`CsdEngine::decode`] for every macro-op, [`CsdEngine::tick`] as cycles
/// elapse, and [`CsdEngine::write_msr`] when `wrmsr` retires.
///
/// ```
/// use csd::{CsdEngine, CsdConfig};
/// use mx86_isa::{Placed, Inst, Gpr};
///
/// let mut engine = CsdEngine::new(CsdConfig::default());
/// let p = Placed { addr: 0x1000, inst: Inst::MovRI { dst: Gpr::Rax, imm: 7 } };
/// let out = engine.decode(&p, false);
/// assert_eq!(out.translation.uops.len(), 1);
/// assert_eq!(out.context, csd::ContextId::Native);
/// ```
#[derive(Debug, Clone)]
pub struct CsdEngine {
    msrs: MsrFile,
    stealth: StealthTranslator,
    devec: Devectorizer,
    gate: VpuGateController,
    patches: MsromPatchTable,
    active_custom: Option<u8>,
    stats: CsdStats,
    sink: SinkHandle,
    /// Monotonically increasing decoder-context generation; see
    /// [`CsdEngine::context_key`].
    context_gen: u64,
}

impl CsdEngine {
    /// A fresh engine; stealth stays dormant until MSRs enable it.
    pub fn new(cfg: CsdConfig) -> CsdEngine {
        CsdEngine {
            msrs: MsrFile::new(),
            stealth: StealthTranslator::new(cfg.stealth),
            devec: Devectorizer::new(),
            gate: VpuGateController::new(cfg.vpu_policy, cfg.gating),
            patches: MsromPatchTable::new(),
            active_custom: None,
            stats: CsdStats::default(),
            sink: SinkHandle::new(),
            context_gen: 0,
        }
    }

    /// The current decoder-context generation: a monotonically increasing
    /// key that changes whenever anything that can influence translation
    /// changes — an MSR write, a microcode update, a custom-mode switch, a
    /// stealth-window arm/disarm, or a VPU gate-state change. Two decodes
    /// of the same `(pc, tainted)` under the same key are guaranteed to
    /// produce the same µop flow, which is what makes the key usable as a
    /// memoization generation.
    pub fn context_key(&self) -> u64 {
        self.context_gen
    }

    /// Resets the context generation to zero, as on a freshly constructed
    /// engine. Only meaningful alongside a full invalidation of anything
    /// keyed by old generations (`Core::restart` clears its memo table).
    pub fn reset_context_key(&mut self) {
        self.context_gen = 0;
    }

    /// Attaches an event sink; decode, gate, and stealth-window events
    /// flow to it from now on. With no sink attached (the default) each
    /// emission site costs a single `Option` test.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink.attach(sink);
    }

    /// Detaches and returns the current event sink, if any.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.detach()
    }

    /// Advances the context generation and reports why. Every bump site
    /// funnels through here so coverage tools see the full transition
    /// stream; with no sink attached the cost stays one `Option` test.
    fn bump_context(&mut self, cause: u8) {
        self.context_gen += 1;
        let ev = ContextKeyEvent {
            key: self.context_gen,
            cause,
        };
        self.sink.with(|s| s.on_context_key(&ev));
    }

    /// Reports a decode-memo probe outcome to the sink.
    fn emit_memo_probe(&mut self, outcome: u8) {
        let ev = MemoProbeEvent { outcome };
        self.sink.with(|s| s.on_memo_probe(&ev));
    }

    /// Emits a [`GateEvent`] if the VPU's gated-ness changed since `was`.
    fn emit_gate_delta(&mut self, was: VpuState) {
        let now = self.gate.state();
        if (was == VpuState::Gated) != (now == VpuState::Gated) {
            let ev = GateEvent {
                gated: now == VpuState::Gated,
                transitions: self.gate.stats().gate_transitions,
            };
            self.sink.with(|s| s.on_gate(&ev));
        }
    }

    /// Writes an MSR. Writes inside the CSD block re-snapshot the stealth
    /// translator's internal registers (the decoder's register-tracking
    /// optimization noticing the update).
    pub fn write_msr(&mut self, msr: u32, value: u64) {
        self.msrs.write(msr, value);
        if MsrFile::is_csd_msr(msr) {
            self.stealth.configure(&self.msrs);
        }
        self.bump_context(key_cause::MSR);
    }

    /// Reads an MSR.
    pub fn read_msr(&self, msr: u32) -> u64 {
        self.msrs.read(msr)
    }

    /// Mutable access to the MSR file for bulk configuration; call
    /// [`CsdEngine::refresh`] afterwards.
    pub fn msrs_mut(&mut self) -> &mut MsrFile {
        &mut self.msrs
    }

    /// Re-snapshots decoder state from the MSR file.
    pub fn refresh(&mut self) {
        self.stealth.configure(&self.msrs);
        self.bump_context(key_cause::REFRESH);
    }

    /// Activates (or deactivates) a custom MCU-installed translation mode.
    pub fn set_custom_mode(&mut self, mode: Option<u8>) {
        self.active_custom = mode;
        self.bump_context(key_cause::CUSTOM_MODE);
    }

    /// Replaces the VPU gating policy, restarting the gate controller
    /// under its existing gating-cost parameters. Changing the policy
    /// changes what subsequent decodes produce (devectorization depends
    /// on it), so the context generation bumps.
    pub fn set_vpu_policy(&mut self, policy: VpuPolicy) {
        self.gate.set_policy(policy);
        self.bump_context(key_cause::VPU_POLICY);
    }

    /// Applies a microcode update after verification.
    ///
    /// # Errors
    ///
    /// Propagates [`McuError`] from [`MicrocodeUpdate::verify`].
    pub fn apply_microcode_update(
        &mut self,
        mcu: &MicrocodeUpdate,
        privilege: PrivilegeLevel,
    ) -> Result<bool, McuError> {
        mcu.verify(privilege)?;
        let installed = self.patches.install(mcu);
        if installed {
            self.stats.mcu_applied += 1;
        }
        self.bump_context(key_cause::MCU);
        Ok(installed)
    }

    /// Advances time: watchdog countdown and VPU gate-state residency.
    /// A watchdog re-arm or a VPU state change bumps the context
    /// generation (both alter what subsequent decodes produce).
    pub fn tick(&mut self, cycles: u64) {
        let armed_was = self.stealth.armed();
        self.stealth.tick(cycles);
        if self.stealth.armed() != armed_was {
            self.bump_context(key_cause::STEALTH_ARM);
        }
        let was = self.gate.state();
        self.gate.tick(cycles);
        if self.gate.state() != was {
            self.bump_context(key_cause::GATE);
        }
        self.emit_gate_delta(was);
    }

    /// Whether the VPU is powered and usable this cycle.
    pub fn vpu_available(&self) -> bool {
        self.gate.vpu_available()
    }

    /// Decodes one macro-op in the current context.
    ///
    /// `tainted` is the DIFT verdict for this instruction (any
    /// address-forming source register tainted, or tainted flags for a
    /// conditional branch). The decode path is, in order: MCU patch lookup
    /// → devectorization (gate-controller decision) → stealth decoy
    /// injection on top of whatever translation resulted.
    pub fn decode(&mut self, placed: &Placed, tainted: bool) -> DecodeOutcome {
        self.decode_memo(placed, tainted, None)
    }

    /// Like [`CsdEngine::decode`], but consults (and feeds) a
    /// [`DecodeMemo`] table keyed by `(pc, context_key, tainted)`.
    ///
    /// Memoization is semantically transparent: the *decision* phase —
    /// gate-controller observation, stealth-interception check, statistics,
    /// and event emission — runs on every decode; only the materialization
    /// of the µop flow is cached. While the stealth defense is enabled the
    /// table is bypassed entirely — window transitions and watchdog
    /// re-arms roll the context key at data-dependent cycles, so no
    /// cached line survives long enough to be reused — and a hit is
    /// honored only when its context tag matches the freshly decided
    /// context, so a gate-state flip triggered by this very decode falls
    /// back to a full rebuild.
    pub fn decode_memo(
        &mut self,
        placed: &Placed,
        tainted: bool,
        memo: Option<&mut DecodeMemo>,
    ) -> DecodeOutcome {
        let inst = &placed.inst;

        // --- Decision phase: runs identically with or without the table.
        // 1. MCU-installed custom translation for the active custom mode.
        let patch_ctx = self
            .active_custom
            .map(ContextId::Custom)
            .filter(|&ctx| self.patches.lookup(OpcodeClass::of(inst), ctx).is_some());

        // 2. VPU power management.
        let gate_was = self.gate.state();
        let mut stall_cycles = 0;
        let mut vector_class = None;
        let mut devec_requested = false;
        if inst.is_vector() {
            let weight = Devectorizer::weight(inst);
            match self.gate.on_vector_inst(weight) {
                VectorDecision::ExecuteOnVpu => {
                    vector_class = Some(VectorExecClass::PoweredOn);
                }
                VectorDecision::StallThenExecute(c) => {
                    stall_cycles = c;
                    vector_class = Some(VectorExecClass::PoweredOn);
                }
                VectorDecision::Devectorize(class) => {
                    vector_class = Some(class);
                    devec_requested = true;
                }
            }
        } else {
            self.gate.on_scalar_inst();
        }
        self.emit_gate_delta(gate_was);
        if self.gate.state() != gate_was {
            self.bump_context(key_cause::GATE);
        }

        // --- Memo probe. The slot handle stays open across
        // materialization so a miss can cache its result without hashing
        // the key a second time. The whole table is bypassed while the
        // stealth defense is enabled: its window transitions and watchdog
        // re-arms bump the context generation at data-dependent cycles,
        // rolling the key faster than any cached line can be reused, so
        // probing and filling there is pure churn.
        let mut slot = None;
        if self.stealth.enabled() {
            if let Some(m) = memo {
                m.note_bypass();
                self.emit_memo_probe(memo_probe::BYPASS);
            }
        } else if let Some(m) = memo {
            let s = m.probe(placed.addr, self.context_gen, tainted);
            if let Some(entry) = s.get() {
                let decided = if devec_requested {
                    ContextId::Devectorize
                } else {
                    patch_ctx.unwrap_or(ContextId::Native)
                };
                // A hit is only usable when its tag matches the context
                // just decided on: a devectorize request must not honor a
                // native-tagged flow (the devectorizer declines loads and
                // stores), nor the other way around.
                if entry.tag == decided.tag() {
                    let translation = UopFlow::Shared(Arc::clone(&entry.translation));
                    let (uops, decoys, native_uops) =
                        (entry.uops, entry.decoy_uops, entry.native_uops);
                    s.hit();
                    self.emit_memo_probe(memo_probe::HIT);
                    if decided == ContextId::Devectorize {
                        self.devec.record(uops as usize, native_uops as usize);
                    }
                    return self.finish_decode(
                        placed,
                        translation,
                        decided,
                        uops,
                        decoys,
                        stall_cycles,
                        vector_class,
                    );
                }
            }
            slot = Some(s);
            self.emit_memo_probe(memo_probe::MISS);
        }

        // --- Materialization (miss, bypass, or no table).
        let native = translate(inst, placed.next_addr());
        let native_len = native.uops.len() as u32;
        let devectorized = if devec_requested {
            self.devec.devectorize(inst, &native)
        } else {
            None
        };
        let (mut translation, mut context) = match devectorized {
            Some(t) => (t, ContextId::Devectorize),
            None => match patch_ctx {
                Some(ctx) => (
                    self.patches
                        .lookup(OpcodeClass::of(inst), ctx)
                        .expect("patch_ctx implies a patch")
                        .clone(),
                    ctx,
                ),
                None => (native, ContextId::Native),
            },
        };

        // Stealth-mode decoy injection (applies on top). Injection disarms
        // the window: a context transition.
        if let Some(t) = self.stealth.on_decode(placed, &translation, tainted) {
            translation = t;
            context = ContextId::Stealth;
            self.bump_context(key_cause::STEALTH_INJECT);
        }

        let uops = translation.uops.len() as u32;
        let decoys = translation.uops.iter().filter(|u| u.is_decoy()).count() as u32;

        // Only a flow headed into the table pays for shared ownership;
        // everything else stays an owned, allocation-free handoff.
        let flow = match slot {
            Some(s) if context != ContextId::Stealth => {
                let shared = Arc::new(translation);
                s.fill(MemoEntry {
                    translation: Arc::clone(&shared),
                    tag: context.tag(),
                    uops,
                    decoy_uops: decoys,
                    native_uops: native_len,
                });
                UopFlow::Shared(shared)
            }
            Some(s) => {
                // Decoy injection happened on a decode the bypass did not
                // catch (defensive: keep non-deterministic flows out of
                // the table).
                s.skip();
                UopFlow::Owned(translation)
            }
            None => UopFlow::Owned(translation),
        };

        self.finish_decode(
            placed,
            flow,
            context,
            uops,
            decoys,
            stall_cycles,
            vector_class,
        )
    }

    /// Shared tail of memoized and full decodes: statistics, event
    /// emission, and the outcome itself.
    #[allow(clippy::too_many_arguments)] // internal seam between the two decode paths
    fn finish_decode(
        &mut self,
        placed: &Placed,
        translation: UopFlow,
        context: ContextId,
        uops: u32,
        decoys: u32,
        stall_cycles: u64,
        vector_class: Option<VectorExecClass>,
    ) -> DecodeOutcome {
        self.stats.decoded_insts += 1;
        self.stats.total_uops += u64::from(uops);
        self.stats.decoy_uops += u64::from(decoys);
        if context != ContextId::Native {
            self.stats.custom_decoded += 1;
        }

        let ev = DecodeEvent {
            addr: placed.addr,
            context: context.bit(),
            uops,
            decoy_uops: decoys,
            stall_cycles,
        };
        self.sink.with(|s| s.on_decode(&ev));
        // Per-µop events are the one per-µop emission in the engine;
        // the attachment test keeps the detached hot path at the usual
        // single Option check per macro-op.
        if self.sink.is_attached() {
            for u in &translation.uops {
                let ev = UopDecodeEvent {
                    context: context.bit(),
                    class: u.kind.coverage_class(),
                };
                self.sink.with(|s| s.on_uop_decode(&ev));
            }
        }
        if context == ContextId::Stealth && decoys > 0 {
            let ev = StealthWindowEvent {
                addr: placed.addr,
                decoy_uops: decoys,
            };
            self.sink.with(|s| s.on_stealth_window(&ev));
        }

        DecodeOutcome {
            translation,
            context,
            stall_cycles,
            vector_class,
        }
    }

    /// Engine-level counters.
    pub fn stats(&self) -> &CsdStats {
        &self.stats
    }

    /// The stealth translator (statistics, armed state).
    pub fn stealth(&self) -> &StealthTranslator {
        &self.stealth
    }

    /// The VPU gate controller (statistics, state).
    pub fn gate(&self) -> &VpuGateController {
        &self.gate
    }

    /// The devectorizer (statistics).
    pub fn devectorizer(&self) -> &Devectorizer {
        &self.devec
    }

    /// The microcode patch table.
    pub fn patches(&self) -> &MsromPatchTable {
        &self.patches
    }
}

impl Default for CsdEngine {
    fn default() -> CsdEngine {
        CsdEngine::new(CsdConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criticality::DevecThresholds;
    use crate::msr::{CTL_DIFT_TRIGGER, CTL_STEALTH, MSR_CSD_CTL, MSR_DATA_RANGE_BASE};
    use mx86_isa::{Gpr, Inst, MemRef, VecOp, Width, Xmm};

    fn load_at(addr: u64) -> Placed {
        Placed {
            addr,
            inst: Inst::Load {
                dst: Gpr::Rax,
                mem: MemRef::base(Gpr::Rbx),
                width: Width::B8,
            },
        }
    }

    #[test]
    fn native_decode_matches_static_translation() {
        let mut e = CsdEngine::default();
        let p = load_at(0x100);
        let out = e.decode(&p, false);
        assert_eq!(out.context, ContextId::Native);
        assert_eq!(*out.translation, translate(&p.inst, p.next_addr()));
    }

    #[test]
    fn msr_writes_enable_stealth_path() {
        let mut e = CsdEngine::default();
        e.write_msr(MSR_DATA_RANGE_BASE, 0x8000);
        e.write_msr(MSR_DATA_RANGE_BASE + 1, 0x8000 + 2 * 64);
        e.write_msr(MSR_CSD_CTL, CTL_STEALTH | CTL_DIFT_TRIGGER);

        let out = e.decode(&load_at(0x100), true);
        assert_eq!(out.context, ContextId::Stealth);
        assert!(out.translation.uops.iter().any(|u| u.is_decoy()));
        assert!(e.stats().decoy_uops > 0);
        assert_eq!(e.stats().custom_decoded, 1);

        // Second tainted decode before the watchdog fires: native again.
        let out2 = e.decode(&load_at(0x100), true);
        assert_eq!(out2.context, ContextId::Native);

        // Watchdog re-arms.
        e.tick(1000);
        let out3 = e.decode(&load_at(0x100), true);
        assert_eq!(out3.context, ContextId::Stealth);
    }

    #[test]
    fn devectorization_kicks_in_after_scalar_phase() {
        let cfg = CsdConfig {
            vpu_policy: VpuPolicy::CsdDevec(DevecThresholds {
                window: 8,
                low: 1,
                high: 16,
            }),
            ..CsdConfig::default()
        };
        let mut e = CsdEngine::new(cfg);
        let scalar = Placed {
            addr: 0,
            inst: Inst::MovRI {
                dst: Gpr::Rax,
                imm: 1,
            },
        };
        for _ in 0..8 {
            e.decode(&scalar, false);
        }
        assert!(!e.vpu_available());

        let v = Placed {
            addr: 0x40,
            inst: Inst::VAlu {
                op: VecOp::PAddB,
                dst: Xmm::new(0),
                src: Xmm::new(1),
            },
        };
        let out = e.decode(&v, false);
        assert_eq!(out.context, ContextId::Devectorize);
        assert_eq!(out.vector_class, Some(VectorExecClass::PowerGated));
        assert!(out.translation.uops.len() > 10);
        assert_eq!(out.stall_cycles, 0);
    }

    #[test]
    fn conventional_policy_stalls_instead_of_devectorizing() {
        let cfg = CsdConfig {
            vpu_policy: VpuPolicy::Conventional {
                idle_gate_cycles: 10,
            },
            ..CsdConfig::default()
        };
        let mut e = CsdEngine::new(cfg);
        e.tick(20); // idle → gated
        let v = Placed {
            addr: 0x40,
            inst: Inst::VAlu {
                op: VecOp::PAddB,
                dst: Xmm::new(0),
                src: Xmm::new(1),
            },
        };
        let out = e.decode(&v, false);
        assert_eq!(out.context, ContextId::Native);
        assert_eq!(out.stall_cycles, 30);
        assert_eq!(out.vector_class, Some(VectorExecClass::PoweredOn));
    }

    #[test]
    fn mcu_patch_replaces_translation_in_custom_mode() {
        let mut e = CsdEngine::default();
        let body = vec![Inst::Nop { len: 1 }, Inst::Nop { len: 1 }];
        let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, body);
        assert!(e
            .apply_microcode_update(&mcu, PrivilegeLevel::Kernel)
            .unwrap());
        assert_eq!(
            e.apply_microcode_update(&mcu, PrivilegeLevel::Kernel),
            Ok(false)
        );

        let p = Placed {
            addr: 0,
            inst: Inst::Nop { len: 1 },
        };
        // Custom mode inactive: native.
        assert_eq!(e.decode(&p, false).translation.uops.len(), 1);
        // Active: patched two-µop flow.
        e.set_custom_mode(Some(0));
        let out = e.decode(&p, false);
        assert_eq!(out.translation.uops.len(), 2);
        assert_eq!(out.context, ContextId::Custom(0));
    }

    #[test]
    fn unprivileged_mcu_is_rejected() {
        let mut e = CsdEngine::default();
        let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, vec![]);
        assert_eq!(
            e.apply_microcode_update(&mcu, PrivilegeLevel::User),
            Err(McuError::NotPrivileged)
        );
        assert_eq!(e.stats().mcu_applied, 0);
    }

    #[test]
    fn event_sink_observes_decode_gate_and_stealth() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        #[derive(Default)]
        struct Counts {
            decodes: AtomicU64,
            gates: AtomicU64,
            stealth: AtomicU64,
            decoys: AtomicU64,
        }
        struct Shared(Arc<Counts>);
        impl csd_telemetry::EventSink for Shared {
            fn on_decode(&mut self, ev: &csd_telemetry::DecodeEvent) {
                self.0.decodes.fetch_add(1, Ordering::Relaxed);
                self.0
                    .decoys
                    .fetch_add(u64::from(ev.decoy_uops), Ordering::Relaxed);
            }
            fn on_gate(&mut self, _ev: &csd_telemetry::GateEvent) {
                self.0.gates.fetch_add(1, Ordering::Relaxed);
            }
            fn on_stealth_window(&mut self, ev: &csd_telemetry::StealthWindowEvent) {
                self.0.stealth.fetch_add(1, Ordering::Relaxed);
                assert!(ev.decoy_uops > 0);
            }
        }

        let counts = Arc::new(Counts::default());
        let cfg = CsdConfig {
            vpu_policy: VpuPolicy::CsdDevec(DevecThresholds {
                window: 8,
                low: 1,
                high: 16,
            }),
            ..CsdConfig::default()
        };
        let mut e = CsdEngine::new(cfg);
        e.set_event_sink(Box::new(Shared(Arc::clone(&counts))));
        e.write_msr(MSR_DATA_RANGE_BASE, 0x8000);
        e.write_msr(MSR_DATA_RANGE_BASE + 1, 0x8000 + 2 * 64);
        e.write_msr(MSR_CSD_CTL, CTL_STEALTH | CTL_DIFT_TRIGGER);

        // Tainted load: decode + stealth window.
        e.decode(&load_at(0x100), true);
        // Scalar phase long enough to gate the VPU: gate event.
        let scalar = Placed {
            addr: 0,
            inst: Inst::MovRI {
                dst: Gpr::Rax,
                imm: 1,
            },
        };
        for _ in 0..8 {
            e.decode(&scalar, false);
        }

        assert_eq!(counts.decodes.load(Ordering::Relaxed), 9);
        assert_eq!(counts.stealth.load(Ordering::Relaxed), 1);
        assert!(
            counts.gates.load(Ordering::Relaxed) >= 1,
            "gating must emit an event"
        );
        assert_eq!(counts.decoys.load(Ordering::Relaxed), e.stats().decoy_uops);
        assert!(e.take_event_sink().is_some());
        // Cloning an engine never drags the sink along.
        e.set_event_sink(Box::new(Shared(Arc::clone(&counts))));
        let cloned = e.clone();
        let before = counts.decodes.load(Ordering::Relaxed);
        let mut cloned = cloned;
        cloned.decode(&load_at(0x200), false);
        assert_eq!(counts.decodes.load(Ordering::Relaxed), before);
    }

    /// Property: any MSR write or (verified) microcode update strictly
    /// increases the context key, for arbitrary MSR indices and values.
    #[test]
    fn context_key_strictly_increases_on_msr_and_mcu() {
        let mut rng = csd_telemetry::SplitMix64::new(0x00C0_FFEE);
        let mut e = CsdEngine::default();
        for i in 0..2_000u64 {
            let before = e.context_key();
            if i % 5 == 4 {
                let mode = rng.next_u8() % 8;
                let mcu = MicrocodeUpdate::new(
                    i as u32 + 1,
                    OpcodeClass::Nop,
                    ContextId::Custom(mode),
                    false,
                    vec![Inst::Nop { len: 1 }],
                );
                e.apply_microcode_update(&mcu, PrivilegeLevel::Kernel)
                    .unwrap();
            } else {
                e.write_msr(rng.next_u32(), rng.next_u64());
            }
            assert!(
                e.context_key() > before,
                "context key did not advance (step {i})"
            );
        }
        // Rejected updates change nothing and must not bump the key.
        let before = e.context_key();
        let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, vec![]);
        assert!(e
            .apply_microcode_update(&mcu, PrivilegeLevel::User)
            .is_err());
        assert_eq!(e.context_key(), before);
    }

    #[test]
    fn custom_mode_and_refresh_bump_context_key() {
        let mut e = CsdEngine::default();
        let k0 = e.context_key();
        e.set_custom_mode(Some(3));
        assert!(e.context_key() > k0);
        let k1 = e.context_key();
        e.refresh();
        assert!(e.context_key() > k1);
    }

    /// The one transition `tick` can cause on a default engine is the
    /// stealth watchdog re-arm; it must bump the key.
    #[test]
    fn watchdog_rearm_bumps_context_key() {
        let mut e = CsdEngine::default();
        e.write_msr(MSR_DATA_RANGE_BASE, 0x8000);
        e.write_msr(MSR_DATA_RANGE_BASE + 1, 0x8000 + 64);
        e.write_msr(MSR_CSD_CTL, CTL_STEALTH | CTL_DIFT_TRIGGER);
        // Injection disarms: bump.
        let k0 = e.context_key();
        assert_eq!(e.decode(&load_at(0x100), true).context, ContextId::Stealth);
        assert!(e.context_key() > k0);
        // Watchdog expiry re-arms: bump.
        let k1 = e.context_key();
        e.tick(10_000);
        assert!(e.context_key() > k1);
    }

    /// Memoization must be invisible: identical outcomes, statistics, and
    /// sink-event counts across a mixed stealth/devec/custom decode
    /// sequence, with hits actually occurring.
    #[test]
    fn memoized_decode_is_transparent() {
        use csd_uops::DecodeMemo;

        fn engine() -> CsdEngine {
            let cfg = CsdConfig {
                vpu_policy: VpuPolicy::CsdDevec(DevecThresholds {
                    window: 8,
                    low: 1,
                    high: 16,
                }),
                ..CsdConfig::default()
            };
            let mut e = CsdEngine::new(cfg);
            e.write_msr(MSR_DATA_RANGE_BASE, 0x8000);
            e.write_msr(MSR_DATA_RANGE_BASE + 1, 0x8000 + 2 * 64);
            e.write_msr(MSR_CSD_CTL, CTL_STEALTH | CTL_DIFT_TRIGGER);
            e
        }
        let mut plain = engine();
        let mut memoized = engine();
        let mut memo = DecodeMemo::new();

        let scalar = Placed {
            addr: 0x10,
            inst: Inst::MovRI {
                dst: Gpr::Rax,
                imm: 1,
            },
        };
        let vector = Placed {
            addr: 0x40,
            inst: Inst::VAlu {
                op: VecOp::PAddB,
                dst: Xmm::new(0),
                src: Xmm::new(1),
            },
        };
        // Loop the same footprint several times: tainted loads (stealth
        // fires on the first, then the window is disarmed), scalars (gate
        // the VPU), vectors (devectorized once gated). Stealth enabled for
        // the first half — every decode bypasses the table — then disabled
        // by MSR write for the second half, where memoization engages.
        for round in 0..12 {
            if round == 6 {
                plain.write_msr(MSR_CSD_CTL, CTL_DIFT_TRIGGER);
                memoized.write_msr(MSR_CSD_CTL, CTL_DIFT_TRIGGER);
            }
            for (p, tainted) in [
                (load_at(0x100), true),
                (scalar, false),
                (scalar, false),
                (vector, false),
                (load_at(0x100), false),
            ] {
                let a = plain.decode(&p, tainted);
                let b = memoized.decode_memo(&p, tainted, Some(&mut memo));
                assert_eq!(a.context, b.context, "round {round} @{:#x}", p.addr);
                assert_eq!(*a.translation, *b.translation);
                assert_eq!(a.stall_cycles, b.stall_cycles);
                assert_eq!(a.vector_class, b.vector_class);
            }
            plain.tick(50);
            memoized.tick(50);
        }
        assert_eq!(plain.stats(), memoized.stats());
        assert_eq!(plain.stealth().stats(), memoized.stealth().stats());
        assert_eq!(
            plain.devectorizer().stats(),
            memoized.devectorizer().stats()
        );
        assert_eq!(plain.gate().stats(), memoized.gate().stats());
        assert_eq!(plain.context_key(), memoized.context_key());
        assert!(memo.stats().hits > 0, "memo never hit: {:?}", memo.stats());
        assert!(memo.stats().bypasses > 0, "stealth decode never bypassed");
    }

    #[test]
    fn stats_count_uops() {
        let mut e = CsdEngine::default();
        e.decode(&load_at(0), false);
        e.decode(&load_at(8), false);
        assert_eq!(e.stats().decoded_insts, 2);
        assert_eq!(e.stats().total_uops, 2);
        assert_eq!(e.stats().custom_decoded, 0);
    }
}
