//! Selective devectorization: scalarizing vector macro-ops (paper §V).
//!
//! When the VPU is power-gated (or still waking), the context-sensitive
//! decoder translates packed vector instructions into equivalent *scalar*
//! µop flows so execution continues on the scalar units. Packed integer
//! adds/subtracts use mask-based SWAR arithmetic over the two 64-bit
//! halves of the 128-bit lane (the paper's Figure 6b optimization: "by
//! employing suitable masks, the computation itself can be optimized in a
//! way that allows us to just perform four adds and accumulate the
//! results"); multiplies and float ops are unrolled lane-wise.
//!
//! Every flow is semantically exact — verified against the VPU's packed
//! semantics by the pipeline's cross-engine tests and by property tests in
//! this crate's test suite.

use csd_uops::{fusion, FOp, FWidth, Translation, UReg, Uop, UopKind};
use mx86_isa::{AluOp, Inst, VecOp, Xmm};

/// High-bit lane mask for a given element width (SWAR carry isolation).
const fn high_mask(elem_bytes: u32) -> u64 {
    match elem_bytes {
        1 => 0x8080_8080_8080_8080,
        2 => 0x8000_8000_8000_8000,
        4 => 0x8000_0000_8000_0000,
        _ => 0x8000_0000_0000_0000,
    }
}

/// Full lane mask for a given element width.
const fn lane_mask(elem_bytes: u32) -> u64 {
    match elem_bytes {
        1 => 0xFF,
        2 => 0xFFFF,
        4 => 0xFFFF_FFFF,
        _ => u64::MAX,
    }
}

// All lane arithmetic suppresses flag writes: the vector macro-ops being
// emulated never touch flags, so the scalar stand-in flow must not
// either (a `cmp; paddb; jcc` sequence must branch identically with the
// VPU gated or powered).
fn alu(op: AluOp, dst: UReg, a: UReg, b: UReg) -> Uop {
    Uop::new(UopKind::Alu(op))
        .dst(dst)
        .src1(a)
        .src2(b)
        .suppress_flags()
}

fn alui(op: AluOp, dst: UReg, a: UReg, imm: u64) -> Uop {
    Uop::new(UopKind::Alu(op))
        .dst(dst)
        .src1(a)
        .imm(imm as i64)
        .suppress_flags()
}

/// Statistics for the devectorizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevecStats {
    /// Vector macro-ops scalarized.
    pub devectorized_insts: u64,
    /// Extra µops relative to the native (vector) translation.
    pub extra_uops: u64,
}

impl csd_telemetry::ToJson for DevecStats {
    fn to_json(&self) -> csd_telemetry::Json {
        csd_telemetry::Json::obj([
            (
                "devectorized_insts",
                csd_telemetry::Json::from(self.devectorized_insts),
            ),
            ("extra_uops", csd_telemetry::Json::from(self.extra_uops)),
        ])
    }
}

/// The devectorizing custom decoder.
///
/// Stateless except for statistics; the decision *when* to devectorize
/// belongs to the [`crate::VpuGateController`].
#[derive(Debug, Clone, Default)]
pub struct Devectorizer {
    stats: DevecStats,
}

impl Devectorizer {
    /// A fresh devectorizer.
    pub fn new() -> Devectorizer {
        Devectorizer::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DevecStats {
        &self.stats
    }

    /// Accounts one devectorized macro-op whose scalar flow has
    /// `scalar_uops` µops replacing a `native_uops`-µop native translation.
    /// Split out from [`Devectorizer::devectorize`] so a memoized decode
    /// can replay the accounting without rebuilding the flow.
    pub(crate) fn record(&mut self, scalar_uops: usize, native_uops: usize) {
        self.stats.devectorized_insts += 1;
        self.stats.extra_uops += scalar_uops.saturating_sub(native_uops) as u64;
    }

    /// The criticality weight of a vector macro-op: one for simple
    /// instructions, more for those with a higher scalarized µop count
    /// (paper Figure 5).
    pub fn weight(inst: &Inst) -> u32 {
        match inst {
            Inst::VAlu { op, .. } | Inst::VAluLoad { op, .. } => {
                1 + (Self::scalar_uop_estimate(*op) / 16)
            }
            _ if inst.is_vector() => 1,
            _ => 0,
        }
    }

    fn scalar_uop_estimate(op: VecOp) -> u32 {
        match op {
            VecOp::PAnd | VecOp::POr | VecOp::PXor | VecOp::PAddQ => 8,
            VecOp::PAddB | VecOp::PAddW | VecOp::PAddD => 18,
            VecOp::PSubB | VecOp::PSubD => 20,
            VecOp::AddPd | VecOp::MulPd => 8,
            VecOp::AddPs | VecOp::MulPs | VecOp::SubPs => 40,
            VecOp::PMullD => 42,
            VecOp::PMullW => 72,
        }
    }

    /// Scalarizes a vector macro-op, or returns `None` for instructions
    /// that need no devectorization (loads/stores/GPR moves execute on the
    /// LSU and scalar ports regardless of VPU power state).
    pub fn devectorize(&mut self, inst: &Inst, native: &Translation) -> Option<Translation> {
        let uops = match *inst {
            Inst::VAlu { op, dst, src } => self.valu_flow(op, dst, VSrc::Xmm(src), None),
            Inst::VAluLoad { op, dst, mem } => {
                let vt0 = UReg::VTmp(0);
                let ld = Uop::new(UopKind::VLd)
                    .dst(vt0)
                    .mem(csd_uops::UMem::from_mem(mem, mx86_isa::Width::B16));
                self.valu_flow(op, dst, VSrc::VTmp(0), Some(ld))
            }
            Inst::VMovRR { dst, src } => {
                let mut v = Vec::with_capacity(4);
                extract_pair(&mut v, UReg::Xmm(src), UReg::Tmp(0), UReg::Tmp(1));
                insert_pair(&mut v, dst, UReg::Tmp(0), UReg::Tmp(1));
                v
            }
            _ => return None,
        };
        debug_assert!(uops.iter().all(|u| u.validate().is_ok()));

        self.record(uops.len(), native.uops.len());
        let n = uops.len();
        Some(Translation {
            static_uops: n,
            cacheable: fusion::fused_len(&uops) <= 6,
            from_msrom: n > csd_uops::MSROM_THRESHOLD,
            uops,
        })
    }

    fn valu_flow(&self, op: VecOp, dst: Xmm, src: VSrc, prefix: Option<Uop>) -> Vec<Uop> {
        let (x0, x1) = (UReg::Tmp(0), UReg::Tmp(1));
        let (y0, y1) = (UReg::Tmp(2), UReg::Tmp(3));
        let mut v = Vec::with_capacity(24);
        if let Some(p) = prefix {
            v.push(p);
        }
        extract_pair(&mut v, UReg::Xmm(dst), x0, x1);
        let src_reg = match src {
            VSrc::Xmm(x) => UReg::Xmm(x),
            VSrc::VTmp(i) => UReg::VTmp(i),
        };
        extract_pair(&mut v, src_reg, y0, y1);

        for (x, y) in [(x0, y0), (x1, y1)] {
            emit_half(&mut v, op, x, y);
        }
        insert_pair(&mut v, dst, x0, x1);
        v
    }
}

enum VSrc {
    Xmm(Xmm),
    VTmp(u8),
}

fn extract_pair(v: &mut Vec<Uop>, src: UReg, lo: UReg, hi: UReg) {
    v.push(Uop::new(UopKind::VExtractQ).dst(lo).src1(src).imm(0));
    v.push(Uop::new(UopKind::VExtractQ).dst(hi).src1(src).imm(1));
}

fn insert_pair(v: &mut Vec<Uop>, dst: Xmm, lo: UReg, hi: UReg) {
    v.push(
        Uop::new(UopKind::VInsertQ)
            .dst(UReg::Xmm(dst))
            .src1(lo)
            .imm(0),
    );
    v.push(
        Uop::new(UopKind::VInsertQ)
            .dst(UReg::Xmm(dst))
            .src1(hi)
            .imm(1),
    );
}

/// Emits the scalar computation `x ← x op y` for one 64-bit half.
fn emit_half(v: &mut Vec<Uop>, op: VecOp, x: UReg, y: UReg) {
    let (t4, t5, t6) = (UReg::Tmp(4), UReg::Tmp(5), UReg::Tmp(6));
    let w = op.element_bytes();
    match op {
        VecOp::PAnd => v.push(alu(AluOp::And, x, x, y)),
        VecOp::POr => v.push(alu(AluOp::Or, x, x, y)),
        VecOp::PXor => v.push(alu(AluOp::Xor, x, x, y)),
        VecOp::PAddQ => v.push(alu(AluOp::Add, x, x, y)),
        VecOp::PAddB | VecOp::PAddW | VecOp::PAddD => {
            // SWAR add: r = ((x & ~H) + (y & ~H)) ^ ((x ^ y) & H)
            let h = high_mask(w);
            v.push(alui(AluOp::And, t4, x, !h));
            v.push(alui(AluOp::And, t5, y, !h));
            v.push(alu(AluOp::Add, t4, t4, t5));
            v.push(alu(AluOp::Xor, t5, x, y));
            v.push(alui(AluOp::And, t5, t5, h));
            v.push(alu(AluOp::Xor, x, t4, t5));
        }
        VecOp::PSubB | VecOp::PSubD => {
            // SWAR sub: r = ((x | H) - (y & ~H)) ^ ((x ^ ~y) & H)
            let h = high_mask(w);
            v.push(alui(AluOp::Or, t4, x, h));
            v.push(alui(AluOp::And, t5, y, !h));
            v.push(alu(AluOp::Sub, t4, t4, t5));
            v.push(alu(AluOp::Xor, t5, x, y));
            v.push(alui(AluOp::Xor, t5, t5, u64::MAX));
            v.push(alui(AluOp::And, t5, t5, h));
            v.push(alu(AluOp::Xor, x, t4, t5));
        }
        VecOp::PMullW | VecOp::PMullD => {
            emit_lanewise(v, x, y, t4, t5, t6, w, |vv, a, b| {
                vv.push(
                    Uop::new(UopKind::Mul)
                        .dst(a)
                        .src1(a)
                        .src2(b)
                        .suppress_flags(),
                );
            });
        }
        VecOp::AddPs | VecOp::SubPs | VecOp::MulPs => {
            let f = match op {
                VecOp::AddPs => FOp::Add,
                VecOp::SubPs => FOp::Sub,
                _ => FOp::Mul,
            };
            emit_lanewise(v, x, y, t4, t5, t6, 4, |vv, a, b| {
                vv.push(Uop::new(UopKind::FAlu(f, FWidth::S)).dst(a).src1(a).src2(b));
            });
        }
        VecOp::AddPd | VecOp::MulPd => {
            let f = if op == VecOp::AddPd {
                FOp::Add
            } else {
                FOp::Mul
            };
            v.push(Uop::new(UopKind::FAlu(f, FWidth::D)).dst(x).src1(x).src2(y));
        }
    }
}

/// Unrolled lane-wise computation over one 64-bit half: extract each lane
/// of `x` and `y` by shift+mask, apply `op_emit`, reassemble into `x`.
#[allow(clippy::too_many_arguments)] // scratch registers are individual by design
fn emit_lanewise(
    v: &mut Vec<Uop>,
    x: UReg,
    y: UReg,
    t4: UReg,
    t5: UReg,
    acc: UReg,
    elem_bytes: u32,
    op_emit: impl Fn(&mut Vec<Uop>, UReg, UReg),
) {
    let lanes = 8 / elem_bytes;
    let mask = lane_mask(elem_bytes);
    v.push(Uop::new(UopKind::MovImm).dst(acc).imm(0));
    for lane in 0..lanes {
        let sh = (lane * elem_bytes * 8) as u64;
        v.push(alui(AluOp::Shr, t4, x, sh));
        v.push(alui(AluOp::And, t4, t4, mask));
        v.push(alui(AluOp::Shr, t5, y, sh));
        v.push(alui(AluOp::And, t5, t5, mask));
        op_emit(v, t4, t5);
        v.push(alui(AluOp::And, t4, t4, mask));
        v.push(alui(AluOp::Shl, t4, t4, sh));
        v.push(alu(AluOp::Or, acc, acc, t4));
    }
    v.push(Uop::new(UopKind::Mov).dst(x).src1(acc));
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_uops::translate;
    use mx86_isa::Inst;

    fn devec(op: VecOp) -> Translation {
        let inst = Inst::VAlu {
            op,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        };
        let native = translate(&inst, 0);
        Devectorizer::new().devectorize(&inst, &native).unwrap()
    }

    /// Interprets the scalar flow on u64 temp/xmm-half state — a tiny
    /// reference executor for exactly the µop subset devectorization emits.
    fn run_flow(uops: &[Uop], dst: (u64, u64), src: (u64, u64)) -> (u64, u64) {
        let mut tmps = [0u64; 8];
        let mut xmm0 = dst;
        let xmm1 = src;
        let read = |tmps: &[u64; 8], r: UReg| -> u64 {
            match r {
                UReg::Tmp(i) => tmps[i as usize],
                other => panic!("unexpected register {other}"),
            }
        };
        for u in uops {
            match u.kind {
                UopKind::VExtractQ => {
                    let half = u.imm.unwrap();
                    let v = match u.src1.unwrap() {
                        UReg::Xmm(x) if x.index() == 0 => {
                            if half == 0 {
                                xmm0.0
                            } else {
                                xmm0.1
                            }
                        }
                        UReg::Xmm(x) if x.index() == 1 => {
                            if half == 0 {
                                xmm1.0
                            } else {
                                xmm1.1
                            }
                        }
                        other => panic!("unexpected src {other}"),
                    };
                    if let UReg::Tmp(i) = u.dst.unwrap() {
                        tmps[i as usize] = v;
                    }
                }
                UopKind::VInsertQ => {
                    let v = read(&tmps, u.src1.unwrap());
                    if u.imm.unwrap() == 0 {
                        xmm0.0 = v;
                    } else {
                        xmm0.1 = v;
                    }
                }
                UopKind::MovImm => {
                    if let UReg::Tmp(i) = u.dst.unwrap() {
                        tmps[i as usize] = u.imm.unwrap() as u64;
                    }
                }
                UopKind::Mov => {
                    let v = read(&tmps, u.src1.unwrap());
                    if let UReg::Tmp(i) = u.dst.unwrap() {
                        tmps[i as usize] = v;
                    }
                }
                UopKind::Alu(op) => {
                    let a = read(&tmps, u.src1.unwrap());
                    let b = match u.src2 {
                        Some(r) => read(&tmps, r),
                        None => u.imm.unwrap() as u64,
                    };
                    let r = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Shl => a.wrapping_shl(b as u32),
                        AluOp::Shr => a.wrapping_shr(b as u32),
                        AluOp::Sar => (a as i64).wrapping_shr(b as u32) as u64,
                    };
                    if let Some(UReg::Tmp(i)) = u.dst {
                        tmps[i as usize] = r;
                    }
                }
                UopKind::Mul => {
                    let a = read(&tmps, u.src1.unwrap());
                    let b = read(&tmps, u.src2.unwrap());
                    if let UReg::Tmp(i) = u.dst.unwrap() {
                        tmps[i as usize] = a.wrapping_mul(b);
                    }
                }
                UopKind::FAlu(op, w) => {
                    let a = read(&tmps, u.src1.unwrap());
                    let b = read(&tmps, u.src2.unwrap());
                    let r = match w {
                        FWidth::S => {
                            let (fa, fb) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
                            let fr = match op {
                                FOp::Add => fa + fb,
                                FOp::Sub => fa - fb,
                                FOp::Mul => fa * fb,
                            };
                            u64::from(fr.to_bits())
                        }
                        FWidth::D => {
                            let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                            let fr = match op {
                                FOp::Add => fa + fb,
                                FOp::Sub => fa - fb,
                                FOp::Mul => fa * fb,
                            };
                            fr.to_bits()
                        }
                    };
                    if let UReg::Tmp(i) = u.dst.unwrap() {
                        tmps[i as usize] = r;
                    }
                }
                other => panic!("unexpected µop kind {other:?}"),
            }
        }
        xmm0
    }

    /// Lane-wise reference for packed integer ops.
    fn ref_lanes(op: VecOp, x: u64, y: u64) -> u64 {
        let w = op.element_bytes() as u64;
        let lanes = 8 / w;
        let mask = lane_mask(op.element_bytes());
        let mut r = 0u64;
        for l in 0..lanes {
            let sh = l * w * 8;
            let a = (x >> sh) & mask;
            let b = (y >> sh) & mask;
            let v = match op {
                VecOp::PAddB | VecOp::PAddW | VecOp::PAddD | VecOp::PAddQ => {
                    a.wrapping_add(b) & mask
                }
                VecOp::PSubB | VecOp::PSubD => a.wrapping_sub(b) & mask,
                VecOp::PMullW | VecOp::PMullD => a.wrapping_mul(b) & mask,
                VecOp::PAnd => a & b,
                VecOp::POr => a | b,
                VecOp::PXor => a ^ b,
                _ => unreachable!(),
            };
            r |= v << sh;
        }
        r
    }

    fn check_int_op(op: VecOp, x: (u64, u64), y: (u64, u64)) {
        let t = devec(op);
        let got = run_flow(&t.uops, x, y);
        let want = (ref_lanes(op, x.0, y.0), ref_lanes(op, x.1, y.1));
        assert_eq!(got, want, "{op} on {x:x?} {y:x?}");
    }

    #[test]
    fn packed_int_ops_match_lanewise_reference() {
        let samples = [
            (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
            (0xFFFF_FFFF_FFFF_FFFF, 0x0101_0101_0101_0101),
            (0x0000_0000_0000_0000, 0x8080_8080_8080_8080),
            (0x7F7F_7F7F_7F7F_7F7F, 0x0202_0202_0202_0202),
        ];
        let ops = [
            VecOp::PAddB,
            VecOp::PAddW,
            VecOp::PAddD,
            VecOp::PAddQ,
            VecOp::PSubB,
            VecOp::PSubD,
            VecOp::PMullW,
            VecOp::PMullD,
            VecOp::PAnd,
            VecOp::POr,
            VecOp::PXor,
        ];
        for op in ops {
            for &(a, b) in &samples {
                check_int_op(op, (a, b), (b, a));
            }
        }
    }

    #[test]
    fn float_ops_match_scalar_reference() {
        let xs = [1.5f32, -2.25, 0.0, 1024.5];
        let ys = [0.5f32, 3.75, -1.0, 2.0];
        let pack = |v: &[f32]| -> (u64, u64) {
            let b: Vec<u64> = v.iter().map(|f| u64::from(f.to_bits())).collect();
            (b[0] | (b[1] << 32), b[2] | (b[3] << 32))
        };
        for (op, f) in [
            (
                VecOp::AddPs,
                (|a: f32, b: f32| a + b) as fn(f32, f32) -> f32,
            ),
            (VecOp::SubPs, |a, b| a - b),
            (VecOp::MulPs, |a, b| a * b),
        ] {
            let t = devec(op);
            let got = run_flow(&t.uops, pack(&xs), pack(&ys));
            let want: Vec<f32> = xs.iter().zip(&ys).map(|(&a, &b)| f(a, b)).collect();
            assert_eq!(got, pack(&want), "{op}");
        }
    }

    #[test]
    fn double_ops_match_scalar_reference() {
        let x = (2.5f64.to_bits(), (-4.0f64).to_bits());
        let y = (0.25f64.to_bits(), 8.0f64.to_bits());
        let t = devec(VecOp::MulPd);
        let got = run_flow(&t.uops, x, y);
        assert_eq!(got, ((2.5f64 * 0.25).to_bits(), (-4.0f64 * 8.0).to_bits()));
    }

    #[test]
    fn devec_flows_use_no_vector_exec_uops() {
        for op in [VecOp::PAddB, VecOp::PMullW, VecOp::AddPs, VecOp::PXor] {
            let t = devec(op);
            assert!(
                t.uops.iter().all(|u| !u.kind.is_vector_exec()),
                "{op}: scalarized flow must not need the VPU"
            );
        }
    }

    #[test]
    fn weight_scales_with_complexity() {
        let simple = Inst::VAlu {
            op: VecOp::PXor,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        };
        let complex = Inst::VAlu {
            op: VecOp::PMullW,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        };
        assert!(Devectorizer::weight(&complex) > Devectorizer::weight(&simple));
        let scalar = Inst::MovRI {
            dst: mx86_isa::Gpr::Rax,
            imm: 0,
        };
        assert_eq!(Devectorizer::weight(&scalar), 0);
    }

    #[test]
    fn loads_and_stores_pass_through() {
        let mut d = Devectorizer::new();
        let ld = Inst::VLoad {
            dst: Xmm::new(0),
            mem: mx86_isa::MemRef::abs(0x100),
        };
        let native = translate(&ld, 0);
        assert!(d.devectorize(&ld, &native).is_none());
    }

    #[test]
    fn stats_track_expansion() {
        let mut d = Devectorizer::new();
        let inst = Inst::VAlu {
            op: VecOp::PAddB,
            dst: Xmm::new(0),
            src: Xmm::new(1),
        };
        let native = translate(&inst, 0);
        let t = d.devectorize(&inst, &native).unwrap();
        assert_eq!(d.stats().devectorized_insts, 1);
        assert_eq!(d.stats().extra_uops, (t.uops.len() - 1) as u64);
        assert!(t.uops.len() >= 18, "paddb scalarization is a long flow");
    }
}
