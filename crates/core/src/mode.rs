//! Translation contexts (modes) and micro-op-cache context tags.

use std::fmt;

/// A translation context identifier.
///
/// The paper extends the micro-op cache's tag bits with *context bits* —
/// one per custom translation mode — associating each cached way with the
/// decoder that produced it. A cached translation may only be streamed when
/// the front end is in the same context that created it; otherwise the
/// access is a (context) miss and the legacy pipeline re-translates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContextId {
    /// Native, unmodified translation (the four legacy decoders).
    #[default]
    Native,
    /// Stealth-mode translation (decoy micro-op injection).
    Stealth,
    /// Selective devectorization (vector ops scalarized).
    Devectorize,
    /// A custom translation installed via microcode update.
    Custom(u8),
}

impl ContextId {
    /// The context's bit position in the micro-op cache tag extension.
    pub const fn bit(self) -> u8 {
        match self {
            ContextId::Native => 0,
            ContextId::Stealth => 1,
            ContextId::Devectorize => 2,
            ContextId::Custom(n) => 3 + (n % 5),
        }
    }

    /// An injective numeric discriminant, unlike [`ContextId::bit`] which
    /// folds custom modes onto five tag bits. Used as the memoization tag,
    /// where two distinct custom modes must never compare equal.
    pub const fn tag(self) -> u64 {
        match self {
            ContextId::Native => 0,
            ContextId::Stealth => 1,
            ContextId::Devectorize => 2,
            ContextId::Custom(n) => 3 + n as u64,
        }
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextId::Native => write!(f, "native"),
            ContextId::Stealth => write!(f, "stealth"),
            ContextId::Devectorize => write!(f, "devec"),
            ContextId::Custom(n) => write!(f, "custom{n}"),
        }
    }
}

/// How a vector macro-op was ultimately executed, for the paper's Figure 16
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorExecClass {
    /// Executed on the powered-on VPU.
    PoweredOn,
    /// Devectorized while the VPU was powering on (wake in progress).
    PoweringOn,
    /// Devectorized while the VPU was power-gated.
    PowerGated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_bits_are_distinct_for_base_modes() {
        let bits = [
            ContextId::Native.bit(),
            ContextId::Stealth.bit(),
            ContextId::Devectorize.bit(),
            ContextId::Custom(0).bit(),
        ];
        let mut uniq = bits.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), bits.len());
    }

    #[test]
    fn display() {
        assert_eq!(ContextId::Stealth.to_string(), "stealth");
        assert_eq!(ContextId::Custom(2).to_string(), "custom2");
    }
}
