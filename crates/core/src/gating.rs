//! VPU power-gating controller and the three policies of the paper's
//! evaluation (Figures 12–16): Always-On, conventional idle-based gating,
//! and CSD-driven selective devectorization.

use crate::criticality::{CriticalityPredictor, CriticalitySignal, DevecThresholds};
use crate::mode::VectorExecClass;
use csd_power::GatingParams;
use csd_telemetry::{Json, ToJson};

/// The gating policy in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpuPolicy {
    /// Never gate: every vector instruction executes on the (always
    /// powered) VPU.
    AlwaysOn,
    /// Conventional demand-driven gating: gate after the VPU has been idle
    /// for `idle_gate_cycles`; on vector demand while gated, stall the
    /// pipeline for the wake latency and then execute on the VPU.
    Conventional {
        /// Idle cycles before the unit is gated.
        idle_gate_cycles: u64,
    },
    /// CSD selective devectorization: the criticality predictor gates and
    /// wakes the unit; vector instructions arriving while the unit is
    /// gated or waking are scalarized by the decoder instead of stalling.
    CsdDevec(DevecThresholds),
}

impl Default for VpuPolicy {
    fn default() -> VpuPolicy {
        VpuPolicy::CsdDevec(DevecThresholds::default())
    }
}

/// Power state of the VPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpuState {
    /// Powered and usable.
    On,
    /// Power-gated.
    Gated,
    /// Waking: usable after the counter reaches zero.
    Waking {
        /// Remaining wake cycles.
        remaining: u64,
    },
}

/// What the decoder should do with a vector instruction right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorDecision {
    /// Execute natively on the VPU.
    ExecuteOnVpu,
    /// Stall issue for the given cycles (conventional wake), then execute
    /// on the VPU.
    StallThenExecute(u64),
    /// Translate to scalar µops (CSD devectorization); the class records
    /// why, for the Figure 16 breakdown.
    Devectorize(VectorExecClass),
}

/// Cycle- and instruction-level statistics for Figures 13–16.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Cycles spent fully gated.
    pub gated_cycles: u64,
    /// Cycles spent waking.
    pub waking_cycles: u64,
    /// Cycles spent powered on.
    pub on_cycles: u64,
    /// Gate → (wake →) on round trips (energy overhead events).
    pub gate_transitions: u64,
    /// Cycles the pipeline stalled waiting for a conventional wake.
    pub wake_stall_cycles: u64,
    /// Vector instructions executed on the powered VPU.
    pub vec_on: u64,
    /// Vector instructions devectorized during wake.
    pub vec_powering_on: u64,
    /// Vector instructions devectorized while gated.
    pub vec_gated: u64,
}

impl GateStats {
    /// Total cycles observed.
    pub fn total_cycles(&self) -> u64 {
        self.gated_cycles + self.waking_cycles + self.on_cycles
    }

    /// Fraction of time the unit was gated (paper Figure 15).
    pub fn gated_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            return 0.0;
        }
        self.gated_cycles as f64 / t as f64
    }

    /// Total vector instructions classified.
    pub fn vec_total(&self) -> u64 {
        self.vec_on + self.vec_powering_on + self.vec_gated
    }
}

impl ToJson for GateStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("gated_cycles", Json::from(self.gated_cycles)),
            ("waking_cycles", Json::from(self.waking_cycles)),
            ("on_cycles", Json::from(self.on_cycles)),
            ("gate_transitions", Json::from(self.gate_transitions)),
            ("wake_stall_cycles", Json::from(self.wake_stall_cycles)),
            ("vec_on", Json::from(self.vec_on)),
            ("vec_powering_on", Json::from(self.vec_powering_on)),
            ("vec_gated", Json::from(self.vec_gated)),
            ("gated_fraction", Json::from(self.gated_fraction())),
        ])
    }
}

/// The VPU power-gate controller.
///
/// Drive it with [`VpuGateController::tick`] once per simulated cycle (or
/// in batches) and [`VpuGateController::on_vector_inst`] at each decoded
/// vector macro-op; scalar macro-ops go through
/// [`VpuGateController::on_scalar_inst`] so the criticality window and the
/// conventional idle counter advance.
#[derive(Debug, Clone)]
pub struct VpuGateController {
    policy: VpuPolicy,
    state: VpuState,
    predictor: Option<CriticalityPredictor>,
    idle_cycles: u64,
    gating: GatingParams,
    stats: GateStats,
}

impl VpuGateController {
    /// A controller with the given policy and gating-cost parameters.
    pub fn new(policy: VpuPolicy, gating: GatingParams) -> VpuGateController {
        let predictor = match policy {
            VpuPolicy::CsdDevec(t) => Some(CriticalityPredictor::new(t)),
            _ => None,
        };
        VpuGateController {
            policy,
            state: VpuState::On,
            predictor,
            idle_cycles: 0,
            gating,
            stats: GateStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> VpuPolicy {
        self.policy
    }

    /// Replaces the policy, restarting the controller (state, predictor,
    /// and statistics) under the same gating-cost parameters — exactly a
    /// fresh [`VpuGateController::new`] with the new policy.
    pub fn set_policy(&mut self, policy: VpuPolicy) {
        *self = VpuGateController::new(policy, self.gating);
    }

    /// Current power state.
    pub fn state(&self) -> VpuState {
        self.state
    }

    /// Whether the VPU can execute a vector µop this cycle.
    pub fn vpu_available(&self) -> bool {
        self.state == VpuState::On
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &GateStats {
        &self.stats
    }

    /// Advances `n` cycles: accounts state residency, counts down wakes,
    /// and applies conventional idle-gating decisions.
    pub fn tick(&mut self, n: u64) {
        let mut left = n;
        while left > 0 {
            match self.state {
                VpuState::On => {
                    // Conventional policy gates on idleness.
                    if let VpuPolicy::Conventional { idle_gate_cycles } = self.policy {
                        let until_gate = idle_gate_cycles.saturating_sub(self.idle_cycles);
                        if until_gate == 0 {
                            self.state = VpuState::Gated;
                            continue;
                        }
                        let step = left.min(until_gate);
                        self.stats.on_cycles += step;
                        self.idle_cycles += step;
                        left -= step;
                    } else {
                        self.stats.on_cycles += left;
                        left = 0;
                    }
                }
                VpuState::Gated => {
                    self.stats.gated_cycles += left;
                    left = 0;
                }
                VpuState::Waking { remaining } => {
                    let step = left.min(remaining);
                    self.stats.waking_cycles += step;
                    left -= step;
                    let remaining = remaining - step;
                    if remaining == 0 {
                        self.state = VpuState::On;
                        self.stats.gate_transitions += 1;
                        self.idle_cycles = 0;
                    } else {
                        self.state = VpuState::Waking { remaining };
                    }
                }
            }
        }
    }

    /// Records a decoded scalar instruction (feeds the criticality window).
    pub fn on_scalar_inst(&mut self) {
        if let Some(p) = &mut self.predictor {
            let signal = p.observe(0);
            self.apply_signal(signal);
        }
    }

    /// Records a decoded vector instruction of the given criticality
    /// `weight` and returns how it must execute.
    pub fn on_vector_inst(&mut self, weight: u32) -> VectorDecision {
        self.idle_cycles = 0;
        match self.policy {
            VpuPolicy::AlwaysOn => {
                self.stats.vec_on += 1;
                VectorDecision::ExecuteOnVpu
            }
            VpuPolicy::Conventional { .. } => match self.state {
                VpuState::On => {
                    self.stats.vec_on += 1;
                    VectorDecision::ExecuteOnVpu
                }
                VpuState::Gated => {
                    // Demand wake: stall for the full latency.
                    self.state = VpuState::Waking {
                        remaining: self.gating.wake_cycles,
                    };
                    self.stats.vec_on += 1;
                    self.stats.wake_stall_cycles += self.gating.wake_cycles;
                    VectorDecision::StallThenExecute(self.gating.wake_cycles)
                }
                VpuState::Waking { remaining } => {
                    self.stats.vec_on += 1;
                    self.stats.wake_stall_cycles += remaining;
                    VectorDecision::StallThenExecute(remaining)
                }
            },
            VpuPolicy::CsdDevec(_) => {
                let signal = self
                    .predictor
                    .as_mut()
                    .expect("CsdDevec controller always has a predictor")
                    .observe(weight);
                self.apply_signal(signal);
                match self.state {
                    VpuState::On => {
                        self.stats.vec_on += 1;
                        VectorDecision::ExecuteOnVpu
                    }
                    VpuState::Waking { .. } => {
                        self.stats.vec_powering_on += 1;
                        VectorDecision::Devectorize(VectorExecClass::PoweringOn)
                    }
                    VpuState::Gated => {
                        self.stats.vec_gated += 1;
                        VectorDecision::Devectorize(VectorExecClass::PowerGated)
                    }
                }
            }
        }
    }

    fn apply_signal(&mut self, signal: CriticalitySignal) {
        match signal {
            CriticalitySignal::None => {}
            CriticalitySignal::Gate => {
                if self.state == VpuState::On {
                    self.state = VpuState::Gated;
                }
            }
            CriticalitySignal::Wake => {
                if self.state == VpuState::Gated {
                    self.state = VpuState::Waking {
                        remaining: self.gating.wake_cycles,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csd_ctl(window: u32, low: u32, high: u32) -> VpuGateController {
        VpuGateController::new(
            VpuPolicy::CsdDevec(DevecThresholds { window, low, high }),
            GatingParams::default(),
        )
    }

    #[test]
    fn always_on_never_gates() {
        let mut c = VpuGateController::new(VpuPolicy::AlwaysOn, GatingParams::default());
        c.tick(1000);
        assert_eq!(c.on_vector_inst(1), VectorDecision::ExecuteOnVpu);
        assert_eq!(c.stats().gated_cycles, 0);
        assert!(c.vpu_available());
    }

    #[test]
    fn conventional_gates_after_idle_and_stalls_on_demand() {
        let mut c = VpuGateController::new(
            VpuPolicy::Conventional {
                idle_gate_cycles: 100,
            },
            GatingParams::default(),
        );
        c.tick(99);
        assert_eq!(c.state(), VpuState::On);
        c.tick(50);
        assert_eq!(c.state(), VpuState::Gated);
        assert_eq!(c.stats().gated_cycles, 49);

        let d = c.on_vector_inst(1);
        assert_eq!(d, VectorDecision::StallThenExecute(30));
        c.tick(30);
        assert_eq!(c.state(), VpuState::On);
        assert_eq!(c.stats().gate_transitions, 1);
        assert_eq!(c.on_vector_inst(1), VectorDecision::ExecuteOnVpu);
    }

    #[test]
    fn vector_use_resets_conventional_idle_counter() {
        let mut c = VpuGateController::new(
            VpuPolicy::Conventional {
                idle_gate_cycles: 100,
            },
            GatingParams::default(),
        );
        c.tick(90);
        c.on_vector_inst(1);
        c.tick(90);
        assert_eq!(c.state(), VpuState::On, "idle counter was reset");
    }

    #[test]
    fn csd_gates_on_scalar_phase_and_devectorizes() {
        let mut c = csd_ctl(8, 1, 16);
        for _ in 0..8 {
            c.on_scalar_inst();
        }
        assert_eq!(c.state(), VpuState::Gated);
        let d = c.on_vector_inst(1);
        assert_eq!(d, VectorDecision::Devectorize(VectorExecClass::PowerGated));
        assert_eq!(c.stats().vec_gated, 1);
        assert_eq!(c.stats().wake_stall_cycles, 0, "CSD never stalls");
    }

    #[test]
    fn csd_wakes_on_burst_and_devectorizes_while_waking() {
        let mut c = csd_ctl(64, 1, 4);
        for _ in 0..64 {
            c.on_scalar_inst();
        }
        assert_eq!(c.state(), VpuState::Gated);
        // Burst of vector weight crosses high=4 on the 4th inst.
        for _ in 0..3 {
            let d = c.on_vector_inst(1);
            assert!(matches!(
                d,
                VectorDecision::Devectorize(VectorExecClass::PowerGated)
            ));
        }
        let d = c.on_vector_inst(1);
        assert_eq!(d, VectorDecision::Devectorize(VectorExecClass::PoweringOn));
        assert!(matches!(c.state(), VpuState::Waking { .. }));
        c.tick(30);
        assert_eq!(c.state(), VpuState::On);
        assert_eq!(c.on_vector_inst(1), VectorDecision::ExecuteOnVpu);
        assert_eq!(c.stats().vec_powering_on, 1);
    }

    #[test]
    fn stats_residency_partitions_time() {
        let mut c = csd_ctl(4, 0, 8);
        for _ in 0..4 {
            c.on_scalar_inst();
        }
        c.tick(100);
        let s = c.stats();
        assert_eq!(s.total_cycles(), 100);
        assert_eq!(s.gated_cycles, 100);
        assert!((s.gated_fraction() - 1.0).abs() < 1e-12);
    }
}
