//! The unit criticality predictor (paper Figure 5).
//!
//! "We employ nothing more than a simple counter that tracks a window of
//! instructions, counting up one for simple vector instructions and more
//! than one for more complex vector instructions (higher micro-op count).
//! When it goes below a threshold, it turns on devectorization and powers
//! off the entire vector unit, and when it goes above a (higher) threshold,
//! it turns the vector unit back on."

/// Thresholds and window length of the criticality counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevecThresholds {
    /// Window length in decoded instructions.
    pub window: u32,
    /// Gate the VPU when the windowed vector weight ends at or below this.
    pub low: u32,
    /// Wake the VPU as soon as the running weight reaches this.
    pub high: u32,
}

impl Default for DevecThresholds {
    fn default() -> DevecThresholds {
        DevecThresholds {
            window: 128,
            low: 1,
            high: 8,
        }
    }
}

/// What the predictor wants the gating controller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriticalitySignal {
    /// No change requested.
    None,
    /// Vector activity is below the low-water mark: gate the VPU.
    Gate,
    /// Vector activity crossed the high-water mark: wake the VPU.
    Wake,
}

/// Windowed vector-weight counter with low/high hysteresis.
#[derive(Debug, Clone)]
pub struct CriticalityPredictor {
    thresholds: DevecThresholds,
    insts_in_window: u32,
    weight: u32,
    woke_this_window: bool,
}

impl CriticalityPredictor {
    /// A predictor with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high` and `window > 0`.
    pub fn new(thresholds: DevecThresholds) -> CriticalityPredictor {
        assert!(
            thresholds.low < thresholds.high,
            "hysteresis requires low < high"
        );
        assert!(thresholds.window > 0, "window must be non-empty");
        CriticalityPredictor {
            thresholds,
            insts_in_window: 0,
            weight: 0,
            woke_this_window: false,
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> DevecThresholds {
        self.thresholds
    }

    /// Records one decoded instruction. `vector_weight` is zero for scalar
    /// instructions, one for simple vector instructions, and the µop count
    /// for complex ones.
    ///
    /// Returns a wake signal immediately when the running weight crosses
    /// the high threshold, and a gate signal at window boundaries whose
    /// total weight is at or below the low threshold.
    pub fn observe(&mut self, vector_weight: u32) -> CriticalitySignal {
        self.insts_in_window += 1;
        self.weight += vector_weight;

        let mut signal = CriticalitySignal::None;
        if self.weight >= self.thresholds.high && !self.woke_this_window {
            self.woke_this_window = true;
            signal = CriticalitySignal::Wake;
        }
        if self.insts_in_window >= self.thresholds.window {
            if self.weight <= self.thresholds.low {
                signal = CriticalitySignal::Gate;
            }
            self.insts_in_window = 0;
            self.weight = 0;
            self.woke_this_window = false;
        }
        signal
    }

    /// Resets window state.
    pub fn reset(&mut self) {
        self.insts_in_window = 0;
        self.weight = 0;
        self.woke_this_window = false;
    }
}

impl Default for CriticalityPredictor {
    fn default() -> CriticalityPredictor {
        CriticalityPredictor::new(DevecThresholds::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut CriticalityPredictor, weights: &[u32]) -> Vec<CriticalitySignal> {
        weights.iter().map(|&w| p.observe(w)).collect()
    }

    #[test]
    fn scalar_phase_requests_gating_at_window_end() {
        let mut p = CriticalityPredictor::new(DevecThresholds {
            window: 8,
            low: 1,
            high: 4,
        });
        let signals = run(&mut p, &[0; 8]);
        assert_eq!(signals[7], CriticalitySignal::Gate);
        assert!(signals[..7].iter().all(|&s| s == CriticalitySignal::None));
    }

    #[test]
    fn vector_burst_wakes_immediately() {
        let mut p = CriticalityPredictor::new(DevecThresholds {
            window: 100,
            low: 1,
            high: 4,
        });
        let signals = run(&mut p, &[0, 2, 2, 0]);
        assert_eq!(
            signals[2],
            CriticalitySignal::Wake,
            "crossed high mid-window"
        );
    }

    #[test]
    fn wake_fires_once_per_window() {
        let mut p = CriticalityPredictor::new(DevecThresholds {
            window: 100,
            low: 1,
            high: 2,
        });
        let signals = run(&mut p, &[2, 2, 2]);
        assert_eq!(
            signals,
            vec![
                CriticalitySignal::Wake,
                CriticalitySignal::None,
                CriticalitySignal::None
            ]
        );
    }

    #[test]
    fn moderate_activity_requests_nothing() {
        let mut p = CriticalityPredictor::new(DevecThresholds {
            window: 8,
            low: 1,
            high: 10,
        });
        // weight 2 per window: above low, below high.
        let signals = run(&mut p, &[1, 0, 0, 1, 0, 0, 0, 0]);
        assert!(signals.iter().all(|&s| s == CriticalitySignal::None));
    }

    #[test]
    fn window_resets_after_boundary() {
        let mut p = CriticalityPredictor::new(DevecThresholds {
            window: 4,
            low: 0,
            high: 3,
        });
        run(&mut p, &[1, 1, 0, 0]); // weight 2: no gate (low=0), no wake
                                    // New window: weight crosses high again → a fresh wake is allowed.
        let signals = run(&mut p, &[3, 0]);
        assert_eq!(signals[0], CriticalitySignal::Wake);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn rejects_inverted_thresholds() {
        let _ = CriticalityPredictor::new(DevecThresholds {
            window: 4,
            low: 5,
            high: 5,
        });
    }
}
