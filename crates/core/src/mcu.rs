//! Microcode update (MCU) and auto-translation (paper §III-C).
//!
//! CSD exploits the existing (vendor-signed) microcode update procedure to
//! let privileged runtime software push *custom translations written in
//! native x86* into the processor. The update's header carries a reserved
//! field marking it for auto-translation; the decoder then translates the
//! native body into µops using its existing tables, optimizes them with
//! macro/micro-op fusion, and installs the compact flow into the microcode
//! engine's patch table, keyed by the macro-op it replaces and the
//! translation context it belongs to.
//!
//! Custom translations injected this way "should not alter architectural
//! register and memory state, unless explicitly specified in the MCU
//! header" — enforced by [`MicrocodeUpdate::verify`].

use crate::mode::ContextId;
use csd_uops::{fusion, translate, Translation};
use mx86_isa::{AluOp, Inst, VecOp};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// The privilege level of the software applying an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivilegeLevel {
    /// Unprivileged user code.
    User,
    /// The OS kernel / trusted runtime (ring 0).
    Kernel,
}

/// The macro-op class a custom translation replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpcodeClass {
    Nop,
    MovRR,
    MovRI,
    Load,
    Store,
    Lea,
    Alu(AluOp),
    AluLoad(AluOp),
    AluStore(AluOp),
    Mul,
    Div,
    Cmp,
    Test,
    Jmp,
    Jcc,
    JmpInd,
    Call,
    Ret,
    Push,
    Pop,
    VLoad,
    VStore,
    VMovRR,
    VAlu(VecOp),
    VAluLoad(VecOp),
    VMovToGpr,
    VMovFromGpr,
    Clflush,
    Rdtsc,
    Wrmsr,
    Rdmsr,
    Halt,
}

impl OpcodeClass {
    /// The class of a concrete instruction.
    pub fn of(inst: &Inst) -> OpcodeClass {
        match *inst {
            Inst::Nop { .. } => OpcodeClass::Nop,
            Inst::MovRR { .. } => OpcodeClass::MovRR,
            Inst::MovRI { .. } => OpcodeClass::MovRI,
            Inst::Load { .. } => OpcodeClass::Load,
            Inst::Store { .. } => OpcodeClass::Store,
            Inst::Lea { .. } => OpcodeClass::Lea,
            Inst::Alu { op, .. } => OpcodeClass::Alu(op),
            Inst::AluLoad { op, .. } => OpcodeClass::AluLoad(op),
            Inst::AluStore { op, .. } => OpcodeClass::AluStore(op),
            Inst::Mul { .. } => OpcodeClass::Mul,
            Inst::Div { .. } => OpcodeClass::Div,
            Inst::Cmp { .. } => OpcodeClass::Cmp,
            Inst::Test { .. } => OpcodeClass::Test,
            Inst::Jmp { .. } => OpcodeClass::Jmp,
            Inst::Jcc { .. } => OpcodeClass::Jcc,
            Inst::JmpInd { .. } => OpcodeClass::JmpInd,
            Inst::Call { .. } => OpcodeClass::Call,
            Inst::Ret => OpcodeClass::Ret,
            Inst::Push { .. } => OpcodeClass::Push,
            Inst::Pop { .. } => OpcodeClass::Pop,
            Inst::VLoad { .. } => OpcodeClass::VLoad,
            Inst::VStore { .. } => OpcodeClass::VStore,
            Inst::VMovRR { .. } => OpcodeClass::VMovRR,
            Inst::VAlu { op, .. } => OpcodeClass::VAlu(op),
            Inst::VAluLoad { op, .. } => OpcodeClass::VAluLoad(op),
            Inst::VMovToGpr { .. } => OpcodeClass::VMovToGpr,
            Inst::VMovFromGpr { .. } => OpcodeClass::VMovFromGpr,
            Inst::Clflush { .. } => OpcodeClass::Clflush,
            Inst::Rdtsc => OpcodeClass::Rdtsc,
            Inst::Wrmsr { .. } => OpcodeClass::Wrmsr,
            Inst::Rdmsr { .. } => OpcodeClass::Rdmsr,
            Inst::Halt => OpcodeClass::Halt,
        }
    }
}

/// Maximum native instructions in an MCU body.
pub const MCU_MAX_BODY: usize = 64;

/// Errors from MCU verification or installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McuError {
    /// The update was applied from user mode.
    NotPrivileged,
    /// The body does not match the header checksum (tampering).
    BadChecksum,
    /// The body exceeds [`MCU_MAX_BODY`] instructions.
    BodyTooLong(usize),
    /// The body contains a control-transfer instruction (not allowed in a
    /// linear custom translation).
    ContainsBranch,
    /// The body writes architectural register or memory state but the
    /// header does not declare `allow_arch_writes`.
    AltersArchState,
    /// The update is not marked for auto-translation; raw vendor µop
    /// formats are outside this model.
    OpaqueFormat,
}

impl fmt::Display for McuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McuError::NotPrivileged => write!(f, "microcode update requires kernel privilege"),
            McuError::BadChecksum => write!(f, "MCU body fails integrity check"),
            McuError::BodyTooLong(n) => {
                write!(f, "MCU body of {n} instructions exceeds {MCU_MAX_BODY}")
            }
            McuError::ContainsBranch => write!(f, "MCU body may not contain control transfer"),
            McuError::AltersArchState => {
                write!(
                    f,
                    "MCU body alters architectural state without header permission"
                )
            }
            McuError::OpaqueFormat => {
                write!(
                    f,
                    "only auto-translated (native-instruction) MCUs are modeled"
                )
            }
        }
    }
}

impl Error for McuError {}

/// The descriptive header prepended to an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McuHeader {
    /// Update revision (monotonic per target).
    pub revision: u32,
    /// The macro-op class whose translation is replaced.
    pub target: OpcodeClass,
    /// The translation context the flow belongs to.
    pub mode: ContextId,
    /// Reserved field: body is native x86 and must be auto-translated.
    pub auto_translate: bool,
    /// Whether the flow is allowed to write architectural state.
    pub allow_arch_writes: bool,
    /// Integrity checksum over the body.
    pub checksum: u64,
}

/// A microcode update: header plus a body of native instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrocodeUpdate {
    /// The descriptive header.
    pub header: McuHeader,
    /// Custom translation written in native instructions.
    pub body: Vec<Inst>,
}

fn checksum(body: &[Inst]) -> u64 {
    // FNV-1a over the disassembly — stable and tamper-evident for a model.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for inst in body {
        for b in inst.to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(inst.len());
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl MicrocodeUpdate {
    /// Builds a well-formed auto-translated update (checksum computed).
    pub fn new(
        revision: u32,
        target: OpcodeClass,
        mode: ContextId,
        allow_arch_writes: bool,
        body: Vec<Inst>,
    ) -> MicrocodeUpdate {
        MicrocodeUpdate {
            header: McuHeader {
                revision,
                target,
                mode,
                auto_translate: true,
                allow_arch_writes,
                checksum: checksum(&body),
            },
            body,
        }
    }

    /// Verifies sanity and integrity, mirroring the two-stage check
    /// (microcode driver, then processor) of the paper's Figure 2.
    ///
    /// # Errors
    ///
    /// See [`McuError`] for each rejected condition.
    pub fn verify(&self, privilege: PrivilegeLevel) -> Result<(), McuError> {
        if privilege != PrivilegeLevel::Kernel {
            return Err(McuError::NotPrivileged);
        }
        if !self.header.auto_translate {
            return Err(McuError::OpaqueFormat);
        }
        if self.body.len() > MCU_MAX_BODY {
            return Err(McuError::BodyTooLong(self.body.len()));
        }
        if self.header.checksum != checksum(&self.body) {
            return Err(McuError::BadChecksum);
        }
        if self.body.iter().any(Inst::is_branch) {
            return Err(McuError::ContainsBranch);
        }
        if !self.header.allow_arch_writes {
            for inst in &self.body {
                let t = translate(inst, 0);
                let writes_arch = t
                    .uops
                    .iter()
                    .any(|u| u.kind.is_store() || u.dst.is_some_and(|d| d.is_architectural()));
                if writes_arch {
                    return Err(McuError::AltersArchState);
                }
            }
        }
        Ok(())
    }

    /// Auto-translates the native body into an optimized µop flow
    /// (translation + fusion), ready for the patch table.
    pub fn auto_translate(&self) -> Translation {
        let mut uops = Vec::new();
        for inst in &self.body {
            uops.extend(translate(inst, 0).uops);
        }
        let n = uops.len();
        Translation {
            static_uops: n,
            cacheable: fusion::fused_len(&uops) <= 6,
            from_msrom: n > csd_uops::MSROM_THRESHOLD,
            uops,
        }
    }
}

/// The microcode engine's patch table: installed custom translations,
/// keyed by `(macro-op class, translation context)`.
#[derive(Debug, Clone, Default)]
pub struct MsromPatchTable {
    patches: HashMap<(OpcodeClass, ContextId), (u32, Translation)>,
}

impl MsromPatchTable {
    /// An empty table.
    pub fn new() -> MsromPatchTable {
        MsromPatchTable::default()
    }

    /// Installs a verified update; newer revisions replace older ones,
    /// stale revisions are ignored. Returns whether the table changed.
    pub fn install(&mut self, mcu: &MicrocodeUpdate) -> bool {
        let key = (mcu.header.target, mcu.header.mode);
        match self.patches.get(&key) {
            Some((rev, _)) if *rev >= mcu.header.revision => false,
            _ => {
                self.patches
                    .insert(key, (mcu.header.revision, mcu.auto_translate()));
                true
            }
        }
    }

    /// Looks up the custom flow for a macro-op class in a context.
    pub fn lookup(&self, class: OpcodeClass, mode: ContextId) -> Option<&Translation> {
        self.patches.get(&(class, mode)).map(|(_, t)| t)
    }

    /// Number of installed patches.
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx86_isa::Gpr;

    fn counting_nop_body() -> Vec<Inst> {
        // A "decoder performance counter": nop replaced by a counting flow
        // on a temporary — no architectural writes.
        vec![Inst::Nop { len: 1 }]
    }

    #[test]
    fn wellformed_update_verifies_and_installs() {
        let mcu = MicrocodeUpdate::new(
            1,
            OpcodeClass::Nop,
            ContextId::Custom(0),
            false,
            counting_nop_body(),
        );
        mcu.verify(PrivilegeLevel::Kernel).unwrap();
        let mut table = MsromPatchTable::new();
        assert!(table.install(&mcu));
        assert!(table
            .lookup(OpcodeClass::Nop, ContextId::Custom(0))
            .is_some());
        assert!(table.lookup(OpcodeClass::Nop, ContextId::Native).is_none());
    }

    #[test]
    fn user_mode_is_rejected() {
        let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, vec![]);
        assert_eq!(
            mcu.verify(PrivilegeLevel::User),
            Err(McuError::NotPrivileged)
        );
    }

    #[test]
    fn tampered_body_fails_checksum() {
        let mut mcu = MicrocodeUpdate::new(
            1,
            OpcodeClass::Nop,
            ContextId::Custom(0),
            false,
            counting_nop_body(),
        );
        mcu.body.push(Inst::Nop { len: 2 });
        assert_eq!(
            mcu.verify(PrivilegeLevel::Kernel),
            Err(McuError::BadChecksum)
        );
    }

    #[test]
    fn branches_are_rejected() {
        let mcu = MicrocodeUpdate::new(
            1,
            OpcodeClass::Nop,
            ContextId::Custom(0),
            false,
            vec![Inst::Jmp { target: 0 }],
        );
        assert_eq!(
            mcu.verify(PrivilegeLevel::Kernel),
            Err(McuError::ContainsBranch)
        );
    }

    #[test]
    fn undeclared_arch_writes_are_rejected() {
        let mcu = MicrocodeUpdate::new(
            1,
            OpcodeClass::Nop,
            ContextId::Custom(0),
            false,
            vec![Inst::MovRI {
                dst: Gpr::Rax,
                imm: 1,
            }],
        );
        assert_eq!(
            mcu.verify(PrivilegeLevel::Kernel),
            Err(McuError::AltersArchState)
        );

        let declared = MicrocodeUpdate::new(
            1,
            OpcodeClass::Nop,
            ContextId::Custom(0),
            true,
            vec![Inst::MovRI {
                dst: Gpr::Rax,
                imm: 1,
            }],
        );
        declared.verify(PrivilegeLevel::Kernel).unwrap();
    }

    #[test]
    fn oversized_body_is_rejected() {
        let body = vec![Inst::Nop { len: 1 }; MCU_MAX_BODY + 1];
        let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, body);
        assert!(matches!(
            mcu.verify(PrivilegeLevel::Kernel),
            Err(McuError::BodyTooLong(_))
        ));
    }

    #[test]
    fn opaque_format_is_rejected() {
        let mut mcu =
            MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, vec![]);
        mcu.header.auto_translate = false;
        assert_eq!(
            mcu.verify(PrivilegeLevel::Kernel),
            Err(McuError::OpaqueFormat)
        );
    }

    #[test]
    fn revision_ordering_governs_replacement() {
        let mut table = MsromPatchTable::new();
        let v2 = MicrocodeUpdate::new(
            2,
            OpcodeClass::Nop,
            ContextId::Custom(0),
            false,
            counting_nop_body(),
        );
        let v1 = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(0), false, vec![]);
        assert!(table.install(&v2));
        assert!(!table.install(&v1), "stale revision ignored");
        assert_eq!(table.len(), 1);
        assert_eq!(
            table
                .lookup(OpcodeClass::Nop, ContextId::Custom(0))
                .unwrap()
                .uops
                .len(),
            1
        );
    }

    #[test]
    fn auto_translate_concatenates_and_fuses() {
        let body = vec![
            Inst::Nop { len: 1 },
            Inst::Nop { len: 1 },
            Inst::Nop { len: 1 },
        ];
        let mcu = MicrocodeUpdate::new(1, OpcodeClass::Nop, ContextId::Custom(1), false, body);
        let t = mcu.auto_translate();
        assert_eq!(t.uops.len(), 3);
        assert!(t.cacheable);
    }

    #[test]
    fn opcode_class_distinguishes_alu_ops() {
        let add = Inst::Alu {
            op: AluOp::Add,
            dst: Gpr::Rax,
            src: mx86_isa::RegImm::Imm(1),
        };
        let sub = Inst::Alu {
            op: AluOp::Sub,
            dst: Gpr::Rax,
            src: mx86_isa::RegImm::Imm(1),
        };
        assert_ne!(OpcodeClass::of(&add), OpcodeClass::of(&sub));
    }
}
