//! Stealth-mode translation: decoy micro-op injection (paper §IV).
//!
//! When triggered (by a DIFT taint event or an antivirus-marked PC), the
//! context-sensitive decoder appends a *decoy micro-loop* to the µop flow
//! of the intercepted load/store/branch. The loop (paper Figure 4c):
//!
//! ```text
//!     mov   t0, Range.Size            ; initialize t0
//! top: ld/sub t1,[t0+Range.Start], t0,CBS   (fused pair)
//!     br_ge top                       ; iterate over all cache blocks
//! ```
//!
//! touches **every** cache block of the configured decoy ranges, so the
//! attacker perceives all sensitive lines as accessed regardless of the
//! victim's actual key-dependent behavior. Decoys write only
//! decoder-internal temporaries: architectural state is untouched.
//!
//! Stealth translation disarms itself once all ranges have been swept and
//! re-arms when the hardware watchdog fires (§IV-B), so the steady-state
//! cost is one sweep per watchdog period.

use crate::msr::MsrFile;
use csd_uops::{fusion, Translation, UMem, UReg, Uop, UopKind};
use mx86_isa::{AddrRange, AluOp, Cc, Inst, Placed, Width};

/// Static configuration of the stealth translator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealthConfig {
    /// Cache block size swept by decoy loads.
    pub line_bytes: u64,
    /// Default watchdog period (cycles) when the MSR leaves it unset.
    pub default_watchdog_period: u64,
}

impl Default for StealthConfig {
    fn default() -> StealthConfig {
        StealthConfig {
            line_bytes: 64,
            default_watchdog_period: 1000,
        }
    }
}

/// Counters for the stealth mechanism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealthStats {
    /// Instructions whose translation was augmented with decoys.
    pub triggers: u64,
    /// Total decoy µops injected.
    pub decoy_uops: u64,
    /// Completed range sweeps.
    pub sweeps: u64,
    /// Watchdog expirations (re-arms).
    pub watchdog_fires: u64,
}

impl csd_telemetry::ToJson for StealthStats {
    fn to_json(&self) -> csd_telemetry::Json {
        csd_telemetry::Json::obj([
            ("triggers", csd_telemetry::Json::from(self.triggers)),
            ("decoy_uops", csd_telemetry::Json::from(self.decoy_uops)),
            ("sweeps", csd_telemetry::Json::from(self.sweeps)),
            (
                "watchdog_fires",
                csd_telemetry::Json::from(self.watchdog_fires),
            ),
        ])
    }
}

/// The stealth-mode custom decoder.
#[derive(Debug, Clone)]
pub struct StealthTranslator {
    cfg: StealthConfig,
    enabled: bool,
    dift_trigger: bool,
    data_ranges: Vec<AddrRange>,
    inst_ranges: Vec<AddrRange>,
    scratchpad_pcs: Vec<u64>,
    armed: bool,
    watchdog_period: u64,
    watchdog_remaining: u64,
    stats: StealthStats,
}

impl StealthTranslator {
    /// A disabled translator; call [`StealthTranslator::configure`] with
    /// the MSR file to activate it.
    pub fn new(cfg: StealthConfig) -> StealthTranslator {
        StealthTranslator {
            cfg,
            enabled: false,
            dift_trigger: false,
            data_ranges: Vec::new(),
            inst_ranges: Vec::new(),
            scratchpad_pcs: Vec::new(),
            armed: false,
            watchdog_period: cfg.default_watchdog_period,
            watchdog_remaining: 0,
            stats: StealthStats::default(),
        }
    }

    /// Snapshots the decoy address-range registers, scratchpad PCs, and
    /// watchdog period from the MSR file into the decoder's internal
    /// registers ("as soon as stealth-mode translation is triggered, these
    /// decoy address ranges are copied to the context-sensitive decoder's
    /// internal registers").
    pub fn configure(&mut self, msrs: &MsrFile) {
        self.enabled = msrs.stealth_enabled();
        self.dift_trigger = msrs.dift_trigger_enabled();
        self.data_ranges = msrs.data_ranges();
        self.inst_ranges = msrs.inst_ranges();
        self.scratchpad_pcs = msrs.scratchpad_pcs();
        let p = msrs.watchdog_period();
        self.watchdog_period = if p == 0 {
            self.cfg.default_watchdog_period
        } else {
            p
        };
        self.armed = self.enabled;
        self.watchdog_remaining = 0;
    }

    /// Whether stealth mode is enabled at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the next intercepted sensitive instruction will get decoys.
    pub fn armed(&self) -> bool {
        self.enabled && self.armed
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StealthStats {
        &self.stats
    }

    /// Advances the watchdog by `cycles`; when it expires while disarmed,
    /// stealth re-arms so the next sensitive instruction sweeps again.
    pub fn tick(&mut self, cycles: u64) {
        if !self.enabled || self.armed || self.watchdog_period == 0 {
            return;
        }
        if self.watchdog_remaining > cycles {
            self.watchdog_remaining -= cycles;
        } else {
            self.armed = true;
            self.watchdog_remaining = 0;
            self.stats.watchdog_fires += 1;
        }
    }

    /// Whether `placed` is an instruction stealth mode intercepts:
    /// a load/store/branch that is tainted (DIFT trigger) or whose PC is
    /// marked in a scratchpad register (antivirus trigger).
    pub fn should_intercept(&self, placed: &Placed, tainted: bool) -> bool {
        if !self.armed() {
            return false;
        }
        let sensitive_kind =
            placed.inst.is_load() || placed.inst.is_store() || placed.inst.is_branch();
        if !sensitive_kind {
            return false;
        }
        let marked = self.scratchpad_pcs.contains(&placed.addr);
        (self.dift_trigger && tainted) || marked
    }

    /// Intercepts a decode: returns the augmented translation, or `None`
    /// if stealth does not apply to this instruction right now.
    ///
    /// On injection the translator disarms and starts the watchdog; all
    /// configured ranges are swept in this one translation (the paper's
    /// "deployed at the first decoded tainted load or branch encountered").
    pub fn on_decode(
        &mut self,
        placed: &Placed,
        native: &Translation,
        tainted: bool,
    ) -> Option<Translation> {
        if !self.should_intercept(placed, tainted) {
            return None;
        }
        let mut sweep = Vec::new();
        for r in self.data_ranges.clone() {
            self.emit_sweep(&mut sweep, r, false);
        }
        for r in self.inst_ranges.clone() {
            self.emit_sweep(&mut sweep, r, true);
        }
        if sweep.is_empty() {
            // No ranges configured: nothing to obfuscate.
            return None;
        }
        let before = native.uops.len();
        // Inject the sweep *before* the first control-transfer µop: a taken
        // branch ends the flow, and the decoys must execute regardless of
        // the (secret-dependent) branch direction. For load/store flows the
        // sweep follows the real access (paper Figure 4c's ordering).
        let mut uops = native.uops.clone();
        let insert_at = uops
            .iter()
            .position(|u| u.kind.is_branch())
            .unwrap_or(uops.len());
        uops.splice(insert_at..insert_at, sweep);
        self.stats.triggers += 1;
        self.stats.decoy_uops += (uops.len() - before) as u64;
        self.stats.sweeps += 1;
        self.armed = false;
        self.watchdog_remaining = self.watchdog_period;

        // The static µop-cache footprint grows only by the loop body
        // (mov + fused ld/sub + br), but the flow as a whole exceeds the
        // six-fused-µop line limit, so it is not cacheable.
        let static_uops = native.static_uops + 4;
        let cacheable = fusion::fused_len(&uops) <= 6;
        Some(Translation {
            uops,
            static_uops,
            cacheable,
            from_msrom: true,
        })
    }

    /// Emits the unrolled decoy micro-loop sweeping `range`.
    fn emit_sweep(&mut self, out: &mut Vec<Uop>, range: AddrRange, icache: bool) {
        let line = self.cfg.line_bytes;
        let first = range.start & !(line - 1);
        let blocks = range.blocks(line).count() as u64;
        if blocks == 0 {
            return;
        }
        let t0 = UReg::Tmp(0);
        let t1 = UReg::Tmp(1);
        let mark = |u: Uop| if icache { u.decoy_inst() } else { u.decoy() };

        // mov t0, Range.Size - CBS  (byte offset of the last block)
        out.push(mark(
            Uop::new(UopKind::MovImm)
                .dst(t0)
                .imm(((blocks - 1) * line) as i64),
        ));
        for _ in 0..blocks {
            // ld t1, [t0 + Range.Start]  (fuses with the following sub)
            out.push(mark(Uop::new(UopKind::Ld).dst(t1).mem(UMem::base_disp(
                t0,
                first as i64,
                Width::B1,
            ))));
            // sub t0, CBS
            out.push(mark(
                Uop::new(UopKind::Alu(AluOp::Sub))
                    .dst(t0)
                    .src1(t0)
                    .imm(line as i64),
            ));
            // br_ge top (micro-loop back edge; unrolled here, so the
            // executor treats decoy branches as sequencing no-ops)
            out.push(mark(Uop::new(UopKind::Br(Cc::Ge)).imm(0)));
        }
    }

    /// The instruction kinds stealth mode redirects to the custom decoder
    /// (diagnostic helper mirroring the dispatch predicate).
    pub fn redirects(inst: &Inst) -> bool {
        inst.is_load() || inst.is_store() || inst.is_branch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::{CTL_DIFT_TRIGGER, CTL_STEALTH, MSR_CSD_CTL, MSR_SCRATCHPAD_PC_BASE};
    use csd_uops::translate;
    use mx86_isa::{Gpr, MemRef};

    fn configured(data: &[AddrRange], inst_r: &[AddrRange]) -> StealthTranslator {
        let mut msrs = MsrFile::new();
        msrs.write(MSR_CSD_CTL, CTL_STEALTH | CTL_DIFT_TRIGGER);
        for (i, r) in data.iter().enumerate() {
            msrs.set_data_range(i, *r);
        }
        for (i, r) in inst_r.iter().enumerate() {
            msrs.set_inst_range(i, *r);
        }
        let mut s = StealthTranslator::new(StealthConfig::default());
        s.configure(&msrs);
        s
    }

    fn tainted_load() -> Placed {
        Placed {
            addr: 0x1000,
            inst: Inst::Load {
                dst: Gpr::Rax,
                mem: MemRef::base(Gpr::Rbx),
                width: Width::B4,
            },
        }
    }

    #[test]
    fn sweep_covers_every_block_once() {
        let range = AddrRange::new(0x8000, 0x8000 + 4 * 64);
        let mut s = configured(&[range], &[]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        let t = s.on_decode(&p, &native, true).expect("must inject");
        let decoys: Vec<_> = t.uops.iter().filter(|u| u.is_decoy()).collect();
        // 1 mov + 4 blocks * (ld + sub + br)
        assert_eq!(decoys.len(), 1 + 4 * 3);
        let loads = decoys.iter().filter(|u| u.kind == UopKind::Ld).count();
        assert_eq!(loads, 4);
        assert!(
            !t.cacheable,
            "expanded flow exceeds the µop-cache line limit"
        );
        assert_eq!(t.static_uops, native.static_uops + 4);
    }

    #[test]
    fn decoys_validate_and_use_only_temps() {
        let range = AddrRange::new(0x8000, 0x8040);
        let mut s = configured(&[range], &[]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        let t = s.on_decode(&p, &native, true).unwrap();
        for u in t.uops.iter().filter(|u| u.is_decoy()) {
            u.validate().unwrap();
        }
    }

    #[test]
    fn inst_ranges_produce_icache_decoys() {
        let range = AddrRange::new(0x4000, 0x4000 + 2 * 64);
        let mut s = configured(&[], &[range]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        let t = s.on_decode(&p, &native, true).unwrap();
        let iloads = t
            .uops
            .iter()
            .filter(|u| u.decoy == Some(csd_uops::DecoyTarget::Inst) && u.kind == UopKind::Ld)
            .count();
        assert_eq!(iloads, 2);
    }

    #[test]
    fn disarms_after_sweep_and_rearms_on_watchdog() {
        let range = AddrRange::new(0x8000, 0x8040);
        let mut s = configured(&[range], &[]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        assert!(s.on_decode(&p, &native, true).is_some());
        assert!(!s.armed(), "auto-off after all ranges swept");
        assert!(s.on_decode(&p, &native, true).is_none());

        s.tick(999);
        assert!(!s.armed());
        s.tick(1);
        assert!(s.armed(), "watchdog re-arms at the configured period");
        assert!(s.on_decode(&p, &native, true).is_some());
        assert_eq!(s.stats().watchdog_fires, 1);
        assert_eq!(s.stats().sweeps, 2);
    }

    #[test]
    fn untainted_instructions_pass_through() {
        let range = AddrRange::new(0x8000, 0x8040);
        let mut s = configured(&[range], &[]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        assert!(s.on_decode(&p, &native, false).is_none());
    }

    #[test]
    fn non_memory_instructions_pass_through() {
        let range = AddrRange::new(0x8000, 0x8040);
        let mut s = configured(&[range], &[]);
        let p = Placed {
            addr: 0x1000,
            inst: Inst::MovRI {
                dst: Gpr::Rax,
                imm: 3,
            },
        };
        let native = translate(&p.inst, p.next_addr());
        assert!(s.on_decode(&p, &native, true).is_none());
    }

    #[test]
    fn scratchpad_pc_triggers_without_taint() {
        let range = AddrRange::new(0x8000, 0x8040);
        let mut msrs = MsrFile::new();
        msrs.write(MSR_CSD_CTL, CTL_STEALTH); // no DIFT trigger
        msrs.set_data_range(0, range);
        msrs.write(MSR_SCRATCHPAD_PC_BASE, 0x1000);
        let mut s = StealthTranslator::new(StealthConfig::default());
        s.configure(&msrs);

        let p = tainted_load(); // at 0x1000
        let native = translate(&p.inst, p.next_addr());
        assert!(
            s.on_decode(&p, &native, false).is_some(),
            "PC-marked trigger"
        );
    }

    #[test]
    fn dift_taint_ignored_when_trigger_disabled() {
        let range = AddrRange::new(0x8000, 0x8040);
        let mut msrs = MsrFile::new();
        msrs.write(MSR_CSD_CTL, CTL_STEALTH); // stealth on, DIFT trigger off
        msrs.set_data_range(0, range);
        let mut s = StealthTranslator::new(StealthConfig::default());
        s.configure(&msrs);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        assert!(s.on_decode(&p, &native, true).is_none());
    }

    #[test]
    fn no_ranges_means_no_injection() {
        let mut s = configured(&[], &[]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        assert!(s.on_decode(&p, &native, true).is_none());
        assert_eq!(s.stats().triggers, 0);
    }

    #[test]
    fn decoy_ld_sub_pairs_fuse() {
        let range = AddrRange::new(0x8000, 0x8000 + 3 * 64);
        let mut s = configured(&[range], &[]);
        let p = tainted_load();
        let native = translate(&p.inst, p.next_addr());
        let t = s.on_decode(&p, &native, true).unwrap();
        // unfused: 1 native + 1 mov + 3*(ld+sub+br) = 11
        // fused:   1 native + 1 mov + 3*(ld/sub + br) = 8
        assert_eq!(t.uops.len(), 11);
        assert_eq!(fusion::fused_len(&t.uops), 8);
    }
}
