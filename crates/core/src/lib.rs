//! # csd — context-sensitive decoding (the paper's core contribution)
//!
//! Reproduction of the CSD framework from *"Mobilizing the Micro-Ops:
//! Exploiting Context Sensitive Decoding for Security and Energy
//! Efficiency"* (ISCA 2018). Context-sensitive decoding makes the
//! macro-op → micro-op translation of an x86-style front end *dynamic*:
//! the decoder can switch between custom translation modes at microsecond
//! or finer granularity, triggered by MSR writes, hardware events (DIFT
//! taint interception, power-gating decisions), or a watchdog timer — with
//! no ISA or pipeline changes visible to software.
//!
//! The crate provides:
//!
//! - [`CsdEngine`] — the decode-time entry point integrating everything;
//! - [`StealthTranslator`] — decoy micro-op injection defeating
//!   instruction/data cache side channels (case study I);
//! - [`Devectorizer`] + [`VpuGateController`] + [`CriticalityPredictor`] —
//!   selective devectorization for VPU power gating (case study II);
//! - [`MicrocodeUpdate`] / [`MsromPatchTable`] — the auto-translated
//!   microcode update path letting privileged software install custom
//!   translations written in native instructions;
//! - [`MsrFile`] — the decoy address-range registers, scratchpad tainted-PC
//!   registers, and control MSRs.
//!
//! ```
//! use csd::{CsdEngine, CsdConfig, msr};
//! use mx86_isa::{AddrRange, Placed, Inst, Gpr, MemRef, Width};
//!
//! // Trusted software marks the AES T-tables as sensitive and enables
//! // stealth mode; the next tainted load sweeps every T-table line.
//! let mut engine = CsdEngine::new(CsdConfig::default());
//! engine.write_msr(msr::MSR_DATA_RANGE_BASE, 0x8000);
//! engine.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x8000 + 4096);
//! engine.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);
//!
//! let tainted_lookup = Placed {
//!     addr: 0x1000,
//!     inst: Inst::Load { dst: Gpr::Rax, mem: MemRef::base(Gpr::Rcx), width: Width::B4 },
//! };
//! let out = engine.decode(&tainted_lookup, true);
//! assert!(out.translation.uops.iter().filter(|u| u.is_decoy()).count() >= 64);
//! ```

#![warn(missing_docs)]

mod criticality;
mod devec;
mod engine;
mod gating;
mod mcu;
mod mode;
pub mod msr;
mod stealth;

pub use criticality::{CriticalityPredictor, CriticalitySignal, DevecThresholds};
pub use devec::{DevecStats, Devectorizer};
pub use engine::{CsdConfig, CsdEngine, CsdStats, DecodeOutcome};
pub use gating::{GateStats, VectorDecision, VpuGateController, VpuPolicy, VpuState};
pub use mcu::{
    McuError, McuHeader, MicrocodeUpdate, MsromPatchTable, OpcodeClass, PrivilegeLevel,
    MCU_MAX_BODY,
};
pub use mode::{ContextId, VectorExecClass};
pub use msr::MsrFile;
pub use stealth::{StealthConfig, StealthStats, StealthTranslator};
