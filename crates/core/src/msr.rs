//! Model-specific registers controlling context-sensitive decoding.
//!
//! The paper triggers custom translation modes by "simply configuring a set
//! of model-specific registers". The *decoy address-range registers* mirror
//! x86's Memory Type Range Registers in spirit: trusted software (an
//! antivirus, the OS) marks sensitive data and instruction ranges, and the
//! decoder snapshots them into its internal registers when stealth mode is
//! triggered. Five *scratchpad PC registers* hold the addresses of
//! potentially tainted instructions for the antivirus-driven trigger
//! (paper §VI-A).

use mx86_isa::AddrRange;
use std::collections::HashMap;

/// Number of decoy data-address ranges.
pub const DATA_RANGE_COUNT: usize = 4;
/// Number of decoy instruction-address ranges.
pub const INST_RANGE_COUNT: usize = 4;
/// Number of scratchpad tainted-PC registers (paper §VI-A uses five).
pub const SCRATCHPAD_PC_COUNT: usize = 5;

/// `CSD_CTL` — master control. Bit 0: stealth enable; bit 1: selective
/// devectorization enable; bit 2: DIFT trigger enable.
pub const MSR_CSD_CTL: u32 = 0x0C50;
/// Watchdog timer period in cycles (0 disables the watchdog).
pub const MSR_WATCHDOG_PERIOD: u32 = 0x0C51;
/// First decoy *data* range register; range `i` occupies
/// `MSR_DATA_RANGE_BASE + 2*i` (start) and `+ 2*i + 1` (end, exclusive).
pub const MSR_DATA_RANGE_BASE: u32 = 0x0C60;
/// First decoy *instruction* range register; layout as for data ranges.
pub const MSR_INST_RANGE_BASE: u32 = 0x0C70;
/// First scratchpad tainted-PC register (five consecutive MSRs).
pub const MSR_SCRATCHPAD_PC_BASE: u32 = 0x0C80;

/// `CSD_CTL` bit 0: enable stealth-mode translation.
pub const CTL_STEALTH: u64 = 1 << 0;
/// `CSD_CTL` bit 1: enable selective devectorization.
pub const CTL_DEVEC: u64 = 1 << 1;
/// `CSD_CTL` bit 2: honor DIFT taint events as stealth triggers.
pub const CTL_DIFT_TRIGGER: u64 = 1 << 2;

/// The architectural MSR file (raw values, as software sees them).
#[derive(Debug, Clone, Default)]
pub struct MsrFile {
    values: HashMap<u32, u64>,
}

impl MsrFile {
    /// An empty MSR file (all registers read as zero).
    pub fn new() -> MsrFile {
        MsrFile::default()
    }

    /// Reads an MSR (unwritten MSRs read as zero).
    pub fn read(&self, msr: u32) -> u64 {
        self.values.get(&msr).copied().unwrap_or(0)
    }

    /// Writes an MSR.
    pub fn write(&mut self, msr: u32, value: u64) {
        self.values.insert(msr, value);
    }

    /// Whether stealth mode is enabled in `CSD_CTL`.
    pub fn stealth_enabled(&self) -> bool {
        self.read(MSR_CSD_CTL) & CTL_STEALTH != 0
    }

    /// Whether devectorization is enabled in `CSD_CTL`.
    pub fn devec_enabled(&self) -> bool {
        self.read(MSR_CSD_CTL) & CTL_DEVEC != 0
    }

    /// Whether DIFT events may trigger stealth mode.
    pub fn dift_trigger_enabled(&self) -> bool {
        self.read(MSR_CSD_CTL) & CTL_DIFT_TRIGGER != 0
    }

    /// The configured watchdog period (cycles); zero disables it.
    pub fn watchdog_period(&self) -> u64 {
        self.read(MSR_WATCHDOG_PERIOD)
    }

    /// Decoy data range `i`, if configured non-empty.
    pub fn data_range(&self, i: usize) -> Option<AddrRange> {
        assert!(i < DATA_RANGE_COUNT, "data range index out of bounds");
        self.range_at(MSR_DATA_RANGE_BASE + 2 * i as u32)
    }

    /// Decoy instruction range `i`, if configured non-empty.
    pub fn inst_range(&self, i: usize) -> Option<AddrRange> {
        assert!(i < INST_RANGE_COUNT, "inst range index out of bounds");
        self.range_at(MSR_INST_RANGE_BASE + 2 * i as u32)
    }

    fn range_at(&self, base: u32) -> Option<AddrRange> {
        let start = self.read(base);
        let end = self.read(base + 1);
        (end > start).then(|| AddrRange::new(start, end))
    }

    /// All configured decoy data ranges.
    pub fn data_ranges(&self) -> Vec<AddrRange> {
        (0..DATA_RANGE_COUNT)
            .filter_map(|i| self.data_range(i))
            .collect()
    }

    /// All configured decoy instruction ranges.
    pub fn inst_ranges(&self) -> Vec<AddrRange> {
        (0..INST_RANGE_COUNT)
            .filter_map(|i| self.inst_range(i))
            .collect()
    }

    /// All configured scratchpad PCs (non-zero entries).
    pub fn scratchpad_pcs(&self) -> Vec<u64> {
        (0..SCRATCHPAD_PC_COUNT as u32)
            .map(|i| self.read(MSR_SCRATCHPAD_PC_BASE + i))
            .filter(|&pc| pc != 0)
            .collect()
    }

    /// Convenience: writes decoy data range `i`.
    pub fn set_data_range(&mut self, i: usize, r: AddrRange) {
        assert!(i < DATA_RANGE_COUNT, "data range index out of bounds");
        self.write(MSR_DATA_RANGE_BASE + 2 * i as u32, r.start);
        self.write(MSR_DATA_RANGE_BASE + 2 * i as u32 + 1, r.end);
    }

    /// Convenience: writes decoy instruction range `i`.
    pub fn set_inst_range(&mut self, i: usize, r: AddrRange) {
        assert!(i < INST_RANGE_COUNT, "inst range index out of bounds");
        self.write(MSR_INST_RANGE_BASE + 2 * i as u32, r.start);
        self.write(MSR_INST_RANGE_BASE + 2 * i as u32 + 1, r.end);
    }

    /// Whether `msr` belongs to the CSD register block (used by the
    /// decoder's register-tracking optimization to notice mode changes).
    pub fn is_csd_msr(msr: u32) -> bool {
        (0x0C50..=0x0C8F).contains(&msr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_msrs_read_zero() {
        let f = MsrFile::new();
        assert_eq!(f.read(MSR_CSD_CTL), 0);
        assert!(!f.stealth_enabled());
        assert!(f.data_ranges().is_empty());
    }

    #[test]
    fn ctl_bits_decode() {
        let mut f = MsrFile::new();
        f.write(MSR_CSD_CTL, CTL_STEALTH | CTL_DIFT_TRIGGER);
        assert!(f.stealth_enabled());
        assert!(!f.devec_enabled());
        assert!(f.dift_trigger_enabled());
    }

    #[test]
    fn ranges_roundtrip() {
        let mut f = MsrFile::new();
        f.set_data_range(0, AddrRange::new(0x8000, 0x9000));
        f.set_inst_range(2, AddrRange::new(0x1000, 0x1400));
        assert_eq!(f.data_range(0), Some(AddrRange::new(0x8000, 0x9000)));
        assert_eq!(f.data_range(1), None);
        assert_eq!(f.inst_ranges(), vec![AddrRange::new(0x1000, 0x1400)]);
    }

    #[test]
    fn empty_or_inverted_range_is_none() {
        let mut f = MsrFile::new();
        f.write(MSR_DATA_RANGE_BASE, 0x100);
        f.write(MSR_DATA_RANGE_BASE + 1, 0x100);
        assert_eq!(f.data_range(0), None);
        f.write(MSR_DATA_RANGE_BASE + 1, 0x80);
        assert_eq!(f.data_range(0), None, "inverted range must not panic");
    }

    #[test]
    fn scratchpad_pcs_skip_zero() {
        let mut f = MsrFile::new();
        f.write(MSR_SCRATCHPAD_PC_BASE, 0x4000);
        f.write(MSR_SCRATCHPAD_PC_BASE + 3, 0x5000);
        assert_eq!(f.scratchpad_pcs(), vec![0x4000, 0x5000]);
    }

    #[test]
    fn csd_msr_block_detection() {
        assert!(MsrFile::is_csd_msr(MSR_CSD_CTL));
        assert!(MsrFile::is_csd_msr(MSR_SCRATCHPAD_PC_BASE + 4));
        assert!(!MsrFile::is_csd_msr(0x10));
    }
}
