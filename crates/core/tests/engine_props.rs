//! Property-based tests for the CSD engine's invariants.

use csd::{msr, ContextId, CsdConfig, CsdEngine, DevecThresholds, VpuPolicy, VpuState};
use mx86_isa::{AluOp, Gpr, Inst, MemRef, Placed, RegImm, VecOp, Width, Xmm};
use proptest::prelude::*;

fn arb_simple_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (0usize..16).prop_map(|r| Inst::MovRI { dst: Gpr::from_index(r), imm: 1 }),
        (0usize..16).prop_map(|r| Inst::Alu {
            op: AluOp::Add,
            dst: Gpr::from_index(r),
            src: RegImm::Imm(1)
        }),
        (0usize..16).prop_map(|r| Inst::Load {
            dst: Gpr::from_index(r),
            mem: MemRef::base(Gpr::Rbx),
            width: Width::B8
        }),
        (0u8..16).prop_map(|x| Inst::VAlu {
            op: VecOp::PAddD,
            dst: Xmm::new(x),
            src: Xmm::new((x + 1) % 16)
        }),
        Just(Inst::Nop { len: 1 }),
    ]
}

proptest! {
    /// For any instruction stream and taint pattern, a stealth-armed
    /// engine keeps two invariants: decoy µops appear only on
    /// load/store/branch macro-ops, and the non-decoy prefix of every
    /// translation equals the native translation.
    #[test]
    fn stealth_only_augments(
        insts in proptest::collection::vec(arb_simple_inst(), 1..60),
        taints in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let mut engine = CsdEngine::new(CsdConfig::default());
        engine.write_msr(msr::MSR_DATA_RANGE_BASE, 0x8000);
        engine.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x8000 + 4 * 64);
        engine.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);

        let mut pc = 0x1000u64;
        for (i, inst) in insts.iter().enumerate() {
            let placed = Placed { addr: pc, inst: *inst };
            let tainted = taints[i % taints.len()];
            let native = csd_uops::translate(inst, placed.next_addr());
            let out = engine.decode(&placed, tainted);

            let non_decoys: Vec<_> =
                out.translation.uops.iter().filter(|u| !u.is_decoy()).copied().collect();
            prop_assert_eq!(&non_decoys, &native.uops,
                "non-decoy stream must be the native translation");

            let has_decoys = out.translation.uops.iter().any(|u| u.is_decoy());
            if has_decoys {
                prop_assert!(inst.is_load() || inst.is_store() || inst.is_branch());
                prop_assert!(tainted);
                prop_assert_eq!(out.context, ContextId::Stealth);
            }
            engine.tick(7); // let the watchdog creep
            pc = placed.next_addr();
        }
    }

    /// The gate controller's residency counters always partition time,
    /// under any interleaving of ticks and vector/scalar instructions.
    #[test]
    fn gate_residency_partitions_time(
        events in proptest::collection::vec((any::<bool>(), 1u64..50), 1..200),
    ) {
        let cfg = CsdConfig {
            vpu_policy: VpuPolicy::CsdDevec(DevecThresholds { window: 16, low: 1, high: 4 }),
            ..CsdConfig::default()
        };
        let mut engine = CsdEngine::new(cfg);
        let scalar = Placed { addr: 0, inst: Inst::Nop { len: 1 } };
        let vector = Placed {
            addr: 0x20,
            inst: Inst::VAlu { op: VecOp::PAddB, dst: Xmm::new(0), src: Xmm::new(1) },
        };
        let mut total = 0u64;
        for (is_vec, ticks) in events {
            engine.decode(if is_vec { &vector } else { &scalar }, false);
            engine.tick(ticks);
            total += ticks;
            let s = engine.gate().stats();
            prop_assert_eq!(s.total_cycles(), total);
            prop_assert_eq!(s.vec_total(), s.vec_on + s.vec_powering_on + s.vec_gated);
        }
        // State machine is always in a legal state.
        match engine.gate().state() {
            VpuState::On | VpuState::Gated => {}
            VpuState::Waking { remaining } => prop_assert!(remaining <= 30),
        }
    }

    /// MSR reads always return the last write (the file is a plain
    /// register file, whatever the decoder does with snapshots).
    #[test]
    fn msr_file_is_a_register_file(writes in proptest::collection::vec(
        (0xC50u32..0xC90, any::<u64>()), 1..50)) {
        let mut engine = CsdEngine::new(CsdConfig::default());
        let mut last = std::collections::HashMap::new();
        for (reg, val) in writes {
            engine.write_msr(reg, val);
            last.insert(reg, val);
        }
        for (reg, val) in last {
            prop_assert_eq!(engine.read_msr(reg), val);
        }
    }
}
