//! Property-based tests for the CSD engine's invariants, driven by the
//! workspace's deterministic PRNG (`csd-telemetry`): each property runs
//! against dozens of seeded random cases, and a failing case's number
//! identifies its seed.

use csd::{msr, ContextId, CsdConfig, CsdEngine, DevecThresholds, VpuPolicy, VpuState};
use csd_telemetry::SplitMix64;
use mx86_isa::{AluOp, Gpr, Inst, MemRef, Placed, RegImm, VecOp, Width, Xmm};

const CASES: u64 = 48;

fn arb_simple_inst(rng: &mut SplitMix64) -> Inst {
    match rng.range_u64(0, 5) {
        0 => Inst::MovRI {
            dst: Gpr::from_index(rng.range_usize(0, 16)),
            imm: 1,
        },
        1 => Inst::Alu {
            op: AluOp::Add,
            dst: Gpr::from_index(rng.range_usize(0, 16)),
            src: RegImm::Imm(1),
        },
        2 => Inst::Load {
            dst: Gpr::from_index(rng.range_usize(0, 16)),
            mem: MemRef::base(Gpr::Rbx),
            width: Width::B8,
        },
        3 => {
            let x = rng.next_u8() % 16;
            Inst::VAlu {
                op: VecOp::PAddD,
                dst: Xmm::new(x),
                src: Xmm::new((x + 1) % 16),
            }
        }
        _ => Inst::Nop { len: 1 },
    }
}

/// For any instruction stream and taint pattern, a stealth-armed engine
/// keeps two invariants: decoy µops appear only on tainted
/// load/store/branch macro-ops, and the non-decoy subsequence of every
/// translation equals the native translation. On top of that, the
/// engine's counters satisfy `decoy_uops <= total_uops` at every step.
#[test]
fn stealth_only_augments() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x51EA + case);
        let n = rng.range_usize(1, 60);
        let insts: Vec<Inst> = (0..n).map(|_| arb_simple_inst(&mut rng)).collect();
        let taints: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();

        let mut engine = CsdEngine::new(CsdConfig::default());
        engine.write_msr(msr::MSR_DATA_RANGE_BASE, 0x8000);
        engine.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x8000 + 4 * 64);
        engine.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);

        let mut pc = 0x1000u64;
        for (inst, &tainted) in insts.iter().zip(&taints) {
            let placed = Placed {
                addr: pc,
                inst: *inst,
            };
            let native = csd_uops::translate(inst, placed.next_addr());
            let out = engine.decode(&placed, tainted);

            let non_decoys: Vec<_> = out
                .translation
                .uops
                .iter()
                .filter(|u| !u.is_decoy())
                .copied()
                .collect();
            assert_eq!(
                non_decoys, native.uops,
                "case {case}: non-decoy stream must be the native translation"
            );

            let has_decoys = out.translation.uops.iter().any(|u| u.is_decoy());
            if has_decoys {
                assert!(
                    inst.is_load() || inst.is_store() || inst.is_branch(),
                    "case {case}"
                );
                assert!(tainted, "case {case}");
                assert_eq!(out.context, ContextId::Stealth, "case {case}");
            }
            let s = engine.stats();
            assert!(
                s.decoy_uops <= s.total_uops,
                "case {case}: decoy µops {} exceed total µops {}",
                s.decoy_uops,
                s.total_uops
            );
            engine.tick(7); // let the watchdog creep
            pc = placed.next_addr();
        }
    }
}

/// The gate controller's residency counters always partition time, under
/// any interleaving of ticks and vector/scalar instructions.
#[test]
fn gate_residency_partitions_time() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x6A7E + case);
        let n = rng.range_usize(1, 200);
        let cfg = CsdConfig {
            vpu_policy: VpuPolicy::CsdDevec(DevecThresholds {
                window: 16,
                low: 1,
                high: 4,
            }),
            ..CsdConfig::default()
        };
        let mut engine = CsdEngine::new(cfg);
        let scalar = Placed {
            addr: 0,
            inst: Inst::Nop { len: 1 },
        };
        let vector = Placed {
            addr: 0x20,
            inst: Inst::VAlu {
                op: VecOp::PAddB,
                dst: Xmm::new(0),
                src: Xmm::new(1),
            },
        };
        let mut total = 0u64;
        for _ in 0..n {
            let is_vec = rng.next_bool();
            let ticks = rng.range_u64(1, 50);
            engine.decode(if is_vec { &vector } else { &scalar }, false);
            engine.tick(ticks);
            total += ticks;
            let s = engine.gate().stats();
            assert_eq!(s.total_cycles(), total, "case {case}");
            assert_eq!(
                s.vec_total(),
                s.vec_on + s.vec_powering_on + s.vec_gated,
                "case {case}"
            );
        }
        // State machine is always in a legal state.
        match engine.gate().state() {
            VpuState::On | VpuState::Gated => {}
            VpuState::Waking { remaining } => assert!(remaining <= 30, "case {case}"),
        }
    }
}

/// MSR reads always return the last write (the file is a plain register
/// file, whatever the decoder does with snapshots).
#[test]
fn msr_file_is_a_register_file() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x135F + case);
        let n = rng.range_usize(1, 50);
        let mut engine = CsdEngine::new(CsdConfig::default());
        let mut last = std::collections::HashMap::new();
        for _ in 0..n {
            let reg = rng.range_u64(0xC50, 0xC90) as u32;
            let val = rng.next_u64();
            engine.write_msr(reg, val);
            last.insert(reg, val);
        }
        for (reg, val) in last {
            assert_eq!(engine.read_msr(reg), val, "case {case}: msr {reg:#x}");
        }
    }
}
