//! End-to-end cluster tests over real sockets: spawn `csd-serve`
//! daemons, shard the quick suite across them, and `cmp` the merged
//! artifact against the single-node CLI bytes — including a run where
//! one of three workers is killed mid-suite (emulated by a TCP proxy
//! that stops accepting and resets its streams, which is what a
//! `kill -9`'d daemon looks like from the coordinator's side).

use csd_bench::suite::{journal_meta, run_filtered, run_suite, run_suite_resumable, SuiteConfig};
use csd_cluster::{
    run_suite_distributed, run_suite_distributed_resumable, ClusterConfig, DistributedOutput,
    WorkerPool,
};
use csd_serve::{Server, ServerConfig, ShutdownHandle};
use csd_telemetry::{Journal, Json, RunJournal};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const SEED: u64 = 0xC5D_2018;

/// The single-node CLI artifact every distributed run must reproduce,
/// computed once per test process.
fn cli_bytes() -> &'static str {
    static CLI: OnceLock<String> = OnceLock::new();
    CLI.get_or_init(|| run_suite(&SuiteConfig::quick(SEED, 1)).json.pretty())
}

/// Boots a daemon on an ephemeral port (the `server_e2e` pattern).
fn boot() -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 16,
        cache_cap: 8,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn counter(telemetry: &Json, name: &str) -> u64 {
    telemetry
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("telemetry counter {name} missing"))
}

#[test]
fn three_worker_quick_suite_is_byte_identical_to_cli() {
    let pool = WorkerPool::spawn_local(3, 1).expect("spawn local daemons");
    let (out, telemetry) = run_suite_distributed(
        &pool,
        &SuiteConfig::quick(SEED, 1),
        None,
        &ClusterConfig::default(),
    )
    .expect("distributed run");
    let DistributedOutput::Full(report) = out else {
        panic!("full-grid run must produce the full report");
    };
    assert_eq!(
        report.json.pretty(),
        cli_bytes(),
        "3-worker artifact must be byte-identical to the CLI suite"
    );
    // Every grid task completed exactly once into the artifact.
    assert_eq!(counter(&telemetry, "completed") as usize, 61);
    assert_eq!(counter(&telemetry, "workers_dead"), 0);
    assert_eq!(
        telemetry.get("workers_alive").and_then(Json::as_u64),
        Some(3)
    );
}

#[test]
fn hedged_filtered_run_is_byte_identical_to_cli_filter() {
    // hedge_ms=1 turns *every* in-flight task into a straggler, so the
    // run is a worst-case storm of duplicate dispatches — and the
    // artifact must still come out byte-identical, with every losing
    // copy discarded exactly once (completed stays exact).
    let pool = WorkerPool::spawn_local(2, 1).expect("spawn local daemons");
    let cluster = ClusterConfig {
        hedge_ms: 1,
        ..ClusterConfig::default()
    };
    let cfg = SuiteConfig::quick(SEED, 1);
    let (out, telemetry) =
        run_suite_distributed(&pool, &cfg, Some("attack/"), &cluster).expect("distributed run");
    let DistributedOutput::Filtered(doc) = out else {
        panic!("filtered run must produce the reduced document");
    };
    assert_eq!(
        doc.pretty(),
        run_filtered(&cfg, "attack/").pretty(),
        "hedged filtered artifact must match `suite --filter` bytes"
    );
    assert_eq!(counter(&telemetry, "completed"), 6, "6 attack tasks");
    assert!(
        counter(&telemetry, "hedges") >= 1,
        "a 1ms threshold must hedge at least one straggler"
    );
    assert!(
        counter(&telemetry, "hedges") >= counter(&telemetry, "hedge_discards"),
        "at most one discard per hedge copy"
    );
}

#[test]
fn cluster_resumes_a_single_node_journal() {
    // The journal meta pins only (profile, seed, filter) — not who ran
    // the tasks — so a run that "crashed" under the single-node suite
    // resumes under the cluster. Journal the whole grid single-node,
    // keep the first 40 records, and let two workers finish the rest.
    let cfg = SuiteConfig::quick(SEED, 2);
    let meta = journal_meta(&cfg, None);
    let dir = std::env::temp_dir().join(format!("csd-cluster-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let full = dir.join("full.journal");
    let rj = RunJournal::open(&full, &meta).expect("create journal");
    run_suite_resumable(&cfg, &Mutex::new(rj)).expect("single-node journaled run");
    let frames = Journal::open(&full).expect("reopen journal").records;
    let tasks = frames.len() - 1;

    let cut = dir.join("cut.journal");
    let keep = 40.min(tasks - 1);
    let mut j = Journal::create(&cut).expect("create cut journal");
    for rec in frames.iter().take(1 + keep) {
        j.append(rec).expect("append prefix frame");
    }
    drop(j);

    let rj = RunJournal::open(&cut, &meta).expect("reopen cut journal");
    assert_eq!(rj.replayed().len(), keep);
    let journal = Mutex::new(rj);
    let pool = WorkerPool::spawn_local(2, 1).expect("spawn local daemons");
    let (out, telemetry) = run_suite_distributed_resumable(
        &pool,
        &cfg,
        None,
        &ClusterConfig::default(),
        Some(&journal),
    )
    .expect("distributed resume");
    let DistributedOutput::Full(report) = out else {
        panic!("full-grid run must produce the full report");
    };
    assert_eq!(
        report.json.pretty(),
        cli_bytes(),
        "cluster resume of a suite journal must still be CLI bytes"
    );
    // Only the remainder was dispatched; the journal now holds it all.
    assert_eq!(counter(&telemetry, "completed") as usize, tasks - keep);
    assert_eq!(
        telemetry.get("replayed").and_then(Json::as_u64),
        Some(keep as u64)
    );
    assert_eq!(
        Journal::open(&cut).expect("reopen").records.len(),
        1 + tasks,
        "no task journaled twice"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Kill-one-worker chaos: a TCP proxy that dies like a `kill -9`
// ---------------------------------------------------------------------

/// Forwards bytes one way, watching for the kill flag every 10ms; on
/// kill both streams are shut down (the peer sees a reset/EOF, exactly
/// like a daemon that was SIGKILLed mid-response).
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    kill: Arc<AtomicBool>,
    trip: Option<(Arc<AtomicU64>, u64)>,
) {
    from.set_read_timeout(Some(Duration::from_millis(10)))
        .expect("set proxy read timeout");
    let mut buf = [0u8; 4096];
    loop {
        if kill.load(Ordering::SeqCst) {
            let _ = from.shutdown(std::net::Shutdown::Both);
            let _ = to.shutdown(std::net::Shutdown::Both);
            return;
        }
        match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                if let Some((posts, limit)) = &trip {
                    let seen = buf[..n].windows(4).filter(|w| w == b"POST").count() as u64;
                    if seen > 0 && posts.fetch_add(seen, Ordering::SeqCst) + seen > *limit {
                        // The fatal request: never forwarded. The kill
                        // lands mid-suite, with work in flight on both
                        // sides of this proxy.
                        kill.store(true, Ordering::SeqCst);
                        continue;
                    }
                }
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// A proxy in front of `backend` that emulates `kill -9` after
/// forwarding `max_posts` experiment requests: the listener is dropped
/// (connects refused) and every live stream is reset.
fn kill_proxy(backend: String, max_posts: u64) -> (String, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr").to_string();
    let kill = Arc::new(AtomicBool::new(false));
    let posts = Arc::new(AtomicU64::new(0));
    let flag = Arc::clone(&kill);
    std::thread::spawn(move || {
        listener.set_nonblocking(true).expect("nonblocking proxy");
        loop {
            if flag.load(Ordering::SeqCst) {
                return; // drops the listener: connects now refused
            }
            match listener.accept() {
                Ok((client, _)) => {
                    let Ok(server) = TcpStream::connect(&backend) else {
                        continue;
                    };
                    let (c2, s2) = (
                        client.try_clone().expect("clone client"),
                        server.try_clone().expect("clone server"),
                    );
                    let (k1, k2) = (Arc::clone(&flag), Arc::clone(&flag));
                    let p = Arc::clone(&posts);
                    std::thread::spawn(move || pump(client, server, k1, Some((p, max_posts))));
                    std::thread::spawn(move || pump(s2, c2, k2, None));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    });
    (addr, kill)
}

#[test]
fn killing_one_of_three_workers_mid_suite_still_matches_cli_bytes() {
    let (a1, h1, j1) = boot();
    let (a2, h2, j2) = boot();
    let (backend, h3, j3) = boot();
    // Worker 3 sits behind the kill proxy: after 2 experiment requests
    // it dies exactly the way a SIGKILLed daemon does.
    let (proxied, killed) = kill_proxy(backend, 2);

    let pool = WorkerPool::from_addrs(&[proxied, a1, a2]);
    let cluster = ClusterConfig {
        // Fail fast on the dead worker: short transport budget and an
        // aggressive prober, so the 61-task run spends its time on
        // simulation, not on waiting out timeouts.
        attempts: 2,
        task_timeout: Duration::from_secs(120),
        health_interval: Duration::from_millis(100),
        probe_failures_to_kill: 3,
        ..ClusterConfig::default()
    };
    let (out, telemetry) =
        run_suite_distributed(&pool, &SuiteConfig::quick(SEED, 1), None, &cluster)
            .expect("run must converge on the surviving workers");
    let DistributedOutput::Full(report) = out else {
        panic!("full-grid run must produce the full report");
    };

    assert!(
        killed.load(Ordering::SeqCst),
        "the proxy must actually have died mid-run"
    );
    assert_eq!(
        report.json.pretty(),
        cli_bytes(),
        "artifact after a mid-suite worker kill must still be CLI bytes"
    );
    assert_eq!(counter(&telemetry, "workers_dead"), 1);
    assert!(
        counter(&telemetry, "reassigned") >= 1,
        "the dead worker's in-flight units must have been reassigned"
    );
    assert_eq!(
        telemetry.get("workers_alive").and_then(Json::as_u64),
        Some(2)
    );

    for (h, j) in [(h1, j1), (h2, j2), (h3, j3)] {
        h.trigger();
        j.join().expect("server exits cleanly");
    }
}
