//! # csd-cluster — distributed suite execution over sharded `csd-serve` workers
//!
//! A coordinator that shards the experiment grid (and ad-hoc
//! [`ExperimentSpec`] plans) across a pool of `csd-serve` daemons over
//! HTTP and merges the per-task answers into an artifact **byte-identical**
//! to a single-node `suite` run. The determinism contract the rest of
//! the repository maintains — per-task seeds derived from labels, no
//! timestamps in reports, number-identity-preserving JSON — is exactly
//! what makes a distributed run `cmp`-equal to the CLI at any worker
//! count, under retries, hedges, and mid-run worker deaths.
//!
//! Three layers:
//!
//! - [`pool`] — who the workers are: a static address list or
//!   coordinator-spawned local daemons, plus per-worker liveness,
//!   health, and latency state.
//! - [`sched`] — how work reaches them: a FIFO board dispatched over
//!   bounded per-worker windows on keep-alive connections, with seeded
//!   exponential backoff (shared `csd_serve::RetryClient`), `503`
//!   re-queueing, straggler hedging with first-result-wins dedup, and
//!   reassignment of everything a dead worker held.
//! - [`merge`] — how answers become the artifact: per-task documents
//!   are verified (label + seed) and their `result` subtrees fed to the
//!   same report assembly the `suite` CLI uses.
//!
//! See `DESIGN.md` ("Cluster architecture") and the README's
//! "Distributed execution" section.

#![warn(missing_docs)]

pub mod merge;
pub mod pool;
pub mod sched;

pub use merge::{task_result_from_doc, unit_for_task, verify_exact_labels};
pub use pool::{WorkerPool, WorkerState};
pub use sched::{run_units, run_units_with, Board, Claim, ClusterConfig, Completion, WorkUnit};

use csd_bench::suite::{
    assemble_report, filtered_report, replay_into_slots, SuiteConfig, SuiteReport,
};
use csd_bench::tasks::{build_tasks, filter_tasks};
use csd_exp::ExperimentSpec;
use csd_telemetry::{Json, RunJournal, ToJson};
use std::sync::Mutex;

/// A cluster-level failure: every worker died, a task exhausted its
/// failure budget, or a worker answered something that fails
/// verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterError(pub String);

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ClusterError {}

/// What a distributed suite run produced.
pub enum DistributedOutput {
    /// The full-grid report (figure summaries, checks) — byte-identical
    /// to `suite` with the same profile and seed.
    Full(SuiteReport),
    /// The reduced `--filter` document — byte-identical to
    /// `suite --filter` with the same arguments.
    Filtered(Json),
}

impl DistributedOutput {
    /// The report JSON, whichever shape it is.
    pub fn json(&self) -> &Json {
        match self {
            DistributedOutput::Full(r) => &r.json,
            DistributedOutput::Filtered(j) => j,
        }
    }
}

/// Runs the suite grid (optionally `--filter`-reduced) across the pool
/// and reassembles the single-node artifact. `cfg` must be a stock
/// profile (`SuiteConfig::named`) — workers reconstruct it from
/// `(profile, seed)` alone, so a locally mutated config cannot be
/// shipped. Returns the output plus the cluster telemetry document.
pub fn run_suite_distributed(
    pool: &WorkerPool,
    cfg: &SuiteConfig,
    filter: Option<&str>,
    cluster: &ClusterConfig,
) -> Result<(DistributedOutput, Json), ClusterError> {
    run_suite_distributed_resumable(pool, cfg, filter, cluster, None)
}

/// [`run_suite_distributed`] under an optional write-ahead journal:
/// tasks already journaled are *not dispatched at all* (their replayed
/// results merge straight into the artifact), and every fresh
/// completion is durably journaled the moment its response is verified
/// — before it counts toward the merge. The journal format is shared
/// with the single-node `suite`, so a run can crash under one runner
/// and resume under the other; either way the final artifact is
/// byte-identical to an uninterrupted run.
pub fn run_suite_distributed_resumable(
    pool: &WorkerPool,
    cfg: &SuiteConfig,
    filter: Option<&str>,
    cluster: &ClusterConfig,
    journal: Option<&Mutex<RunJournal>>,
) -> Result<(DistributedOutput, Json), ClusterError> {
    let tasks = match filter {
        Some(f) => {
            let tasks = filter_tasks(cfg, f);
            if tasks.is_empty() {
                return Err(ClusterError(format!("filter {f:?} matches no task")));
            }
            tasks
        }
        None => build_tasks(cfg),
    };
    verify_exact_labels(cfg, &tasks)?;

    // Replay the journal's completed prefix into grid-order slots.
    let mut slots: Vec<Option<Json>> = match journal {
        Some(j) => {
            let guard = j.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            replay_into_slots(&tasks, cfg.root_seed, &guard).map_err(ClusterError)?
        }
        None => (0..tasks.len()).map(|_| None).collect(),
    };
    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let units: Vec<WorkUnit> = pending
        .iter()
        .map(|&i| unit_for_task(tasks[i].label(), cfg.profile, cfg.root_seed))
        .collect();

    // On every winning response: verify it answers our question, then
    // journal the extracted result bytes before the board records it.
    let on_won = journal.map(|j| {
        let tasks = &tasks;
        let pending = &pending;
        move |u: usize, body: &[u8]| -> Result<(), String> {
            let t = &tasks[pending[u]];
            let seed = t.seed(cfg.root_seed);
            let result = task_result_from_doc(body, t.label(), seed).map_err(|e| e.0)?;
            j.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .record(t.label(), seed, result.dump().as_bytes())
                .map_err(|e| format!("journal append: {e}"))
        }
    });
    let (bodies, mut telemetry) = run_units_with(
        pool,
        &units,
        cluster,
        on_won
            .as_ref()
            .map(|h| h as &(dyn Fn(usize, &[u8]) -> Result<(), String> + Sync)),
    )?;
    telemetry.push_member("replayed", Json::from((tasks.len() - pending.len()) as u64));

    for (&i, body) in pending.iter().zip(&bodies) {
        let t = &tasks[i];
        slots[i] = Some(task_result_from_doc(
            body,
            t.label(),
            t.seed(cfg.root_seed),
        )?);
    }
    let mut values = Vec::with_capacity(tasks.len());
    for (t, slot) in tasks.iter().zip(slots) {
        values.push(slot.ok_or_else(|| {
            ClusterError(format!("task {:?} has no result after the run", t.label()))
        })?);
    }
    let output = match filter {
        Some(f) => DistributedOutput::Filtered(filtered_report(cfg, f, values)),
        None => DistributedOutput::Full(assemble_report(cfg, values)),
    };
    Ok((output, telemetry))
}

/// Runs ad-hoc experiment plans across the pool, preserving input
/// order. Each spec is validated locally, posted in its canonical JSON
/// serialization, and the plan results come back as
/// `{"specs": [ {spec, result}, ... ]}`.
pub fn run_specs_distributed(
    pool: &WorkerPool,
    specs: &[ExperimentSpec],
    cluster: &ClusterConfig,
) -> Result<(Json, Json), ClusterError> {
    for (i, spec) in specs.iter().enumerate() {
        spec.validate()
            .map_err(|e| ClusterError(format!("spec {i}: {e}")))?;
    }
    let units: Vec<WorkUnit> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| WorkUnit {
            label: format!("spec/{i}/{}/{}", spec.victim, spec.pipeline),
            body: Json::obj([("experiment", spec.to_json())]).dump(),
        })
        .collect();
    let (bodies, telemetry) = run_units(pool, &units, cluster)?;
    let mut rows = Vec::with_capacity(bodies.len());
    for ((spec, unit), body) in specs.iter().zip(&units).zip(&bodies) {
        let text = std::str::from_utf8(body)
            .map_err(|_| ClusterError(format!("{}: response is not UTF-8", unit.label)))?;
        let result = Json::parse(text)
            .map_err(|e| ClusterError(format!("{}: response is not JSON: {e}", unit.label)))?;
        rows.push(Json::obj([("spec", spec.to_json()), ("result", result)]));
    }
    Ok((Json::obj([("specs", Json::Arr(rows))]), telemetry))
}
