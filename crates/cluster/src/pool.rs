//! The worker pool: which `csd-serve` daemons the coordinator may
//! dispatch to, what it currently believes about each of them, and —
//! for `--workers N` — the daemons it spawned itself.
//!
//! A [`WorkerPool`] is built either from a static address list
//! ([`WorkerPool::from_addrs`], remote daemons someone else operates) or
//! by spawning local in-process daemons ([`WorkerPool::spawn_local`],
//! each a full [`csd_serve::Server`] with its own simulation worker
//! threads on an ephemeral port). Either way the scheduler sees the
//! same thing: a list of [`WorkerState`]s it probes, dispatches to, and
//! declares dead.

use csd_serve::{Server, ServerConfig, ShutdownHandle};
use csd_telemetry::{Histogram, Json, ToJson};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the coordinator knows about one worker daemon.
#[derive(Debug)]
pub struct WorkerState {
    /// The daemon's `HOST:PORT`.
    pub addr: String,
    /// Cleared exactly once, when the scheduler declares the worker
    /// dead; a dead worker receives no further dispatches or probes.
    pub alive: AtomicBool,
    /// Health-probe verdict: an unhealthy-but-alive worker is paused
    /// (no new dispatches) until a probe succeeds again.
    pub healthy: AtomicBool,
    /// Consecutive failed health probes (reset by any success).
    pub probe_failures: AtomicU64,
    /// Healthy↔unhealthy transitions observed by the prober.
    pub flaps: AtomicU64,
    /// Requests answered 200 by this worker.
    pub completed: AtomicU64,
    /// Request attempts that ended in a transport error or a non-200.
    pub failures: AtomicU64,
    /// `503` retries performed against this worker.
    pub retries_503: AtomicU64,
    /// Reconnects performed against this worker.
    pub reconnects: AtomicU64,
    /// Admission-queue depth from the last successful health probe —
    /// the load signal `GET /v1/health` exists to publish.
    pub queue_depth: AtomicU64,
    /// End-to-end latency of every request this worker answered.
    pub latency_us: Mutex<Histogram>,
}

impl WorkerState {
    fn new(addr: String) -> WorkerState {
        WorkerState {
            addr,
            alive: AtomicBool::new(true),
            healthy: AtomicBool::new(true),
            probe_failures: AtomicU64::new(0),
            flaps: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries_503: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            latency_us: Mutex::new(Histogram::new()),
        }
    }

    /// Whether the scheduler may hand this worker new work.
    pub fn dispatchable(&self) -> bool {
        self.alive.load(Ordering::SeqCst) && self.healthy.load(Ordering::SeqCst)
    }

    /// Records one answered request's end-to-end latency.
    pub fn record_latency_us(&self, us: u64) {
        match self.latency_us.lock() {
            Ok(mut h) => h.record(us),
            Err(poison) => poison.into_inner().record(us),
        }
    }

    /// Snapshot of this worker's latency distribution.
    pub fn latency_snapshot(&self) -> Histogram {
        match self.latency_us.lock() {
            Ok(h) => h.clone(),
            Err(poison) => poison.into_inner().clone(),
        }
    }

    /// The per-worker telemetry row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("addr", Json::from(self.addr.as_str())),
            ("alive", Json::Bool(self.alive.load(Ordering::SeqCst))),
            ("healthy", Json::Bool(self.healthy.load(Ordering::SeqCst))),
            (
                "completed",
                Json::from(self.completed.load(Ordering::Relaxed)),
            ),
            (
                "failures",
                Json::from(self.failures.load(Ordering::Relaxed)),
            ),
            (
                "retries_503",
                Json::from(self.retries_503.load(Ordering::Relaxed)),
            ),
            (
                "reconnects",
                Json::from(self.reconnects.load(Ordering::Relaxed)),
            ),
            (
                "health_flaps",
                Json::from(self.flaps.load(Ordering::Relaxed)),
            ),
            (
                "queue_depth_last",
                Json::from(self.queue_depth.load(Ordering::Relaxed)),
            ),
            ("latency_us", self.latency_snapshot().to_json()),
        ])
    }
}

/// One daemon this coordinator spawned in-process.
struct LocalDaemon {
    handle: ShutdownHandle,
    join: std::thread::JoinHandle<io::Result<()>>,
}

/// The set of workers a cluster run dispatches over.
pub struct WorkerPool {
    workers: Vec<Arc<WorkerState>>,
    local: Vec<LocalDaemon>,
}

impl WorkerPool {
    /// A pool over externally-operated daemons. The pool never shuts
    /// these down — their lifecycle belongs to whoever started them.
    pub fn from_addrs<S: AsRef<str>>(addrs: &[S]) -> WorkerPool {
        WorkerPool {
            workers: addrs
                .iter()
                .map(|a| Arc::new(WorkerState::new(a.as_ref().to_string())))
                .collect(),
            local: Vec::new(),
        }
    }

    /// Spawns `n` in-process daemons on ephemeral ports, each with
    /// `daemon_workers` simulation threads. [`WorkerPool::shutdown_local`]
    /// (or drop) drains them gracefully.
    pub fn spawn_local(n: usize, daemon_workers: usize) -> io::Result<WorkerPool> {
        let mut workers = Vec::new();
        let mut local = Vec::new();
        for _ in 0..n.max(1) {
            let server = Server::bind(&ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: daemon_workers.max(1),
                // The scheduler's bounded windows keep in-flight work per
                // worker small; a roomy queue means hedges and bursts
                // degrade into waiting, not 503 churn.
                queue_cap: 64,
                cache_cap: 16,
                ..ServerConfig::default()
            })?;
            let addr = server.local_addr()?.to_string();
            let handle = server.shutdown_handle();
            let join = std::thread::spawn(move || server.run());
            workers.push(Arc::new(WorkerState::new(addr)));
            local.push(LocalDaemon { handle, join });
        }
        Ok(WorkerPool { workers, local })
    }

    /// The workers, in pool order.
    pub fn workers(&self) -> &[Arc<WorkerState>] {
        &self.workers
    }

    /// Worker count.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// How many workers are still dispatchable.
    pub fn alive_count(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Gracefully drains every daemon this pool spawned (no-op for an
    /// address-list pool). Returns how many exited cleanly.
    pub fn shutdown_local(&mut self) -> usize {
        let mut clean = 0;
        for d in self.local.drain(..) {
            d.handle.trigger();
            if matches!(d.join.join(), Ok(Ok(()))) {
                clean += 1;
            }
        }
        clean
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_local();
    }
}

/// Probes one worker's `/v1/health` once, with a short timeout so a
/// black-holed daemon cannot stall the prober. On success records the
/// published queue depth; returns whether the worker answered.
pub fn probe_health(worker: &WorkerState, timeout: Duration) -> bool {
    let Ok(mut client) = csd_serve::Client::connect_with(&worker.addr, timeout) else {
        return false;
    };
    match client.get("/v1/health") {
        Ok(resp) if resp.status == 200 => {
            if let Ok(doc) = Json::parse(&resp.text()) {
                if let Some(depth) = doc.get("queue_depth").and_then(Json::as_u64) {
                    worker.queue_depth.store(depth, Ordering::Relaxed);
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_from_addrs_tracks_state() {
        let pool = WorkerPool::from_addrs(&["127.0.0.1:1", "127.0.0.1:2"]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.alive_count(), 2);
        pool.workers()[0].alive.store(false, Ordering::SeqCst);
        assert_eq!(pool.alive_count(), 1);
        assert!(!pool.workers()[0].dispatchable());
        assert!(pool.workers()[1].dispatchable());
    }

    #[test]
    fn worker_telemetry_row_shape() {
        let w = WorkerState::new("127.0.0.1:9".to_string());
        w.record_latency_us(100);
        w.completed.store(1, Ordering::Relaxed);
        let row = w.to_json();
        assert_eq!(row.get("addr").and_then(Json::as_str), Some("127.0.0.1:9"));
        assert_eq!(row.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(
            row.get("latency_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn probe_against_nothing_fails_fast() {
        let w = WorkerState::new("127.0.0.1:1".to_string());
        assert!(!probe_health(&w, Duration::from_millis(100)));
    }
}
