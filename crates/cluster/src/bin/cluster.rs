//! Distributed suite execution over sharded `csd-serve` workers.
//!
//! ```text
//! cargo run --release -p csd-cluster --bin cluster -- \
//!     [--workers N | --addrs HOST:PORT,HOST:PORT,...] \
//!     [--quick] [--seed S] [--filter SUBSTR] [--out PATH] \
//!     [--telemetry-out PATH] [--hedge-ms MS] [--window N] \
//!     [--attempts N] [--task-timeout-ms MS] [--daemon-workers N] \
//!     [--journal] [--resume ID] [--journal-dir DIR] \
//!     [--spec JSON|@FILE]...
//! ```
//!
//! The merged report is byte-identical to what `suite` (same profile,
//! seed, and filter) writes on one machine — `cmp` them. `--workers N`
//! spawns N local daemons on ephemeral ports and drains them after the
//! run; `--addrs` dispatches to daemons you operate. `--spec` switches
//! to ad-hoc plan mode: each spec (inline JSON or `@file`) is one
//! `{"experiment": ...}` request, results returned in input order.
//! Exits non-zero if the run fails or (full profile) a tolerance check
//! is outside its band.
//!
//! Durability: `--journal` / `--resume ID` use the same write-ahead run
//! journal as the single-node `suite` — a crashed cluster run can even
//! be resumed by `suite --resume ID` (and vice versa), because the
//! journal records `(label, seed, result)` and says nothing about who
//! dispatched the work. On resume the coordinator re-probes worker
//! health and dispatches only the tasks the journal is missing.

use csd_bench::suite::{journal_meta, SuiteConfig};
use csd_cluster::{
    run_specs_distributed, run_suite_distributed_resumable, ClusterConfig, DistributedOutput,
    WorkerPool,
};
use csd_exp::ExperimentSpec;
use csd_telemetry::{write_atomic, Json, RunJournal};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn main() {
    let mut workers = 0usize;
    let mut addrs: Vec<String> = Vec::new();
    let mut quick = false;
    let mut seed = 0xC5D_2018u64;
    let mut filter: Option<String> = None;
    let mut out_path = "BENCH_suite.json".to_string();
    let mut telemetry_out: Option<String> = None;
    let mut specs: Vec<ExperimentSpec> = Vec::new();
    let mut cluster = ClusterConfig::default();
    let mut daemon_workers = 1usize;
    let mut journal = false;
    let mut resume: Option<String> = None;
    let mut journal_dir = "runs".to_string();

    fn num(args: &mut impl Iterator<Item = String>, name: &str) -> u64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| die(&format!("{name} needs a non-negative integer")))
    }

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workers" => workers = num(&mut args, "--workers") as usize,
            "--addrs" => {
                let list = args.next().unwrap_or_else(|| die("--addrs needs a list"));
                addrs = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if addrs.is_empty() {
                    die("--addrs needs at least one HOST:PORT");
                }
            }
            "--quick" => quick = true,
            "--seed" => seed = num(&mut args, "--seed"),
            "--filter" => {
                filter = Some(
                    args.next()
                        .unwrap_or_else(|| die("--filter needs a substring")),
                );
            }
            "--out" => out_path = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--telemetry-out" => {
                telemetry_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--telemetry-out needs a path")),
                );
            }
            "--hedge-ms" => cluster.hedge_ms = num(&mut args, "--hedge-ms"),
            "--window" => cluster.window = num(&mut args, "--window").max(1) as usize,
            "--attempts" => cluster.attempts = num(&mut args, "--attempts").max(1) as u32,
            "--task-timeout-ms" => {
                cluster.task_timeout =
                    Duration::from_millis(num(&mut args, "--task-timeout-ms").max(1));
            }
            "--daemon-workers" => {
                daemon_workers = num(&mut args, "--daemon-workers").max(1) as usize
            }
            "--journal" => journal = true,
            "--resume" => {
                resume = Some(
                    args.next()
                        .unwrap_or_else(|| die("--resume needs a run id")),
                );
            }
            "--journal-dir" => {
                journal_dir = args
                    .next()
                    .unwrap_or_else(|| die("--journal-dir needs a path"));
            }
            "--spec" => {
                let arg = args
                    .next()
                    .unwrap_or_else(|| die("--spec needs JSON or @FILE"));
                specs.push(parse_spec(&arg));
            }
            "--help" | "-h" => {
                println!(
                    "usage: cluster [--workers N | --addrs A,B,C] [--quick] [--seed S]\n\
                     \x20              [--filter SUBSTR] [--out PATH] [--telemetry-out PATH]\n\
                     \x20              [--hedge-ms MS] [--window N] [--attempts N]\n\
                     \x20              [--task-timeout-ms MS] [--daemon-workers N]\n\
                     \x20              [--journal] [--resume ID] [--journal-dir DIR]\n\
                     \x20              [--spec JSON|@FILE]...\n\
                     Shards the suite grid across csd-serve workers and merges a report\n\
                     byte-identical to a single-node `suite` run (default out\n\
                     BENCH_suite.json). --workers N spawns N local daemons (each with\n\
                     --daemon-workers simulation threads); --addrs uses daemons you run.\n\
                     --hedge-ms duplicates stragglers onto a second worker (first result\n\
                     wins); 0 disables hedging. --spec switches to ad-hoc experiment-plan\n\
                     mode. --telemetry-out writes the cluster telemetry (per-worker and\n\
                     fleet latency, retry/hedge/reassign counters) as JSON. --journal\n\
                     write-ahead-journals each completed task under --journal-dir\n\
                     (default runs/); --resume ID reopens runs/ID.journal, skips what it\n\
                     already holds, and still writes a byte-identical report. The\n\
                     journal is shared with `suite`, so either runner can resume the\n\
                     other's crashed run."
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    cluster.seed = seed;
    if !addrs.is_empty() && workers > 0 {
        die("--workers and --addrs are mutually exclusive");
    }
    if (journal || resume.is_some()) && !specs.is_empty() {
        die("--journal/--resume apply to suite mode, not --spec mode");
    }

    let mut pool = if addrs.is_empty() {
        let n = if workers == 0 { 3 } else { workers };
        eprintln!("cluster: spawning {n} local daemon(s), {daemon_workers} worker thread(s) each");
        WorkerPool::spawn_local(n, daemon_workers)
            .unwrap_or_else(|e| die(&format!("spawning local daemons: {e}")))
    } else {
        eprintln!(
            "cluster: dispatching to {} worker(s): {}",
            addrs.len(),
            addrs.join(", ")
        );
        WorkerPool::from_addrs(&addrs)
    };

    let t0 = Instant::now();
    let outcome = if specs.is_empty() {
        let cfg = if quick {
            SuiteConfig::quick(seed, 1)
        } else {
            SuiteConfig::full(seed, 1)
        };
        eprintln!(
            "cluster: profile={} root_seed={seed:#x} workers={} window={} hedge_ms={}{}",
            cfg.profile,
            pool.len(),
            cluster.window,
            cluster.hedge_ms,
            filter
                .as_deref()
                .map(|f| format!(" filter={f:?}"))
                .unwrap_or_default()
        );
        let run_journal = open_journal(journal, resume, &journal_dir, &cfg, filter.as_deref());
        run_suite_distributed_resumable(
            &pool,
            &cfg,
            filter.as_deref(),
            &cluster,
            run_journal.as_ref(),
        )
        .map(|(out, telem)| {
            let checks = match &out {
                DistributedOutput::Full(report) => Some(report.clone()),
                DistributedOutput::Filtered(_) => None,
            };
            (out.json().pretty(), telem, checks)
        })
    } else {
        if filter.is_some() {
            die("--filter applies to suite mode, not --spec mode");
        }
        eprintln!(
            "cluster: {} ad-hoc spec(s) across {} worker(s)",
            specs.len(),
            pool.len()
        );
        run_specs_distributed(&pool, &specs, &cluster)
            .map(|(doc, telem)| (doc.pretty(), telem, None))
    };

    let clean = pool.shutdown_local();
    let (artifact, telemetry, report) = match outcome {
        Ok(v) => v,
        Err(e) => die(&format!("run failed: {e}")),
    };
    eprintln!(
        "cluster: run complete in {:.1}s ({clean} local daemon(s) drained cleanly)",
        t0.elapsed().as_secs_f64()
    );

    write_atomic(std::path::Path::new(&out_path), artifact.as_bytes())
        .unwrap_or_else(|e| die(&e.to_string()));
    eprintln!("cluster: wrote {out_path}");
    if let Some(path) = telemetry_out {
        write_atomic(std::path::Path::new(&path), telemetry.pretty().as_bytes())
            .unwrap_or_else(|e| die(&e.to_string()));
        eprintln!("cluster: wrote {path}");
    }

    if let Some(report) = report {
        for c in &report.checks {
            eprintln!(
                "  [{}] {:<42} {:>12.5}  in [{}, {}]",
                if c.pass() { "ok" } else { "FAIL" },
                c.name,
                c.value,
                c.lo,
                c.hi
            );
        }
        let failed = report.failed_checks();
        if !failed.is_empty() {
            eprintln!(
                "cluster: {} check(s) outside tolerance: {}",
                failed.len(),
                failed.join(", ")
            );
            std::process::exit(1);
        }
    }
}

/// Opens (or creates) the run journal when journaling was requested —
/// the same id scheme and meta pinning as the `suite` CLI, so journals
/// are interchangeable between the two runners.
fn open_journal(
    journal: bool,
    resume: Option<String>,
    journal_dir: &str,
    cfg: &SuiteConfig,
    filter: Option<&str>,
) -> Option<Mutex<RunJournal>> {
    if !journal && resume.is_none() {
        return None;
    }
    let id = resume.unwrap_or_else(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!(
            "{}-{:x}-{t}-{}",
            cfg.profile,
            cfg.root_seed,
            std::process::id()
        )
    });
    let path = PathBuf::from(journal_dir).join(format!("{id}.journal"));
    let meta = journal_meta(cfg, filter);
    let rj = RunJournal::open(&path, &meta).unwrap_or_else(|e| die(&e.to_string()));
    if rj.truncated() > 0 {
        eprintln!(
            "cluster: journal {} had a torn tail; truncated {} byte(s)",
            path.display(),
            rj.truncated()
        );
    }
    eprintln!(
        "cluster: journaling to {} ({} completed task(s) replayed; resume with --resume {id})",
        path.display(),
        rj.replayed().len()
    );
    Some(Mutex::new(rj))
}

/// Parses one `--spec` argument: inline JSON, or `@path` to a file
/// holding one spec object.
fn parse_spec(arg: &str) -> ExperimentSpec {
    let text = if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")))
    } else {
        arg.to_string()
    };
    let doc = Json::parse(&text).unwrap_or_else(|e| die(&format!("--spec is not valid JSON: {e}")));
    ExperimentSpec::from_json(&doc).unwrap_or_else(|e| die(&format!("--spec: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("cluster: {msg}");
    std::process::exit(2);
}
