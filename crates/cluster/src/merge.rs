//! The deterministic merger: turning per-task documents served by
//! `csd-serve` workers back into the exact artifact a single-node
//! `suite` run writes.
//!
//! Three facts make byte-identity possible:
//!
//! 1. A task's result is a pure function of `(label, profile, seed)` —
//!    the server derives the task seed from the suite root seed and the
//!    *label*, never from scheduling, so any worker's answer is the
//!    CLI's answer.
//! 2. `csd_telemetry::Json::parse` preserves number identity
//!    (unsigned/signed/float discrimination and shortest-roundtrip
//!    formatting), so extracting the `result` subtree from a served
//!    document and re-serializing it reproduces the original bytes.
//! 3. `csd_bench::suite` exposes its report assembly
//!    ([`csd_bench::suite::assemble_report`] /
//!    [`csd_bench::suite::filtered_report`]) as pure functions of
//!    `(config, values-in-grid-order)` — the cluster feeds them values
//!    collected over HTTP and gets the CLI's bytes out.
//!
//! The one trap is that the server treats `task` as a *substring*
//! filter. [`verify_exact_labels`] checks up front that every label we
//! are about to dispatch matches exactly one grid task, and
//! [`task_result_from_doc`] re-verifies label and seed on every
//! response, so a worker answering the wrong question is an error, not
//! a silently corrupted artifact.

use crate::sched::WorkUnit;
use crate::ClusterError;
use csd_bench::suite::SuiteConfig;
use csd_bench::tasks::{filter_tasks, TaskDef};
use csd_telemetry::Json;

/// Builds the request unit for one grid task: the label is posted as the
/// server-side filter (exact by [`verify_exact_labels`]), and profile
/// and root seed pin down the config the worker reconstructs.
pub fn unit_for_task(label: &str, profile: &str, root_seed: u64) -> WorkUnit {
    let body = Json::obj([
        ("task", Json::from(label)),
        ("profile", Json::from(profile)),
        ("seed", Json::from(root_seed)),
    ]);
    WorkUnit {
        label: label.to_string(),
        body: body.dump(),
    }
}

/// Checks that every task's label, used as a substring filter, matches
/// exactly that one task — the property that lets a label double as an
/// addressing key. Holds for the whole grid by construction (labels are
/// unique and family prefixes differ); this guards against a future
/// grid change breaking the cluster silently.
pub fn verify_exact_labels(cfg: &SuiteConfig, tasks: &[TaskDef]) -> Result<(), ClusterError> {
    for t in tasks {
        let matched = filter_tasks(cfg, t.label());
        if matched.len() != 1 || matched[0].label() != t.label() {
            return Err(ClusterError(format!(
                "label {:?} is not an exact address: it matches {} task(s)",
                t.label(),
                matched.len()
            )));
        }
    }
    Ok(())
}

/// Extracts the task's `result` value from a served per-task document,
/// verifying the worker answered the question we asked: the document's
/// filter and single row must carry our label, and the row's seed must
/// be the label-derived seed we expect.
pub fn task_result_from_doc(
    body: &[u8],
    label: &str,
    expected_seed: u64,
) -> Result<Json, ClusterError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ClusterError(format!("task {label:?}: response is not UTF-8")))?;
    let doc = Json::parse(text)
        .map_err(|e| ClusterError(format!("task {label:?}: response is not JSON: {e}")))?;
    if doc.get("filter").and_then(Json::as_str) != Some(label) {
        return Err(ClusterError(format!(
            "task {label:?}: served document answers a different filter"
        )));
    }
    let rows = doc
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClusterError(format!("task {label:?}: document has no tasks array")))?;
    let [row] = rows else {
        return Err(ClusterError(format!(
            "task {label:?}: expected exactly one row, got {}",
            rows.len()
        )));
    };
    if row.get("label").and_then(Json::as_str) != Some(label) {
        return Err(ClusterError(format!(
            "task {label:?}: row is labelled {:?}",
            row.get("label").and_then(Json::as_str)
        )));
    }
    if row.get("seed").and_then(Json::as_u64) != Some(expected_seed) {
        return Err(ClusterError(format!(
            "task {label:?}: row seed {:?} != expected {expected_seed} — \
             worker ran a different root seed or profile",
            row.get("seed").and_then(Json::as_u64)
        )));
    }
    row.get("result")
        .cloned()
        .ok_or_else(|| ClusterError(format!("task {label:?}: row has no result")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_bench::tasks::build_tasks;

    #[test]
    fn every_grid_label_is_an_exact_address() {
        // The invariant the whole merge strategy rests on: no grid label
        // is a substring of another, so posting a label as the server's
        // filter selects exactly that task.
        let cfg = SuiteConfig::quick(0xC5D_2018, 1);
        let tasks = build_tasks(&cfg);
        verify_exact_labels(&cfg, &tasks).expect("grid labels must address exactly");
    }

    #[test]
    fn unit_body_is_a_task_request() {
        let u = unit_for_task("table1", "quick", 7);
        let body = Json::parse(&u.body).unwrap();
        assert_eq!(body.get("task").and_then(Json::as_str), Some("table1"));
        assert_eq!(body.get("profile").and_then(Json::as_str), Some("quick"));
        assert_eq!(body.get("seed").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn extraction_verifies_label_and_seed() {
        let doc = |label: &str, seed: u64| {
            Json::obj([
                ("suite", Json::obj([("profile", Json::from("quick"))])),
                ("filter", Json::from(label)),
                (
                    "tasks",
                    Json::Arr(vec![Json::obj([
                        ("label", Json::from(label)),
                        ("seed", Json::from(seed)),
                        ("result", Json::obj([("x", Json::from(1u64))])),
                    ])]),
                ),
            ])
            .pretty()
        };
        let ok = task_result_from_doc(doc("table1", 42).as_bytes(), "table1", 42).unwrap();
        assert_eq!(ok.get("x").and_then(Json::as_u64), Some(1));
        // Wrong seed: the worker ran a different root seed — reject.
        assert!(task_result_from_doc(doc("table1", 43).as_bytes(), "table1", 42).is_err());
        // Wrong label: the worker answered a different task — reject.
        assert!(task_result_from_doc(doc("wd/aes-enc", 42).as_bytes(), "table1", 42).is_err());
        // Garbage: reject.
        assert!(task_result_from_doc(b"not json", "table1", 42).is_err());
    }

    #[test]
    fn extraction_preserves_result_bytes() {
        // Parse → extract → re-serialize must reproduce the result
        // subtree byte-for-byte (number identity survives the round
        // trip) — this is what makes the distributed merge `cmp`-equal.
        let result = Json::obj([
            ("u", Json::from(18446744073709551615u64)),
            ("f", Json::from(0.1)),
            ("neg", Json::from(-3i64)),
        ]);
        let doc = Json::obj([
            ("filter", Json::from("t")),
            (
                "tasks",
                Json::Arr(vec![Json::obj([
                    ("label", Json::from("t")),
                    ("seed", Json::from(5u64)),
                    ("result", result.clone()),
                ])]),
            ),
        ]);
        let served = doc.pretty();
        let extracted = task_result_from_doc(served.as_bytes(), "t", 5).unwrap();
        assert_eq!(extracted.pretty(), result.pretty());
    }
}
