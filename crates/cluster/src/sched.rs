//! The work-queue scheduler: deterministic dispatch, retries, hedging,
//! and dead-worker reassignment over a [`WorkerPool`].
//!
//! The data structure at the center is the [`Board`]: one slot per
//! [`WorkUnit`], a FIFO of unit indices awaiting dispatch, and the
//! collected result bytes. Every failure-handling decision — who may
//! claim a unit, what happens when a response is a duplicate, when a
//! retry budget turns into a dead worker — is a synchronous `Board`
//! method, so the whole policy is unit-testable without opening a
//! socket. [`run_units`] wraps the board in `Mutex + Condvar` and drives
//! it with `window` dispatch threads per worker plus a hedge monitor and
//! a health prober.
//!
//! Correctness leans on one property of the grid: a task's result bytes
//! are a pure function of `(label, profile, seed)`, so *which* worker
//! answers — first dispatch, retry, hedge winner, or reassigned copy —
//! cannot change the merged artifact, only the telemetry.

use crate::pool::{probe_health, WorkerPool};
use crate::ClusterError;
use csd_serve::RetryClient;
use csd_telemetry::{derive_seed, Histogram, Json, ToJson};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One request the cluster must get answered: a stable label (for error
/// messages and result verification) plus the exact JSON body to `POST`
/// to `/v1/experiments`.
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Stable identifier, e.g. a grid label like `sec/opt/aes-enc`.
    pub label: String,
    /// The request body.
    pub body: String,
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Root seed for every dispatch thread's jitter schedule.
    pub seed: u64,
    /// In-flight requests per worker (dispatch threads per worker).
    pub window: usize,
    /// Attempts per dispatch before the worker is declared dead
    /// (transport) or the unit is re-queued (`503`).
    pub attempts: u32,
    /// Read timeout per request — a worker silent for this long counts
    /// as a transport failure.
    pub task_timeout: Duration,
    /// Hedge threshold: a unit in flight longer than this with no
    /// second copy gets one on another worker. `0` disables hedging.
    pub hedge_ms: u64,
    /// Distinct failed responses a unit may accumulate before the run
    /// is declared failed (a deterministic error would loop forever).
    pub failure_budget: u32,
    /// Delay between health-probe rounds.
    pub health_interval: Duration,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a worker is declared dead.
    pub probe_failures_to_kill: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            seed: 0xC5D_2018,
            window: 2,
            attempts: 3,
            task_timeout: Duration::from_secs(600),
            hedge_ms: 0,
            failure_budget: 3,
            health_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(2),
            probe_failures_to_kill: 5,
        }
    }
}

/// What [`Board::claim`] handed a dispatch thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Run this unit.
    Unit(usize),
    /// Nothing claimable right now (queue empty, or every queued unit
    /// is already held by this worker) — wait and retry.
    Wait,
    /// The run is over (all results in, or failed); exit.
    Finished,
}

/// Outcome of handing a result to [`Board::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First result for this unit — it is now part of the artifact.
    Won,
    /// A hedge/reassign copy finished after the winner; the bytes are
    /// discarded (exactly one discard per losing copy).
    Duplicate,
}

#[derive(Debug, Default)]
struct Slot {
    /// Workers currently running this unit.
    holders: Vec<usize>,
    done: bool,
    /// Failed (non-200, non-503) responses accumulated.
    failures: u32,
    /// Copies of this unit sitting in the queue right now.
    queued: usize,
    /// A hedge copy has been issued (at most one per unit).
    hedged: bool,
    /// First dispatch time — what the hedge monitor ages against.
    dispatched_at: Option<Instant>,
}

/// The scheduler's shared state. All policy lives in these synchronous
/// methods; [`run_units`] only adds threads, locks, and HTTP.
pub struct Board {
    queue: VecDeque<usize>,
    slots: Vec<Slot>,
    results: Vec<Option<Vec<u8>>>,
    remaining: usize,
    failed: Option<String>,
}

impl Board {
    /// A board over `n` units, queued in index (grid) order — the
    /// deterministic dispatch order.
    pub fn new(n: usize) -> Board {
        Board {
            queue: (0..n).collect(),
            slots: (0..n)
                .map(|_| Slot {
                    queued: 1,
                    ..Slot::default()
                })
                .collect(),
            results: (0..n).map(|_| None).collect(),
            remaining: n,
            failed: None,
        }
    }

    /// Whether the run is over (every result in, or failed).
    pub fn finished(&self) -> bool {
        self.remaining == 0 || self.failed.is_some()
    }

    /// The failure message, if the run failed.
    pub fn failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// Marks the run failed (first message wins).
    pub fn fail(&mut self, msg: String) {
        self.failed.get_or_insert(msg);
    }

    /// Claims the oldest queued unit this worker is not already running
    /// (a hedge copy must land on a *different* worker than the copy it
    /// backs up). Stale entries for finished units are dropped in
    /// passing.
    pub fn claim(&mut self, worker: usize, now: Instant) -> Claim {
        if self.finished() {
            return Claim::Finished;
        }
        let mut i = 0;
        while i < self.queue.len() {
            let u = self.queue[i];
            if self.slots[u].done {
                self.queue.remove(i);
                self.slots[u].queued -= 1;
                continue;
            }
            if self.slots[u].holders.contains(&worker) {
                i += 1;
                continue;
            }
            self.queue.remove(i);
            let s = &mut self.slots[u];
            s.queued -= 1;
            s.holders.push(worker);
            s.dispatched_at.get_or_insert(now);
            return Claim::Unit(u);
        }
        Claim::Wait
    }

    /// Accepts a `200` result. First copy wins and is recorded; any
    /// later copy (hedge loser, late result from a worker already
    /// declared dead) reports [`Completion::Duplicate`] and its bytes
    /// are dropped.
    pub fn complete(&mut self, unit: usize, worker: usize, bytes: Vec<u8>) -> Completion {
        let s = &mut self.slots[unit];
        s.holders.retain(|&w| w != worker);
        if s.done {
            return Completion::Duplicate;
        }
        s.done = true;
        self.results[unit] = Some(bytes);
        self.remaining -= 1;
        Completion::Won
    }

    /// Returns a unit to the queue after a non-fatal miss (`503` budget
    /// exhausted, or the holder died). No-op if the unit finished, is
    /// still held elsewhere, or is already queued — re-queueing is
    /// idempotent, so the dead-worker sweep and a late dispatch-thread
    /// error cannot double-queue a unit.
    pub fn requeue(&mut self, unit: usize, worker: usize) {
        let s = &mut self.slots[unit];
        s.holders.retain(|&w| w != worker);
        if !s.done && s.holders.is_empty() && s.queued == 0 {
            s.queued += 1;
            self.queue.push_back(unit);
        }
    }

    /// Records a failed (non-200, non-503) response for a unit. Under
    /// the budget the unit is re-queued for another try; at the budget
    /// the caller must fail the run — the error is deterministic enough
    /// that retrying forever would livelock.
    pub fn unit_failed(&mut self, unit: usize, worker: usize, budget: u32) -> bool {
        self.slots[unit].failures += 1;
        if self.slots[unit].failures >= budget.max(1) {
            return true;
        }
        self.requeue(unit, worker);
        false
    }

    /// Sweeps a dead worker: every unit it was running loses that
    /// holder, and orphaned units go back on the queue. Returns how many
    /// units were reassigned.
    pub fn worker_dead(&mut self, worker: usize) -> usize {
        let mut reassigned = 0;
        for u in 0..self.slots.len() {
            if self.slots[u].holders.contains(&worker) {
                let before = self.slots[u].queued;
                self.requeue(u, worker);
                if self.slots[u].queued > before {
                    reassigned += 1;
                }
            }
        }
        reassigned
    }

    /// Issues hedge copies: any unit in flight on exactly one worker for
    /// longer than `threshold`, never hedged before, gains a queued
    /// second copy. Returns how many hedges were issued.
    pub fn hedge_scan(&mut self, now: Instant, threshold: Duration) -> usize {
        let mut hedges = 0;
        for u in 0..self.slots.len() {
            let s = &mut self.slots[u];
            if s.done || s.hedged || s.queued > 0 || s.holders.len() != 1 {
                continue;
            }
            let Some(t0) = s.dispatched_at else { continue };
            if now.duration_since(t0) >= threshold {
                s.hedged = true;
                s.queued += 1;
                self.queue.push_back(u);
                hedges += 1;
            }
        }
        hedges
    }

    /// Takes the collected results, in unit order. `None` only if the
    /// run failed before that unit completed.
    fn into_results(self) -> Vec<Option<Vec<u8>>> {
        self.results
    }
}

/// Fleet-wide counters the scheduler accumulates (beyond the per-worker
/// state in [`crate::pool::WorkerState`]).
#[derive(Debug, Default)]
pub struct Counters {
    /// Units handed to dispatch threads (hedges and retries included).
    pub dispatched: AtomicU64,
    /// `200` responses accepted as the unit's result.
    pub completed: AtomicU64,
    /// Hedge copies issued for stragglers.
    pub hedges: AtomicU64,
    /// Duplicate results discarded (hedge losers, late results from
    /// workers already swept).
    pub hedge_discards: AtomicU64,
    /// Units re-queued off dead workers.
    pub reassigned: AtomicU64,
    /// Units re-queued after a `503` retry budget ran out.
    pub requeues_503: AtomicU64,
    /// Failed (non-200, non-503) responses observed.
    pub unit_failures: AtomicU64,
    /// Transport-level retries performed inside dispatches.
    pub transport_retries: AtomicU64,
    /// Workers declared dead.
    pub workers_dead: AtomicU64,
}

impl Counters {
    fn to_json(&self) -> Json {
        let get = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        Json::obj([
            ("dispatched", get(&self.dispatched)),
            ("completed", get(&self.completed)),
            ("hedges", get(&self.hedges)),
            ("hedge_discards", get(&self.hedge_discards)),
            ("reassigned", get(&self.reassigned)),
            ("requeues_503", get(&self.requeues_503)),
            ("unit_failures", get(&self.unit_failures)),
            ("transport_retries", get(&self.transport_retries)),
            ("workers_dead", get(&self.workers_dead)),
        ])
    }
}

/// Locks `m`, recovering a poisoned guard (the board's invariants hold
/// at every statement boundary, same argument as `csd_serve::relock`).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Condvar::wait_timeout` with the same poison recovery.
fn rewait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(poison) => poison.into_inner().0,
    }
}

/// Per-completion hook: called with `(unit index, response body)` for
/// every winning `200` before it is recorded on the board. The journal
/// layer uses it to durably persist each completed unit the moment it
/// lands; returning `Err` fails the run (the durability contract is
/// broken, so finishing without it would be lying).
pub type OnWon<'a> = dyn Fn(usize, &[u8]) -> Result<(), String> + Sync + 'a;

struct Shared<'a> {
    board: Mutex<Board>,
    cv: Condvar,
    pool: &'a WorkerPool,
    units: &'a [WorkUnit],
    cfg: &'a ClusterConfig,
    counters: Counters,
    on_won: Option<&'a OnWon<'a>>,
}

impl Shared<'_> {
    /// Declares worker `w` dead (idempotently): no further dispatches or
    /// probes, outstanding units re-queued, and if it was the last
    /// worker standing the run fails rather than hangs.
    fn declare_dead(&self, w: usize, reason: &str) {
        let worker = &self.pool.workers()[w];
        if !worker.alive.swap(false, Ordering::SeqCst) {
            return;
        }
        self.counters.workers_dead.fetch_add(1, Ordering::Relaxed);
        let mut board = relock(&self.board);
        let n = board.worker_dead(w);
        self.counters
            .reassigned
            .fetch_add(n as u64, Ordering::Relaxed);
        eprintln!(
            "cluster: worker {} dead ({reason}); reassigned {n} unit(s)",
            worker.addr
        );
        if self.pool.alive_count() == 0 && !board.finished() {
            board.fail(format!(
                "all workers dead (last: {} — {reason})",
                worker.addr
            ));
        }
        drop(board);
        self.cv.notify_all();
    }

    /// One dispatch thread: claim → `POST /v1/experiments` (with the
    /// shared retry client) → complete/requeue/fail, until the board is
    /// finished or this worker dies.
    fn dispatch_loop(&self, w: usize, c: usize) {
        let worker = &self.pool.workers()[w];
        let mut client = RetryClient::new(
            &worker.addr,
            derive_seed(self.cfg.seed, &format!("w{w}/c{c}")),
        )
        .with_read_timeout(self.cfg.task_timeout);
        let mut seen = csd_serve::RetryStats::default();
        loop {
            let claimed = {
                let mut board = relock(&self.board);
                loop {
                    if !worker.alive.load(Ordering::SeqCst) {
                        break None;
                    }
                    if !worker.healthy.load(Ordering::SeqCst) {
                        // Paused, not dead: hold no claim while the
                        // prober decides, so a sick worker cannot sit
                        // on work it may never finish.
                        board = rewait_timeout(&self.cv, board, Duration::from_millis(50));
                        continue;
                    }
                    match board.claim(w, Instant::now()) {
                        Claim::Unit(u) => break Some(u),
                        Claim::Finished => break None,
                        Claim::Wait => {
                            board = rewait_timeout(&self.cv, board, Duration::from_millis(50));
                        }
                    }
                }
            };
            let Some(u) = claimed else { break };
            self.counters.dispatched.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let resp = client.post_json("/v1/experiments", &self.units[u].body, self.cfg.attempts);
            // Fold this request's recovery counters into the worker row.
            let now = client.stats();
            worker
                .retries_503
                .fetch_add(now.retries_503 - seen.retries_503, Ordering::Relaxed);
            worker
                .reconnects
                .fetch_add(now.reconnects - seen.reconnects, Ordering::Relaxed);
            self.counters.transport_retries.fetch_add(
                now.transport_retries - seen.transport_retries,
                Ordering::Relaxed,
            );
            seen = now;
            match resp {
                Ok(r) if r.status == 200 => {
                    worker.record_latency_us(
                        t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
                    );
                    worker.completed.fetch_add(1, Ordering::Relaxed);
                    // Journal before the board lock: the fsync happens
                    // outside the critical section, and a copy that turns
                    // out to be a hedge duplicate journals identical bytes
                    // (the replay layer tolerates exact duplicates).
                    if let Some(hook) = self.on_won {
                        if let Err(e) = hook(u, &r.body) {
                            let mut board = relock(&self.board);
                            board.fail(format!("unit {:?}: {e}", self.units[u].label));
                            drop(board);
                            self.cv.notify_all();
                            break;
                        }
                    }
                    let mut board = relock(&self.board);
                    match board.complete(u, w, r.body) {
                        Completion::Won => {
                            self.counters.completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Completion::Duplicate => {
                            self.counters.hedge_discards.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    drop(board);
                    self.cv.notify_all();
                }
                Ok(r) if r.status == 503 => {
                    // The worker is alive but saturated past the retry
                    // budget; put the unit back and let anyone (this
                    // worker included, later) pick it up.
                    self.counters.requeues_503.fetch_add(1, Ordering::Relaxed);
                    relock(&self.board).requeue(u, w);
                    self.cv.notify_all();
                }
                Ok(r) => {
                    worker.failures.fetch_add(1, Ordering::Relaxed);
                    self.counters.unit_failures.fetch_add(1, Ordering::Relaxed);
                    let mut board = relock(&self.board);
                    if board.unit_failed(u, w, self.cfg.failure_budget) {
                        board.fail(format!(
                            "task {:?}: HTTP {} after {} attempt(s): {}",
                            self.units[u].label,
                            r.status,
                            self.cfg.failure_budget,
                            r.text().trim()
                        ));
                    }
                    drop(board);
                    self.cv.notify_all();
                }
                Err(e) => {
                    // Transport budget exhausted — connection refused,
                    // reset, or timed out `attempts` times in a row.
                    // The worker is gone; sweep it (which re-queues `u`
                    // and everything else it held).
                    worker.failures.fetch_add(1, Ordering::Relaxed);
                    self.declare_dead(w, &format!("{e}"));
                    break;
                }
            }
        }
    }

    /// Ages in-flight units and queues hedge copies for stragglers.
    fn hedge_loop(&self) {
        let threshold = Duration::from_millis(self.cfg.hedge_ms);
        let tick = Duration::from_millis((self.cfg.hedge_ms / 4).clamp(5, 250));
        loop {
            let mut board = relock(&self.board);
            if board.finished() {
                return;
            }
            let n = board.hedge_scan(Instant::now(), threshold);
            if n > 0 {
                self.counters.hedges.fetch_add(n as u64, Ordering::Relaxed);
            }
            board = rewait_timeout(&self.cv, board, tick);
            let done = board.finished();
            drop(board);
            if n > 0 {
                self.cv.notify_all();
            }
            if done {
                return;
            }
        }
    }

    /// Probes every live worker's `/v1/health` each round; flapping
    /// workers are paused, persistently silent ones declared dead.
    fn health_loop(&self) {
        loop {
            if relock(&self.board).finished() {
                return;
            }
            for (w, worker) in self.pool.workers().iter().enumerate() {
                if !worker.alive.load(Ordering::SeqCst) {
                    continue;
                }
                if probe_health(worker, self.cfg.probe_timeout) {
                    worker.probe_failures.store(0, Ordering::Relaxed);
                    if !worker.healthy.swap(true, Ordering::SeqCst) {
                        worker.flaps.fetch_add(1, Ordering::Relaxed);
                        self.cv.notify_all();
                    }
                } else {
                    let misses = worker.probe_failures.fetch_add(1, Ordering::Relaxed) + 1;
                    if worker.healthy.swap(false, Ordering::SeqCst) {
                        worker.flaps.fetch_add(1, Ordering::Relaxed);
                    }
                    if misses >= self.cfg.probe_failures_to_kill.max(1) {
                        self.declare_dead(w, &format!("{misses} failed health probes"));
                    }
                }
            }
            let board = relock(&self.board);
            if board.finished() {
                return;
            }
            drop(rewait_timeout(&self.cv, board, self.cfg.health_interval));
        }
    }

    /// The cluster telemetry document: per-worker rows, the merged fleet
    /// latency view, and the scheduler counters.
    fn telemetry(&self) -> Json {
        let rows: Vec<Json> = self.pool.workers().iter().map(|w| w.to_json()).collect();
        let hists: Vec<Histogram> = self
            .pool
            .workers()
            .iter()
            .map(|w| w.latency_snapshot())
            .collect();
        let flaps: u64 = self
            .pool
            .workers()
            .iter()
            .map(|w| w.flaps.load(Ordering::Relaxed))
            .sum();
        let retries_503: u64 = self
            .pool
            .workers()
            .iter()
            .map(|w| w.retries_503.load(Ordering::Relaxed))
            .sum();
        let reconnects: u64 = self
            .pool
            .workers()
            .iter()
            .map(|w| w.reconnects.load(Ordering::Relaxed))
            .sum();
        let mut counters = self.counters.to_json();
        counters.push_member("retries_503", Json::from(retries_503));
        counters.push_member("reconnects", Json::from(reconnects));
        counters.push_member("health_flaps", Json::from(flaps));
        Json::obj([
            ("units", Json::from(self.units.len() as u64)),
            ("workers", Json::from(self.pool.len() as u64)),
            ("workers_alive", Json::from(self.pool.alive_count() as u64)),
            ("counters", counters),
            (
                "fleet_latency_us",
                Histogram::merged(hists.iter()).to_json(),
            ),
            ("per_worker", Json::Arr(rows)),
        ])
    }
}

/// Runs every unit to completion across the pool and returns the result
/// bodies in unit order plus the cluster telemetry document. Fails —
/// rather than hanging or returning a partial artifact — if every
/// worker dies or a unit exhausts its failure budget.
pub fn run_units(
    pool: &WorkerPool,
    units: &[WorkUnit],
    cfg: &ClusterConfig,
) -> Result<(Vec<Vec<u8>>, Json), ClusterError> {
    run_units_with(pool, units, cfg, None)
}

/// [`run_units`] with an optional per-completion hook (see [`OnWon`]) —
/// the seam the write-ahead journal plugs into.
///
/// # Errors
///
/// Everything [`run_units`] fails on, plus a hook failure.
pub fn run_units_with(
    pool: &WorkerPool,
    units: &[WorkUnit],
    cfg: &ClusterConfig,
    on_won: Option<&OnWon<'_>>,
) -> Result<(Vec<Vec<u8>>, Json), ClusterError> {
    if pool.is_empty() {
        return Err(ClusterError("worker pool is empty".to_string()));
    }
    let shared = Shared {
        board: Mutex::new(Board::new(units.len())),
        cv: Condvar::new(),
        pool,
        units,
        cfg,
        counters: Counters::default(),
        on_won,
    };
    std::thread::scope(|s| {
        for w in 0..pool.len() {
            for c in 0..cfg.window.max(1) {
                let shared = &shared;
                s.spawn(move || shared.dispatch_loop(w, c));
            }
        }
        if cfg.hedge_ms > 0 && pool.len() > 1 {
            let shared = &shared;
            s.spawn(move || shared.hedge_loop());
        }
        {
            let shared = &shared;
            s.spawn(move || shared.health_loop());
        }
    });
    let telemetry = shared.telemetry();
    let board = shared.board.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(msg) = board.failure() {
        return Err(ClusterError(msg.to_string()));
    }
    let mut out = Vec::with_capacity(units.len());
    for (i, r) in board.into_results().into_iter().enumerate() {
        match r {
            Some(bytes) => out.push(bytes),
            None => {
                return Err(ClusterError(format!(
                    "unit {:?} never completed",
                    units[i].label
                )))
            }
        }
    }
    Ok((out, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn dispatch_order_is_grid_order() {
        let mut b = Board::new(4);
        assert_eq!(b.claim(0, now()), Claim::Unit(0));
        assert_eq!(b.claim(1, now()), Claim::Unit(1));
        assert_eq!(b.claim(0, now()), Claim::Unit(2));
        assert_eq!(b.claim(2, now()), Claim::Unit(3));
        assert_eq!(b.claim(0, now()), Claim::Wait);
    }

    #[test]
    fn completion_drains_the_board() {
        let mut b = Board::new(2);
        assert_eq!(b.claim(0, now()), Claim::Unit(0));
        assert_eq!(b.claim(0, now()), Claim::Unit(1));
        assert_eq!(b.complete(0, 0, b"a".to_vec()), Completion::Won);
        assert!(!b.finished());
        assert_eq!(b.complete(1, 0, b"b".to_vec()), Completion::Won);
        assert!(b.finished());
        assert_eq!(b.claim(1, now()), Claim::Finished);
        let results = b.into_results();
        assert_eq!(results[0].as_deref(), Some(b"a".as_slice()));
        assert_eq!(results[1].as_deref(), Some(b"b".as_slice()));
    }

    #[test]
    fn hedge_first_result_wins_loser_discarded_exactly_once() {
        let mut b = Board::new(1);
        let t0 = now();
        assert_eq!(b.claim(0, t0), Claim::Unit(0));
        // Straggler past the threshold: exactly one hedge copy issued,
        // and a rescan does not issue another.
        let later = t0 + Duration::from_millis(100);
        assert_eq!(b.hedge_scan(later, Duration::from_millis(50)), 1);
        assert_eq!(b.hedge_scan(later, Duration::from_millis(50)), 0);
        // The copy must land on a *different* worker.
        assert_eq!(b.claim(0, later), Claim::Wait);
        assert_eq!(b.claim(1, later), Claim::Unit(0));
        // First result wins; the loser is a duplicate exactly once.
        assert_eq!(b.complete(0, 1, b"winner".to_vec()), Completion::Won);
        assert_eq!(b.complete(0, 0, b"loser".to_vec()), Completion::Duplicate);
        assert!(b.finished());
        assert_eq!(b.into_results()[0].as_deref(), Some(b"winner".as_slice()));
    }

    #[test]
    fn hedge_skips_done_queued_and_multi_holder_units() {
        let mut b = Board::new(3);
        let t0 = now();
        assert_eq!(b.claim(0, t0), Claim::Unit(0));
        assert_eq!(b.claim(1, t0), Claim::Unit(1));
        b.complete(1, 1, b"done".to_vec());
        // Unit 2 still queued, unit 1 done, unit 0 in flight → 1 hedge.
        let later = t0 + Duration::from_secs(1);
        assert_eq!(b.hedge_scan(later, Duration::from_millis(1)), 1);
    }

    #[test]
    fn dead_worker_reassigns_all_outstanding_units() {
        let mut b = Board::new(3);
        assert_eq!(b.claim(0, now()), Claim::Unit(0));
        assert_eq!(b.claim(0, now()), Claim::Unit(1));
        assert_eq!(b.claim(1, now()), Claim::Unit(2));
        assert_eq!(b.worker_dead(0), 2);
        // Reassigned units are claimable again (by any worker, in order).
        assert_eq!(b.claim(1, now()), Claim::Unit(0));
        assert_eq!(b.claim(1, now()), Claim::Unit(1));
        // Sweeping again is a no-op.
        assert_eq!(b.worker_dead(0), 0);
    }

    #[test]
    fn requeue_is_idempotent_and_respects_other_holders() {
        let mut b = Board::new(1);
        let t0 = now();
        assert_eq!(b.claim(0, t0), Claim::Unit(0));
        assert_eq!(b.hedge_scan(t0 + Duration::from_secs(1), Duration::ZERO), 1);
        assert_eq!(b.claim(1, t0), Claim::Unit(0));
        // Worker 0's copy fails in transit, but worker 1 still holds it:
        // no re-queue.
        b.requeue(0, 0);
        assert_eq!(b.claim(2, t0), Claim::Wait);
        // Worker 1's copy also dies → now it queues, exactly once even
        // if both paths re-queue.
        b.requeue(0, 1);
        b.requeue(0, 1);
        assert_eq!(b.claim(2, t0), Claim::Unit(0));
        assert_eq!(b.claim(3, t0), Claim::Wait);
    }

    #[test]
    fn unit_failure_budget_turns_fatal() {
        let mut b = Board::new(1);
        assert_eq!(b.claim(0, now()), Claim::Unit(0));
        assert!(!b.unit_failed(0, 0, 3));
        assert_eq!(b.claim(0, now()), Claim::Unit(0), "re-queued under budget");
        assert!(!b.unit_failed(0, 0, 3));
        assert_eq!(b.claim(0, now()), Claim::Unit(0));
        assert!(b.unit_failed(0, 0, 3), "third strike is fatal");
        b.fail("task failed".to_string());
        assert!(b.finished());
        assert_eq!(b.claim(1, now()), Claim::Finished);
        assert_eq!(b.failure(), Some("task failed"));
    }

    #[test]
    fn stale_queue_entries_for_done_units_are_dropped() {
        let mut b = Board::new(2);
        let t0 = now();
        assert_eq!(b.claim(0, t0), Claim::Unit(0));
        assert_eq!(b.hedge_scan(t0 + Duration::from_secs(1), Duration::ZERO), 1);
        // The original finishes while the hedge copy is still queued.
        assert_eq!(b.complete(0, 0, b"x".to_vec()), Completion::Won);
        // The stale entry is skipped straight to unit 1.
        assert_eq!(b.claim(1, t0), Claim::Unit(1));
    }

    #[test]
    fn first_failure_message_wins() {
        let mut b = Board::new(1);
        b.fail("first".to_string());
        b.fail("second".to_string());
        assert_eq!(b.failure(), Some("first"));
    }

    #[test]
    fn run_units_rejects_an_empty_pool() {
        let pool = WorkerPool::from_addrs::<&str>(&[]);
        let err = run_units(&pool, &[], &ClusterConfig::default());
        assert!(err.is_err());
    }
}
