//! Architectural state and flat memory.

use csd_uops::UReg;
use mx86_isa::{Cc, Gpr, Xmm};
use std::collections::HashMap;

/// The architectural flags produced by flag-writing µops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl Flags {
    /// Evaluates a condition code against these flags.
    pub fn eval(&self, cc: Cc) -> bool {
        cc.eval(self.zf, self.sf, self.cf, self.of)
    }
}

/// Architectural plus decoder-internal register state.
///
/// The scalar/vector *temporaries* belong to the decoder, not the ISA: they
/// are scratch space for µop flows (including decoy and devectorized flows)
/// and are unobservable from software.
#[derive(Debug, Clone)]
pub struct ArchState {
    /// General-purpose registers.
    pub gprs: [u64; Gpr::COUNT],
    /// 128-bit vector registers as (low, high) 64-bit halves.
    pub xmms: [(u64, u64); Xmm::COUNT],
    /// Architectural flags.
    pub flags: Flags,
    /// Decoder-internal scalar temporaries.
    pub tmps: [u64; UReg::TMP_COUNT],
    /// Decoder-internal vector temporaries.
    pub vtmps: [(u64, u64); UReg::VTMP_COUNT],
    /// Program counter.
    pub rip: u64,
}

impl ArchState {
    /// Zeroed state starting at `entry`.
    pub fn new(entry: u64) -> ArchState {
        ArchState {
            gprs: [0; Gpr::COUNT],
            xmms: [(0, 0); Xmm::COUNT],
            flags: Flags::default(),
            tmps: [0; UReg::TMP_COUNT],
            vtmps: [(0, 0); UReg::VTMP_COUNT],
            rip: entry,
        }
    }

    /// Reads a 64-bit register (low half for vector registers).
    pub fn read(&self, r: UReg) -> u64 {
        match r {
            UReg::Gpr(g) => self.gprs[g.index()],
            UReg::Tmp(i) => self.tmps[i as usize],
            UReg::Xmm(x) => self.xmms[x.index()].0,
            UReg::VTmp(i) => self.vtmps[i as usize].0,
        }
    }

    /// Writes a 64-bit register (low half for vector registers).
    pub fn write(&mut self, r: UReg, v: u64) {
        match r {
            UReg::Gpr(g) => self.gprs[g.index()] = v,
            UReg::Tmp(i) => self.tmps[i as usize] = v,
            UReg::Xmm(x) => self.xmms[x.index()].0 = v,
            UReg::VTmp(i) => self.vtmps[i as usize].0 = v,
        }
    }

    /// Reads a full 128-bit vector register.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a vector register.
    pub fn read_v(&self, r: UReg) -> (u64, u64) {
        match r {
            UReg::Xmm(x) => self.xmms[x.index()],
            UReg::VTmp(i) => self.vtmps[i as usize],
            other => panic!("{other} is not a vector register"),
        }
    }

    /// Writes a full 128-bit vector register.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a vector register.
    pub fn write_v(&mut self, r: UReg, v: (u64, u64)) {
        match r {
            UReg::Xmm(x) => self.xmms[x.index()] = v,
            UReg::VTmp(i) => self.vtmps[i as usize] = v,
            other => panic!("{other} is not a vector register"),
        }
    }

    /// Convenience accessor for a GPR.
    pub fn gpr(&self, g: Gpr) -> u64 {
        self.gprs[g.index()]
    }

    /// Convenience setter for a GPR.
    pub fn set_gpr(&mut self, g: Gpr, v: u64) {
        self.gprs[g.index()] = v;
    }
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse, byte-addressed flat memory. Unmapped bytes read as zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Reads `len` (≤ 8) bytes little-endian.
    pub fn read_le(&self, addr: u64, len: u64) -> u64 {
        debug_assert!(len <= 8);
        let mut v = 0u64;
        for i in 0..len {
            v |= u64::from(self.read_u8(addr + i)) << (8 * i);
        }
        v
    }

    /// Writes the low `len` (≤ 8) bytes of `v` little-endian.
    pub fn write_le(&mut self, addr: u64, len: u64, v: u64) {
        debug_assert!(len <= 8);
        for i in 0..len {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Reads a 128-bit value as (low, high) halves.
    pub fn read_u128(&self, addr: u64) -> (u64, u64) {
        (self.read_le(addr, 8), self.read_le(addr + 8, 8))
    }

    /// Writes a 128-bit value from (low, high) halves.
    pub fn write_u128(&mut self, addr: u64, v: (u64, u64)) {
        self.write_le(addr, 8, v.0);
        self.write_le(addr + 8, 8, v.1);
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes into a vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Number of mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip_le() {
        let mut m = Memory::new();
        m.write_le(0x1000, 8, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_le(0x1000, 8), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_le(0x1000, 4), 0x89AB_CDEF);
        assert_eq!(m.read_u8(0x1000), 0xEF);
        assert_eq!(m.read_u8(0x1007), 0x01);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_le(0xDEAD_0000, 8), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.write_le(0xFFC, 8, u64::MAX);
        assert_eq!(m.read_le(0xFFC, 8), u64::MAX);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn u128_roundtrip() {
        let mut m = Memory::new();
        m.write_u128(0x40, (1, 2));
        assert_eq!(m.read_u128(0x40), (1, 2));
    }

    #[test]
    fn state_vector_halves() {
        let mut s = ArchState::new(0);
        s.write_v(UReg::Xmm(Xmm::new(3)), (0xAA, 0xBB));
        assert_eq!(s.read(UReg::Xmm(Xmm::new(3))), 0xAA);
        s.write(UReg::Xmm(Xmm::new(3)), 0xCC);
        assert_eq!(s.read_v(UReg::Xmm(Xmm::new(3))), (0xCC, 0xBB));
    }

    #[test]
    fn temps_are_separate_from_gprs() {
        let mut s = ArchState::new(0);
        s.write(UReg::Tmp(0), 7);
        assert_eq!(s.gpr(Gpr::Rax), 0);
        assert_eq!(s.read(UReg::Tmp(0)), 7);
    }
}
