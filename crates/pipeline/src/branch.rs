//! Branch prediction: gshare + BTB + return-address stack.

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the gshare pattern table size.
    pub gshare_bits: u32,
    /// BTB entries (direct-mapped).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig {
            gshare_bits: 12,
            btb_entries: 512,
            ras_depth: 16,
        }
    }
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect/return target mispredictions.
    pub target_mispredicts: u64,
}

impl BranchStats {
    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.cond_mispredicts + self.target_mispredicts
    }
}

/// A gshare direction predictor with a direct-mapped BTB and an RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: PredictorConfig,
    counters: Vec<u8>,
    ghr: u64,
    btb: Vec<Option<(u64, u64)>>,
    ras: Vec<u64>,
    stats: BranchStats,
}

impl BranchPredictor {
    /// A predictor with the given configuration.
    pub fn new(cfg: PredictorConfig) -> BranchPredictor {
        BranchPredictor {
            counters: vec![1; 1 << cfg.gshare_bits],
            ghr: 0,
            btb: vec![None; cfg.btb_entries],
            ras: Vec::with_capacity(cfg.ras_depth),
            stats: BranchStats::default(),
            cfg,
        }
    }

    fn pht_index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.cfg.gshare_bits) - 1;
        (((pc >> 2) ^ self.ghr) & mask) as usize
    }

    /// Predicts and trains a conditional branch; returns whether the
    /// direction was mispredicted.
    pub fn predict_conditional(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.cond_branches += 1;
        let idx = self.pht_index(pc);
        let predicted_taken = self.counters[idx] >= 2;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
        let miss = predicted_taken != taken;
        if miss {
            self.stats.cond_mispredicts += 1;
        }
        miss
    }

    /// Predicts and trains an indirect branch target; returns whether the
    /// target was mispredicted.
    pub fn predict_indirect(&mut self, pc: u64, target: u64) -> bool {
        let idx = (pc as usize >> 1) % self.btb.len();
        let hit = matches!(self.btb[idx], Some((tag, t)) if tag == pc && t == target);
        self.btb[idx] = Some((pc, target));
        if !hit {
            self.stats.target_mispredicts += 1;
        }
        !hit
    }

    /// Records a call (pushes the return address).
    pub fn on_call(&mut self, return_addr: u64) {
        if self.ras.len() == self.cfg.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_addr);
    }

    /// Predicts a return target; returns whether it was mispredicted.
    pub fn predict_return(&mut self, actual: u64) -> bool {
        let predicted = self.ras.pop();
        let miss = predicted != Some(actual);
        if miss {
            self.stats.target_mispredicts += 1;
        }
        miss
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_loop() {
        // The GHR churns the PHT index during warm-up; once history
        // saturates the branch must predict perfectly.
        let mut p = BranchPredictor::default();
        let mut late_misses = 0;
        for i in 0..100 {
            let miss = p.predict_conditional(0x1000, true);
            if i >= 50 && miss {
                late_misses += 1;
            }
        }
        assert_eq!(late_misses, 0, "steady taken branch must be learned");
    }

    #[test]
    fn alternating_pattern_is_learned_via_history() {
        let mut p = BranchPredictor::default();
        let mut late_misses = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let miss = p.predict_conditional(0x2000, taken);
            if i >= 200 && miss {
                late_misses += 1;
            }
        }
        assert!(
            late_misses < 40,
            "history should capture alternation, got {late_misses}"
        );
    }

    #[test]
    fn ras_predicts_matched_calls() {
        let mut p = BranchPredictor::default();
        p.on_call(0x100);
        p.on_call(0x200);
        assert!(!p.predict_return(0x200));
        assert!(!p.predict_return(0x100));
        assert!(p.predict_return(0x300), "empty RAS mispredicts");
    }

    #[test]
    fn btb_learns_indirect_targets() {
        let mut p = BranchPredictor::default();
        assert!(p.predict_indirect(0x40, 0x1000), "cold BTB misses");
        assert!(!p.predict_indirect(0x40, 0x1000));
        assert!(p.predict_indirect(0x40, 0x2000), "target change misses");
    }

    #[test]
    fn stats_accumulate() {
        let mut p = BranchPredictor::default();
        p.predict_conditional(0, true);
        p.predict_return(0x10);
        let s = p.stats();
        assert_eq!(s.cond_branches, 1);
        assert_eq!(s.mispredicts(), s.cond_mispredicts + s.target_mispredicts);
    }
}
