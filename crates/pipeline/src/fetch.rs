//! Fetch stage: resolve the PC to a placed instruction and charge the
//! L1I for every cache line the encoding spans.

use crate::core::{Core, StepOutcome};
use crate::stage::StageCtx;
use csd_cache::AccessKind;

/// Fetches the instruction at the current PC. Returns the stage context
/// for the rest of the pipeline, or the fault outcome when the PC does
/// not resolve to an instruction start.
#[inline]
pub(crate) fn run(core: &mut Core) -> Result<StageCtx, StepOutcome> {
    let placed = match core.program.fetch(core.state.rip) {
        Some(p) => *p,
        None => return Err(StepOutcome::Fault(core.state.rip)),
    };

    // Touch every line the encoding spans; the penalty is the worst
    // beyond-L1I latency among them (lines fill in parallel).
    let line = core.cfg.hierarchy.l1i.line_bytes as u64;
    let first = placed.addr & !(line - 1);
    let last = (placed.addr + u64::from(placed.inst.len()) - 1) & !(line - 1);
    let mut fetch_penalty = 0.0;
    let mut a = first;
    while a <= last {
        let r = core.hier.access(a, AccessKind::InstFetch);
        if !r.l1_hit() {
            fetch_penalty = f64::max(
                fetch_penalty,
                (r.latency - core.cfg.hierarchy.l1i.latency) as f64,
            );
        }
        a += line;
    }
    Ok(StageCtx::new(placed, fetch_penalty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreConfig, SimMode};
    use csd::CsdConfig;
    use mx86_isa::{Assembler, Gpr};

    fn core() -> Core {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rax, 7);
        a.halt();
        Core::new(
            CoreConfig::default(),
            CsdConfig::default(),
            a.finish().unwrap(),
            SimMode::Cycle,
        )
    }

    #[test]
    fn fetch_resolves_the_entry_instruction() {
        let mut c = core();
        let ctx = run(&mut c).expect("entry fetch");
        assert_eq!(ctx.placed.addr, 0x1000);
        assert!(ctx.decode.is_none() && ctx.flow_end.is_none());
    }

    #[test]
    fn cold_fetch_pays_a_penalty_warm_fetch_does_not() {
        let mut c = core();
        let cold = run(&mut c).unwrap();
        assert!(cold.fetch_penalty > 0.0, "first touch misses L1I");
        let warm = run(&mut c).unwrap();
        assert_eq!(warm.fetch_penalty, 0.0, "second touch hits L1I");
    }

    #[test]
    fn bad_pc_faults() {
        let mut c = core();
        c.state.rip = 0xDEAD;
        assert_eq!(run(&mut c).unwrap_err(), StepOutcome::Fault(0xDEAD));
    }
}
