//! The micro-op cache (paper §III-A/B).
//!
//! An 8-way set-associative structure holding up to 1536 µops as lines of
//! six fused µops, indexed by 32-byte code window. Two constraints from the
//! real design are kept (paper §III-B): a 32-byte window may occupy at most
//! three ways, and instructions longer than six fused µops are not cached.
//!
//! CSD extends each way's tag with *context bits* identifying the decoder
//! (translation mode) that produced it: a window cached under one context
//! does not hit under another, creating (intentional) context conflict
//! misses instead of stale-translation streaming.

use csd::ContextId;

/// Statistics for the µop cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UopCacheStats {
    /// Window lookups.
    pub lookups: u64,
    /// Window hits (same window, same context).
    pub hits: u64,
    /// Lookups that found the window cached under a *different* context
    /// (counted as misses; the paper's artificial conflict misses).
    pub context_conflicts: u64,
    /// Windows inserted.
    pub inserts: u64,
    /// Windows rejected as uncacheable (over-long or custom flows).
    pub rejected: u64,
}

impl UopCacheStats {
    /// Hit rate over lookups, if any.
    pub fn hit_rate(&self) -> Option<f64> {
        (self.lookups > 0).then(|| self.hits as f64 / self.lookups as f64)
    }
}

impl csd_telemetry::ToJson for UopCacheStats {
    fn to_json(&self) -> csd_telemetry::Json {
        csd_telemetry::Json::obj([
            ("lookups", csd_telemetry::Json::from(self.lookups)),
            ("hits", csd_telemetry::Json::from(self.hits)),
            (
                "context_conflicts",
                csd_telemetry::Json::from(self.context_conflicts),
            ),
            ("inserts", csd_telemetry::Json::from(self.inserts)),
            ("rejected", csd_telemetry::Json::from(self.rejected)),
            ("hit_rate", csd_telemetry::Json::from(self.hit_rate())),
        ])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    window: u64,
    ctx: ContextId,
    ways_used: usize,
    fused_uops: u32,
    stamp: u64,
}

/// The micro-op cache model.
///
/// Timing- and occupancy-only: the µop *content* always comes from the decode path
/// (translations are deterministic), so the cache tracks which windows are
/// resident, under which context, and how many ways they occupy.
#[derive(Debug, Clone)]
pub struct UopCache {
    sets: Vec<Vec<Entry>>,
    ways: usize,
    line_uops: usize,
    max_lines: usize,
    clock: u64,
    stats: UopCacheStats,
}

impl UopCache {
    /// A µop cache with `sets` sets of `ways` ways, `line_uops` fused µops
    /// per line, and at most `max_lines` lines per window.
    pub fn new(sets: usize, ways: usize, line_uops: usize, max_lines: usize) -> UopCache {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        UopCache {
            sets: vec![Vec::new(); sets],
            ways,
            line_uops,
            max_lines,
            clock: 0,
            stats: UopCacheStats::default(),
        }
    }

    /// The 32-byte window address of a PC.
    pub fn window_of(pc: u64) -> u64 {
        pc >> 5
    }

    fn set_of(&self, window: u64) -> usize {
        (window as usize) & (self.sets.len() - 1)
    }

    /// Looks up a window under a context. A hit means the front end can
    /// stream this window's µops without the legacy pipeline.
    pub fn lookup(&mut self, window: u64, ctx: ContextId) -> bool {
        self.stats.lookups += 1;
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(window);
        let mut same_window_other_ctx = false;
        for e in &mut self.sets[set] {
            if e.window == window {
                if e.ctx == ctx {
                    e.stamp = clock;
                    self.stats.hits += 1;
                    return true;
                }
                same_window_other_ctx = true;
            }
        }
        if same_window_other_ctx {
            self.stats.context_conflicts += 1;
        }
        false
    }

    /// Inserts a decoded window. `fused_uops` is the window's total fused
    /// µop count; `cacheable` is false if any instruction's translation was
    /// not allowed in the µop cache.
    pub fn insert(&mut self, window: u64, ctx: ContextId, fused_uops: u32, cacheable: bool) {
        let lines = (fused_uops as usize).div_ceil(self.line_uops).max(1);
        if !cacheable || lines > self.max_lines {
            self.stats.rejected += 1;
            // An uncacheable rebuild invalidates any stale copy.
            let set = self.set_of(window);
            self.sets[set].retain(|e| !(e.window == window && e.ctx == ctx));
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        let set_idx = self.set_of(window);
        let set = &mut self.sets[set_idx];
        set.retain(|e| !(e.window == window && e.ctx == ctx));
        let used: usize = set.iter().map(|e| e.ways_used).sum();
        let mut free = self.ways - used;
        while free < lines {
            // Evict the LRU entry.
            let (lru_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .expect("set cannot be empty while short on ways");
            free += set[lru_idx].ways_used;
            set.remove(lru_idx);
        }
        set.push(Entry {
            window,
            ctx,
            ways_used: lines,
            fused_uops,
            stamp,
        });
        self.stats.inserts += 1;
    }

    /// Invalidates everything (e.g. on microcode update).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &UopCacheStats {
        &self.stats
    }

    /// Resets statistics (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = UopCacheStats::default();
    }

    /// Total µops currently resident (diagnostics).
    pub fn resident_uops(&self) -> u32 {
        self.sets.iter().flatten().map(|e| e.fused_uops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> UopCache {
        UopCache::new(32, 8, 6, 3)
    }

    #[test]
    fn miss_then_hit_same_context() {
        let mut c = cache();
        assert!(!c.lookup(0x40, ContextId::Native));
        c.insert(0x40, ContextId::Native, 10, true);
        assert!(c.lookup(0x40, ContextId::Native));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn context_mismatch_is_a_conflict_miss() {
        let mut c = cache();
        c.insert(0x40, ContextId::Native, 6, true);
        assert!(!c.lookup(0x40, ContextId::Devectorize));
        assert_eq!(c.stats().context_conflicts, 1);
        // Both contexts may co-reside (the paper's co-location benefit).
        c.insert(0x40, ContextId::Devectorize, 6, true);
        assert!(c.lookup(0x40, ContextId::Native));
        assert!(c.lookup(0x40, ContextId::Devectorize));
    }

    #[test]
    fn windows_over_three_lines_are_rejected() {
        let mut c = cache();
        c.insert(0x40, ContextId::Native, 19, true); // 4 lines
        assert!(!c.lookup(0x40, ContextId::Native));
        assert_eq!(c.stats().rejected, 1);
        c.insert(0x41, ContextId::Native, 18, true); // exactly 3 lines
        assert!(c.lookup(0x41, ContextId::Native));
    }

    #[test]
    fn uncacheable_insert_purges_stale_copy() {
        let mut c = cache();
        c.insert(0x40, ContextId::Native, 6, true);
        assert!(c.lookup(0x40, ContextId::Native));
        c.insert(0x40, ContextId::Native, 6, false);
        assert!(!c.lookup(0x40, ContextId::Native), "stale window must go");
    }

    #[test]
    fn set_pressure_evicts_lru() {
        let mut c = cache();
        // Windows mapping to the same set: stride = 32 sets.
        let w = |i: u64| 0x100 + i * 32;
        for i in 0..4 {
            c.insert(w(i), ContextId::Native, 12, true); // 2 ways each
        }
        // 8 ways full; touch w(0) so w(1) is LRU.
        assert!(c.lookup(w(0), ContextId::Native));
        c.insert(w(4), ContextId::Native, 12, true);
        assert!(c.lookup(w(0), ContextId::Native));
        assert!(!c.lookup(w(1), ContextId::Native), "LRU window evicted");
        assert!(c.lookup(w(4), ContextId::Native));
    }

    #[test]
    fn reinsert_updates_entry_without_duplication() {
        let mut c = cache();
        c.insert(0x40, ContextId::Native, 6, true);
        c.insert(0x40, ContextId::Native, 12, true);
        assert_eq!(c.resident_uops(), 12);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = cache();
        c.insert(0x40, ContextId::Native, 6, true);
        c.flush();
        assert!(!c.lookup(0x40, ContextId::Native));
        assert_eq!(c.resident_uops(), 0);
    }

    #[test]
    fn window_of_pc() {
        assert_eq!(UopCache::window_of(0x1000), 0x80);
        assert_eq!(UopCache::window_of(0x101F), 0x80);
        assert_eq!(UopCache::window_of(0x1020), 0x81);
    }
}
