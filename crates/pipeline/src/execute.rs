//! Execute stage: functional µop execution plus the timestamp-dataflow
//! back-end timing model (dispatch bandwidth, operand scoreboarding, port
//! contention, ROB occupancy, branch redirects).

use crate::core::{Core, SimMode};
use crate::fu;
use crate::machine::Flags;
use crate::stage::{FlowEnd, StageCtx, UopEffect};
use csd_cache::AccessKind;
use csd_dift::DIFT_L2_TAG_PENALTY;
use csd_telemetry::StoreEvent;
use csd_uops::{fusion, DecoyTarget, UReg, Uop, UopKind};
use mx86_isa::{Gpr, Inst, Placed};

/// Executes (and in cycle mode, times) the decoded µop flow.
#[inline]
pub(crate) fn run(core: &mut Core, ctx: &mut StageCtx) {
    let end = {
        let out = ctx.outcome();
        execute_flow(core, &ctx.placed, &out.translation.uops, out.stall_cycles)
    };
    ctx.flow_end = end;
}

fn execute_flow(core: &mut Core, placed: &Placed, uops: &[Uop], stall: u64) -> Option<FlowEnd> {
    let timing = core.mode == SimMode::Cycle;
    let inst_ready = core.fe_time + stall as f64;
    let mut end = None;
    let mut slot_dispatch = inst_ready;

    for (i, u) in uops.iter().enumerate() {
        // Dispatch bandwidth: fused pairs share a slot.
        let in_prev_slot =
            timing && core.cfg.fusion_enabled && i > 0 && fusion::can_micro_fuse(&uops[i - 1], u);
        if timing && !in_prev_slot {
            slot_dispatch = f64::max(
                inst_ready,
                core.last_dispatch + 1.0 / core.cfg.dispatch_width as f64,
            );
            core.last_dispatch = slot_dispatch;
        }

        let (effect, access_latency) = exec_uop(core, u, placed);

        if timing {
            time_uop(core, u, slot_dispatch, access_latency, &effect, placed);
        }

        match effect {
            UopEffect::Halt => {
                end = Some(FlowEnd::Halt);
                break;
            }
            UopEffect::Branch(t) => {
                end = Some(FlowEnd::Branch(t));
                // A taken branch ends the flow (branch µops are last in
                // native flows; decoy branches never produce effects).
                break;
            }
            UopEffect::None => {}
        }
    }
    end
}

/// Functionally executes one µop. Returns its control effect and, for
/// memory µops, the hierarchy access latency.
fn exec_uop(core: &mut Core, u: &Uop, placed: &Placed) -> (UopEffect, u64) {
    // Decoy µops: only the cache touch is real; dataflow stays in
    // temporaries and flags/control are suppressed.
    if let Some(target) = u.decoy {
        return match u.kind {
            UopKind::Ld => {
                let ea = ea(core, u);
                let kind = match target {
                    DecoyTarget::Data => AccessKind::DataRead,
                    DecoyTarget::Inst => AccessKind::InstFetch,
                };
                let r = core.hier.access(ea, kind);
                if let Some(d) = u.dst {
                    let v = core
                        .mem
                        .read_le(ea, u.mem.map_or(1, |m| m.width.bytes().min(8)));
                    core.state.write(d, v);
                }
                (UopEffect::None, r.latency)
            }
            UopKind::MovImm => {
                if let Some(d) = u.dst {
                    core.state.write(d, u.imm.unwrap_or(0) as u64);
                }
                (UopEffect::None, 0)
            }
            UopKind::Alu(op) => {
                let a = u.src1.map_or(0, |r| core.state.read(r));
                let b = u
                    .src2
                    .map(|r| core.state.read(r))
                    .unwrap_or(u.imm.unwrap_or(0) as u64);
                let (res, _) = fu::alu(op, a, b);
                if let Some(d) = u.dst {
                    core.state.write(d, res);
                }
                (UopEffect::None, 0)
            }
            // Decoy branches are sequencing artifacts of the unrolled
            // micro-loop: no control effect.
            _ => (UopEffect::None, 0),
        };
    }

    let dift_ea = |u: &Uop, ea: Option<u64>| ea.filter(|_| u.mem.is_some());
    let mut effect = UopEffect::None;
    let mut access_latency = 0u64;

    match u.kind {
        UopKind::Nop => {}
        UopKind::Mov => {
            let v = core.state.read(u.src1.expect("mov has src"));
            core.state.write(u.dst.expect("mov has dst"), v);
            core.dift.propagate(u, None);
        }
        UopKind::MovImm => {
            core.state
                .write(u.dst.expect("movimm has dst"), u.imm.unwrap_or(0) as u64);
            core.dift.propagate(u, None);
        }
        UopKind::Alu(op) => {
            let a = u.src1.map_or(0, |r| core.state.read(r));
            let b = u
                .src2
                .map(|r| core.state.read(r))
                .unwrap_or(u.imm.unwrap_or(0) as u64);
            let (res, flags) = fu::alu(op, a, b);
            if let Some(d) = u.dst {
                core.state.write(d, res);
            }
            if !u.no_flags {
                core.state.flags = flags;
            }
            core.dift.propagate(u, None);
        }
        UopKind::Mul => {
            let a = u.src1.map_or(0, |r| core.state.read(r));
            let b = u
                .src2
                .map(|r| core.state.read(r))
                .unwrap_or(u.imm.unwrap_or(0) as u64);
            let (res, flags) = fu::mul(a, b);
            if let Some(d) = u.dst {
                core.state.write(d, res);
            }
            if !u.no_flags {
                core.state.flags = flags;
            }
            core.dift.propagate(u, None);
        }
        UopKind::FAlu(op, w) => {
            let a = core.state.read(u.src1.expect("falu src1"));
            let b = core.state.read(u.src2.expect("falu src2"));
            let res = match w {
                csd_uops::FWidth::S => {
                    let (fa, fb) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
                    let r = match op {
                        csd_uops::FOp::Add => fa + fb,
                        csd_uops::FOp::Sub => fa - fb,
                        csd_uops::FOp::Mul => fa * fb,
                    };
                    u64::from(r.to_bits())
                }
                csd_uops::FWidth::D => {
                    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                    let r = match op {
                        csd_uops::FOp::Add => fa + fb,
                        csd_uops::FOp::Sub => fa - fb,
                        csd_uops::FOp::Mul => fa * fb,
                    };
                    r.to_bits()
                }
            };
            core.state.write(u.dst.expect("falu dst"), res);
            core.dift.propagate(u, None);
        }
        UopKind::DivQ | UopKind::DivR => {
            let a = core.state.read(u.src1.expect("div src1"));
            let b = core.state.read(u.src2.expect("div src2"));
            let res = if b == 0 {
                0
            } else if u.kind == UopKind::DivQ {
                a / b
            } else {
                a % b
            };
            if let Some(d) = u.dst {
                core.state.write(d, res);
            }
            core.state.flags = Flags {
                zf: res == 0,
                sf: false,
                cf: false,
                of: false,
            };
            core.dift.propagate(u, None);
        }
        UopKind::Ld => {
            let ea = ea(core, u);
            let w = u.mem.expect("load has mem").width.bytes();
            let r = core.hier.access(ea, AccessKind::DataRead);
            access_latency = r.latency + dift_penalty(core);
            let v = core.mem.read_le(ea, w.min(8));
            core.state.write(u.dst.expect("load has dst"), v);
            core.dift.propagate(u, dift_ea(u, Some(ea)));
            core.stats.load_uops += 1;
        }
        UopKind::St => {
            let ea = ea(core, u);
            let w = u.mem.expect("store has mem").width.bytes();
            core.hier.access(ea, AccessKind::DataWrite);
            let v = core.state.read(u.src1.expect("store has src"));
            core.mem.write_le(ea, w.min(8), v);
            emit_store(core, ea, w.min(8), v);
            core.dift.propagate(u, Some(ea));
            core.stats.store_uops += 1;
            access_latency = 1;
        }
        UopKind::Lea => {
            let ea = ea(core, u);
            core.state.write(u.dst.expect("lea has dst"), ea);
            core.dift.propagate(u, None);
        }
        UopKind::VLd => {
            let ea = ea(core, u);
            let r = core.hier.access(ea, AccessKind::DataRead);
            access_latency = r.latency + dift_penalty(core);
            let v = core.mem.read_u128(ea);
            core.state.write_v(u.dst.expect("vld has dst"), v);
            core.dift.propagate(u, Some(ea));
            core.stats.load_uops += 1;
        }
        UopKind::VSt => {
            let ea = ea(core, u);
            core.hier.access(ea, AccessKind::DataWrite);
            let v = core.state.read_v(u.src1.expect("vst has src"));
            core.mem.write_u128(ea, v);
            emit_store(core, ea, 8, v.0);
            emit_store(core, ea.wrapping_add(8), 8, v.1);
            core.dift.propagate(u, Some(ea));
            core.stats.store_uops += 1;
            access_latency = 1;
        }
        UopKind::VMov => {
            let v = core.state.read_v(u.src1.expect("vmov src"));
            core.state.write_v(u.dst.expect("vmov dst"), v);
            core.dift.propagate(u, None);
        }
        UopKind::VAlu(op) => {
            let a = core.state.read_v(u.src1.expect("valu src1"));
            let b = core.state.read_v(u.src2.expect("valu src2"));
            let r = fu::valu(op, a, b);
            core.state.write_v(u.dst.expect("valu dst"), r);
            core.dift.propagate(u, None);
            core.stats.vpu_uops += 1;
        }
        UopKind::VExtractQ => {
            let v = core.state.read_v(u.src1.expect("vextract src"));
            let half = if u.imm.unwrap_or(0) == 0 { v.0 } else { v.1 };
            core.state.write(u.dst.expect("vextract dst"), half);
            core.dift.propagate(u, None);
        }
        UopKind::VInsertQ => {
            let d = u.dst.expect("vinsert dst");
            let mut v = core.state.read_v(d);
            let s = core.state.read(u.src1.expect("vinsert src"));
            if u.imm.unwrap_or(0) == 0 {
                v.0 = s;
            } else {
                v.1 = s;
            }
            core.state.write_v(d, v);
            core.dift.propagate(u, None);
        }
        UopKind::Br(cc) => {
            let taken = core.state.flags.eval(cc);
            core.dift.propagate(u, None);
            let target = u.imm.expect("br has target") as u64;
            let miss = core.bp.predict_conditional(placed.addr, taken);
            if taken {
                effect = UopEffect::Branch(target);
            }
            core.pending_mispredict = miss;
        }
        UopKind::JmpImm => {
            let target = u.imm.expect("jmp has target") as u64;
            if matches!(placed.inst, Inst::Call { .. }) {
                core.bp.on_call(placed.next_addr());
            }
            effect = UopEffect::Branch(target);
            core.pending_mispredict = false;
        }
        UopKind::JmpReg => {
            let target = core.state.read(u.src1.expect("jmpreg src"));
            let miss = match placed.inst {
                Inst::Ret => core.bp.predict_return(target),
                _ => core.bp.predict_indirect(placed.addr, target),
            };
            core.dift.propagate(u, None);
            effect = UopEffect::Branch(target);
            core.pending_mispredict = miss;
        }
        UopKind::PushImm | UopKind::Push => {
            // x86 order: the pushed value is read before rsp moves, so
            // `push rsp` stores the pre-decrement stack pointer.
            let v = match u.kind {
                UopKind::PushImm => u.imm.unwrap_or(0) as u64,
                _ => core.state.read(u.src1.expect("push src")),
            };
            let rsp = core.state.gpr(Gpr::Rsp).wrapping_sub(8);
            core.state.set_gpr(Gpr::Rsp, rsp);
            core.hier.access(rsp, AccessKind::DataWrite);
            core.mem.write_le(rsp, 8, v);
            emit_store(core, rsp, 8, v);
            core.dift.propagate(u, Some(rsp));
            core.stats.store_uops += 1;
            access_latency = 1;
        }
        UopKind::Pop => {
            let rsp = core.state.gpr(Gpr::Rsp);
            let r = core.hier.access(rsp, AccessKind::DataRead);
            access_latency = r.latency + dift_penalty(core);
            let v = core.mem.read_le(rsp, 8);
            // x86 order: rsp is incremented before the destination write,
            // so `pop rsp` ends up holding the loaded value.
            core.state.set_gpr(Gpr::Rsp, rsp.wrapping_add(8));
            core.state.write(u.dst.expect("pop dst"), v);
            core.dift.propagate(u, Some(rsp));
            core.stats.load_uops += 1;
        }
        UopKind::Clflush => {
            let ea = ea(core, u);
            core.hier.flush(ea);
            access_latency = 4;
        }
        UopKind::Rdtsc => {
            let c = core.cycles();
            core.state.write(u.dst.expect("rdtsc dst"), c);
        }
        UopKind::Wrmsr => {
            let msr = u.imm.expect("wrmsr msr") as u32;
            let v = core.state.read(u.src1.expect("wrmsr src"));
            core.engine.write_msr(msr, v);
        }
        UopKind::Rdmsr => {
            let msr = u.imm.expect("rdmsr msr") as u32;
            let v = core.engine.read_msr(msr);
            core.state.write(u.dst.expect("rdmsr dst"), v);
        }
        UopKind::Halt => {
            effect = UopEffect::Halt;
        }
    }
    (effect, access_latency)
}

/// Emits an ordered architectural-store event (the cosimulation oracle
/// compares this stream against the reference interpreter's).
fn emit_store(core: &mut Core, addr: u64, len: u64, value: u64) {
    if core.sink.is_attached() {
        let ev = StoreEvent {
            addr,
            len: len as u32,
            value: if len >= 8 {
                value
            } else {
                value & ((1u64 << (8 * len)) - 1)
            },
        };
        core.sink.with(|s| s.on_store(&ev));
    }
}

fn dift_penalty(core: &Core) -> u64 {
    if core.cfg.dift_enabled {
        DIFT_L2_TAG_PENALTY
    } else {
        0
    }
}

fn ea(core: &Core, u: &Uop) -> u64 {
    let m = u.mem.expect("memory µop without operand");
    m.effective_address(|r| core.state.read(r))
}

/// Back-end timing for one µop.
fn time_uop(
    core: &mut Core,
    u: &Uop,
    dispatch: f64,
    access_latency: u64,
    effect: &UopEffect,
    _placed: &Placed,
) {
    // ROB occupancy: dispatch may not pass the completion of the µop
    // rob_entries back.
    let mut ready = dispatch;
    if core.rob.len() >= core.cfg.rob_entries {
        if let Some(head) = core.rob.pop_front() {
            ready = f64::max(ready, head);
        }
    }
    // Operand readiness.
    for src in [u.src1, u.src2].into_iter().flatten() {
        if let Some(&t) = core.sched.get(&src) {
            ready = f64::max(ready, t);
        }
    }
    if let Some(m) = u.mem {
        for r in m.base.into_iter().chain(m.index.map(|(r, _)| r)) {
            if let Some(&t) = core.sched.get(&r) {
                ready = f64::max(ready, t);
            }
        }
    }
    if matches!(u.kind, UopKind::Br(_)) {
        ready = f64::max(ready, core.flags_ready);
    }

    // Port selection and latency.
    let (lat, occupy, port): (f64, f64, &mut Vec<f64>) = match u.kind {
        UopKind::Ld | UopKind::VLd | UopKind::Pop => {
            (access_latency as f64, 1.0, &mut core.load_ports)
        }
        UopKind::St | UopKind::VSt | UopKind::Push | UopKind::PushImm => {
            (1.0, 1.0, &mut core.store_ports)
        }
        UopKind::VAlu(op) => {
            let l = if op.is_multiply() || op.is_float() {
                core.cfg.vec_mul_latency
            } else {
                core.cfg.vec_latency
            };
            (l as f64, 1.0, &mut core.vec_ports)
        }
        UopKind::Mul => (core.cfg.mul_latency as f64, 1.0, &mut core.alu_ports),
        UopKind::DivQ | UopKind::DivR => {
            let l = core.cfg.div_latency as f64;
            (l, l, &mut core.alu_ports)
        }
        UopKind::FAlu(..) => (core.cfg.falu_latency as f64, 1.0, &mut core.alu_ports),
        UopKind::Clflush => (access_latency as f64, 1.0, &mut core.store_ports),
        _ => (core.cfg.alu_latency as f64, 1.0, &mut core.alu_ports),
    };
    // Acquire the earliest-free unit of the class.
    let (idx, unit_free) =
        port.iter()
            .copied()
            .enumerate()
            .fold((0usize, f64::INFINITY), |acc, (i, t)| {
                if t < acc.1 {
                    (i, t)
                } else {
                    acc
                }
            });
    let issue = f64::max(ready, unit_free);
    port[idx] = issue + occupy;
    let done = issue + lat.max(1.0);

    // Writeback.
    if let Some(d) = u.dst {
        core.sched.insert(d, done);
    }
    if u.kind.writes_flags() && !u.is_decoy() && !u.no_flags {
        core.flags_ready = done;
    }
    // Stack-pointer updates by push/pop.
    if matches!(u.kind, UopKind::Push | UopKind::PushImm | UopKind::Pop) {
        core.sched.insert(UReg::Gpr(Gpr::Rsp), done);
    }

    // Branch resolution and redirect.
    if u.kind.is_branch() && !u.is_decoy() {
        if core.pending_mispredict {
            core.fe_time = f64::max(core.fe_time, done + core.cfg.mispredict_penalty as f64);
            core.pending_mispredict = false;
        }
        let _ = effect;
    }

    core.rob.push_back(done);
    core.last_commit = f64::max(done, core.last_commit + 1.0 / core.cfg.commit_width as f64);
}
