//! # csd-pipeline — the cycle-level core model and functional engine
//!
//! An execution-driven simulator of a Sandy-Bridge-style out-of-order core
//! with the context-sensitive decoding engine integrated at the decode
//! stage (paper §III/VI, Table I):
//!
//! - 16-byte fetch with L1I modeling, 18-entry macro-op queue;
//! - four legacy decoders (1 complex + 3 simple) and an MSROM sequencer;
//! - a 1536-µop, 8-way micro-op cache with CSD *context bits* in the tags;
//! - micro-op fusion and `cmp+jcc` macro-fusion;
//! - a timestamp-dataflow back end: 4-wide dispatch, scoreboarded
//!   dependencies, port contention (3 ALU / 2 load / 1 store / 2 vector),
//!   168-entry ROB occupancy, 4-wide commit;
//! - gshare + BTB + RAS branch prediction with redirect penalties;
//! - the full cache hierarchy, DIFT, and the McPAT-style activity counters
//!   consumed by `csd-power`.
//!
//! The same core runs in [`SimMode::Functional`] for side-channel
//! experiments (cache state exact, timing approximated) and
//! [`SimMode::Cycle`] for the performance/energy studies. Both modes share
//! one decode path and one µop executor, so CSD behaves identically.
//!
//! ```
//! use csd_pipeline::{Core, CoreConfig, SimMode, StepOutcome};
//! use csd::CsdConfig;
//! use mx86_isa::{Assembler, Gpr, AluOp, Cc};
//!
//! # fn main() -> Result<(), mx86_isa::AsmError> {
//! let mut a = Assembler::new(0x1000);
//! let top = a.fresh_label();
//! a.mov_ri(Gpr::Rcx, 100);
//! a.bind(top)?;
//! a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
//! a.jcc(Cc::Ne, top);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut core = Core::new(CoreConfig::default(), CsdConfig::default(), prog, SimMode::Cycle);
//! assert_eq!(core.run(10_000), StepOutcome::Halted);
//! assert_eq!(core.state.gpr(Gpr::Rcx), 0);
//! assert!(core.stats().cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod branch;
mod commit;
mod config;
mod core;
mod decode;
mod execute;
mod fetch;
// `fu` holds the pure functional-unit µop semantics (value/flag
// computation); `execute` is the pipeline *stage* that drives them and
// models timing, ports, and commit.
mod fu;
mod machine;
mod stage;
mod uop_cache;

pub use crate::core::{CheckpointStats, Core, CoreSnapshot, SimMode, SimStats, StepOutcome};
pub use branch::{BranchPredictor, BranchStats, PredictorConfig};
pub use config::CoreConfig;
pub use fu::{alu, mul, valu};
pub use machine::{ArchState, Flags, Memory};
pub use uop_cache::{UopCache, UopCacheStats};
