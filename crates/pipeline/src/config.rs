//! Core configuration — the paper's Table I analogue.

use csd_cache::HierarchyConfig;

/// Front-end, back-end, and memory parameters of the modeled core
/// (Sandy-Bridge-flavoured, matching the paper's baseline).
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Fetch-buffer width in bytes per cycle.
    pub fetch_bytes: u64,
    /// Macro-op queue entries (predecode → decode).
    pub macro_op_queue: usize,
    /// Legacy decoders (one complex + the rest simple).
    pub decoders: usize,
    /// Unfused µops the legacy decoders deliver per cycle.
    pub decode_width_uops: u64,
    /// µops the MSROM sequencer delivers per cycle (exclusive of decoders).
    pub msrom_width_uops: u64,
    /// Extra cycles charged when delivery switches between the µop cache
    /// and the legacy pipeline (the Intel manual's switch penalty).
    pub uop_cache_switch_penalty: f64,
    /// Fused µops streamed from the µop cache per cycle.
    pub uop_cache_width: u64,
    /// Rename/dispatch width in fused µops per cycle.
    pub dispatch_width: u64,
    /// Reorder-buffer capacity (in-flight unfused µops).
    pub rob_entries: usize,
    /// Scalar ALU units.
    pub alu_units: usize,
    /// Load ports.
    pub load_units: usize,
    /// Store ports.
    pub store_units: usize,
    /// Vector execution units (usable only while the VPU is powered).
    pub vector_units: usize,
    /// Commit width (unfused µops per cycle).
    pub commit_width: u64,
    /// Branch mispredict redirect penalty in cycles.
    pub mispredict_penalty: u64,
    /// Scalar ALU latency.
    pub alu_latency: u64,
    /// Multiply latency.
    pub mul_latency: u64,
    /// Divide latency (unpipelined).
    pub div_latency: u64,
    /// Vector ALU latency.
    pub vec_latency: u64,
    /// Vector multiply/float latency.
    pub vec_mul_latency: u64,
    /// Scalar float latency.
    pub falu_latency: u64,
    /// Memory hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// Whether hardware DIFT is active (adds the L2-tag penalty to loads).
    pub dift_enabled: bool,
    /// Micro-op cache capacity in µops.
    pub uop_cache_uops: usize,
    /// Micro-op cache associativity.
    pub uop_cache_ways: usize,
    /// Fused µops per µop-cache line.
    pub uop_cache_line_uops: usize,
    /// Maximum lines a 32-byte code window may occupy.
    pub uop_cache_max_lines_per_window: usize,
    /// Whether the µop cache is modeled at all (`NoOpt` configurations).
    pub uop_cache_enabled: bool,
    /// Whether micro-op fusion is modeled.
    pub fusion_enabled: bool,
    /// Whether the simulation kernel memoizes decodes by
    /// `(pc, context_key, tainted)`. Semantically transparent — purely a
    /// simulator speedup, not part of the modeled machine — and can also
    /// be force-disabled at runtime with `CSD_DECODE_MEMO=0`.
    pub decode_memo_enabled: bool,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_bytes: 16,
            macro_op_queue: 18,
            decoders: 4,
            decode_width_uops: 4,
            msrom_width_uops: 4,
            uop_cache_switch_penalty: 1.0,
            uop_cache_width: 6,
            dispatch_width: 4,
            rob_entries: 168,
            alu_units: 3,
            load_units: 2,
            store_units: 1,
            vector_units: 2,
            commit_width: 4,
            mispredict_penalty: 14,
            alu_latency: 1,
            mul_latency: 3,
            div_latency: 22,
            vec_latency: 1,
            vec_mul_latency: 5,
            falu_latency: 4,
            hierarchy: HierarchyConfig::default(),
            dift_enabled: false,
            uop_cache_uops: 1536,
            uop_cache_ways: 8,
            uop_cache_line_uops: 6,
            uop_cache_max_lines_per_window: 3,
            uop_cache_enabled: true,
            fusion_enabled: true,
            decode_memo_enabled: true,
        }
    }
}

impl CoreConfig {
    /// The paper's `NoOpt` configuration: µop cache and fusion disabled.
    pub fn no_opt() -> CoreConfig {
        CoreConfig {
            uop_cache_enabled: false,
            fusion_enabled: false,
            ..CoreConfig::default()
        }
    }

    /// The paper's `Opt` configuration (the default): µop cache and fusion
    /// enabled.
    pub fn opt() -> CoreConfig {
        CoreConfig::default()
    }

    /// Number of µop-cache sets implied by the geometry.
    pub fn uop_cache_sets(&self) -> usize {
        self.uop_cache_uops / (self.uop_cache_ways * self.uop_cache_line_uops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_bytes, 16);
        assert_eq!(c.macro_op_queue, 18);
        assert_eq!(c.decoders, 4);
        assert_eq!(c.uop_cache_uops, 1536);
        assert_eq!(c.uop_cache_sets(), 32);
        assert!(c.uop_cache_enabled && c.fusion_enabled);
    }

    #[test]
    fn no_opt_disables_front_end_optimizations() {
        let c = CoreConfig::no_opt();
        assert!(!c.uop_cache_enabled);
        assert!(!c.fusion_enabled);
    }
}
