//! Decode stage: DIFT verdict, context-sensitive decode (with the
//! context-keyed memoization table), and front-end delivery timing
//! including µop-cache window bookkeeping.

use crate::core::{Core, SimMode};
use crate::stage::StageCtx;
use crate::uop_cache::UopCache;
use csd::{ContextId, DecodeOutcome};
use csd_telemetry::UopCacheEvent;
use csd_uops::{fusion, UReg};
use mx86_isa::{Inst, MemRef, Placed};

/// One µop-cache window being assembled as successive macro-ops decode
/// under one context; finalized (inserted) when delivery switches away.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowBuilder {
    window: u64,
    ctx: ContextId,
    fused: u32,
    cacheable: bool,
}

/// Decodes the fetched macro-op: DIFT verdict, CSD decode (memoized when
/// the core's table is enabled), stall accounting, and front-end timing.
#[inline]
pub(crate) fn run(core: &mut Core, ctx: &mut StageCtx) {
    ctx.tainted = macro_tainted(core, &ctx.placed.inst);
    let out = if core.memo_enabled {
        core.engine
            .decode_memo(&ctx.placed, ctx.tainted, Some(&mut core.memo))
    } else {
        core.engine.decode(&ctx.placed, ctx.tainted)
    };
    core.stats.stall_cycles += out.stall_cycles;
    ctx.fused_slots = front_end(core, &ctx.placed, &out, ctx.fetch_penalty);
    ctx.decode = Some(out);
}

/// The DIFT verdict that arms stealth interception: any address-forming
/// source register tainted, or tainted flags for a conditional branch.
fn macro_tainted(core: &Core, inst: &Inst) -> bool {
    if !core.cfg.dift_enabled {
        return false;
    }
    let mem_tainted = |m: &MemRef| {
        m.base.is_some_and(|b| core.dift.reg_tainted(UReg::Gpr(b)))
            || m.index
                .is_some_and(|(i, _)| core.dift.reg_tainted(UReg::Gpr(i)))
    };
    match inst {
        Inst::Load { mem, .. }
        | Inst::Store { mem, .. }
        | Inst::AluLoad { mem, .. }
        | Inst::AluStore { mem, .. }
        | Inst::VLoad { mem, .. }
        | Inst::VStore { mem, .. }
        | Inst::VAluLoad { mem, .. } => mem_tainted(mem),
        Inst::Jcc { .. } => core.dift.flags_tainted(),
        Inst::JmpInd { reg } => core.dift.reg_tainted(UReg::Gpr(*reg)),
        _ => false,
    }
}

/// Front-end delivery timing; returns the fused slot count.
fn front_end(core: &mut Core, placed: &Placed, out: &DecodeOutcome, fetch_penalty: f64) -> usize {
    let uops = &out.translation.uops;
    let mut fused = if core.cfg.fusion_enabled {
        fusion::fused_len(uops)
    } else {
        uops.len()
    };
    // Macro-op fusion: a cmp/test immediately followed by jcc shares a
    // slot; model as the jcc contributing zero additional slots.
    if core.cfg.fusion_enabled && core.prev_fusable_cmp && matches!(placed.inst, Inst::Jcc { .. }) {
        fused = fused.saturating_sub(1);
    }

    if core.mode == SimMode::Functional {
        // Track µop-cache *occupancy* statistics even without timing.
        if core.cfg.uop_cache_enabled {
            let window = UopCache::window_of(placed.addr);
            if core.ucache.lookup(window, out.context) {
                emit_ucache(core, window, out.context, true);
                core.stats.uop_cache_insts += 1;
                finalize_window(core);
            } else {
                emit_ucache(core, window, out.context, false);
                count_legacy(core, &out.translation);
                build_window(
                    core,
                    window,
                    out.context,
                    fused as u32,
                    out.translation.cacheable,
                );
            }
        } else {
            count_legacy(core, &out.translation);
        }
        return fused.max(1);
    }

    core.fe_time += fetch_penalty;
    let from_uc = if core.cfg.uop_cache_enabled {
        let window = UopCache::window_of(placed.addr);
        if core.ucache.lookup(window, out.context) {
            emit_ucache(core, window, out.context, true);
            core.stats.uop_cache_insts += 1;
            finalize_window(core);
            true
        } else {
            emit_ucache(core, window, out.context, false);
            count_legacy(core, &out.translation);
            build_window(
                core,
                window,
                out.context,
                fused as u32,
                out.translation.cacheable,
            );
            false
        }
    } else {
        count_legacy(core, &out.translation);
        false
    };

    if from_uc != core.prev_from_uc {
        core.fe_time += core.cfg.uop_cache_switch_penalty;
    }
    core.prev_from_uc = from_uc;

    let cost = if from_uc {
        fused.max(1) as f64 / core.cfg.uop_cache_width as f64
    } else if out.translation.from_msrom {
        // The MSROM sequencer takes over the decode slot entirely.
        uops.len() as f64 / core.cfg.msrom_width_uops as f64 + 1.0
    } else {
        let decode = uops.len() as f64 / core.cfg.decode_width_uops as f64;
        let length_decode = f64::from(placed.inst.len()) / core.cfg.fetch_bytes as f64;
        decode.max(length_decode).max(0.25)
    };
    core.fe_time += cost;
    fused.max(1)
}

/// Reports a µop-cache lookup to the core's sink (the retire-stage sink:
/// the µop cache is pipeline state, not engine state).
fn emit_ucache(core: &mut Core, window: u64, ctx: ContextId, hit: bool) {
    let ev = UopCacheEvent {
        addr: window,
        context: ctx.bit(),
        hit,
    };
    core.sink.with(|s| s.on_uop_cache(&ev));
}

fn count_legacy(core: &mut Core, t: &csd_uops::Translation) {
    if t.from_msrom {
        core.stats.msrom_insts += 1;
    } else {
        core.stats.legacy_insts += 1;
    }
}

fn build_window(core: &mut Core, window: u64, ctx: ContextId, fused: u32, cacheable: bool) {
    match &mut core.window_builder {
        Some(b) if b.window == window && b.ctx == ctx => {
            b.fused += fused;
            b.cacheable &= cacheable;
        }
        _ => {
            finalize_window(core);
            core.window_builder = Some(WindowBuilder {
                window,
                ctx,
                fused,
                cacheable,
            });
        }
    }
}

/// Flushes the in-progress µop-cache window into the cache (called when a
/// taken branch or halt ends window building).
pub(crate) fn finalize_window(core: &mut Core) {
    if let Some(b) = core.window_builder.take() {
        if core.cfg.uop_cache_enabled {
            core.ucache.insert(b.window, b.ctx, b.fused, b.cacheable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch;
    use crate::{CoreConfig, SimMode};
    use csd::CsdConfig;
    use mx86_isa::{Assembler, Gpr};

    fn core(memo: bool) -> Core {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rax, 7);
        a.halt();
        let cfg = CoreConfig {
            decode_memo_enabled: memo,
            ..CoreConfig::default()
        };
        Core::new(
            cfg,
            CsdConfig::default(),
            a.finish().unwrap(),
            SimMode::Cycle,
        )
    }

    #[test]
    fn decode_fills_the_context() {
        let mut c = core(true);
        let mut ctx = fetch::run(&mut c).unwrap();
        run(&mut c, &mut ctx);
        let out = ctx.outcome();
        assert_eq!(out.context, ContextId::Native);
        assert_eq!(out.translation.uops.len(), 1);
        assert!(ctx.fused_slots >= 1);
    }

    #[test]
    fn memoized_and_plain_decode_agree_per_stage() {
        let mut with = core(true);
        let mut without = core(false);
        for _ in 0..3 {
            let mut ca = fetch::run(&mut with).unwrap();
            let mut cb = fetch::run(&mut without).unwrap();
            run(&mut with, &mut ca);
            run(&mut without, &mut cb);
            assert_eq!(ca.outcome().context, cb.outcome().context);
            assert_eq!(*ca.outcome().translation, *cb.outcome().translation);
            assert_eq!(ca.fused_slots, cb.fused_slots);
        }
        assert_eq!(with.stats(), without.stats());
        assert!(with.memo_stats().hits > 0, "repeat decode must hit");
    }
}
