//! The stage-to-stage handoff record for one macro-op.
//!
//! [`Core::step`](crate::Core::step) is a thin orchestrator over four
//! explicit stages — [`fetch`](crate::fetch), [`decode`](crate::decode),
//! [`execute`](crate::execute), [`commit`](crate::commit) — and this
//! context is the only value that travels between them. Each stage fills
//! in the fields it owns; everything machine-wide stays on `Core`.

use csd::DecodeOutcome;
use mx86_isa::Placed;

/// Per-macro-op pipeline context, created by fetch and consumed by commit.
#[derive(Debug)]
pub(crate) struct StageCtx {
    /// The fetched instruction and its address.
    pub placed: Placed,
    /// Extra front-end latency from L1I misses during fetch.
    pub fetch_penalty: f64,
    /// DIFT verdict for the macro-op (filled by decode).
    pub tainted: bool,
    /// The CSD decode outcome (filled by decode).
    pub decode: Option<DecodeOutcome>,
    /// Fused issue slots the macro-op dispatches as (filled by decode).
    pub fused_slots: usize,
    /// How the µop flow ended control-wise (filled by execute).
    pub flow_end: Option<FlowEnd>,
}

impl StageCtx {
    /// A fresh context as the fetch stage hands it onward.
    pub fn new(placed: Placed, fetch_penalty: f64) -> StageCtx {
        StageCtx {
            placed,
            fetch_penalty,
            tainted: false,
            decode: None,
            fused_slots: 0,
            flow_end: None,
        }
    }

    /// The decode outcome; panics if the decode stage has not run.
    pub fn outcome(&self) -> &DecodeOutcome {
        self.decode.as_ref().expect("decode stage ran")
    }
}

/// The control effect of one executed µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UopEffect {
    /// Sequential flow.
    None,
    /// Taken control transfer to the target.
    Branch(u64),
    /// A `hlt` retired.
    Halt,
}

/// How a macro-op's µop flow ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlowEnd {
    /// Taken control transfer to the target.
    Branch(u64),
    /// A `hlt` retired.
    Halt,
}
