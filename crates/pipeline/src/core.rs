//! The execution-driven simulator core.
//!
//! One machine, two fidelities: the **cycle** engine models the full
//! Sandy-Bridge-style front end (fetch buffer, length decode, µop cache
//! with context tags, legacy decoders + MSROM, fusion) and a
//! timestamp-dataflow back end (dispatch width, scoreboarded dependencies,
//! port contention, ROB occupancy, branch mispredict redirects, memory
//! latency); the **functional** engine executes the same µop stream —
//! through the same CSD decode path and the same cache hierarchy state —
//! without the timing layer, for experiments whose results depend on
//! architectural cache state rather than cycles (the side-channel studies).

use crate::branch::BranchPredictor;
use crate::config::CoreConfig;
use crate::exec;
use crate::machine::{ArchState, Flags, Memory};
use crate::uop_cache::{UopCache, UopCacheStats};
use csd::{ContextId, CsdConfig, CsdEngine};
use csd_cache::{AccessKind, Hierarchy};
use csd_dift::{Dift, DIFT_L2_TAG_PENALTY};
use csd_power::{Activity, EnergyModel, Unit};
use csd_telemetry::{EventSink, Json, RetireEvent, SinkHandle, ToJson};
use csd_uops::{fusion, DecoyTarget, UReg, Uop, UopKind};
use mx86_isa::{Gpr, Inst, MemRef, Placed, Program};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Fast, state-accurate execution (cache state exact, cycles
    /// approximated as retired µops).
    Functional,
    /// Full cycle-level timing.
    Cycle,
}

/// Why a step ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired; execution continues.
    Running,
    /// A `hlt` retired.
    Halted,
    /// The PC does not resolve to an instruction start.
    Fault(u64),
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Macro-ops retired.
    pub insts: u64,
    /// Unfused µops retired.
    pub uops: u64,
    /// Fused issue slots dispatched.
    pub fused_slots: u64,
    /// Decoy µops retired.
    pub decoy_uops: u64,
    /// Vector µops executed on the VPU.
    pub vpu_uops: u64,
    /// Load µops.
    pub load_uops: u64,
    /// Store µops.
    pub store_uops: u64,
    /// Cycles elapsed (commit high-water mark in cycle mode; retired µops
    /// in functional mode).
    pub cycles: u64,
    /// Macro-ops delivered from the µop cache.
    pub uop_cache_insts: u64,
    /// Macro-ops translated by the legacy decode pipeline.
    pub legacy_insts: u64,
    /// Macro-ops microsequenced by the MSROM.
    pub msrom_insts: u64,
    /// Cycles spent stalled on conventional VPU wakes.
    pub stall_cycles: u64,
    /// Whether the program halted.
    pub halted: bool,
}

impl SimStats {
    /// Retired µops per cycle.
    pub fn upc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.uops as f64 / self.cycles as f64
    }

    /// Retired macro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.insts as f64 / self.cycles as f64
    }
}

impl ToJson for SimStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("insts", Json::from(self.insts)),
            ("uops", Json::from(self.uops)),
            ("fused_slots", Json::from(self.fused_slots)),
            ("decoy_uops", Json::from(self.decoy_uops)),
            ("vpu_uops", Json::from(self.vpu_uops)),
            ("load_uops", Json::from(self.load_uops)),
            ("store_uops", Json::from(self.store_uops)),
            ("cycles", Json::from(self.cycles)),
            ("uop_cache_insts", Json::from(self.uop_cache_insts)),
            ("legacy_insts", Json::from(self.legacy_insts)),
            ("msrom_insts", Json::from(self.msrom_insts)),
            ("stall_cycles", Json::from(self.stall_cycles)),
            ("halted", Json::from(self.halted)),
            ("ipc", Json::from(self.ipc())),
            ("upc", Json::from(self.upc())),
        ])
    }
}

#[derive(Debug, Clone, Copy)]
struct WindowBuilder {
    window: u64,
    ctx: ContextId,
    fused: u32,
    cacheable: bool,
}

/// The simulator core: program, architectural state, memory, caches, CSD
/// engine, DIFT, branch prediction, and the timing model.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    mode: SimMode,
    program: Program,
    /// Architectural + decoder-internal register state.
    pub state: ArchState,
    /// Flat data/instruction memory.
    pub mem: Memory,
    hier: Hierarchy,
    engine: CsdEngine,
    dift: Dift,
    bp: BranchPredictor,
    ucache: UopCache,
    stats: SimStats,
    sink: SinkHandle,

    // --- timing state (cycle mode) ---
    fe_time: f64,
    last_dispatch: f64,
    last_commit: f64,
    sched: HashMap<UReg, f64>,
    flags_ready: f64,
    alu_ports: Vec<f64>,
    load_ports: Vec<f64>,
    store_ports: Vec<f64>,
    vec_ports: Vec<f64>,
    rob: VecDeque<f64>,
    prev_from_uc: bool,
    window_builder: Option<WindowBuilder>,
    prev_fusable_cmp: bool,
    pending_mispredict: bool,
    last_tick: u64,
    func_cycles: u64,
    halted: bool,
}

impl Core {
    /// Builds a core around a program.
    pub fn new(cfg: CoreConfig, csd_cfg: CsdConfig, program: Program, mode: SimMode) -> Core {
        let mut dift = Dift::new();
        dift.set_enabled(cfg.dift_enabled);
        let entry = program.entry();
        let ucache = UopCache::new(
            cfg.uop_cache_sets(),
            cfg.uop_cache_ways,
            cfg.uop_cache_line_uops,
            cfg.uop_cache_max_lines_per_window,
        );
        Core {
            hier: Hierarchy::new(cfg.hierarchy),
            engine: CsdEngine::new(csd_cfg),
            dift,
            bp: BranchPredictor::default(),
            ucache,
            state: ArchState::new(entry),
            mem: Memory::new(),
            stats: SimStats::default(),
            sink: SinkHandle::new(),
            fe_time: 0.0,
            last_dispatch: 0.0,
            last_commit: 0.0,
            sched: HashMap::new(),
            flags_ready: 0.0,
            alu_ports: vec![0.0; cfg.alu_units],
            load_ports: vec![0.0; cfg.load_units],
            store_ports: vec![0.0; cfg.store_units],
            vec_ports: vec![0.0; cfg.vector_units],
            rob: VecDeque::new(),
            prev_from_uc: false,
            window_builder: None,
            prev_fusable_cmp: false,
            pending_mispredict: false,
            last_tick: 0,
            func_cycles: 0,
            halted: false,
            program,
            cfg,
            mode,
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Attaches an event sink to the core's retire stage. Decode-level
    /// events come from the CSD engine's own sink
    /// ([`CsdEngine::set_event_sink`] via [`Core::engine_mut`]). With no
    /// sink attached (the default) the retire path pays one `Option`
    /// test per macro-op.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink.attach(sink);
    }

    /// Detaches and returns the core's retire-stage sink, if any.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.detach()
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The CSD engine (stats, gate state).
    pub fn engine(&self) -> &CsdEngine {
        &self.engine
    }

    /// Mutable CSD engine (MSR configuration, MCU installation).
    pub fn engine_mut(&mut self) -> &mut CsdEngine {
        &mut self.engine
    }

    /// The memory hierarchy (attack agents probe and flush through this).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable memory hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// The DIFT engine (taint sources).
    pub fn dift_mut(&mut self) -> &mut Dift {
        &mut self.dift
    }

    /// The branch predictor statistics.
    pub fn branch_stats(&self) -> &crate::branch::BranchStats {
        self.bp.stats()
    }

    /// µop cache statistics.
    pub fn uop_cache_stats(&self) -> &UopCacheStats {
        self.ucache.stats()
    }

    /// Simulation statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        match self.mode {
            SimMode::Functional => self.func_cycles,
            SimMode::Cycle => self.last_commit.ceil() as u64,
        }
    }

    /// Whether a `hlt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Rewinds the PC to the program entry and clears the halt latch so the
    /// program can run again. Caches, predictors, the µop cache, CSD state,
    /// statistics, and memory all persist — exactly what repeated victim
    /// invocations (one per encryption) need.
    pub fn restart(&mut self) {
        self.state.rip = self.program.entry();
        self.halted = false;
    }

    /// Per-unit activity for the energy model.
    pub fn activity(&self) -> Activity {
        let mut a = Activity::new(self.cycles());
        a.add_ops(Unit::Vpu, self.stats.vpu_uops);
        a.add_ops(Unit::Lsu, self.stats.load_uops + self.stats.store_uops);
        a.add_ops(
            Unit::ScalarAlu,
            self.stats
                .uops
                .saturating_sub(self.stats.vpu_uops + self.stats.load_uops + self.stats.store_uops),
        );
        a.add_ops(
            Unit::LegacyDecode,
            self.stats.legacy_insts + self.stats.msrom_insts,
        );
        a.add_ops(Unit::UopCache, self.stats.uop_cache_insts);
        a.add_ops(Unit::Core, self.stats.uops);
        let gs = self.engine.gate().stats();
        a.vpu_gated_cycles = gs.gated_cycles.min(a.cycles);
        a.vpu_gate_transitions = gs.gate_transitions;
        a
    }

    /// Every counter the simulator keeps, as one nested JSON report:
    /// pipeline, CSD engine, stealth, devectorizer, gate residency, µop
    /// cache, cache hierarchy, activity, and the default-model energy
    /// breakdown. This is the per-run payload of `BENCH_suite.json`.
    pub fn telemetry_report(&self) -> Json {
        let e = &self.engine;
        let activity = self.activity();
        Json::obj([
            ("sim", self.stats.to_json()),
            ("csd", e.stats().to_json()),
            ("stealth", e.stealth().stats().to_json()),
            ("devec", e.devectorizer().stats().to_json()),
            ("gate", e.gate().stats().to_json()),
            ("uop_cache", self.ucache.stats().to_json()),
            ("caches", self.hier.stats().to_json()),
            ("activity", activity.to_json()),
            (
                "energy",
                EnergyModel::default().breakdown(&activity).to_json(),
            ),
        ])
    }

    /// Executes one macro-op.
    pub fn step(&mut self) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        let placed = match self.program.fetch(self.state.rip) {
            Some(p) => *p,
            None => return StepOutcome::Fault(self.state.rip),
        };

        // 1. Instruction fetch: touch every line the encoding spans.
        let line = self.cfg.hierarchy.l1i.line_bytes as u64;
        let first = placed.addr & !(line - 1);
        let last = (placed.addr + u64::from(placed.inst.len()) - 1) & !(line - 1);
        let mut fetch_penalty = 0.0;
        let mut a = first;
        while a <= last {
            let r = self.hier.access(a, AccessKind::InstFetch);
            if !r.l1_hit() {
                fetch_penalty = f64::max(
                    fetch_penalty,
                    (r.latency - self.cfg.hierarchy.l1i.latency) as f64,
                );
            }
            a += line;
        }

        // 2. DIFT verdict for the trigger, then decode through CSD.
        let tainted = self.macro_tainted(&placed.inst);
        let out = self.engine.decode(&placed, tainted);
        self.stats.stall_cycles += out.stall_cycles;

        // 3. Front-end timing and µop-cache bookkeeping.
        let fused_slots = self.front_end(&placed, &out, fetch_penalty);

        // 4. Execute (and time) the µop flow.
        let next_pc = self.execute_flow(&placed, &out.translation.uops, out.stall_cycles);

        // 5. Retire.
        self.stats.insts += 1;
        self.stats.uops += out.translation.uops.len() as u64;
        self.stats.fused_slots += fused_slots as u64;
        self.stats.decoy_uops +=
            out.translation.uops.iter().filter(|u| u.is_decoy()).count() as u64;
        self.prev_fusable_cmp = matches!(placed.inst, Inst::Cmp { .. } | Inst::Test { .. });

        if self.mode == SimMode::Functional {
            self.func_cycles += out.translation.uops.len() as u64;
        }

        // 6. Advance the engine's notion of time (watchdog, gate residency).
        let now = self.cycles();
        let delta = now.saturating_sub(self.last_tick);
        if delta > 0 {
            self.engine.tick(delta);
            self.last_tick = now;
        }

        let ev = RetireEvent {
            addr: placed.addr,
            uops: out.translation.uops.len() as u32,
            insts: self.stats.insts,
            cycles: now,
        };
        self.sink.with(|s| s.on_retire(&ev));

        match next_pc {
            Some(FlowEnd::Halt) => {
                self.halted = true;
                self.stats.halted = true;
                self.finalize_window();
                self.stats.cycles = self.cycles();
                StepOutcome::Halted
            }
            Some(FlowEnd::Branch(t)) => {
                // A taken control transfer ends µop-cache window building,
                // even when the target lies in the same window.
                self.finalize_window();
                self.state.rip = t;
                self.stats.cycles = self.cycles();
                StepOutcome::Running
            }
            None => {
                self.state.rip = placed.next_addr();
                self.stats.cycles = self.cycles();
                StepOutcome::Running
            }
        }
    }

    /// Runs until halt, fault, or `max_insts` retired. Returns the outcome
    /// of the last step.
    pub fn run(&mut self, max_insts: u64) -> StepOutcome {
        let mut last = StepOutcome::Running;
        for _ in 0..max_insts {
            last = self.step();
            if last != StepOutcome::Running {
                break;
            }
        }
        last
    }

    /// Runs until the cycle counter advances by at least `cycles` (or the
    /// program halts/faults). Used to interleave victim execution with
    /// attacker probes at a fixed cadence.
    pub fn run_cycles(&mut self, cycles: u64) -> StepOutcome {
        let target = self.cycles() + cycles;
        let mut last = StepOutcome::Running;
        while self.cycles() < target {
            last = self.step();
            if last != StepOutcome::Running {
                break;
            }
        }
        last
    }

    // ------------------------------------------------------------------
    // decode-time helpers
    // ------------------------------------------------------------------

    fn macro_tainted(&self, inst: &Inst) -> bool {
        if !self.cfg.dift_enabled {
            return false;
        }
        let mem_tainted = |m: &MemRef| {
            m.base.is_some_and(|b| self.dift.reg_tainted(UReg::Gpr(b)))
                || m.index
                    .is_some_and(|(i, _)| self.dift.reg_tainted(UReg::Gpr(i)))
        };
        match inst {
            Inst::Load { mem, .. }
            | Inst::Store { mem, .. }
            | Inst::AluLoad { mem, .. }
            | Inst::AluStore { mem, .. }
            | Inst::VLoad { mem, .. }
            | Inst::VStore { mem, .. }
            | Inst::VAluLoad { mem, .. } => mem_tainted(mem),
            Inst::Jcc { .. } => self.dift.flags_tainted(),
            Inst::JmpInd { reg } => self.dift.reg_tainted(UReg::Gpr(*reg)),
            _ => false,
        }
    }

    /// Front-end delivery timing; returns the fused slot count.
    fn front_end(
        &mut self,
        placed: &Placed,
        out: &csd::DecodeOutcome,
        fetch_penalty: f64,
    ) -> usize {
        let uops = &out.translation.uops;
        let mut fused = if self.cfg.fusion_enabled {
            fusion::fused_len(uops)
        } else {
            uops.len()
        };
        // Macro-op fusion: a cmp/test immediately followed by jcc shares a
        // slot; model as the jcc contributing zero additional slots.
        if self.cfg.fusion_enabled
            && self.prev_fusable_cmp
            && matches!(placed.inst, Inst::Jcc { .. })
        {
            fused = fused.saturating_sub(1);
        }

        if self.mode == SimMode::Functional {
            // Track µop-cache *occupancy* statistics even without timing.
            if self.cfg.uop_cache_enabled {
                let window = UopCache::window_of(placed.addr);
                if self.ucache.lookup(window, out.context) {
                    self.stats.uop_cache_insts += 1;
                    self.finalize_window();
                } else {
                    self.count_legacy(&out.translation);
                    self.build_window(window, out.context, fused as u32, out.translation.cacheable);
                }
            } else {
                self.count_legacy(&out.translation);
            }
            return fused.max(1);
        }

        self.fe_time += fetch_penalty;
        let from_uc = if self.cfg.uop_cache_enabled {
            let window = UopCache::window_of(placed.addr);
            if self.ucache.lookup(window, out.context) {
                self.stats.uop_cache_insts += 1;
                self.finalize_window();
                true
            } else {
                self.count_legacy(&out.translation);
                self.build_window(window, out.context, fused as u32, out.translation.cacheable);
                false
            }
        } else {
            self.count_legacy(&out.translation);
            false
        };

        if from_uc != self.prev_from_uc {
            self.fe_time += self.cfg.uop_cache_switch_penalty;
        }
        self.prev_from_uc = from_uc;

        let cost = if from_uc {
            fused.max(1) as f64 / self.cfg.uop_cache_width as f64
        } else if out.translation.from_msrom {
            // The MSROM sequencer takes over the decode slot entirely.
            uops.len() as f64 / self.cfg.msrom_width_uops as f64 + 1.0
        } else {
            let decode = uops.len() as f64 / self.cfg.decode_width_uops as f64;
            let length_decode = f64::from(placed.inst.len()) / self.cfg.fetch_bytes as f64;
            decode.max(length_decode).max(0.25)
        };
        self.fe_time += cost;
        fused.max(1)
    }

    fn count_legacy(&mut self, t: &csd_uops::Translation) {
        if t.from_msrom {
            self.stats.msrom_insts += 1;
        } else {
            self.stats.legacy_insts += 1;
        }
    }

    fn build_window(&mut self, window: u64, ctx: ContextId, fused: u32, cacheable: bool) {
        match &mut self.window_builder {
            Some(b) if b.window == window && b.ctx == ctx => {
                b.fused += fused;
                b.cacheable &= cacheable;
            }
            _ => {
                self.finalize_window();
                self.window_builder = Some(WindowBuilder {
                    window,
                    ctx,
                    fused,
                    cacheable,
                });
            }
        }
    }

    fn finalize_window(&mut self) {
        if let Some(b) = self.window_builder.take() {
            if self.cfg.uop_cache_enabled {
                self.ucache.insert(b.window, b.ctx, b.fused, b.cacheable);
            }
        }
    }

    // ------------------------------------------------------------------
    // execution + back-end timing
    // ------------------------------------------------------------------

    fn execute_flow(&mut self, placed: &Placed, uops: &[Uop], stall: u64) -> Option<FlowEnd> {
        let timing = self.mode == SimMode::Cycle;
        let inst_ready = self.fe_time + stall as f64;
        let mut end = None;
        let mut slot_dispatch = inst_ready;

        for (i, u) in uops.iter().enumerate() {
            // Dispatch bandwidth: fused pairs share a slot.
            let in_prev_slot = timing
                && self.cfg.fusion_enabled
                && i > 0
                && fusion::can_micro_fuse(&uops[i - 1], u);
            if timing && !in_prev_slot {
                slot_dispatch = f64::max(
                    inst_ready,
                    self.last_dispatch + 1.0 / self.cfg.dispatch_width as f64,
                );
                self.last_dispatch = slot_dispatch;
            }

            let (effect, access_latency) = self.exec_uop(u, placed);

            if timing {
                self.time_uop(u, slot_dispatch, access_latency, &effect, placed);
            }

            match effect {
                UopEffect::Halt => {
                    end = Some(FlowEnd::Halt);
                    break;
                }
                UopEffect::Branch(t) => {
                    end = Some(FlowEnd::Branch(t));
                    // A taken branch ends the flow (branch µops are last in
                    // native flows; decoy branches never produce effects).
                    break;
                }
                UopEffect::None => {}
            }
        }
        end
    }

    /// Functionally executes one µop. Returns its control effect and, for
    /// memory µops, the hierarchy access latency.
    fn exec_uop(&mut self, u: &Uop, placed: &Placed) -> (UopEffect, u64) {
        // Decoy µops: only the cache touch is real; dataflow stays in
        // temporaries and flags/control are suppressed.
        if let Some(target) = u.decoy {
            return match u.kind {
                UopKind::Ld => {
                    let ea = self.ea(u);
                    let kind = match target {
                        DecoyTarget::Data => AccessKind::DataRead,
                        DecoyTarget::Inst => AccessKind::InstFetch,
                    };
                    let r = self.hier.access(ea, kind);
                    if let Some(d) = u.dst {
                        let v = self
                            .mem
                            .read_le(ea, u.mem.map_or(1, |m| m.width.bytes().min(8)));
                        self.state.write(d, v);
                    }
                    (UopEffect::None, r.latency)
                }
                UopKind::MovImm => {
                    if let Some(d) = u.dst {
                        self.state.write(d, u.imm.unwrap_or(0) as u64);
                    }
                    (UopEffect::None, 0)
                }
                UopKind::Alu(op) => {
                    let a = u.src1.map_or(0, |r| self.state.read(r));
                    let b = u
                        .src2
                        .map(|r| self.state.read(r))
                        .unwrap_or(u.imm.unwrap_or(0) as u64);
                    let (res, _) = exec::alu(op, a, b);
                    if let Some(d) = u.dst {
                        self.state.write(d, res);
                    }
                    (UopEffect::None, 0)
                }
                // Decoy branches are sequencing artifacts of the unrolled
                // micro-loop: no control effect.
                _ => (UopEffect::None, 0),
            };
        }

        let dift_ea = |u: &Uop, ea: Option<u64>| ea.filter(|_| u.mem.is_some());
        let mut effect = UopEffect::None;
        let mut access_latency = 0u64;

        match u.kind {
            UopKind::Nop => {}
            UopKind::Mov => {
                let v = self.state.read(u.src1.expect("mov has src"));
                self.state.write(u.dst.expect("mov has dst"), v);
                self.dift.propagate(u, None);
            }
            UopKind::MovImm => {
                self.state
                    .write(u.dst.expect("movimm has dst"), u.imm.unwrap_or(0) as u64);
                self.dift.propagate(u, None);
            }
            UopKind::Alu(op) => {
                let a = u.src1.map_or(0, |r| self.state.read(r));
                let b = u
                    .src2
                    .map(|r| self.state.read(r))
                    .unwrap_or(u.imm.unwrap_or(0) as u64);
                let (res, flags) = exec::alu(op, a, b);
                if let Some(d) = u.dst {
                    self.state.write(d, res);
                }
                self.state.flags = flags;
                self.dift.propagate(u, None);
            }
            UopKind::Mul => {
                let a = u.src1.map_or(0, |r| self.state.read(r));
                let b = u
                    .src2
                    .map(|r| self.state.read(r))
                    .unwrap_or(u.imm.unwrap_or(0) as u64);
                let (res, flags) = exec::mul(a, b);
                if let Some(d) = u.dst {
                    self.state.write(d, res);
                }
                self.state.flags = flags;
                self.dift.propagate(u, None);
            }
            UopKind::FAlu(op, w) => {
                let a = self.state.read(u.src1.expect("falu src1"));
                let b = self.state.read(u.src2.expect("falu src2"));
                let res = match w {
                    csd_uops::FWidth::S => {
                        let (fa, fb) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
                        let r = match op {
                            csd_uops::FOp::Add => fa + fb,
                            csd_uops::FOp::Sub => fa - fb,
                            csd_uops::FOp::Mul => fa * fb,
                        };
                        u64::from(r.to_bits())
                    }
                    csd_uops::FWidth::D => {
                        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                        let r = match op {
                            csd_uops::FOp::Add => fa + fb,
                            csd_uops::FOp::Sub => fa - fb,
                            csd_uops::FOp::Mul => fa * fb,
                        };
                        r.to_bits()
                    }
                };
                self.state.write(u.dst.expect("falu dst"), res);
                self.dift.propagate(u, None);
            }
            UopKind::DivQ | UopKind::DivR => {
                let a = self.state.read(u.src1.expect("div src1"));
                let b = self.state.read(u.src2.expect("div src2"));
                let res = if b == 0 {
                    0
                } else if u.kind == UopKind::DivQ {
                    a / b
                } else {
                    a % b
                };
                if let Some(d) = u.dst {
                    self.state.write(d, res);
                }
                self.state.flags = Flags {
                    zf: res == 0,
                    sf: false,
                    cf: false,
                    of: false,
                };
                self.dift.propagate(u, None);
            }
            UopKind::Ld => {
                let ea = self.ea(u);
                let w = u.mem.expect("load has mem").width.bytes();
                let r = self.hier.access(ea, AccessKind::DataRead);
                access_latency = r.latency + self.dift_penalty();
                let v = self.mem.read_le(ea, w.min(8));
                self.state.write(u.dst.expect("load has dst"), v);
                self.dift.propagate(u, dift_ea(u, Some(ea)));
                self.stats.load_uops += 1;
            }
            UopKind::St => {
                let ea = self.ea(u);
                let w = u.mem.expect("store has mem").width.bytes();
                self.hier.access(ea, AccessKind::DataWrite);
                let v = self.state.read(u.src1.expect("store has src"));
                self.mem.write_le(ea, w.min(8), v);
                self.dift.propagate(u, Some(ea));
                self.stats.store_uops += 1;
                access_latency = 1;
            }
            UopKind::Lea => {
                let ea = self.ea(u);
                self.state.write(u.dst.expect("lea has dst"), ea);
                self.dift.propagate(u, None);
            }
            UopKind::VLd => {
                let ea = self.ea(u);
                let r = self.hier.access(ea, AccessKind::DataRead);
                access_latency = r.latency + self.dift_penalty();
                let v = self.mem.read_u128(ea);
                self.state.write_v(u.dst.expect("vld has dst"), v);
                self.dift.propagate(u, Some(ea));
                self.stats.load_uops += 1;
            }
            UopKind::VSt => {
                let ea = self.ea(u);
                self.hier.access(ea, AccessKind::DataWrite);
                let v = self.state.read_v(u.src1.expect("vst has src"));
                self.mem.write_u128(ea, v);
                self.dift.propagate(u, Some(ea));
                self.stats.store_uops += 1;
                access_latency = 1;
            }
            UopKind::VMov => {
                let v = self.state.read_v(u.src1.expect("vmov src"));
                self.state.write_v(u.dst.expect("vmov dst"), v);
                self.dift.propagate(u, None);
            }
            UopKind::VAlu(op) => {
                let a = self.state.read_v(u.src1.expect("valu src1"));
                let b = self.state.read_v(u.src2.expect("valu src2"));
                let r = exec::valu(op, a, b);
                self.state.write_v(u.dst.expect("valu dst"), r);
                self.dift.propagate(u, None);
                self.stats.vpu_uops += 1;
            }
            UopKind::VExtractQ => {
                let v = self.state.read_v(u.src1.expect("vextract src"));
                let half = if u.imm.unwrap_or(0) == 0 { v.0 } else { v.1 };
                self.state.write(u.dst.expect("vextract dst"), half);
                self.dift.propagate(u, None);
            }
            UopKind::VInsertQ => {
                let d = u.dst.expect("vinsert dst");
                let mut v = self.state.read_v(d);
                let s = self.state.read(u.src1.expect("vinsert src"));
                if u.imm.unwrap_or(0) == 0 {
                    v.0 = s;
                } else {
                    v.1 = s;
                }
                self.state.write_v(d, v);
                self.dift.propagate(u, None);
            }
            UopKind::Br(cc) => {
                let taken = self.state.flags.eval(cc);
                self.dift.propagate(u, None);
                let target = u.imm.expect("br has target") as u64;
                let miss = self.bp.predict_conditional(placed.addr, taken);
                if taken {
                    effect = UopEffect::Branch(target);
                }
                self.pending_mispredict = miss;
            }
            UopKind::JmpImm => {
                let target = u.imm.expect("jmp has target") as u64;
                if matches!(placed.inst, Inst::Call { .. }) {
                    self.bp.on_call(placed.next_addr());
                }
                effect = UopEffect::Branch(target);
                self.pending_mispredict = false;
            }
            UopKind::JmpReg => {
                let target = self.state.read(u.src1.expect("jmpreg src"));
                let miss = match placed.inst {
                    Inst::Ret => self.bp.predict_return(target),
                    _ => self.bp.predict_indirect(placed.addr, target),
                };
                self.dift.propagate(u, None);
                effect = UopEffect::Branch(target);
                self.pending_mispredict = miss;
            }
            UopKind::PushImm | UopKind::Push => {
                let rsp = self.state.gpr(Gpr::Rsp).wrapping_sub(8);
                self.state.set_gpr(Gpr::Rsp, rsp);
                self.hier.access(rsp, AccessKind::DataWrite);
                let v = match u.kind {
                    UopKind::PushImm => u.imm.unwrap_or(0) as u64,
                    _ => self.state.read(u.src1.expect("push src")),
                };
                self.mem.write_le(rsp, 8, v);
                self.dift.propagate(u, Some(rsp));
                self.stats.store_uops += 1;
                access_latency = 1;
            }
            UopKind::Pop => {
                let rsp = self.state.gpr(Gpr::Rsp);
                let r = self.hier.access(rsp, AccessKind::DataRead);
                access_latency = r.latency + self.dift_penalty();
                let v = self.mem.read_le(rsp, 8);
                self.state.write(u.dst.expect("pop dst"), v);
                self.state.set_gpr(Gpr::Rsp, rsp.wrapping_add(8));
                self.dift.propagate(u, Some(rsp));
                self.stats.load_uops += 1;
            }
            UopKind::Clflush => {
                let ea = self.ea(u);
                self.hier.flush(ea);
                access_latency = 4;
            }
            UopKind::Rdtsc => {
                let c = self.cycles();
                self.state.write(u.dst.expect("rdtsc dst"), c);
            }
            UopKind::Wrmsr => {
                let msr = u.imm.expect("wrmsr msr") as u32;
                let v = self.state.read(u.src1.expect("wrmsr src"));
                self.engine.write_msr(msr, v);
            }
            UopKind::Rdmsr => {
                let msr = u.imm.expect("rdmsr msr") as u32;
                let v = self.engine.read_msr(msr);
                self.state.write(u.dst.expect("rdmsr dst"), v);
            }
            UopKind::Halt => {
                effect = UopEffect::Halt;
            }
        }
        (effect, access_latency)
    }

    fn dift_penalty(&self) -> u64 {
        if self.cfg.dift_enabled {
            DIFT_L2_TAG_PENALTY
        } else {
            0
        }
    }

    fn ea(&mut self, u: &Uop) -> u64 {
        let m = u.mem.expect("memory µop without operand");
        m.effective_address(|r| self.state.read(r))
    }

    /// Back-end timing for one µop.
    fn time_uop(
        &mut self,
        u: &Uop,
        dispatch: f64,
        access_latency: u64,
        effect: &UopEffect,
        _placed: &Placed,
    ) {
        // ROB occupancy: dispatch may not pass the completion of the µop
        // rob_entries back.
        let mut ready = dispatch;
        if self.rob.len() >= self.cfg.rob_entries {
            if let Some(head) = self.rob.pop_front() {
                ready = f64::max(ready, head);
            }
        }
        // Operand readiness.
        for src in [u.src1, u.src2].into_iter().flatten() {
            if let Some(&t) = self.sched.get(&src) {
                ready = f64::max(ready, t);
            }
        }
        if let Some(m) = u.mem {
            for r in m.base.into_iter().chain(m.index.map(|(r, _)| r)) {
                if let Some(&t) = self.sched.get(&r) {
                    ready = f64::max(ready, t);
                }
            }
        }
        if matches!(u.kind, UopKind::Br(_)) {
            ready = f64::max(ready, self.flags_ready);
        }

        // Port selection and latency.
        let (lat, occupy, port): (f64, f64, &mut Vec<f64>) = match u.kind {
            UopKind::Ld | UopKind::VLd | UopKind::Pop => {
                (access_latency as f64, 1.0, &mut self.load_ports)
            }
            UopKind::St | UopKind::VSt | UopKind::Push | UopKind::PushImm => {
                (1.0, 1.0, &mut self.store_ports)
            }
            UopKind::VAlu(op) => {
                let l = if op.is_multiply() || op.is_float() {
                    self.cfg.vec_mul_latency
                } else {
                    self.cfg.vec_latency
                };
                (l as f64, 1.0, &mut self.vec_ports)
            }
            UopKind::Mul => (self.cfg.mul_latency as f64, 1.0, &mut self.alu_ports),
            UopKind::DivQ | UopKind::DivR => {
                let l = self.cfg.div_latency as f64;
                (l, l, &mut self.alu_ports)
            }
            UopKind::FAlu(..) => (self.cfg.falu_latency as f64, 1.0, &mut self.alu_ports),
            UopKind::Clflush => (access_latency as f64, 1.0, &mut self.store_ports),
            _ => (self.cfg.alu_latency as f64, 1.0, &mut self.alu_ports),
        };
        // Acquire the earliest-free unit of the class.
        let (idx, unit_free) =
            port.iter()
                .copied()
                .enumerate()
                .fold((0usize, f64::INFINITY), |acc, (i, t)| {
                    if t < acc.1 {
                        (i, t)
                    } else {
                        acc
                    }
                });
        let issue = f64::max(ready, unit_free);
        port[idx] = issue + occupy;
        let done = issue + lat.max(1.0);

        // Writeback.
        if let Some(d) = u.dst {
            self.sched.insert(d, done);
        }
        if u.kind.writes_flags() && !u.is_decoy() {
            self.flags_ready = done;
        }
        // Stack-pointer updates by push/pop.
        if matches!(u.kind, UopKind::Push | UopKind::PushImm | UopKind::Pop) {
            self.sched.insert(UReg::Gpr(Gpr::Rsp), done);
        }

        // Branch resolution and redirect.
        if u.kind.is_branch() && !u.is_decoy() {
            if self.pending_mispredict {
                self.fe_time = f64::max(self.fe_time, done + self.cfg.mispredict_penalty as f64);
                self.pending_mispredict = false;
            }
            let _ = effect;
        }

        self.rob.push_back(done);
        self.last_commit = f64::max(done, self.last_commit + 1.0 / self.cfg.commit_width as f64);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UopEffect {
    None,
    Branch(u64),
    Halt,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowEnd {
    Branch(u64),
    Halt,
}
