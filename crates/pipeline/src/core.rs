//! The execution-driven simulator core.
//!
//! One machine, two fidelities: the **cycle** engine models the full
//! Sandy-Bridge-style front end (fetch buffer, length decode, µop cache
//! with context tags, legacy decoders + MSROM, fusion) and a
//! timestamp-dataflow back end (dispatch width, scoreboarded dependencies,
//! port contention, ROB occupancy, branch mispredict redirects, memory
//! latency); the **functional** engine executes the same µop stream —
//! through the same CSD decode path and the same cache hierarchy state —
//! without the timing layer, for experiments whose results depend on
//! architectural cache state rather than cycles (the side-channel studies).
//!
//! [`Core::step`] itself is a thin orchestrator over four explicit stage
//! modules — [`crate::fetch`], [`crate::decode`], [`crate::execute`],
//! [`crate::commit`] — connected by a per-instruction
//! [`StageCtx`](crate::stage::StageCtx). The decode stage consults a
//! context-keyed memoization table ([`csd_uops::DecodeMemo`]): the
//! simulator-level analogue of the paper's context-tagged µop cache, keyed
//! by `(pc, context_key, tainted)` and invalidated wholesale whenever
//! [`CsdEngine::context_key`] advances.

use crate::branch::BranchPredictor;
use crate::config::CoreConfig;
use crate::decode::WindowBuilder;
use crate::machine::{ArchState, Memory};
use crate::uop_cache::{UopCache, UopCacheStats};
use crate::{commit, decode, execute, fetch};
use csd::{CsdConfig, CsdEngine};
use csd_cache::Hierarchy;
use csd_dift::Dift;
use csd_power::{Activity, EnergyModel, Unit};
use csd_telemetry::{EventSink, Json, SinkHandle, ToJson};
use csd_uops::{DecodeMemo, MemoStats, UReg};
use mx86_isa::Program;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Fast, state-accurate execution (cache state exact, cycles
    /// approximated as retired µops).
    Functional,
    /// Full cycle-level timing.
    Cycle,
}

/// Why a step ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired; execution continues.
    Running,
    /// A `hlt` retired.
    Halted,
    /// The PC does not resolve to an instruction start.
    Fault(u64),
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Macro-ops retired.
    pub insts: u64,
    /// Unfused µops retired.
    pub uops: u64,
    /// Fused issue slots dispatched.
    pub fused_slots: u64,
    /// Decoy µops retired.
    pub decoy_uops: u64,
    /// Vector µops executed on the VPU.
    pub vpu_uops: u64,
    /// Load µops.
    pub load_uops: u64,
    /// Store µops.
    pub store_uops: u64,
    /// Cycles elapsed (commit high-water mark in cycle mode; retired µops
    /// in functional mode).
    pub cycles: u64,
    /// Macro-ops delivered from the µop cache.
    pub uop_cache_insts: u64,
    /// Macro-ops translated by the legacy decode pipeline.
    pub legacy_insts: u64,
    /// Macro-ops microsequenced by the MSROM.
    pub msrom_insts: u64,
    /// Cycles spent stalled on conventional VPU wakes.
    pub stall_cycles: u64,
    /// Whether the program halted.
    pub halted: bool,
}

impl SimStats {
    /// Retired µops per cycle.
    pub fn upc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.uops as f64 / self.cycles as f64
    }

    /// Retired macro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.insts as f64 / self.cycles as f64
    }
}

impl ToJson for SimStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("insts", Json::from(self.insts)),
            ("uops", Json::from(self.uops)),
            ("fused_slots", Json::from(self.fused_slots)),
            ("decoy_uops", Json::from(self.decoy_uops)),
            ("vpu_uops", Json::from(self.vpu_uops)),
            ("load_uops", Json::from(self.load_uops)),
            ("store_uops", Json::from(self.store_uops)),
            ("cycles", Json::from(self.cycles)),
            ("uop_cache_insts", Json::from(self.uop_cache_insts)),
            ("legacy_insts", Json::from(self.legacy_insts)),
            ("msrom_insts", Json::from(self.msrom_insts)),
            ("stall_cycles", Json::from(self.stall_cycles)),
            ("halted", Json::from(self.halted)),
            ("ipc", Json::from(self.ipc())),
            ("upc", Json::from(self.upc())),
        ])
    }
}

/// Counters for [`Core::snapshot`] / [`Core::restore`]. Deliberately kept
/// *outside* the snapshot: restoring never rewinds them, so they count
/// real checkpoint traffic over the core's whole lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Snapshots taken.
    pub snapshots: u64,
    /// Restores performed.
    pub restores: u64,
    /// Experiment-plan legs measured on this core (marked by the
    /// `csd-exp` plan executor when it forks a leg onto the core).
    pub plan_legs: u64,
}

/// Everything [`Core::restore`] rewinds: architectural and decoder-internal
/// registers, the memory image, the cache hierarchy, the CSD engine (MSRs,
/// stealth/gate/devec state and statistics), DIFT, branch predictor, µop
/// cache, simulation statistics, and the cycle-timing state. The program,
/// configuration, simulation mode, event sinks, checkpoint counters, and
/// the decode-memoization table stay with the live core.
#[derive(Debug, Clone)]
pub struct CoreSnapshot {
    state: ArchState,
    mem: Memory,
    hier: Hierarchy,
    engine: CsdEngine,
    dift: Dift,
    bp: BranchPredictor,
    ucache: UopCache,
    stats: SimStats,
    fe_time: f64,
    last_dispatch: f64,
    last_commit: f64,
    sched: HashMap<UReg, f64>,
    flags_ready: f64,
    alu_ports: Vec<f64>,
    load_ports: Vec<f64>,
    store_ports: Vec<f64>,
    vec_ports: Vec<f64>,
    rob: VecDeque<f64>,
    prev_from_uc: bool,
    window_builder: Option<WindowBuilder>,
    prev_fusable_cmp: bool,
    pending_mispredict: bool,
    last_tick: u64,
    func_cycles: u64,
    halted: bool,
}

// A snapshot must be shareable across threads: the serving layer parks
// warmed checkpoints in an `Arc` and restores them into per-session
// cores concurrently. `EventSink: Send + Sync` makes this hold by
// construction; this assertion turns any regression into a compile
// error here rather than a trait-bound error in `csd-serve`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CoreSnapshot>();
};

/// The simulator core: program, architectural state, memory, caches, CSD
/// engine, DIFT, branch prediction, and the timing model.
#[derive(Debug)]
pub struct Core {
    pub(crate) cfg: CoreConfig,
    pub(crate) mode: SimMode,
    pub(crate) program: Program,
    /// Architectural + decoder-internal register state.
    pub state: ArchState,
    /// Flat data/instruction memory.
    pub mem: Memory,
    pub(crate) hier: Hierarchy,
    pub(crate) engine: CsdEngine,
    pub(crate) dift: Dift,
    pub(crate) bp: BranchPredictor,
    pub(crate) ucache: UopCache,
    pub(crate) stats: SimStats,
    pub(crate) sink: SinkHandle,

    // --- simulation kernel (not part of the modeled machine) ---
    pub(crate) memo: DecodeMemo,
    pub(crate) memo_enabled: bool,
    ckpt: CheckpointStats,

    // --- timing state (cycle mode) ---
    pub(crate) fe_time: f64,
    pub(crate) last_dispatch: f64,
    pub(crate) last_commit: f64,
    pub(crate) sched: HashMap<UReg, f64>,
    pub(crate) flags_ready: f64,
    pub(crate) alu_ports: Vec<f64>,
    pub(crate) load_ports: Vec<f64>,
    pub(crate) store_ports: Vec<f64>,
    pub(crate) vec_ports: Vec<f64>,
    pub(crate) rob: VecDeque<f64>,
    pub(crate) prev_from_uc: bool,
    pub(crate) window_builder: Option<WindowBuilder>,
    pub(crate) prev_fusable_cmp: bool,
    pub(crate) pending_mispredict: bool,
    pub(crate) last_tick: u64,
    pub(crate) func_cycles: u64,
    pub(crate) halted: bool,
}

/// Whether the `CSD_DECODE_MEMO` environment variable force-disables the
/// decode-memoization table (`0`, `false`, `off`, or `no`).
fn env_memo_enabled() -> bool {
    match std::env::var("CSD_DECODE_MEMO") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

impl Core {
    /// Builds a core around a program.
    pub fn new(cfg: CoreConfig, csd_cfg: CsdConfig, program: Program, mode: SimMode) -> Core {
        let mut dift = Dift::new();
        dift.set_enabled(cfg.dift_enabled);
        let entry = program.entry();
        let ucache = UopCache::new(
            cfg.uop_cache_sets(),
            cfg.uop_cache_ways,
            cfg.uop_cache_line_uops,
            cfg.uop_cache_max_lines_per_window,
        );
        let memo_enabled = cfg.decode_memo_enabled && env_memo_enabled();
        Core {
            hier: Hierarchy::new(cfg.hierarchy),
            engine: CsdEngine::new(csd_cfg),
            dift,
            bp: BranchPredictor::default(),
            ucache,
            state: ArchState::new(entry),
            mem: Memory::new(),
            stats: SimStats::default(),
            sink: SinkHandle::new(),
            memo: DecodeMemo::new(),
            memo_enabled,
            ckpt: CheckpointStats::default(),
            fe_time: 0.0,
            last_dispatch: 0.0,
            last_commit: 0.0,
            sched: HashMap::new(),
            flags_ready: 0.0,
            alu_ports: vec![0.0; cfg.alu_units],
            load_ports: vec![0.0; cfg.load_units],
            store_ports: vec![0.0; cfg.store_units],
            vec_ports: vec![0.0; cfg.vector_units],
            rob: VecDeque::new(),
            prev_from_uc: false,
            window_builder: None,
            prev_fusable_cmp: false,
            pending_mispredict: false,
            last_tick: 0,
            func_cycles: 0,
            halted: false,
            program,
            cfg,
            mode,
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Attaches an event sink to the core's retire stage. Decode-level
    /// events come from the CSD engine's own sink
    /// ([`CsdEngine::set_event_sink`] via [`Core::engine_mut`]). With no
    /// sink attached (the default) the retire path pays one `Option`
    /// test per macro-op.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink.attach(sink);
    }

    /// Detaches and returns the core's retire-stage sink, if any.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.detach()
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The CSD engine (stats, gate state).
    pub fn engine(&self) -> &CsdEngine {
        &self.engine
    }

    /// Mutable CSD engine (MSR configuration, MCU installation).
    pub fn engine_mut(&mut self) -> &mut CsdEngine {
        &mut self.engine
    }

    /// The memory hierarchy (attack agents probe and flush through this).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable memory hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// The DIFT engine (taint sources).
    pub fn dift_mut(&mut self) -> &mut Dift {
        &mut self.dift
    }

    /// The branch predictor statistics.
    pub fn branch_stats(&self) -> &crate::branch::BranchStats {
        self.bp.stats()
    }

    /// µop cache statistics.
    pub fn uop_cache_stats(&self) -> &UopCacheStats {
        self.ucache.stats()
    }

    /// Simulation statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Decode-memoization counters (hits, misses, bypasses).
    pub fn memo_stats(&self) -> &MemoStats {
        self.memo.stats()
    }

    /// Whether the decode-memoization table is active (configuration AND
    /// the `CSD_DECODE_MEMO` environment toggle).
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled
    }

    /// Snapshot/restore counters.
    pub fn checkpoint_stats(&self) -> &CheckpointStats {
        &self.ckpt
    }

    /// Records that an experiment-plan leg is about to be measured on
    /// this core. Like the snapshot/restore counters, the mark lives
    /// outside the snapshot: restoring never rewinds it, so it counts
    /// real plan traffic over the core's whole lifetime.
    pub fn mark_plan_leg(&mut self) {
        self.ckpt.plan_legs += 1;
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        match self.mode {
            SimMode::Functional => self.func_cycles,
            SimMode::Cycle => self.last_commit.ceil() as u64,
        }
    }

    /// Whether a `hlt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Rewinds the PC to the program entry and clears the halt latch so the
    /// program can run again. Caches, predictors, the µop cache, CSD state,
    /// statistics, and memory all persist — exactly what repeated victim
    /// invocations (one per encryption) need. The simulation kernel's
    /// decode-memoization counters and context generation reset to their
    /// fresh-core values (they are simulator bookkeeping, not machine
    /// state), while the table's cached lines stay warm like any other
    /// cache: restart changes no decoder configuration, so every line is
    /// still valid, and the next run of a straight-line victim hits where
    /// the first one filled.
    pub fn restart(&mut self) {
        self.state.rip = self.program.entry();
        self.halted = false;
        self.memo.reset();
        self.engine.reset_context_key();
    }

    /// Captures everything needed to resume simulation from this exact
    /// point: the modeled machine in full (see [`CoreSnapshot`]). The
    /// suite uses this to fast-forward a victim's warmup once and fork
    /// attack variants from the checkpoint instead of re-simulating it.
    pub fn snapshot(&mut self) -> CoreSnapshot {
        self.ckpt.snapshots += 1;
        CoreSnapshot {
            state: self.state.clone(),
            mem: self.mem.clone(),
            hier: self.hier.clone(),
            engine: self.engine.clone(),
            dift: self.dift.clone(),
            bp: self.bp.clone(),
            ucache: self.ucache.clone(),
            stats: self.stats,
            fe_time: self.fe_time,
            last_dispatch: self.last_dispatch,
            last_commit: self.last_commit,
            sched: self.sched.clone(),
            flags_ready: self.flags_ready,
            alu_ports: self.alu_ports.clone(),
            load_ports: self.load_ports.clone(),
            store_ports: self.store_ports.clone(),
            vec_ports: self.vec_ports.clone(),
            rob: self.rob.clone(),
            prev_from_uc: self.prev_from_uc,
            window_builder: self.window_builder,
            prev_fusable_cmp: self.prev_fusable_cmp,
            pending_mispredict: self.pending_mispredict,
            last_tick: self.last_tick,
            func_cycles: self.func_cycles,
            halted: self.halted,
        }
    }

    /// Rewinds the core to `snap`. Event sinks stay attached to the live
    /// core (cloning an engine never drags a sink, so the snapshot holds
    /// none), and the decode-memoization table is emptied: the restored
    /// context generation may re-reach values the table already saw under
    /// different machine state.
    pub fn restore(&mut self, snap: &CoreSnapshot) {
        self.ckpt.restores += 1;
        self.state = snap.state.clone();
        self.mem = snap.mem.clone();
        self.hier = snap.hier.clone();
        let sink = self.engine.take_event_sink();
        self.engine = snap.engine.clone();
        if let Some(s) = sink {
            self.engine.set_event_sink(s);
        }
        self.dift = snap.dift.clone();
        self.bp = snap.bp.clone();
        self.ucache = snap.ucache.clone();
        self.stats = snap.stats;
        self.fe_time = snap.fe_time;
        self.last_dispatch = snap.last_dispatch;
        self.last_commit = snap.last_commit;
        self.sched = snap.sched.clone();
        self.flags_ready = snap.flags_ready;
        self.alu_ports = snap.alu_ports.clone();
        self.load_ports = snap.load_ports.clone();
        self.store_ports = snap.store_ports.clone();
        self.vec_ports = snap.vec_ports.clone();
        self.rob = snap.rob.clone();
        self.prev_from_uc = snap.prev_from_uc;
        self.window_builder = snap.window_builder;
        self.prev_fusable_cmp = snap.prev_fusable_cmp;
        self.pending_mispredict = snap.pending_mispredict;
        self.last_tick = snap.last_tick;
        self.func_cycles = snap.func_cycles;
        self.halted = snap.halted;
        self.memo.clear_entries();
    }

    /// Per-unit activity for the energy model.
    pub fn activity(&self) -> Activity {
        let mut a = Activity::new(self.cycles());
        a.add_ops(Unit::Vpu, self.stats.vpu_uops);
        a.add_ops(Unit::Lsu, self.stats.load_uops + self.stats.store_uops);
        a.add_ops(
            Unit::ScalarAlu,
            self.stats
                .uops
                .saturating_sub(self.stats.vpu_uops + self.stats.load_uops + self.stats.store_uops),
        );
        a.add_ops(
            Unit::LegacyDecode,
            self.stats.legacy_insts + self.stats.msrom_insts,
        );
        a.add_ops(Unit::UopCache, self.stats.uop_cache_insts);
        a.add_ops(Unit::Core, self.stats.uops);
        let gs = self.engine.gate().stats();
        a.vpu_gated_cycles = gs.gated_cycles.min(a.cycles);
        a.vpu_gate_transitions = gs.gate_transitions;
        a
    }

    /// Every counter the simulator keeps, as one nested JSON report:
    /// pipeline, CSD engine, stealth, devectorizer, gate residency, µop
    /// cache, cache hierarchy, activity, the default-model energy
    /// breakdown, and the simulation kernel's own counters (context key,
    /// decode memoization, checkpointing — see the README telemetry
    /// schema).
    pub fn telemetry_report(&self) -> Json {
        let e = &self.engine;
        let activity = self.activity();
        let m = self.memo.stats();
        Json::obj([
            ("sim", self.stats.to_json()),
            ("csd", e.stats().to_json()),
            ("stealth", e.stealth().stats().to_json()),
            ("devec", e.devectorizer().stats().to_json()),
            ("gate", e.gate().stats().to_json()),
            ("uop_cache", self.ucache.stats().to_json()),
            ("caches", self.hier.stats().to_json()),
            ("activity", activity.to_json()),
            (
                "energy",
                EnergyModel::default().breakdown(&activity).to_json(),
            ),
            (
                "kernel",
                Json::obj([
                    ("context_key", Json::from(e.context_key())),
                    (
                        "decode_memo",
                        Json::obj([
                            ("enabled", Json::from(self.memo_enabled)),
                            ("hits", Json::from(m.hits)),
                            ("misses", Json::from(m.misses)),
                            ("bypasses", Json::from(m.bypasses)),
                            ("invalidations", Json::from(m.invalidations)),
                            ("inserts", Json::from(m.inserts)),
                        ]),
                    ),
                    (
                        "checkpoint",
                        Json::obj([
                            ("snapshots", Json::from(self.ckpt.snapshots)),
                            ("restores", Json::from(self.ckpt.restores)),
                            ("plan_legs", Json::from(self.ckpt.plan_legs)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// Executes one macro-op through the four pipeline stages.
    pub fn step(&mut self) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        let mut ctx = match fetch::run(self) {
            Ok(ctx) => ctx,
            Err(outcome) => return outcome,
        };
        decode::run(self, &mut ctx);
        execute::run(self, &mut ctx);
        commit::run(self, ctx)
    }

    /// Runs until halt, fault, or `max_insts` retired. Returns the outcome
    /// of the last step.
    pub fn run(&mut self, max_insts: u64) -> StepOutcome {
        let mut last = StepOutcome::Running;
        for _ in 0..max_insts {
            last = self.step();
            if last != StepOutcome::Running {
                break;
            }
        }
        last
    }

    /// Runs until the cycle counter advances by at least `cycles` (or the
    /// program halts/faults). Used to interleave victim execution with
    /// attacker probes at a fixed cadence.
    pub fn run_cycles(&mut self, cycles: u64) -> StepOutcome {
        let target = self.cycles() + cycles;
        let mut last = StepOutcome::Running;
        while self.cycles() < target {
            last = self.step();
            if last != StepOutcome::Running {
                break;
            }
        }
        last
    }
}
