//! Commit stage: retire accounting, engine time advance, retire-event
//! emission, and the PC update / halt latch.

use crate::core::{Core, SimMode, StepOutcome};
use crate::decode;
use crate::stage::{FlowEnd, StageCtx};
use csd_telemetry::RetireEvent;
use mx86_isa::Inst;

/// Retires the macro-op: statistics, watchdog/gate time advance, the
/// retire event, and the next-PC decision.
#[inline]
pub(crate) fn run(core: &mut Core, ctx: StageCtx) -> StepOutcome {
    let uops = ctx.outcome().translation.uops.len() as u64;
    let decoys = ctx
        .outcome()
        .translation
        .uops
        .iter()
        .filter(|u| u.is_decoy())
        .count() as u64;

    core.stats.insts += 1;
    core.stats.uops += uops;
    core.stats.fused_slots += ctx.fused_slots as u64;
    core.stats.decoy_uops += decoys;
    core.prev_fusable_cmp = matches!(ctx.placed.inst, Inst::Cmp { .. } | Inst::Test { .. });

    if core.mode == SimMode::Functional {
        core.func_cycles += uops;
    }

    // Advance the engine's notion of time (watchdog, gate residency).
    let now = core.cycles();
    let delta = now.saturating_sub(core.last_tick);
    if delta > 0 {
        core.engine.tick(delta);
        core.last_tick = now;
    }

    let ev = RetireEvent {
        addr: ctx.placed.addr,
        uops: uops as u32,
        insts: core.stats.insts,
        cycles: now,
    };
    core.sink.with(|s| s.on_retire(&ev));

    match ctx.flow_end {
        Some(FlowEnd::Halt) => {
            core.halted = true;
            core.stats.halted = true;
            decode::finalize_window(core);
            core.stats.cycles = core.cycles();
            StepOutcome::Halted
        }
        Some(FlowEnd::Branch(t)) => {
            // A taken control transfer ends µop-cache window building,
            // even when the target lies in the same window.
            decode::finalize_window(core);
            core.state.rip = t;
            core.stats.cycles = core.cycles();
            StepOutcome::Running
        }
        None => {
            core.state.rip = ctx.placed.next_addr();
            core.stats.cycles = core.cycles();
            StepOutcome::Running
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Core, CoreConfig, SimMode, StepOutcome};
    use csd::CsdConfig;
    use mx86_isa::{Assembler, Gpr};

    #[test]
    fn halt_latches_and_freezes_cycle_count() {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rax, 1);
        a.halt();
        let mut c = Core::new(
            CoreConfig::default(),
            CsdConfig::default(),
            a.finish().unwrap(),
            SimMode::Cycle,
        );
        assert_eq!(c.run(100), StepOutcome::Halted);
        assert!(c.halted());
        assert!(c.stats().halted);
        let frozen = c.stats().cycles;
        assert_eq!(c.step(), StepOutcome::Halted);
        assert_eq!(c.stats().cycles, frozen, "halted step must be inert");
    }
}
