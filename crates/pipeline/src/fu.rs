//! Pure functional-unit µop semantics (ALU, multiplier, vector ALU)
//! shared by both simulation engines. This module computes *values and
//! flags only*; the `execute` module is the pipeline stage that drives
//! these helpers, models timing/ports, and commits the results.

use crate::machine::Flags;
use mx86_isa::{AluOp, VecOp};

/// Computes a scalar ALU operation and its resulting flags.
pub fn alu(op: AluOp, a: u64, b: u64) -> (u64, Flags) {
    let (res, cf, of) = match op {
        AluOp::Add => {
            let (r, c) = a.overflowing_add(b);
            let o = (a as i64).overflowing_add(b as i64).1;
            (r, c, o)
        }
        AluOp::Sub => {
            let (r, c) = a.overflowing_sub(b);
            let o = (a as i64).overflowing_sub(b as i64).1;
            (r, c, o)
        }
        AluOp::And => (a & b, false, false),
        AluOp::Or => (a | b, false, false),
        AluOp::Xor => (a ^ b, false, false),
        AluOp::Shl => (a.wrapping_shl((b & 63) as u32), false, false),
        AluOp::Shr => (a.wrapping_shr((b & 63) as u32), false, false),
        AluOp::Sar => (
            (a as i64).wrapping_shr((b & 63) as u32) as u64,
            false,
            false,
        ),
    };
    let flags = Flags {
        zf: res == 0,
        sf: (res as i64) < 0,
        cf,
        of,
    };
    (res, flags)
}

/// Computes a 64-bit multiply and its flags (CF/OF on signed overflow).
pub fn mul(a: u64, b: u64) -> (u64, Flags) {
    let res = a.wrapping_mul(b);
    let wide = (a as i64 as i128) * (b as i64 as i128);
    let overflow = wide != (res as i64 as i128);
    (
        res,
        Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf: overflow,
            of: overflow,
        },
    )
}

/// Packed 128-bit vector ALU semantics over (low, high) halves — the VPU's
/// reference behavior, which devectorized flows must match exactly.
pub fn valu(op: VecOp, x: (u64, u64), y: (u64, u64)) -> (u64, u64) {
    (valu_half(op, x.0, y.0), valu_half(op, x.1, y.1))
}

fn valu_half(op: VecOp, x: u64, y: u64) -> u64 {
    match op {
        VecOp::PAnd => x & y,
        VecOp::POr => x | y,
        VecOp::PXor => x ^ y,
        VecOp::PAddQ => x.wrapping_add(y),
        VecOp::PAddB
        | VecOp::PAddW
        | VecOp::PAddD
        | VecOp::PSubB
        | VecOp::PSubD
        | VecOp::PMullW
        | VecOp::PMullD => int_lanes(op, x, y),
        VecOp::AddPs | VecOp::SubPs | VecOp::MulPs => f32_lanes(op, x, y),
        VecOp::AddPd | VecOp::MulPd => {
            let (a, b) = (f64::from_bits(x), f64::from_bits(y));
            let r = if op == VecOp::AddPd { a + b } else { a * b };
            r.to_bits()
        }
    }
}

fn int_lanes(op: VecOp, x: u64, y: u64) -> u64 {
    let w = op.element_bytes() as u64;
    let lanes = 8 / w;
    let mask = if w == 8 {
        u64::MAX
    } else {
        (1u64 << (w * 8)) - 1
    };
    let mut out = 0u64;
    for l in 0..lanes {
        let sh = l * w * 8;
        let a = (x >> sh) & mask;
        let b = (y >> sh) & mask;
        let v = match op {
            VecOp::PAddB | VecOp::PAddW | VecOp::PAddD => a.wrapping_add(b) & mask,
            VecOp::PSubB | VecOp::PSubD => a.wrapping_sub(b) & mask,
            VecOp::PMullW | VecOp::PMullD => a.wrapping_mul(b) & mask,
            _ => unreachable!("non-integer op in int_lanes"),
        };
        out |= v << sh;
    }
    out
}

fn f32_lanes(op: VecOp, x: u64, y: u64) -> u64 {
    let mut out = 0u64;
    for l in 0..2u64 {
        let sh = l * 32;
        let a = f32::from_bits((x >> sh) as u32);
        let b = f32::from_bits((y >> sh) as u32);
        let r = match op {
            VecOp::AddPs => a + b,
            VecOp::SubPs => a - b,
            VecOp::MulPs => a * b,
            _ => unreachable!("non-f32 op in f32_lanes"),
        };
        out |= u64::from(r.to_bits()) << sh;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sets_carry_and_overflow() {
        let (r, f) = alu(AluOp::Add, u64::MAX, 1);
        assert_eq!(r, 0);
        assert!(f.zf && f.cf && !f.of);

        let (_, f) = alu(AluOp::Add, i64::MAX as u64, 1);
        assert!(f.of && !f.cf);
    }

    #[test]
    fn sub_sets_borrow() {
        let (r, f) = alu(AluOp::Sub, 1, 2);
        assert_eq!(r as i64, -1);
        assert!(f.cf && f.sf && !f.zf);
        let (_, f) = alu(AluOp::Sub, 5, 5);
        assert!(f.zf && !f.cf);
    }

    #[test]
    fn logic_clears_carry() {
        let (r, f) = alu(AluOp::Xor, 0xF0, 0x0F);
        assert_eq!(r, 0xFF);
        assert!(!f.cf && !f.of && !f.zf);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(alu(AluOp::Shl, 1, 64).0, 1, "shift amount masked to 0");
        assert_eq!(alu(AluOp::Shr, 0x100, 4).0, 0x10);
        assert_eq!(alu(AluOp::Sar, (-8i64) as u64, 1).0 as i64, -4);
    }

    #[test]
    fn mul_overflow_flags() {
        let (_, f) = mul(3, 4);
        assert!(!f.cf);
        let (_, f) = mul(u64::MAX / 2, 4);
        assert!(f.cf && f.of);
    }

    #[test]
    fn packed_byte_add_wraps_per_lane() {
        let r = valu(VecOp::PAddB, (0xFF01_FF01, 0), (0x0101_0101, 0));
        assert_eq!(r.0, 0x0002_0002);
    }

    #[test]
    fn packed_float_lanes() {
        let x = (f32::to_bits(1.5) as u64) | ((f32::to_bits(2.0) as u64) << 32);
        let y = (f32::to_bits(0.5) as u64) | ((f32::to_bits(3.0) as u64) << 32);
        let r = valu(VecOp::MulPs, (x, 0), (y, 0));
        assert_eq!(r.0 & 0xFFFF_FFFF, u64::from(f32::to_bits(0.75)));
        assert_eq!(r.0 >> 32, u64::from(f32::to_bits(6.0)));
    }

    #[test]
    fn packed_double() {
        let r = valu(
            VecOp::AddPd,
            (2.5f64.to_bits(), 1.0f64.to_bits()),
            (0.5f64.to_bits(), (-1.0f64).to_bits()),
        );
        assert_eq!(f64::from_bits(r.0), 3.0);
        assert_eq!(f64::from_bits(r.1), 0.0);
    }
}
