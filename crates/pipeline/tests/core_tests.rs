//! Integration tests for the simulator core: functional correctness,
//! cross-engine equivalence, CSD end-to-end behavior, and timing sanity.

use csd::{msr, CsdConfig, DevecThresholds, VpuPolicy};
use csd_pipeline::{Core, CoreConfig, SimMode, StepOutcome};
use mx86_isa::{AluOp, Assembler, Cc, Gpr, MemRef, Program, Scale, VecOp, Width, Xmm};

fn run_core(prog: Program, mode: SimMode) -> Core {
    let mut core = Core::new(CoreConfig::default(), CsdConfig::default(), prog, mode);
    let out = core.run(1_000_000);
    assert_eq!(out, StepOutcome::Halted, "program must halt");
    core
}

#[test]
fn loop_countdown_executes_correctly() {
    for mode in [SimMode::Functional, SimMode::Cycle] {
        let mut a = Assembler::new(0x1000);
        let top = a.fresh_label();
        a.mov_ri(Gpr::Rax, 0);
        a.mov_ri(Gpr::Rcx, 50);
        a.bind(top).unwrap();
        a.alu_ri(AluOp::Add, Gpr::Rax, 3);
        a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
        a.jcc(Cc::Ne, top);
        a.halt();
        let core = run_core(a.finish().unwrap(), mode);
        assert_eq!(core.state.gpr(Gpr::Rax), 150, "{mode:?}");
        assert_eq!(core.stats().insts, 2 + 50 * 3 + 1);
    }
}

#[test]
fn loads_and_stores_roundtrip_through_memory() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.mov_ri(Gpr::Rax, 0xDEAD);
    a.store(MemRef::base(Gpr::Rbx), Gpr::Rax);
    a.load(Gpr::Rcx, MemRef::base(Gpr::Rbx));
    a.alu_store(
        AluOp::Add,
        MemRef::base(Gpr::Rbx),
        mx86_isa::RegImm::Imm(1),
        Width::B8,
    );
    a.load(Gpr::Rdx, MemRef::base(Gpr::Rbx));
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Cycle);
    assert_eq!(core.state.gpr(Gpr::Rcx), 0xDEAD);
    assert_eq!(core.state.gpr(Gpr::Rdx), 0xDEAE);
}

#[test]
fn call_and_ret_use_the_stack() {
    let mut a = Assembler::new(0x1000);
    let func = a.fresh_label();
    let done = a.fresh_label();
    a.mov_ri(Gpr::Rsp, 0x9000);
    a.call(func);
    a.jmp(done);
    a.bind(func).unwrap();
    a.mov_ri(Gpr::Rax, 42);
    a.ret();
    a.bind(done).unwrap();
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Cycle);
    assert_eq!(core.state.gpr(Gpr::Rax), 42);
    assert_eq!(core.state.gpr(Gpr::Rsp), 0x9000, "stack balanced");
}

#[test]
fn byte_width_loads_are_zero_extended() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.mov_ri(Gpr::Rax, 0x1234_56FF);
    a.store(MemRef::base(Gpr::Rbx), Gpr::Rax);
    a.load_w(Gpr::Rcx, MemRef::base(Gpr::Rbx), Width::B1);
    a.load_w(Gpr::Rdx, MemRef::base(Gpr::Rbx), Width::B2);
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Functional);
    assert_eq!(core.state.gpr(Gpr::Rcx), 0xFF);
    assert_eq!(core.state.gpr(Gpr::Rdx), 0x56FF);
}

#[test]
fn table_lookup_with_index_scaling() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.mov_ri(Gpr::Rcx, 5);
    a.load_w(
        Gpr::Rax,
        MemRef::base_index(Gpr::Rbx, Gpr::Rcx, Scale::S4),
        Width::B4,
    );
    a.halt();
    let prog = a.finish().unwrap();
    let mut core = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        prog,
        SimMode::Cycle,
    );
    for i in 0..16u32 {
        core.mem
            .write_le(0x8000 + u64::from(i) * 4, 4, u64::from(i * 100));
    }
    assert_eq!(core.run(100), StepOutcome::Halted);
    assert_eq!(core.state.gpr(Gpr::Rax), 500);
}

#[test]
fn division_is_microsequenced_and_correct() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rax, 1234);
    a.mov_ri(Gpr::Rdx, 0);
    a.mov_ri(Gpr::Rbx, 7);
    a.div(Gpr::Rbx);
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Cycle);
    assert_eq!(core.state.gpr(Gpr::Rax), 176);
    assert_eq!(core.state.gpr(Gpr::Rdx), 2);
    assert_eq!(core.stats().msrom_insts, 1);
}

#[test]
fn vector_ops_execute_on_vpu() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.vload(Xmm::new(0), MemRef::base(Gpr::Rbx));
    a.vload(Xmm::new(1), MemRef::base(Gpr::Rbx).with_disp(16));
    a.valu(VecOp::PAddB, Xmm::new(0), Xmm::new(1));
    a.vstore(MemRef::base(Gpr::Rbx).with_disp(32), Xmm::new(0));
    a.halt();
    let prog = a.finish().unwrap();
    let mut core = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        prog,
        SimMode::Cycle,
    );
    core.mem
        .write_u128(0x8000, (0x0102_0304_0506_0708, 0xFF00_FF00_FF00_FF00));
    core.mem
        .write_u128(0x8010, (0x0101_0101_0101_0101, 0x0102_0102_0102_0102));
    assert_eq!(core.run(100), StepOutcome::Halted);
    assert_eq!(
        core.mem.read_u128(0x8020),
        (0x0203_0405_0607_0809, 0x0002_0002_0002_0002)
    );
    assert_eq!(core.stats().vpu_uops, 1);
}

/// The devectorized flow must compute exactly what the VPU computes.
#[test]
fn devectorized_results_match_vpu_results() {
    let build = || {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rbx, 0x8000);
        a.vload(Xmm::new(0), MemRef::base(Gpr::Rbx));
        a.vload(Xmm::new(1), MemRef::base(Gpr::Rbx).with_disp(16));
        // A long scalar phase so the CSD policy gates the VPU.
        for _ in 0..300 {
            a.alu_ri(AluOp::Add, Gpr::Rax, 1);
        }
        a.valu(VecOp::PAddB, Xmm::new(0), Xmm::new(1));
        a.valu(VecOp::PMullW, Xmm::new(0), Xmm::new(1));
        a.valu(VecOp::PXor, Xmm::new(0), Xmm::new(1));
        a.vstore(MemRef::base(Gpr::Rbx).with_disp(32), Xmm::new(0));
        a.halt();
        a.finish().unwrap()
    };
    let data = [
        (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
        (0x1111_2222_3333_4444, 0x5555_6666_7777_8888),
    ];

    let mut on = Core::new(
        CoreConfig::default(),
        CsdConfig {
            vpu_policy: VpuPolicy::AlwaysOn,
            ..CsdConfig::default()
        },
        build(),
        SimMode::Cycle,
    );
    on.mem.write_u128(0x8000, data[0]);
    on.mem.write_u128(0x8010, data[1]);
    assert_eq!(on.run(10_000), StepOutcome::Halted);

    let mut devec = Core::new(
        CoreConfig::default(),
        CsdConfig {
            vpu_policy: VpuPolicy::CsdDevec(DevecThresholds {
                window: 64,
                low: 0,
                high: 50,
            }),
            ..CsdConfig::default()
        },
        build(),
        SimMode::Cycle,
    );
    devec.mem.write_u128(0x8000, data[0]);
    devec.mem.write_u128(0x8010, data[1]);
    assert_eq!(devec.run(10_000), StepOutcome::Halted);

    assert_eq!(
        on.mem.read_u128(0x8020),
        devec.mem.read_u128(0x8020),
        "scalarized flow must be semantically identical"
    );
    assert!(
        devec.stats().vpu_uops < on.stats().vpu_uops,
        "devec avoided the VPU"
    );
    assert!(
        devec.stats().uops > on.stats().uops,
        "µop expansion is the cost"
    );
    assert!(devec.engine().gate().stats().vec_gated > 0);
}

#[test]
fn stealth_mode_sweeps_decoy_ranges_without_touching_arch_state() {
    // Victim: one key-dependent load (tainted pointer).
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000); // key address
    a.load(Gpr::Rcx, MemRef::base(Gpr::Rbx)); // rcx ← key (tainted)
    a.mov_ri(Gpr::Rdx, 0xA000); // table base
    a.load_w(
        Gpr::Rax,
        MemRef::base_index(Gpr::Rdx, Gpr::Rcx, Scale::S1),
        Width::B1,
    ); // tainted table lookup
    a.halt();
    let prog = a.finish().unwrap();

    let cfg = CoreConfig {
        dift_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(cfg, CsdConfig::default(), prog, SimMode::Functional);
    core.mem.write_le(0x8000, 8, 3); // the "key"
    core.dift_mut()
        .taint_memory(mx86_isa::AddrRange::new(0x8000, 0x8008));
    // Decoy range: 4 cache lines at 0xA000.
    let e = core.engine_mut();
    e.write_msr(msr::MSR_DATA_RANGE_BASE, 0xA000);
    e.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0xA000 + 4 * 64);
    e.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);

    assert_eq!(core.run(100), StepOutcome::Halted);

    // All four decoy lines are now cached, though the victim only loaded
    // one byte of the range.
    for i in 0..4u64 {
        assert!(
            core.hierarchy().l1d().contains(0xA000 + i * 64),
            "decoy line {i} must be resident"
        );
    }
    assert!(core.stats().decoy_uops >= 4 * 3);
    // Architectural state: rax holds the real lookup (byte 0 of 0xA003=0).
    assert_eq!(core.state.gpr(Gpr::Rax), 0);
    assert_eq!(core.state.gpr(Gpr::Rcx), 3, "key value intact");
    assert_eq!(core.engine().stealth().stats().triggers, 1);
}

#[test]
fn stealth_mode_off_means_no_decoys() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rdx, 0xA000);
    a.load_w(Gpr::Rax, MemRef::base(Gpr::Rdx), Width::B1);
    a.halt();
    let cfg = CoreConfig {
        dift_enabled: true,
        ..CoreConfig::default()
    };
    let mut core = Core::new(
        cfg,
        CsdConfig::default(),
        a.finish().unwrap(),
        SimMode::Functional,
    );
    assert_eq!(core.run(100), StepOutcome::Halted);
    assert_eq!(core.stats().decoy_uops, 0);
    assert!(!core.hierarchy().l1d().contains(0xA040));
}

#[test]
fn clflush_evicts_and_rdtsc_observes_the_difference() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.load(Gpr::Rax, MemRef::base(Gpr::Rbx)); // warm
    a.clflush(MemRef::base(Gpr::Rbx));
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Cycle);
    assert!(!core.hierarchy().present_anywhere(0x8000));
}

#[test]
fn uop_cache_accelerates_hot_loops() {
    // Long-immediate movs make the loop length-decode-bound on the legacy
    // path; the µop cache streams it at full width.
    let build = || {
        let mut a = Assembler::new(0x1000);
        let top = a.fresh_label();
        a.mov_ri(Gpr::Rcx, 2000);
        a.bind(top).unwrap();
        a.mov_ri(Gpr::Rax, 0x1111_2222_3333_4444);
        a.mov_ri(Gpr::Rbx, 0x5555_6666_7777_8888);
        a.mov_ri(Gpr::Rdx, 0x9999_AAAA_BBBB_CCCCu64 as i64);
        a.mov_ri(Gpr::Rsi, 0x1234_5678_9ABC_DEF0);
        a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
        a.jcc(Cc::Ne, top);
        a.halt();
        a.finish().unwrap()
    };
    let opt = run_core(build(), SimMode::Cycle);
    let mut no_opt = Core::new(
        CoreConfig::no_opt(),
        CsdConfig::default(),
        build(),
        SimMode::Cycle,
    );
    assert_eq!(no_opt.run(1_000_000), StepOutcome::Halted);

    let hr = opt.uop_cache_stats().hit_rate().unwrap();
    assert!(hr > 0.9, "hot loop must hit the µop cache, got {hr}");
    assert!(
        opt.stats().cycles < no_opt.stats().cycles,
        "µop cache + fusion must help: {} vs {}",
        opt.stats().cycles,
        no_opt.stats().cycles
    );
}

#[test]
fn functional_and_cycle_engines_agree_on_architectural_state() {
    let build = || {
        let mut a = Assembler::new(0x1000);
        let top = a.fresh_label();
        a.mov_ri(Gpr::Rsp, 0x9000);
        a.mov_ri(Gpr::Rcx, 30);
        a.mov_ri(Gpr::Rbx, 0x8000);
        a.bind(top).unwrap();
        a.alu_rr(AluOp::Add, Gpr::Rax, Gpr::Rcx);
        a.store(MemRef::base(Gpr::Rbx), Gpr::Rax);
        a.alu_load(AluOp::Xor, Gpr::Rdx, MemRef::base(Gpr::Rbx), Width::B8);
        a.push(Gpr::Rdx);
        a.pop(Gpr::Rsi);
        a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
        a.jcc(Cc::Ne, top);
        a.halt();
        a.finish().unwrap()
    };
    let f = run_core(build(), SimMode::Functional);
    let c = run_core(build(), SimMode::Cycle);
    assert_eq!(f.state.gprs, c.state.gprs);
    assert_eq!(f.stats().insts, c.stats().insts);
    assert_eq!(f.stats().uops, c.stats().uops);
}

#[test]
fn mispredicted_branches_cost_cycles() {
    // A data-dependent unpredictable branch pattern vs. an always-taken one.
    let build = |pattern: bool| {
        let mut a = Assembler::new(0x1000);
        let top = a.fresh_label();
        let skip = a.fresh_label();
        a.mov_ri(Gpr::Rcx, 3000);
        a.mov_ri(Gpr::Rax, 0);
        a.bind(top).unwrap();
        a.alu_ri(AluOp::Add, Gpr::Rax, 1);
        if pattern {
            // LFSR-ish: test a mixed bit so direction alternates irregularly.
            a.mov_rr(Gpr::Rdx, Gpr::Rax);
            a.mul_ri(Gpr::Rdx, 0x9E37_79B9);
            a.alu_ri(AluOp::Shr, Gpr::Rdx, 13);
            a.test_ri(Gpr::Rdx, 1);
            a.jcc(Cc::Ne, skip);
            a.nop(1);
            a.bind(skip).unwrap();
        } else {
            a.nop(1);
            a.nop(1);
            a.nop(1);
            a.nop(1);
            a.nop(1);
            a.nop(1);
        }
        a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
        a.jcc(Cc::Ne, top);
        a.halt();
        a.finish().unwrap()
    };
    let noisy = run_core(build(true), SimMode::Cycle);
    assert!(
        noisy.branch_stats().cond_mispredicts > 50,
        "unpredictable branch must mispredict, got {}",
        noisy.branch_stats().cond_mispredicts
    );
}

#[test]
fn rdtsc_increases_monotonically() {
    let mut a = Assembler::new(0x1000);
    a.rdtsc();
    a.mov_rr(Gpr::Rbx, Gpr::Rax);
    for _ in 0..50 {
        a.alu_ri(AluOp::Add, Gpr::Rdx, 1);
    }
    a.rdtsc();
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Cycle);
    assert!(core.state.gpr(Gpr::Rax) > core.state.gpr(Gpr::Rbx));
}

#[test]
fn fault_on_wild_jump() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rax, 0xDEAD_0000);
    a.jmp_ind(Gpr::Rax);
    let mut core = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        a.finish().unwrap(),
        SimMode::Cycle,
    );
    assert_eq!(core.run(10), StepOutcome::Fault(0xDEAD_0000));
}

#[test]
fn activity_accounts_all_uop_classes() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rbx, 0x8000);
    a.vload(Xmm::new(0), MemRef::base(Gpr::Rbx));
    a.valu(VecOp::PXor, Xmm::new(0), Xmm::new(0));
    a.store(MemRef::base(Gpr::Rbx), Gpr::Rax);
    a.halt();
    let core = run_core(a.finish().unwrap(), SimMode::Cycle);
    let act = core.activity();
    assert_eq!(act.ops(csd_power::Unit::Vpu), 1);
    assert_eq!(act.ops(csd_power::Unit::Lsu), 2);
    assert!(act.ops(csd_power::Unit::Core) >= 5);
    assert!(act.cycles > 0);
}

#[test]
fn restarted_core_reports_like_a_fresh_one() {
    let mut a = Assembler::new(0x1000);
    a.mov_ri(Gpr::Rax, 7);
    a.halt();
    let prog = a.finish().unwrap();
    let fresh = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        prog.clone(),
        SimMode::Cycle,
    );

    // MSR writes advance the context generation without touching any
    // modeled counter, so after restart() the whole report must be byte-
    // identical to a never-used core's.
    let mut core = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        prog.clone(),
        SimMode::Cycle,
    );
    core.engine_mut().write_msr(msr::MSR_WATCHDOG_PERIOD, 512);
    core.engine_mut().write_msr(0x9999, 1);
    assert!(core.engine().context_key() > 0);
    core.restart();
    assert_eq!(
        core.telemetry_report().pretty(),
        fresh.telemetry_report().pretty(),
        "restart must rewind kernel bookkeeping to fresh-core values"
    );

    // After real work the modeled counters persist across restart() by
    // contract (caches stay warm, stats keep accumulating), but the
    // kernel section — memo table and context key — must still match a
    // fresh core byte for byte.
    let mut worked = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        prog,
        SimMode::Cycle,
    );
    assert_eq!(worked.run(1_000), StepOutcome::Halted);
    assert!(worked.memo_stats().inserts > 0 || !worked.memo_enabled());
    worked.restart();
    let fresh_kernel = fresh.telemetry_report().get("kernel").unwrap().pretty();
    let kernel = worked.telemetry_report().get("kernel").unwrap().pretty();
    assert_eq!(kernel, fresh_kernel);
}

#[test]
fn snapshot_restore_replays_identically() {
    let mut a = Assembler::new(0x1000);
    let top = a.fresh_label();
    a.mov_ri(Gpr::Rax, 0);
    a.mov_ri(Gpr::Rcx, 40);
    a.bind(top).unwrap();
    a.alu_ri(AluOp::Add, Gpr::Rax, 5);
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, top);
    a.halt();
    let mut core = Core::new(
        CoreConfig::default(),
        CsdConfig::default(),
        a.finish().unwrap(),
        SimMode::Cycle,
    );
    for _ in 0..25 {
        assert_eq!(core.step(), StepOutcome::Running);
    }
    let ckpt = core.snapshot();

    assert_eq!(core.run(1_000_000), StepOutcome::Halted);
    let end_stats = *core.stats();
    let end_rax = core.state.gpr(Gpr::Rax);

    core.restore(&ckpt);
    assert_eq!(core.run(1_000_000), StepOutcome::Halted);
    assert_eq!(core.stats().cycles, end_stats.cycles);
    assert_eq!(core.stats().insts, end_stats.insts);
    assert_eq!(core.stats().uops, end_stats.uops);
    assert_eq!(core.state.gpr(Gpr::Rax), end_rax);
    assert_eq!(core.checkpoint_stats().snapshots, 1);
    assert_eq!(core.checkpoint_stats().restores, 1);
}
