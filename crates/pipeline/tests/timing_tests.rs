//! Timing-model behavioral tests: effects that only exist in cycle mode.

use csd::{msr, CsdConfig};
use csd_pipeline::{Core, CoreConfig, SimMode, StepOutcome};
use mx86_isa::{AluOp, Assembler, Cc, Gpr, MemRef, Program, Width};

fn memory_walker(lines: i64, repeats: i64) -> Program {
    // Strides through `lines` cache lines `repeats` times, *accumulating*
    // the loaded values: the dependence chain through RAX makes load
    // latency visible to the timestamp-dataflow back end (independent
    // dead loads would be fully hidden by the out-of-order model).
    let mut a = Assembler::new(0x1000);
    let outer = a.fresh_label();
    let inner = a.fresh_label();
    a.mov_ri(Gpr::R15, repeats);
    a.bind(outer).unwrap();
    a.mov_ri(Gpr::Rbx, 0x10_0000);
    a.mov_ri(Gpr::Rcx, lines);
    a.bind(inner).unwrap();
    a.alu_load(AluOp::Add, Gpr::Rax, MemRef::base(Gpr::Rbx), Width::B8);
    a.alu_ri(AluOp::Add, Gpr::Rbx, 64);
    a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
    a.jcc(Cc::Ne, inner);
    a.alu_ri(AluOp::Sub, Gpr::R15, 1);
    a.jcc(Cc::Ne, outer);
    a.halt();
    a.finish().unwrap()
}

fn run(cfg: CoreConfig, prog: Program) -> Core {
    let mut core = Core::new(cfg, CsdConfig::default(), prog, SimMode::Cycle);
    assert_eq!(core.run(10_000_000), StepOutcome::Halted);
    core
}

/// A working set larger than the L1 must cost more cycles than one that
/// fits — the memory hierarchy is wired into the timing model.
#[test]
fn cache_misses_cost_cycles() {
    let fits = run(CoreConfig::default(), memory_walker(8, 50));
    let thrashes = run(CoreConfig::default(), memory_walker(1024, 50));
    let fits_cpl = fits.stats().cycles as f64 / fits.stats().insts as f64;
    let thrash_cpl = thrashes.stats().cycles as f64 / thrashes.stats().insts as f64;
    assert!(
        thrash_cpl > fits_cpl * 1.2,
        "L1-resident {fits_cpl:.3} vs thrashing {thrash_cpl:.3} cycles/inst"
    );
}

/// DIFT's extra L2-tag lookup latency must show up on loads.
#[test]
fn dift_penalty_slows_loads() {
    let base = run(CoreConfig::default(), memory_walker(16, 100));
    let dift = run(
        CoreConfig {
            dift_enabled: true,
            ..CoreConfig::default()
        },
        memory_walker(16, 100),
    );
    assert!(
        dift.stats().cycles > base.stats().cycles,
        "dift {} vs base {}",
        dift.stats().cycles,
        base.stats().cycles
    );
}

/// Conventional-wake stalls appear in the cycle count: a vector op after a
/// long scalar stretch pays the 30-cycle wake under the conventional
/// policy but not under always-on.
#[test]
fn conventional_wake_stall_is_visible() {
    use csd::VpuPolicy;
    let build = || {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::Rbx, 0x8000);
        a.vload(mx86_isa::Xmm::new(0), MemRef::base(Gpr::Rbx));
        for _ in 0..600 {
            a.alu_ri(AluOp::Add, Gpr::Rax, 1);
        }
        a.valu(
            mx86_isa::VecOp::PXor,
            mx86_isa::Xmm::new(0),
            mx86_isa::Xmm::new(0),
        );
        a.halt();
        a.finish().unwrap()
    };
    let mk = |policy| {
        let cfg = CsdConfig {
            vpu_policy: policy,
            ..CsdConfig::default()
        };
        let mut c = Core::new(CoreConfig::default(), cfg, build(), SimMode::Cycle);
        assert_eq!(c.run(100_000), StepOutcome::Halted);
        c
    };
    let on = mk(VpuPolicy::AlwaysOn);
    let conv = mk(VpuPolicy::Conventional {
        idle_gate_cycles: 50,
    });
    assert!(conv.stats().stall_cycles >= 30, "demand wake must stall");
    assert!(conv.stats().cycles > on.stats().cycles);
}

/// Stealth mode in cycle mode: decoy sweeps are re-paced by the watchdog,
/// so halving the period roughly doubles the decoy volume.
#[test]
fn watchdog_period_paces_decoy_volume() {
    let build = || {
        let mut a = Assembler::new(0x1000);
        let top = a.fresh_label();
        a.mov_ri(Gpr::Rbx, 0x7000); // secret location
        a.load(Gpr::Rdi, MemRef::base(Gpr::Rbx)); // tainted
        a.mov_ri(Gpr::Rcx, 4000);
        a.bind(top).unwrap();
        a.mov_rr(Gpr::Rdx, Gpr::Rdi);
        a.alu_ri(AluOp::And, Gpr::Rdx, 0x3f);
        a.load_w(
            Gpr::Rax,
            MemRef::base_index(Gpr::Rdx, Gpr::Rdx, mx86_isa::Scale::S1).with_disp(0x8000),
            Width::B1,
        );
        a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
        a.jcc(Cc::Ne, top);
        a.halt();
        a.finish().unwrap()
    };
    let decoys_at = |period: u64| {
        let cfg = CoreConfig {
            dift_enabled: true,
            ..CoreConfig::default()
        };
        let mut c = Core::new(cfg, CsdConfig::default(), build(), SimMode::Cycle);
        c.dift_mut()
            .taint_memory(mx86_isa::AddrRange::new(0x7000, 0x7008));
        let e = c.engine_mut();
        e.write_msr(msr::MSR_DATA_RANGE_BASE, 0x9000);
        e.write_msr(msr::MSR_DATA_RANGE_BASE + 1, 0x9000 + 4 * 64);
        e.write_msr(msr::MSR_WATCHDOG_PERIOD, period);
        e.write_msr(msr::MSR_CSD_CTL, msr::CTL_STEALTH | msr::CTL_DIFT_TRIGGER);
        assert_eq!(c.run(1_000_000), StepOutcome::Halted);
        c.stats().decoy_uops
    };
    let fast = decoys_at(500);
    let slow = decoys_at(4000);
    assert!(
        fast > slow * 3,
        "decoys at 500-cycle watchdog ({fast}) should far exceed 4000-cycle ({slow})"
    );
}
