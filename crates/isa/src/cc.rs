//! Branch condition codes.

use std::fmt;

/// Condition codes for conditional branches (`Jcc`).
///
/// Evaluated against the architectural flags (ZF, SF, CF, OF) produced by
/// the most recent flag-writing macro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cc {
    /// Equal / zero (`ZF`).
    Eq,
    /// Not equal / not zero (`!ZF`).
    Ne,
    /// Signed less-than (`SF != OF`).
    Lt,
    /// Signed greater-or-equal (`SF == OF`).
    Ge,
    /// Signed less-or-equal (`ZF || SF != OF`).
    Le,
    /// Signed greater-than (`!ZF && SF == OF`).
    Gt,
    /// Unsigned below (`CF`).
    B,
    /// Unsigned above-or-equal (`!CF`).
    Ae,
    /// Unsigned below-or-equal (`CF || ZF`).
    Be,
    /// Unsigned above (`!CF && !ZF`).
    A,
    /// Negative (`SF`).
    S,
    /// Non-negative (`!SF`).
    Ns,
}

impl Cc {
    /// All condition codes.
    pub const ALL: [Cc; 12] = [
        Cc::Eq,
        Cc::Ne,
        Cc::Lt,
        Cc::Ge,
        Cc::Le,
        Cc::Gt,
        Cc::B,
        Cc::Ae,
        Cc::Be,
        Cc::A,
        Cc::S,
        Cc::Ns,
    ];

    /// The logically inverted condition.
    pub const fn invert(self) -> Cc {
        match self {
            Cc::Eq => Cc::Ne,
            Cc::Ne => Cc::Eq,
            Cc::Lt => Cc::Ge,
            Cc::Ge => Cc::Lt,
            Cc::Le => Cc::Gt,
            Cc::Gt => Cc::Le,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
            Cc::Be => Cc::A,
            Cc::A => Cc::Be,
            Cc::S => Cc::Ns,
            Cc::Ns => Cc::S,
        }
    }

    /// Evaluates the condition against flag values.
    pub const fn eval(self, zf: bool, sf: bool, cf: bool, of: bool) -> bool {
        match self {
            Cc::Eq => zf,
            Cc::Ne => !zf,
            Cc::Lt => sf != of,
            Cc::Ge => sf == of,
            Cc::Le => zf || (sf != of),
            Cc::Gt => !zf && (sf == of),
            Cc::B => cf,
            Cc::Ae => !cf,
            Cc::Be => cf || zf,
            Cc::A => !cf && !zf,
            Cc::S => sf,
            Cc::Ns => !sf,
        }
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cc::Eq => "e",
            Cc::Ne => "ne",
            Cc::Lt => "l",
            Cc::Ge => "ge",
            Cc::Le => "le",
            Cc::Gt => "g",
            Cc::B => "b",
            Cc::Ae => "ae",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::S => "s",
            Cc::Ns => "ns",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_is_involutive() {
        for cc in Cc::ALL {
            assert_eq!(cc.invert().invert(), cc);
        }
    }

    #[test]
    fn inverted_condition_negates_eval() {
        for cc in Cc::ALL {
            for bits in 0..16u8 {
                let (zf, sf, cf, of) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                assert_eq!(
                    cc.eval(zf, sf, cf, of),
                    !cc.invert().eval(zf, sf, cf, of),
                    "{cc} with flags {bits:04b}"
                );
            }
        }
    }

    #[test]
    fn signed_comparisons() {
        // 1 < 2: sub computes 1-2 => sf=1, of=0
        assert!(Cc::Lt.eval(false, true, true, false));
        assert!(!Cc::Ge.eval(false, true, true, false));
        assert!(Cc::Le.eval(false, true, true, false));
    }
}
