//! Single-pass assembler with label fixups.

use crate::cc::Cc;
use crate::inst::{AluOp, Inst, RegImm, VecOp};
use crate::operand::{MemRef, Width};
use crate::program::{Placed, Program};
use crate::reg::{Gpr, Xmm};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was bound twice.
    RebindLabel(Label),
    /// A label used as a branch target was never bound.
    UnboundLabel(Label),
    /// A region was opened twice or closed without being opened.
    BadRegion(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::RebindLabel(l) => write!(f, "label L{} bound more than once", l.0),
            AsmError::UnboundLabel(l) => write!(f, "label L{} referenced but never bound", l.0),
            AsmError::BadRegion(n) => write!(f, "mismatched region markers for '{n}'"),
        }
    }
}

impl Error for AsmError {}

/// A single-pass assembler for mx86 programs.
///
/// Instructions are laid out contiguously from a base address; direct branch
/// targets may reference [`Label`]s that are bound before or after the
/// branch site and are patched in [`Assembler::finish`]. Branch encodings
/// have fixed length (rel32-style), so a single pass suffices.
///
/// ```
/// use mx86_isa::{Assembler, Gpr, AluOp, Cc};
/// # fn main() -> Result<(), mx86_isa::AsmError> {
/// let mut a = Assembler::new(0x40_0000);
/// let done = a.fresh_label();
/// a.cmp_ri(Gpr::Rax, 0);
/// a.jcc(Cc::Eq, done);
/// a.alu_ri(AluOp::Sub, Gpr::Rax, 1);
/// a.bind(done)?;
/// a.halt();
/// let p = a.finish()?;
/// assert_eq!(p.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Assembler {
    base: u64,
    pc: u64,
    insts: Vec<Placed>,
    labels: Vec<Option<u64>>,
    fixups: Vec<(usize, Label)>,
    symbols: HashMap<String, u64>,
    open_regions: Vec<String>,
}

impl Assembler {
    /// Creates an assembler that places code starting at `base`.
    pub fn new(base: u64) -> Assembler {
        Assembler {
            base,
            pc: base,
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            symbols: HashMap::new(),
            open_regions: Vec::new(),
        }
    }

    /// The address at which the next instruction will be placed.
    pub fn here(&self) -> u64 {
        self.pc
    }

    /// Allocates a fresh, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds `label` to the current address.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::RebindLabel`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            return Err(AsmError::RebindLabel(label));
        }
        *slot = Some(self.pc);
        Ok(())
    }

    /// Records a named symbol at the current address.
    pub fn symbol(&mut self, name: impl Into<String>) {
        self.symbols.insert(name.into(), self.pc);
    }

    /// Opens a named region at the current address. Close it with
    /// [`Assembler::end_region`]; query it via [`Program::region`].
    pub fn begin_region(&mut self, name: impl Into<String>) {
        let name = name.into();
        self.symbols.insert(name.clone(), self.pc);
        self.open_regions.push(name);
    }

    /// Closes the innermost open region.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::BadRegion`] if no region is open.
    pub fn end_region(&mut self) -> Result<(), AsmError> {
        let name = self
            .open_regions
            .pop()
            .ok_or_else(|| AsmError::BadRegion("<none>".into()))?;
        self.symbols.insert(format!("{name}.end"), self.pc);
        Ok(())
    }

    /// Pads with NOPs until the current address is `align`-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align(&mut self, align: u64) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        while !self.pc.is_multiple_of(align) {
            let gap = align - (self.pc % align);
            let len = gap.min(15) as u32;
            self.nop(len);
        }
    }

    /// Pads with NOPs until the current address reaches `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is behind the current address.
    pub fn pad_to(&mut self, target: u64) {
        assert!(target >= self.pc, "cannot pad backwards");
        while self.pc < target {
            let gap = target - self.pc;
            self.nop(gap.min(15) as u32);
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(Placed {
            addr: self.pc,
            inst,
        });
        self.pc += u64::from(inst.len());
        self
    }

    /// Finalizes the program, patching all label references.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if a referenced label was never
    /// bound, or [`AsmError::BadRegion`] if a region is still open.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(open) = self.open_regions.pop() {
            return Err(AsmError::BadRegion(open));
        }
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let addr = self.labels[label.0 as usize].ok_or(AsmError::UnboundLabel(label))?;
            let inst = &mut self.insts[idx].inst;
            match inst {
                Inst::Jmp { target } | Inst::Jcc { target, .. } | Inst::Call { target } => {
                    *target = addr;
                }
                other => unreachable!("fixup on non-branch {other}"),
            }
        }
        Ok(Program::from_parts(self.insts, self.symbols, self.base))
    }

    fn emit_branch(&mut self, inst: Inst, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.emit(inst)
    }

    // ---- convenience emitters -------------------------------------------

    /// `nop` of `len` bytes.
    pub fn nop(&mut self, len: u32) -> &mut Self {
        self.emit(Inst::Nop { len })
    }

    /// `mov dst, src`.
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) -> &mut Self {
        self.emit(Inst::MovRR { dst, src })
    }

    /// `mov dst, imm`.
    pub fn mov_ri(&mut self, dst: Gpr, imm: i64) -> &mut Self {
        self.emit(Inst::MovRI { dst, imm })
    }

    /// `mov dst, qword [mem]`.
    pub fn load(&mut self, dst: Gpr, mem: MemRef) -> &mut Self {
        self.load_w(dst, mem, Width::B8)
    }

    /// `mov dst, <width> [mem]`.
    pub fn load_w(&mut self, dst: Gpr, mem: MemRef, width: Width) -> &mut Self {
        self.emit(Inst::Load { dst, mem, width })
    }

    /// `mov qword [mem], src`.
    pub fn store(&mut self, mem: MemRef, src: Gpr) -> &mut Self {
        self.store_w(mem, src, Width::B8)
    }

    /// `mov <width> [mem], src`.
    pub fn store_w(&mut self, mem: MemRef, src: Gpr, width: Width) -> &mut Self {
        self.emit(Inst::Store { mem, src, width })
    }

    /// `lea dst, [mem]`.
    pub fn lea(&mut self, dst: Gpr, mem: MemRef) -> &mut Self {
        self.emit(Inst::Lea { dst, mem })
    }

    /// `op dst, src` (register source).
    pub fn alu_rr(&mut self, op: AluOp, dst: Gpr, src: Gpr) -> &mut Self {
        self.emit(Inst::Alu {
            op,
            dst,
            src: RegImm::Reg(src),
        })
    }

    /// `op dst, imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Gpr, imm: i64) -> &mut Self {
        self.emit(Inst::Alu {
            op,
            dst,
            src: RegImm::Imm(imm),
        })
    }

    /// `op dst, <width> [mem]` — load-op form.
    pub fn alu_load(&mut self, op: AluOp, dst: Gpr, mem: MemRef, width: Width) -> &mut Self {
        self.emit(Inst::AluLoad {
            op,
            dst,
            mem,
            width,
        })
    }

    /// `op <width> [mem], src` — read-modify-write form.
    pub fn alu_store(&mut self, op: AluOp, mem: MemRef, src: RegImm, width: Width) -> &mut Self {
        self.emit(Inst::AluStore {
            op,
            mem,
            src,
            width,
        })
    }

    /// `imul dst, src`.
    pub fn mul_rr(&mut self, dst: Gpr, src: Gpr) -> &mut Self {
        self.emit(Inst::Mul {
            dst,
            src: RegImm::Reg(src),
        })
    }

    /// `imul dst, imm`.
    pub fn mul_ri(&mut self, dst: Gpr, imm: i64) -> &mut Self {
        self.emit(Inst::Mul {
            dst,
            src: RegImm::Imm(imm),
        })
    }

    /// `div src` — RDX:RAX / src (microsequenced).
    pub fn div(&mut self, src: Gpr) -> &mut Self {
        self.emit(Inst::Div { src })
    }

    /// `cmp a, b` (register).
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) -> &mut Self {
        self.emit(Inst::Cmp {
            a,
            b: RegImm::Reg(b),
        })
    }

    /// `cmp a, imm`.
    pub fn cmp_ri(&mut self, a: Gpr, imm: i64) -> &mut Self {
        self.emit(Inst::Cmp {
            a,
            b: RegImm::Imm(imm),
        })
    }

    /// `test a, b`.
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) -> &mut Self {
        self.emit(Inst::Test {
            a,
            b: RegImm::Reg(b),
        })
    }

    /// `test a, imm`.
    pub fn test_ri(&mut self, a: Gpr, imm: i64) -> &mut Self {
        self.emit(Inst::Test {
            a,
            b: RegImm::Imm(imm),
        })
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Inst::Jmp { target: 0 }, label)
    }

    /// `jmp addr` with a known absolute target.
    pub fn jmp_abs(&mut self, target: u64) -> &mut Self {
        self.emit(Inst::Jmp { target })
    }

    /// `j<cc> label`.
    pub fn jcc(&mut self, cc: Cc, label: Label) -> &mut Self {
        self.emit_branch(Inst::Jcc { cc, target: 0 }, label)
    }

    /// `jmp reg` — indirect.
    pub fn jmp_ind(&mut self, reg: Gpr) -> &mut Self {
        self.emit(Inst::JmpInd { reg })
    }

    /// `call label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Inst::Call { target: 0 }, label)
    }

    /// `call addr` with a known absolute target.
    pub fn call_abs(&mut self, target: u64) -> &mut Self {
        self.emit(Inst::Call { target })
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Inst::Ret)
    }

    /// `push src`.
    pub fn push(&mut self, src: Gpr) -> &mut Self {
        self.emit(Inst::Push { src })
    }

    /// `pop dst`.
    pub fn pop(&mut self, dst: Gpr) -> &mut Self {
        self.emit(Inst::Pop { dst })
    }

    /// `movdqa dst, [mem]` — vector load.
    pub fn vload(&mut self, dst: Xmm, mem: MemRef) -> &mut Self {
        self.emit(Inst::VLoad { dst, mem })
    }

    /// `movdqa [mem], src` — vector store.
    pub fn vstore(&mut self, mem: MemRef, src: Xmm) -> &mut Self {
        self.emit(Inst::VStore { mem, src })
    }

    /// `movdqa dst, src` — vector move.
    pub fn vmov(&mut self, dst: Xmm, src: Xmm) -> &mut Self {
        self.emit(Inst::VMovRR { dst, src })
    }

    /// `op dst, src` — packed vector ALU.
    pub fn valu(&mut self, op: VecOp, dst: Xmm, src: Xmm) -> &mut Self {
        self.emit(Inst::VAlu { op, dst, src })
    }

    /// `op dst, [mem]` — packed vector ALU with memory source.
    pub fn valu_load(&mut self, op: VecOp, dst: Xmm, mem: MemRef) -> &mut Self {
        self.emit(Inst::VAluLoad { op, dst, mem })
    }

    /// `movq dst(gpr), src(xmm)`.
    pub fn vmov_to_gpr(&mut self, dst: Gpr, src: Xmm) -> &mut Self {
        self.emit(Inst::VMovToGpr { dst, src })
    }

    /// `movq dst(xmm), src(gpr)`.
    pub fn vmov_from_gpr(&mut self, dst: Xmm, src: Gpr) -> &mut Self {
        self.emit(Inst::VMovFromGpr { dst, src })
    }

    /// `clflush [mem]`.
    pub fn clflush(&mut self, mem: MemRef) -> &mut Self {
        self.emit(Inst::Clflush { mem })
    }

    /// `rdtsc`.
    pub fn rdtsc(&mut self) -> &mut Self {
        self.emit(Inst::Rdtsc)
    }

    /// `wrmsr msr, src`.
    pub fn wrmsr(&mut self, msr: u32, src: Gpr) -> &mut Self {
        self.emit(Inst::Wrmsr { msr, src })
    }

    /// `rdmsr dst, msr`.
    pub fn rdmsr(&mut self, dst: Gpr, msr: u32) -> &mut Self {
        self.emit(Inst::Rdmsr { dst, msr })
    }

    /// `hlt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new(0x1000);
        let fwd = a.fresh_label();
        let back = a.fresh_label();
        a.bind(back).unwrap();
        a.mov_ri(Gpr::Rax, 1);
        a.jcc(Cc::Ne, fwd);
        a.jmp(back);
        a.bind(fwd).unwrap();
        a.halt();
        let p = a.finish().unwrap();

        let jcc = p
            .iter()
            .find(|pl| matches!(pl.inst, Inst::Jcc { .. }))
            .unwrap();
        let jmp = p
            .iter()
            .find(|pl| matches!(pl.inst, Inst::Jmp { .. }))
            .unwrap();
        let halt = p.iter().find(|pl| matches!(pl.inst, Inst::Halt)).unwrap();
        assert_eq!(jcc.inst.direct_target(), Some(halt.addr));
        assert_eq!(jmp.inst.direct_target(), Some(0x1000));
    }

    #[test]
    fn instructions_are_contiguous() {
        let mut a = Assembler::new(0x2000);
        a.mov_ri(Gpr::Rax, 0x1234);
        a.load(Gpr::Rbx, MemRef::base(Gpr::Rax));
        a.ret();
        let p = a.finish().unwrap();
        let mut expected = 0x2000;
        for pl in &p {
            assert_eq!(pl.addr, expected);
            expected = pl.next_addr();
        }
        assert_eq!(p.end_addr(), expected);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.fresh_label();
        a.jmp(l);
        assert_eq!(a.finish().unwrap_err(), AsmError::UnboundLabel(Label(0)));
    }

    #[test]
    fn rebinding_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.fresh_label();
        a.bind(l).unwrap();
        assert_eq!(a.bind(l).unwrap_err(), AsmError::RebindLabel(Label(0)));
    }

    #[test]
    fn align_pads_with_nops() {
        let mut a = Assembler::new(0x101);
        a.align(64);
        assert_eq!(a.here() % 64, 0);
        let p = a.finish().unwrap();
        assert!(p.iter().all(|pl| matches!(pl.inst, Inst::Nop { .. })));
    }

    #[test]
    fn pad_to_reaches_target_with_long_gaps() {
        let mut a = Assembler::new(0);
        a.pad_to(100);
        assert_eq!(a.here(), 100);
    }

    #[test]
    fn regions_record_extents() {
        let mut a = Assembler::new(0x1000);
        a.begin_region("multiply");
        a.mov_ri(Gpr::Rax, 7);
        a.ret();
        a.end_region().unwrap();
        let end = a.here();
        let p = a.finish().unwrap();
        let r = p.region("multiply").unwrap();
        assert_eq!(r.start, 0x1000);
        assert_eq!(r.end, end);
    }

    #[test]
    fn open_region_is_an_error() {
        let mut a = Assembler::new(0);
        a.begin_region("r");
        assert!(matches!(a.finish(), Err(AsmError::BadRegion(_))));
    }

    #[test]
    fn fetch_by_address() {
        let mut a = Assembler::new(0x500);
        a.mov_ri(Gpr::Rcx, 3);
        let second = a.here();
        a.ret();
        let p = a.finish().unwrap();
        assert!(p.fetch(0x500).is_some());
        assert!(matches!(p.fetch(second).unwrap().inst, Inst::Ret));
        assert!(p.fetch(0x501).is_none());
    }
}
