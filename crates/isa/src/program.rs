//! Assembled programs: instruction streams indexed by address.

use crate::inst::Inst;
use std::collections::HashMap;
use std::fmt;

/// A half-open address range `[start, end)`.
///
/// Used for code/data footprints and, centrally, for the CSD *decoy
/// address-range registers* that mark sensitive regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AddrRange {
    /// Inclusive start address.
    pub start: u64,
    /// Exclusive end address.
    pub end: u64,
}

impl AddrRange {
    /// Creates a range; `end` must not precede `start`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> AddrRange {
        assert!(end >= start, "address range end precedes start");
        AddrRange { start, end }
    }

    /// Range covering `len` bytes from `start`.
    pub fn with_len(start: u64, len: u64) -> AddrRange {
        AddrRange::new(start, start + len)
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` lies within the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether the two ranges share any byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Iterates over the starting addresses of `block`-byte blocks that the
    /// range touches (aligned down to `block`).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn blocks(&self, block: u64) -> impl Iterator<Item = u64> {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        let first = self.start & !(block - 1);
        let end = self.end;
        (0..)
            .map(move |i| first + i * block)
            .take_while(move |&a| a < end)
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

/// One placed instruction inside a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placed {
    /// Start address of the encoding.
    pub addr: u64,
    /// The macro-op.
    pub inst: Inst,
}

impl Placed {
    /// Address of the byte following this instruction.
    pub fn next_addr(&self) -> u64 {
        self.addr + u64::from(self.inst.len())
    }
}

/// An assembled program: a contiguous, address-indexed instruction stream.
///
/// Produced by [`crate::Assembler::finish`]. Instructions are laid out
/// back-to-back starting at the entry address; `fetch` resolves an address
/// to the instruction that *starts* there, mirroring how the front end's
/// instruction-length decoder walks the byte stream.
#[derive(Debug, Clone, Default)]
pub struct Program {
    insts: Vec<Placed>,
    by_addr: HashMap<u64, usize>,
    symbols: HashMap<String, u64>,
    entry: u64,
}

impl Program {
    pub(crate) fn from_parts(
        insts: Vec<Placed>,
        symbols: HashMap<String, u64>,
        entry: u64,
    ) -> Program {
        let by_addr = insts.iter().enumerate().map(|(i, p)| (p.addr, i)).collect();
        Program {
            insts,
            by_addr,
            symbols,
            entry,
        }
    }

    /// The program's entry address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// First address past the last instruction.
    pub fn end_addr(&self) -> u64 {
        self.insts.last().map_or(self.entry, Placed::next_addr)
    }

    /// The full code footprint `[entry, end)`.
    pub fn code_range(&self) -> AddrRange {
        AddrRange::new(self.entry, self.end_addr())
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolves `addr` to the instruction starting at that address.
    pub fn fetch(&self, addr: u64) -> Option<&Placed> {
        self.by_addr.get(&addr).map(|&i| &self.insts[i])
    }

    /// Address bound to a symbol (label name), if present.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols as `(name, addr)` pairs.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Iterates the placed instructions in address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Placed> {
        self.insts.iter()
    }

    /// Returns the address range covered by a named region, defined by the
    /// symbols `name` (start) and `name.end` (end), as emitted by
    /// [`crate::Assembler::begin_region`]/[`crate::Assembler::end_region`].
    pub fn region(&self, name: &str) -> Option<AddrRange> {
        let start = self.symbol(name)?;
        let end = self.symbol(&format!("{name}.end"))?;
        Some(AddrRange::new(start, end))
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Placed;
    type IntoIter = std::slice::Iter<'a, Placed>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.insts {
            writeln!(f, "{:#010x}:  {}", p.addr, p.inst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_range_basics() {
        let r = AddrRange::with_len(0x100, 0x40);
        assert_eq!(r.len(), 0x40);
        assert!(r.contains(0x100));
        assert!(r.contains(0x13f));
        assert!(!r.contains(0x140));
        assert!(!r.is_empty());
        assert!(AddrRange::new(4, 4).is_empty());
    }

    #[test]
    fn addr_range_overlap() {
        let a = AddrRange::new(0x100, 0x200);
        assert!(a.overlaps(&AddrRange::new(0x1ff, 0x300)));
        assert!(!a.overlaps(&AddrRange::new(0x200, 0x300)));
        assert!(a.overlaps(&AddrRange::new(0x0, 0x101)));
        assert!(!a.overlaps(&AddrRange::new(0, 0x100)));
    }

    #[test]
    fn addr_range_blocks_align_down() {
        let r = AddrRange::new(0x130, 0x1c1);
        let blocks: Vec<u64> = r.blocks(64).collect();
        assert_eq!(blocks, vec![0x100, 0x140, 0x180, 0x1c0]);
    }

    #[test]
    #[should_panic(expected = "end precedes start")]
    fn addr_range_rejects_inverted() {
        let _ = AddrRange::new(0x10, 0x0);
    }
}
