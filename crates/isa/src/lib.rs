//! # mx86-isa — a synthetic x86-like macro-op ISA
//!
//! This crate defines the *native* (programmer-visible) instruction set used
//! throughout the CSD reproduction. It is deliberately x86-*like* rather than
//! x86: instructions are variable length (1–15 bytes), there are 16 general
//! purpose registers and 16 XMM vector registers, memory operands use
//! `base + index*scale + disp` addressing, and the set includes the macro-op
//! classes that matter to context-sensitive decoding — loads, stores,
//! branches, read-modify-write ALU ops, microsequenced complex ops, and
//! SSE-style packed vector ops.
//!
//! The crate is purely *syntactic*: it knows how instructions look, how long
//! their encodings are, and how to assemble programs with labels. Semantics
//! (micro-op translation and execution) live in `csd-uops` and
//! `csd-pipeline`.
//!
//! ```
//! use mx86_isa::{Assembler, Gpr, Cc, AluOp};
//!
//! # fn main() -> Result<(), mx86_isa::AsmError> {
//! let mut a = Assembler::new(0x1000);
//! let top = a.fresh_label();
//! a.mov_ri(Gpr::Rcx, 10);
//! a.bind(top)?;
//! a.alu_ri(AluOp::Sub, Gpr::Rcx, 1);
//! a.jcc(Cc::Ne, top);
//! a.ret();
//! let prog = a.finish()?;
//! assert_eq!(prog.entry(), 0x1000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod asm;
mod cc;
mod inst;
mod operand;
mod program;
mod reg;

pub use asm::{AsmError, Assembler, Label};
pub use cc::Cc;
pub use inst::{AluOp, Inst, RegImm, VecOp, MAX_INST_LEN};
pub use operand::{MemRef, Scale, Width};
pub use program::{AddrRange, Placed, Program};
pub use reg::{Gpr, Xmm};
