//! Architectural register definitions.

use std::fmt;

/// A general-purpose 64-bit architectural register.
///
/// Sixteen GPRs, named after their x86-64 counterparts. All scalar
/// integer macro-ops in mx86 operate on the full 64-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen GPRs in index order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Number of architectural GPRs.
    pub const COUNT: usize = 16;

    /// The register's architectural index in `0..16`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[inline]
    pub const fn from_index(index: usize) -> Gpr {
        assert!(index < 16, "GPR index out of range");
        Gpr::ALL[index]
    }

    /// Whether encoding this register requires an extension prefix
    /// (the upper eight registers, mirroring x86's REX.B/REX.R bit).
    #[inline]
    pub const fn needs_rex(self) -> bool {
        (self as u8) >= 8
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Gpr::Rax => "rax",
            Gpr::Rcx => "rcx",
            Gpr::Rdx => "rdx",
            Gpr::Rbx => "rbx",
            Gpr::Rsp => "rsp",
            Gpr::Rbp => "rbp",
            Gpr::Rsi => "rsi",
            Gpr::Rdi => "rdi",
            Gpr::R8 => "r8",
            Gpr::R9 => "r9",
            Gpr::R10 => "r10",
            Gpr::R11 => "r11",
            Gpr::R12 => "r12",
            Gpr::R13 => "r13",
            Gpr::R14 => "r14",
            Gpr::R15 => "r15",
        };
        f.write_str(name)
    }
}

/// A 128-bit packed vector (XMM) register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xmm(u8);

impl Xmm {
    /// Number of architectural XMM registers.
    pub const COUNT: usize = 16;

    /// Builds an XMM register from its architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[inline]
    pub const fn new(index: u8) -> Xmm {
        assert!(index < 16, "XMM index out of range");
        Xmm(index)
    }

    /// The register's architectural index in `0..16`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// All sixteen XMM registers in index order.
    pub fn all() -> impl Iterator<Item = Xmm> {
        (0..16).map(Xmm)
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Gpr::from_index(i), *r);
        }
    }

    #[test]
    fn gpr_rex() {
        assert!(!Gpr::Rax.needs_rex());
        assert!(!Gpr::Rdi.needs_rex());
        assert!(Gpr::R8.needs_rex());
        assert!(Gpr::R15.needs_rex());
    }

    #[test]
    fn gpr_display() {
        assert_eq!(Gpr::Rax.to_string(), "rax");
        assert_eq!(Gpr::R11.to_string(), "r11");
    }

    #[test]
    #[should_panic(expected = "GPR index out of range")]
    fn gpr_bad_index_panics() {
        let _ = Gpr::from_index(16);
    }

    #[test]
    fn xmm_roundtrip() {
        for i in 0..16u8 {
            let x = Xmm::new(i);
            assert_eq!(x.index(), i as usize);
            assert_eq!(x.to_string(), format!("xmm{i}"));
        }
        assert_eq!(Xmm::all().count(), 16);
    }

    #[test]
    #[should_panic(expected = "XMM index out of range")]
    fn xmm_bad_index_panics() {
        let _ = Xmm::new(16);
    }
}
